"""Greedy conditional-expectation coloring (the [GHK16] derandomization).

Given a :class:`~repro.derand.estimators.ColoringEstimator` whose initial
value is below 1, processing the variable nodes in *any* order and giving
each the color of smallest estimator gain yields a final estimator value
below 1; since the final value upper-bounds the (integral) number of violated
events, no event is violated.  This is exactly the SLOCAL algorithm that
[GHK16, Theorem III.1] produces, and the processing order used by the LOCAL
conversion is the (power-graph color class, id) order of
:mod:`repro.slocal.conversion`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.derand.estimators import ColoringEstimator
from repro.utils.validation import require

__all__ = ["greedy_minimize", "DerandomizationError"]


class DerandomizationError(RuntimeError):
    """Raised when the estimator's initial value is not below 1.

    This signals that the *precondition* of the derandomization (the paper's
    degree requirement, e.g. δ >= 2 log n for weak splitting) is violated for
    the given instance — the method of conditional expectations then cannot
    certify success.
    """


def greedy_minimize(
    estimator: ColoringEstimator,
    order: Sequence[int],
    strict: bool = True,
) -> Coloring:
    """Color the nodes listed in ``order`` by greedy estimator minimization.

    Parameters
    ----------
    estimator:
        Fresh estimator over the instance; mutated in place.
    order:
        The processing order over right-side nodes; must enumerate each node
        to be colored exactly once (typically all of ``V``).
    strict:
        When True (default) a :class:`DerandomizationError` is raised if the
        initial estimator value is >= 1 (no success certificate).  Set False
        to run heuristically anyway (used by some experiments to demonstrate
        where the guarantee boundary lies).

    Returns the complete coloring (list indexed by right node).
    """
    initial = estimator.value()
    if strict and initial >= 1.0:
        raise DerandomizationError(
            f"initial pessimistic estimator value {initial:.4g} >= 1; "
            "the instance violates the derandomization precondition"
        )
    seen = set()
    coloring: List[Optional[int]] = [None] * len(getattr(estimator.inst, "right_inc"))
    for v in order:
        require(v not in seen, f"node {v} appears twice in the processing order")
        seen.add(v)
        c = estimator.best_color(v)
        estimator.commit(v, c)
        coloring[v] = c
    final = estimator.value()
    # Greedy argmin never increases a martingale estimator; assert the
    # invariant held (up to floating point slack) so silent estimator bugs
    # cannot masquerade as successful runs.
    if final > initial + 1e-6:
        raise AssertionError(
            f"estimator increased from {initial:.6g} to {final:.6g}; "
            "the estimator is not a supermartingale (implementation bug)"
        )
    return coloring
