"""Pessimistic estimators for the paper's randomized 0-round processes.

[GHK16, Theorem III.1] derandomizes a randomized zero/constant-round
algorithm with locally checkable failure events into an SLOCAL algorithm by
the method of conditional expectations.  The estimator tracks, for a partial
assignment of the random choices, an upper bound on the expected number of
violated local events under uniform random completion; choosing each
variable's value to not increase the estimator keeps it below its initial
value, and if the initial value is below 1 the final (integral) count of
violated events must be 0.

Three estimators cover every derandomization the paper invokes:

* :class:`WeakSplittingEstimator` — events "u sees no red" / "u sees no blue"
  (Lemma 2.1, Lemma 3.1).  The estimator is the *exact* conditional
  expectation ``Σ_u [no red yet]·2^{-free(u)} + [no blue yet]·2^{-free(u)}``,
  a martingale under uniform red/blue completion; initial value
  ``Σ_u 2·2^{-deg(u)} <= 2n/n² < 1`` whenever δ >= 2 log n — the paper's
  union bound verbatim.

* :class:`MissingColorEstimator` — events "color x unseen by u" for each of
  ``K = ⌈2 log n⌉`` palette colors (Theorem 3.2).  Exact conditional
  expectation ``Σ_u Σ_{x unseen} (1 - 1/K)^{free(u)}``.

* :class:`OverloadEstimator` — events "u has more than ⌈λ·deg(u)⌉ neighbors
  of color x" (Theorem 3.3).  The exact tail has no cheap closed form under
  partial assignment, so we use the standard Chernoff/MGF pessimistic
  estimator ``Σ_{u,x} t^{count(u,x)} · (1 − p + p·t)^{free(u)} / t^{T_u + 1}``
  with ``p = 1/C'``; it dominates the failure probability by Markov's
  inequality and is an exact martingale under uniform completion, so the
  greedy argmin keeps it from growing.  The default ``t = λ·C'`` reproduces
  the paper's Equation (2) bound ``(e / (λ C'))^{λ d}`` at the root.

All estimators support O(deg(v) · colors) incremental evaluation of a
candidate assignment, which is what makes the SLOCAL conversion affordable.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro.bipartite.instance import BLUE, RED, BipartiteInstance
from repro.utils.validation import require, require_positive

__all__ = [
    "ColoringEstimator",
    "WeakSplittingEstimator",
    "MissingColorEstimator",
    "OverloadEstimator",
]


class ColoringEstimator(ABC):
    """Interface for pessimistic estimators over right-side colorings."""

    #: number of colors the variables range over
    num_colors: int

    @abstractmethod
    def value(self) -> float:
        """Current estimator value (upper bound on E[#violations])."""

    @abstractmethod
    def gain(self, v: int, color: int) -> float:
        """Estimator change if uncolored node ``v`` is assigned ``color``."""

    @abstractmethod
    def commit(self, v: int, color: int) -> None:
        """Permanently assign ``color`` to ``v`` and update internal state."""

    def best_color(self, v: int) -> int:
        """The argmin color for ``v`` (ties broken toward lower color)."""
        best, best_gain = 0, math.inf
        for c in range(self.num_colors):
            g = self.gain(v, c)
            if g < best_gain - 1e-15:
                best, best_gain = c, g
        return best


class WeakSplittingEstimator(ColoringEstimator):
    """Exact conditional expectation for weak splitting failures.

    A constraint ``u`` with ``free(u)`` uncolored neighbors and no red
    neighbor yet fails to see red with probability ``2^{-free(u)}`` under
    uniform completion (and symmetrically for blue).  The estimator is the
    sum over all these events.
    """

    num_colors = 2

    def __init__(self, inst: BipartiteInstance) -> None:
        self.inst = inst
        self.free: List[int] = [inst.left_degree(u) for u in range(inst.n_left)]
        self.seen: List[List[bool]] = [[False, False] for _ in range(inst.n_left)]
        self._value = sum(2.0 * (0.5 ** self.free[u]) for u in range(inst.n_left))

    def _contribution(self, u: int, free: int, seen_red: bool, seen_blue: bool) -> float:
        term = 0.5**free
        return (0.0 if seen_red else term) + (0.0 if seen_blue else term)

    def value(self) -> float:
        return self._value

    def gain(self, v: int, color: int) -> float:
        require(color in (RED, BLUE), f"invalid color {color}")
        delta = 0.0
        for u in self.inst.right_neighbors(v):
            sr, sb = self.seen[u]
            old = self._contribution(u, self.free[u], sr, sb)
            nr = sr or color == RED
            nb = sb or color == BLUE
            new = self._contribution(u, self.free[u] - 1, nr, nb)
            delta += new - old
        return delta

    def commit(self, v: int, color: int) -> None:
        self._value += self.gain(v, color)
        for u in self.inst.right_neighbors(v):
            self.free[u] -= 1
            self.seen[u][color] = True

    def violations(self) -> int:
        """Number of constraints currently unsatisfiable (monochromatic)."""
        count = 0
        for u in range(self.inst.n_left):
            if self.free[u] == 0 and (not self.seen[u][RED] or not self.seen[u][BLUE]):
                count += 1
        return count


class MissingColorEstimator(ColoringEstimator):
    """Exact conditional expectation of missing (u, palette-color) pairs.

    Used for C-weak multicolor splitting (Definition 1.3 / Theorem 3.2):
    variables choose among ``K`` palette colors uniformly; constraint ``u``
    must see all ``K`` of them (then it certainly sees ``>= 2 log n``
    colors).  The event for pair ``(u, x)``: no neighbor of ``u`` is colored
    ``x``; conditional probability ``(1 - 1/K)^{free(u)}`` while unseen.
    """

    def __init__(self, inst: BipartiteInstance, palette_size: int) -> None:
        require(palette_size >= 2, f"palette must have >= 2 colors, got {palette_size}")
        self.inst = inst
        self.num_colors = palette_size
        self.q = 1.0 - 1.0 / palette_size
        self.free: List[int] = [inst.left_degree(u) for u in range(inst.n_left)]
        self.missing: List[int] = [palette_size] * inst.n_left
        self.seen: List[List[bool]] = [
            [False] * palette_size for _ in range(inst.n_left)
        ]
        self._value = sum(
            self.missing[u] * (self.q ** self.free[u]) for u in range(inst.n_left)
        )

    def value(self) -> float:
        return self._value

    def gain(self, v: int, color: int) -> float:
        require(0 <= color < self.num_colors, f"invalid color {color}")
        delta = 0.0
        for u in self.inst.right_neighbors(v):
            old = self.missing[u] * (self.q ** self.free[u])
            new_missing = self.missing[u] - (0 if self.seen[u][color] else 1)
            new = new_missing * (self.q ** (self.free[u] - 1))
            delta += new - old
        return delta

    def commit(self, v: int, color: int) -> None:
        self._value += self.gain(v, color)
        for u in self.inst.right_neighbors(v):
            self.free[u] -= 1
            if not self.seen[u][color]:
                self.seen[u][color] = True
                self.missing[u] -= 1

    def violations(self) -> int:
        """Fully-decided constraints still missing some palette color."""
        return sum(
            1
            for u in range(self.inst.n_left)
            if self.free[u] == 0 and self.missing[u] > 0
        )


class OverloadEstimator(ColoringEstimator):
    """Chernoff-style pessimistic estimator for per-color overload events.

    Used for (C, λ)-multicolor splitting (Definition 1.2 / Theorem 3.3):
    variables choose among ``C'`` colors uniformly; constraint ``u`` fails on
    color ``x`` if more than ``T_u = ⌈λ·deg(u)⌉`` of its neighbors take
    color ``x``.  For a partial assignment with ``count(u, x)`` committed
    ``x``-neighbors and ``free(u)`` undecided neighbors,

        est(u, x) = t^{count(u,x)} · (1 − p + p t)^{free(u)} / t^{T_u + 1}

    with ``p = 1/C'`` upper-bounds ``Pr[overload]`` (Markov on ``t^X``) and
    averages to itself over a uniform color choice, so greedy minimization
    never increases the total.
    """

    def __init__(
        self,
        inst: BipartiteInstance,
        num_colors: int,
        lam: float,
        t: Optional[float] = None,
    ) -> None:
        require(num_colors >= 2, f"need >= 2 colors, got {num_colors}")
        require_positive(lam, "lam")
        self.inst = inst
        self.num_colors = num_colors
        self.lam = lam
        self.p = 1.0 / num_colors
        if t is None:
            t = lam * num_colors
        require(t > 1.0, f"MGF parameter t must exceed 1 (got {t}); need lam * C > 1")
        self.t = t
        self.phi = 1.0 - self.p + self.p * t  # E[t^{indicator}] for one free var
        self.free: List[int] = [inst.left_degree(u) for u in range(inst.n_left)]
        self.threshold: List[int] = [
            math.ceil(lam * inst.left_degree(u)) for u in range(inst.n_left)
        ]
        # power_count[u][x] = t ** count(u, x); we track the per-u sum too.
        self.power_count: List[List[float]] = [
            [1.0] * num_colors for _ in range(inst.n_left)
        ]
        self.power_sum: List[float] = [float(num_colors)] * inst.n_left
        self.counts: List[List[int]] = [[0] * num_colors for _ in range(inst.n_left)]
        self._value = sum(self._contribution(u) for u in range(inst.n_left))

    def _contribution(self, u: int) -> float:
        scale = (self.phi ** self.free[u]) / (self.t ** (self.threshold[u] + 1))
        return scale * self.power_sum[u]

    def value(self) -> float:
        return self._value

    def gain(self, v: int, color: int) -> float:
        require(0 <= color < self.num_colors, f"invalid color {color}")
        delta = 0.0
        for u in self.inst.right_neighbors(v):
            old = self._contribution(u)
            new_sum = self.power_sum[u] + self.power_count[u][color] * (self.t - 1.0)
            new = (
                (self.phi ** (self.free[u] - 1))
                / (self.t ** (self.threshold[u] + 1))
                * new_sum
            )
            delta += new - old
        return delta

    def commit(self, v: int, color: int) -> None:
        self._value += self.gain(v, color)
        for u in self.inst.right_neighbors(v):
            self.free[u] -= 1
            self.counts[u][color] += 1
            bump = self.power_count[u][color] * (self.t - 1.0)
            self.power_count[u][color] *= self.t
            self.power_sum[u] += bump

    def violations(self) -> int:
        """Fully-decided constraints with an overloaded color class."""
        count = 0
        for u in range(self.inst.n_left):
            if self.free[u] == 0 and max(self.counts[u]) > self.threshold[u]:
                count += 1
        return count
