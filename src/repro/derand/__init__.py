"""Method-of-conditional-expectations derandomization ([GHK16, Thm III.1])."""

from repro.derand.conditional import DerandomizationError, greedy_minimize
from repro.derand.estimators import (
    ColoringEstimator,
    MissingColorEstimator,
    OverloadEstimator,
    WeakSplittingEstimator,
)

__all__ = [
    "DerandomizationError",
    "greedy_minimize",
    "ColoringEstimator",
    "WeakSplittingEstimator",
    "MissingColorEstimator",
    "OverloadEstimator",
]
