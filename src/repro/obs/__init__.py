"""Observability: round-level tracing and sweep metrics.

A zero-dependency layer over the execution stack (the ROADMAP's
"trajectory analytics" direction, the in-process half):

* :class:`Tracer` / :class:`NullTracer` — per-round span/event records for
  any backend, persisted as torn-write-safe JSONL
  (:mod:`repro.obs.trace`);
* :class:`TracingHooks` — tracing as a
  :class:`~repro.local.network.RoundHooks` adapter for the reference and
  engine executors (:mod:`repro.obs.hooks`); the dense kernels take a
  ``tracer=`` argument instead;
* :class:`MetricsRegistry` — counters/gauges/histograms for the sweep
  infrastructure, snapshotted into every
  :class:`~repro.exp.runner.SweepResult` (:mod:`repro.obs.metrics`).

The queryable *cross-run* half lives in ``benchmarks/history.py`` (a
sqlite index over ``bench_history.jsonl`` with trend/compare/regressions
queries).
"""

from repro.obs.hooks import TracingHooks
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.trace import NullTracer, Tracer, append_trace, load_trace

__all__ = [
    "Tracer",
    "NullTracer",
    "append_trace",
    "load_trace",
    "TracingHooks",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
]
