"""A zero-dependency counters/gauges/histograms registry for sweep metrics.

The sweep layer (:mod:`repro.exp`) had rich *per-trial* data but no view of
the infrastructure around the trials: how often the fault-tolerant executor
retried, timed out, rebuilt its pool or quarantined a poison cell, how many
trials a resume skipped, how setup time compares to solve time per cell.
:class:`MetricsRegistry` is the minimal instrument set for that — three
metric kinds, stdlib only, snapshot-to-dict for JSON artifacts:

* **counters** — monotonically increasing event counts
  (``registry.counter("timeouts").inc()``);
* **gauges** — last-write-wins point values
  (``registry.gauge("workers").set(8)``);
* **histograms** — streaming summaries (count/sum/min/max/mean) of
  observed values (``registry.histogram("solve_seconds/mis").observe(t)``).

A snapshot is a plain nested dict, stable under ``json.dumps(sort_keys=True)``,
recorded into :class:`~repro.exp.runner.SweepResult` and the drain-failure
manifest so every sweep artifact carries its own execution health record.
"""

from __future__ import annotations

import math
from typing import Any, Dict

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount


class Gauge:
    """A last-write-wins point-in-time value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A streaming summary of observed values (no buckets, O(1) memory)."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Named metric instruments, created on first use.

    One registry spans one sweep: the runner and the resilient executor
    share it, so a single :meth:`snapshot` shows dispatch counts next to
    per-cell timing summaries.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        inst = self._counters.get(name)
        if inst is None:
            inst = self._counters[name] = Counter()
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self._gauges.get(name)
        if inst is None:
            inst = self._gauges[name] = Gauge()
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self._histograms.get(name)
        if inst is None:
            inst = self._histograms[name] = Histogram()
        return inst

    def snapshot(self) -> Dict[str, Any]:
        """The registry as a JSON-ready nested dict (sorted names)."""
        return {
            "counters": {k: c.value for k, c in sorted(self._counters.items())},
            "gauges": {k: g.value for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.to_dict() for k, h in sorted(self._histograms.items())
            },
        }
