"""Round-level tracing: span/event records over the execution stack.

The paper's headline claims are *round*-complexity claims, so the natural
observability primitive is a per-round record: which round ran, how many
nodes were still active, how many messages arrived or were dropped, how
long the phase took on the wall clock.  A :class:`Tracer` collects those
records in memory while a run executes — attached to the hook-based
executors via :class:`~repro.obs.hooks.TracingHooks` and consulted at
explicit trace points inside the dense kernels — and the records are
persisted as torn-write-safe JSONL with the same seal-the-tail discipline
as ``benchmarks/store.py``'s history store.

Tracing is strictly opt-in: every traced code path takes ``tracer=None``
as its default and guards its trace points with
``tracer is not None and tracer.enabled``, so the untraced hot loops are
untouched and a :class:`NullTracer` (``enabled=False``) costs one
attribute read per round at most — the E21 gate in
``benchmarks/bench_engine.py`` measures that overhead at < 2% on a dense
Luby run at n = 100,000.

Record shape (one flat JSON object per line)::

    {"kind": "round", "round": 3, "active": 412, "delivered": 1650,
     "dropped": 84, "seconds": 0.0021, "trial": 7, "backend": "engine",
     "scenario": "luby/crash"}

``kind`` is ``"round"`` for per-round records, ``"span"`` for named
wall-time spans, anything else for free-form events (e.g. the scenario
runner's final ``"result"`` event).  The common fields (``trial``,
``backend``, ``scenario``) are stamped onto every record by the tracer
that produced it.
"""

from __future__ import annotations

import json
import sys
import time
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["Tracer", "NullTracer", "append_trace", "load_trace"]


class Tracer:
    """In-memory collector of trace records for one run or trial.

    ``trial`` / ``backend`` / ``scenario`` are stamped onto every record
    (omitted when None), so records from many trials can share one JSONL
    file and remain separable at query time.
    """

    enabled = True

    def __init__(
        self,
        trial: Optional[int] = None,
        backend: Optional[str] = None,
        scenario: Optional[str] = None,
    ) -> None:
        self.common: Dict[str, Any] = {}
        if trial is not None:
            self.common["trial"] = trial
        if backend is not None:
            self.common["backend"] = backend
        if scenario is not None:
            self.common["scenario"] = scenario
        self.records: List[Dict[str, Any]] = []

    def event(self, kind: str, **fields: Any) -> None:
        """Append one free-form record of the given ``kind``."""
        record = {"kind": kind}
        record.update(self.common)
        record.update(fields)
        self.records.append(record)

    def round(self, round_no: int, **fields: Any) -> None:
        """Append one per-round record (``kind="round"``)."""
        self.event("round", round=int(round_no), **fields)

    @contextmanager
    def span(self, name: str, **fields: Any):
        """Record the wall time of a named phase as a ``"span"`` record."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.event("span", name=name, seconds=time.perf_counter() - start, **fields)

    def round_records(self) -> List[Dict[str, Any]]:
        """Just the per-round records, in emission order."""
        return [r for r in self.records if r.get("kind") == "round"]

    def flush(self, path) -> int:
        """Append all collected records to the JSONL file at ``path``.

        Returns the number of records written and clears the in-memory
        buffer, so repeated flushes never duplicate rows.
        """
        written = append_trace(path, self.records)
        self.records = []
        return written


class NullTracer:
    """The do-nothing tracer: same surface as :class:`Tracer`, zero records.

    Traced code paths guard on ``tracer.enabled``, so a NullTracer-bearing
    run executes the identical instructions as an untraced one apart from
    that guard — the property the E21 overhead gate pins down.
    """

    enabled = False
    common: Dict[str, Any] = {}
    records: List[Dict[str, Any]] = []

    def event(self, kind: str, **fields: Any) -> None:
        pass

    def round(self, round_no: int, **fields: Any) -> None:
        pass

    @contextmanager
    def span(self, name: str, **fields: Any):
        yield

    def round_records(self) -> List[Dict[str, Any]]:
        return []

    def flush(self, path) -> int:
        return 0


def append_trace(path, records: List[Dict[str, Any]]) -> int:
    """Append trace records to a JSONL file, torn-write safe.

    Same seal-the-tail discipline as ``benchmarks/store.py``: if a
    crash-interrupted writer left a truncated trailing line, a newline
    seals it off before the new rows are written, so concurrent sweep
    workers appending trial traces can never fuse rows.  Returns the
    number of records written.
    """
    if not records:
        return 0
    path = Path(path)
    needs_newline = False
    if path.exists() and path.stat().st_size:
        with path.open("rb") as fh:
            fh.seek(-1, 2)
            needs_newline = fh.read(1) != b"\n"
    with path.open("a") as fh:
        if needs_newline:
            fh.write("\n")
        for record in records:
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return len(records)


def load_trace(path) -> List[Dict[str, Any]]:
    """All records of a trace JSONL file (empty list for a missing file).

    Undecodable lines — the torn tail of a killed writer — are skipped
    with a warning instead of sinking the load, mirroring
    ``store.load_history``.
    """
    path = Path(path)
    if not path.exists():
        return []
    records = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                print(
                    f"trace: skipping corrupt line {lineno} of {path}",
                    file=sys.stderr,
                )
    return records
