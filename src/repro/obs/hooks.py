"""Tracing as a :class:`~repro.local.network.RoundHooks` adapter.

:class:`TracingHooks` turns any hook-based executor run — the reference
:func:`~repro.local.network.run_local` or the batched
:class:`~repro.local.engine.CSREngine` — into a traced run without touching
the executors: it wraps an optional *inner* hooks object (the scenario
layer's :class:`~repro.scenarios.base.PerturbationHooks`, say), delegates
every decision to it, and records one :meth:`Tracer.round` record per
executed round carrying the active-set size, the messages delivered and
dropped this round, and the round's wall time.

The bit-identity contract survives wrapping because the ``deliver``
*decision* is exactly the inner hooks' (or True with no inner hooks) —
still a pure function of ``(round_no, sender, port)``; the tracer only
counts outcomes, and both executors consult ``deliver`` once per outgoing
message.  Note the per-round ``delivered``/``dropped`` counts reflect the
executor's message enumeration (the engine's broadcast fast path and the
reference's dict loop enumerate the same messages), while the dense
kernels' mask-based records omit them — cross-backend trace equivalence is
asserted on rounds, active-set sizes and violations (see
``tests/obs/test_trace_equivalence.py``).
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.local.network import NodeView, RoundHooks

__all__ = ["TracingHooks"]


class TracingHooks(RoundHooks):
    """Wrap ``inner`` hooks (may be None) and emit one round record each round."""

    def __init__(self, tracer, inner: Optional[RoundHooks] = None) -> None:
        self.tracer = tracer
        self.inner = inner
        self._delivered = 0
        self._dropped = 0
        self._round_start = 0.0

    def before_round(self, round_no: int, views: List[NodeView]) -> None:
        self._round_start = time.perf_counter()
        self._delivered = 0
        self._dropped = 0
        if self.inner is not None:
            self.inner.before_round(round_no, views)

    def deliver(self, round_no: int, sender: int, port: int) -> bool:
        # The decision is the inner hooks' own (pure in (round_no, sender,
        # port)); counting it does not perturb any executor state.
        ok = True if self.inner is None else self.inner.deliver(round_no, sender, port)
        if ok:
            self._delivered += 1
        else:
            self._dropped += 1
        return ok

    def transform(self, round_no: int, sender: int, port: int, message):
        if self.inner is None:
            return message
        return self.inner.transform(round_no, sender, port, message)

    def after_round(self, round_no: int, views: List[NodeView]) -> None:
        if self.inner is not None:
            self.inner.after_round(round_no, views)
        self.tracer.round(
            round_no,
            active=sum(1 for v in views if not v.halted),
            delivered=self._delivered,
            dropped=self._dropped,
            seconds=time.perf_counter() - self._round_start,
        )
