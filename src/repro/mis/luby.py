"""Luby's randomized maximal independent set, run in the LOCAL simulator.

Section 4.2's MIS pipeline needs an MIS routine for its low-degree endgame
(the paper cites the [BEK14b] ``O(∆ + log* n)`` algorithm).  We provide the
classic Luby algorithm, a genuinely distributed O(log n)-round (w.h.p.)
routine executed by the synchronous simulator, plus a sequential greedy
baseline used for verification.

Luby round structure (the "random priority" variant): every active node
draws a random priority; a node joins the MIS if its priority beats all
active neighbors'; MIS nodes and their neighbors deactivate.  Each phase
takes 2 communication rounds (exchange priorities, announce joins).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.local.ledger import RoundLedger
from repro.local.network import LocalAlgorithm, Network, NodeView, run_local
from repro.utils.validation import require

__all__ = ["LubyMIS", "luby_mis", "is_mis"]


class LubyMIS(LocalAlgorithm):
    """The per-node Luby algorithm for the synchronous simulator."""

    def init(self, view: NodeView) -> None:
        view.state["active"] = True
        view.state["in_mis"] = False
        view.state["neighbor_active"] = {p: True for p in range(view.degree)}
        if view.degree == 0:
            view.state["in_mis"] = True
            view.output = True
            view.halted = True

    def send(self, view: NodeView, round_no: int) -> Dict[int, object]:
        if not view.state["active"]:
            return {}
        if round_no % 2 == 1:  # priority exchange
            view.state["priority"] = (view.rng.random(), view.uid)
            return {
                p: ("prio", view.state["priority"])
                for p in range(view.degree)
                if view.state["neighbor_active"][p]
            }
        # announcement round
        msg = (
            ("join",)
            if view.state.get("joining")
            else ("stay",)
        )
        return {
            p: msg for p in range(view.degree) if view.state["neighbor_active"][p]
        }

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, object]) -> None:
        if not view.state["active"]:
            return
        if round_no % 2 == 1:
            prios = [m[1] for m in inbox.values() if m[0] == "prio"]
            view.state["joining"] = all(view.state["priority"] > q for q in prios)
            return
        if view.state.get("joining"):
            view.state["active"] = False
            view.state["in_mis"] = True
            view.output = True
            view.halted = True
            return
        neighbor_joined = any(m[0] == "join" for m in inbox.values())
        if neighbor_joined:
            view.state["active"] = False
            view.output = False
            view.halted = True
            return
        # Mark neighbors that fell silent (they decided) as inactive.
        for p in range(view.degree):
            if view.state["neighbor_active"][p] and p not in inbox:
                view.state["neighbor_active"][p] = False


def luby_mis(
    adjacency: Sequence[Sequence[int]],
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    max_rounds: int = 10_000,
    label: str = "luby-mis",
) -> Tuple[Set[int], int]:
    """Run Luby's MIS; returns (MIS node set, simulated rounds)."""
    net = Network(adjacency)
    result = run_local(net, LubyMIS(), max_rounds=max_rounds, seed=seed)
    require(result.completed, "Luby MIS did not terminate within the round cap")
    mis = {i for i, v in enumerate(result.views) if v.state.get("in_mis")}
    if ledger is not None:
        ledger.charge_simulated(result.rounds, label)
    return mis, result.rounds


def is_mis(adjacency: Sequence[Sequence[int]], mis: Set[int]) -> bool:
    """Verify independence and maximality (domination)."""
    n = len(adjacency)
    for v in mis:
        if any(w in mis for w in adjacency[v]):
            return False  # not independent
    for v in range(n):
        if v not in mis and not any(w in mis for w in adjacency[v]):
            return False  # not maximal
    return True
