"""Luby's randomized maximal independent set, run in the LOCAL simulator.

Section 4.2's MIS pipeline needs an MIS routine for its low-degree endgame
(the paper cites the [BEK14b] ``O(∆ + log* n)`` algorithm).  We provide the
classic Luby algorithm, a genuinely distributed O(log n)-round (w.h.p.)
routine executed by the synchronous simulator, plus a sequential greedy
baseline used for verification.

Luby round structure (the "random priority" variant): every active node
draws a random priority; a node joins the MIS if its priority beats all
active neighbors'; MIS nodes and their neighbors deactivate.  Each phase
takes 2 communication rounds (exchange priorities, announce joins).

Both rounds of a phase send one message identical on all ports, so the
algorithm declares them via :meth:`LocalAlgorithm.broadcast` and the batched
engine (:func:`repro.local.engine.run_local_fast`) delivers them on its CSR
fast path.  Messages to already-decided neighbors are dropped unread (a
halted node's inbox is never consumed), which is exactly the reference
semantics; an active node hears precisely its still-active neighbors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.local.ledger import RoundLedger
from repro.local.network import LocalAlgorithm, Network, NodeView
from repro.local.engine import CSREngine, run_local_fast
from repro.utils.validation import require

__all__ = ["LubyMIS", "luby_mis", "is_mis"]


class LubyMIS(LocalAlgorithm):
    """The per-node Luby algorithm for the synchronous simulator."""

    def init(self, view: NodeView) -> None:
        view.state["active"] = True
        view.state["in_mis"] = False
        if view.degree == 0:
            view.state["in_mis"] = True
            view.output = True
            view.halted = True

    def broadcast(self, view: NodeView, round_no: int) -> object:
        if round_no % 2 == 1:  # priority exchange
            priority = (view.rng.random(), view.uid)
            view.state["priority"] = priority
            return ("prio", priority)
        # announcement round
        return ("join",) if view.state.get("joining") else ("stay",)

    def send(self, view: NodeView, round_no: int) -> Dict[int, object]:
        # Fallback for runners that ignore the broadcast declaration.
        msg = self.broadcast(view, round_no)
        return {p: msg for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, object]) -> None:
        if round_no % 2 == 1:
            priority = view.state["priority"]
            joining = True
            for m in inbox.values():
                if m[0] == "prio" and priority <= m[1]:
                    joining = False
                    break
            view.state["joining"] = joining
            return
        if view.state.get("joining"):
            view.state["active"] = False
            view.state["in_mis"] = True
            view.output = True
            view.halted = True
            return
        for m in inbox.values():
            if m[0] == "join":
                view.state["active"] = False
                view.output = False
                view.halted = True
                return


def luby_mis(
    adjacency: Sequence[Sequence[int]],
    seed: int = 0,
    ledger: Optional[RoundLedger] = None,
    max_rounds: int = 10_000,
    label: str = "luby-mis",
    method: str = "engine",
    coins="philox",
    engine=None,
    hooks=None,
    faults=None,
    shards: Optional[int] = None,
    executor=None,
    recover: bool = False,
) -> Tuple[Set[int], int]:
    """Run Luby's MIS; returns (MIS node set, simulated rounds).

    ``method="engine"`` (default) executes on the batched CSR engine, which
    is bit-identical to the reference :func:`repro.local.network.run_local`
    for a fixed seed.  ``method="dense"`` executes the vectorized numpy
    kernel (:func:`repro.local.dense.luby_mis_dense`): with
    ``coins="replay"`` it reproduces the engine's outputs bit-for-bit, with
    the default counter-based ``coins="philox"`` it is
    distribution-identical and O(1)-setup — the mode for n >= 10^5.  Pass a
    prebuilt ``engine`` (:class:`~repro.local.engine.CSREngine` over the
    same adjacency) to amortize CSR packing across calls.

    A faulty environment (see :mod:`repro.scenarios`) plugs in through
    ``hooks`` (a :class:`~repro.local.network.RoundHooks`, engine method)
    or ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`, dense
    method); under crash faults the MIS of the survivors is returned.
    ``recover=True`` (engine and dense methods) appends the
    self-stabilizing detect-and-repair tail
    (:func:`~repro.scenarios.recovery.luby_repair`) under the same fault
    schedule: the returned set is then the *repaired* survivors' MIS and
    the round count includes the repair rounds.

    ``method="dense-batched"`` solves a whole *batch* of seeds in one
    kernel call: pass a sequence of seeds as ``seed`` and get back a list
    of ``(mis, rounds)`` pairs, one per seed, each bit-identical to a
    ``method="dense", coins="keyed"`` run of that seed
    (:func:`repro.local.dense.luby_mis_batched`).  The ledger is charged
    per trial.

    ``method="dense-sharded"`` partitions the CSR arrays into ``shards``
    node-range shards and runs the rounds shard-local across a persistent
    process pool with per-round halo exchange
    (:func:`repro.local.sharded.luby_mis_sharded`) — bit-identical per
    trial to ``method="dense", coins="keyed"`` (so ``coins`` must be
    ``"keyed"`` or left at its default).  ``seed`` may be an int (one
    trial) or a sequence of seeds (a batch run on hot shard workers,
    returning a list like ``dense-batched``); pass ``executor`` (a live
    :class:`~repro.local.sharded.ShardedExecutor`) to amortize
    partitioning and worker spin-up across calls.
    """
    require(
        method in ("engine", "dense", "dense-batched", "dense-sharded"),
        f"unknown method {method!r}",
    )
    require(
        not recover or method in ("engine", "dense"),
        "recover=True requires method 'engine' or 'dense'",
    )
    if method == "dense-sharded":
        from repro.local.sharded import ShardedExecutor, luby_mis_sharded_batch

        require(
            coins in ("philox", "keyed"),
            f"dense-sharded runs keyed coins only, got coins={coins!r}",
        )
        seeds = [seed] if isinstance(seed, int) else list(seed)
        if executor is not None:
            results = luby_mis_sharded_batch(
                executor, seeds, max_rounds=max_rounds, faults=faults
            )
        else:
            if engine is None:
                engine = CSREngine(Network(adjacency))
            with ShardedExecutor(engine, shards) as ex:
                results = luby_mis_sharded_batch(
                    ex, seeds, max_rounds=max_rounds, faults=faults
                )
        out: List[Tuple[Set[int], int]] = []
        for result in results:
            require(
                result.completed, "Luby MIS did not terminate within the round cap"
            )
            if ledger is not None:
                ledger.charge_simulated(result.rounds, label)
            out.append(
                ({int(i) for i in result.in_mis.nonzero()[0]}, result.rounds)
            )
        return out[0] if isinstance(seed, int) else out
    if method == "dense-batched":
        from repro.local.dense import luby_mis_batched

        if engine is None:
            engine = CSREngine(Network(adjacency))
        seeds = list(seed)
        batch = luby_mis_batched(
            engine, seeds, coins=coins, max_rounds=max_rounds, faults=faults
        )
        require(
            bool(batch.completed.all()),
            "Luby MIS did not terminate within the round cap",
        )
        out: List[Tuple[Set[int], int]] = []
        for t in range(len(seeds)):
            mis = {int(i) for i in batch.in_mis[t].nonzero()[0]}
            rounds_t = int(batch.rounds[t])
            if ledger is not None:
                ledger.charge_simulated(rounds_t, label)
            out.append((mis, rounds_t))
        return out
    if method == "dense":
        from repro.local.dense import luby_mis_dense

        if engine is None:
            engine = CSREngine(Network(adjacency))
        result = luby_mis_dense(
            engine, seed=seed, coins=coins, max_rounds=max_rounds, faults=faults
        )
        require(result.completed, "Luby MIS did not terminate within the round cap")
        if ledger is not None:
            ledger.charge_simulated(result.rounds, label)
        if recover:
            return _repair_mis(
                engine, faults, seed, result.in_mis.copy(), result.crashed.copy(),
                result.rounds, max_rounds, ledger, label,
            )
        mis = {int(i) for i in result.in_mis.nonzero()[0]}
        return mis, result.rounds
    if engine is None and recover:
        engine = CSREngine(Network(adjacency))
    if engine is not None:
        result = engine.run(LubyMIS(), max_rounds=max_rounds, seed=seed, hooks=hooks)
    else:
        result = run_local_fast(
            Network(adjacency), LubyMIS(), max_rounds=max_rounds, seed=seed, hooks=hooks
        )
    require(result.completed, "Luby MIS did not terminate within the round cap")
    if ledger is not None:
        ledger.charge_simulated(result.rounds, label)
    if recover:
        import numpy as np

        from repro.scenarios.masks import DenseFaults
        from repro.scenarios.recovery import bound_stack

        bound = bound_stack(hooks=hooks)
        in_mis = np.array([bool(v.state.get("in_mis")) for v in result.views])
        crashed = np.array([bool(v.state.get("crashed")) for v in result.views])
        repair_faults = DenseFaults(engine, bound) if bound else None
        return _repair_mis(
            engine, repair_faults, seed, in_mis, crashed, result.rounds,
            max_rounds, ledger, label,
        )
    mis = {i for i, v in enumerate(result.views) if v.state.get("in_mis")}
    return mis, result.rounds


def _repair_mis(engine, faults, seed, in_mis, crashed, rounds, max_rounds, ledger, label):
    """Shared ``recover=True`` tail: repair in place, return survivors' MIS."""
    import numpy as np

    from repro.scenarios.recovery import luby_repair

    rep = luby_repair(
        engine, faults, seed, in_mis, crashed,
        start_round=rounds + 1, max_rounds=max_rounds,
    )
    if ledger is not None and rep.repair_rounds:
        ledger.charge_simulated(rep.repair_rounds, label + "-repair")
    mis = {int(i) for i in np.flatnonzero(in_mis & ~crashed)}
    return mis, rep.last_round


def is_mis(adjacency: Sequence[Sequence[int]], mis: Set[int]) -> bool:
    """Verify independence and maximality (domination)."""
    n = len(adjacency)
    for v in mis:
        if any(w in mis for w in adjacency[v]):
            return False  # not independent
    for v in range(n):
        if v not in mis and not any(w in mis for w in adjacency[v]):
            return False  # not maximal
    return True
