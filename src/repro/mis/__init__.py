"""Maximal independent set algorithms (Luby + greedy baselines)."""

from repro.mis.greedy import greedy_mis, mis_lower_bound
from repro.mis.luby import LubyMIS, is_mis, luby_mis

__all__ = ["greedy_mis", "mis_lower_bound", "LubyMIS", "is_mis", "luby_mis"]
