"""Sequential greedy MIS baseline (ground truth for verification).

Also provides the size bound of Lemma 4.3: every MIS of a graph with maximum
degree ∆ has at least ``n / (∆ + 1)`` nodes — used by the Section 4.2
analysis and checked by the property tests.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set

from repro.utils.validation import require

__all__ = ["greedy_mis", "mis_lower_bound"]


def greedy_mis(
    adjacency: Sequence[Sequence[int]], order: Optional[Sequence[int]] = None
) -> Set[int]:
    """Greedy MIS: scan nodes in ``order``; add if no earlier neighbor added."""
    n = len(adjacency)
    if order is None:
        order = range(n)
    mis: Set[int] = set()
    blocked = [False] * n
    for v in order:
        if not blocked[v]:
            mis.add(v)
            blocked[v] = True
            for w in adjacency[v]:
                blocked[w] = True
    return mis


def mis_lower_bound(n: int, max_degree: int) -> float:
    """Lemma 4.3: any MIS has size at least ``n / (∆ + 1)``."""
    require(n >= 0 and max_degree >= 0, "n and max_degree must be >= 0")
    return n / (max_degree + 1)
