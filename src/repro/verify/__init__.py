"""Exact certification oracle for scenario contracts and recovery states.

:mod:`repro.verify.certify` re-derives every scenario contract from the
definitions — bitmask-integer brute force on small instances (n <= 64) —
and cross-checks the verdicts :mod:`repro.scenarios.contracts` produced
for real runs, including the self-stabilizing recovery layer's claim that
a recovered end state has zero violations.
"""

from repro.verify.certify import (
    CERTIFY_MAX_NODES,
    certify_all,
    certify_scenario,
    exact_mis_violations,
    exact_splitting_violations,
    exact_surviving_sinks,
    min_splitting_violations,
    sinkless_feasible,
)

__all__ = [
    "CERTIFY_MAX_NODES",
    "certify_scenario",
    "certify_all",
    "exact_mis_violations",
    "exact_surviving_sinks",
    "exact_splitting_violations",
    "sinkless_feasible",
    "min_splitting_violations",
]
