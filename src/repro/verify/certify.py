"""Exact contract certification: independent brute-force oracles (n <= 64).

The scenario layer's verifiers (:mod:`repro.scenarios.contracts`) are
port-loop implementations sharing conventions with the runners they judge;
the recovery layer (:mod:`repro.scenarios.recovery`) additionally *claims*
that a recovered end state has zero violations.  This module re-derives
every contract from its definition with a different computational
substrate — **bitmask integers**: each node's surviving neighborhood is a
Python int bitset, violation counts are popcounts, and bound checks run in
exact :class:`~fractions.Fraction` arithmetic — so a bug in the contracts
and a bug in the oracle would have to agree to go unnoticed.

Three layers:

* exact checkers — :func:`exact_mis_violations`,
  :func:`exact_surviving_sinks`, :func:`exact_splitting_violations` —
  independently recompute each contract's verdict (multigraphs from
  :class:`~repro.scenarios.adversary.MultiEdgeLift` take a
  multiplicity-weighted path, since bitsets collapse parallel edges);
* existence oracles — :func:`sinkless_feasible` (DPLL-style backtracking
  with unit propagation: does *any* orientation of the surviving graph
  avoid all accountable sinks?) and :func:`min_splitting_violations`
  (branch-and-bound over colorings: the best violation count *any*
  partition could achieve) — which bound what recovery can promise;
* the driver — :func:`certify_scenario` runs a scenario trial with
  ``return_state=True`` and cross-checks the recorded metrics against the
  oracle verdicts, :func:`certify_all` sweeps every registered scenario
  across its backends (the property suite run in CI tier 1).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.bipartite.instance import RED
from repro.utils.validation import require

__all__ = [
    "CERTIFY_MAX_NODES",
    "exact_mis_violations",
    "exact_surviving_sinks",
    "exact_splitting_violations",
    "sinkless_feasible",
    "min_splitting_violations",
    "certify_scenario",
    "certify_all",
]

#: The oracle's instance-size gate: brute force is the point, so keep it
#: where brute force is instant.
CERTIFY_MAX_NODES = 64


def _alive_bits(alive: Sequence[bool]) -> int:
    bits = 0
    for i, a in enumerate(alive):
        if a:
            bits |= 1 << i
    return bits


def _surviving_views(adjacency, alive, edge_ok):
    """Per-node surviving neighborhoods as ``(bitsets, weights, simple)``.

    ``bitsets[i]`` has bit ``j`` set iff some port of ``i`` reaches an
    alive ``j`` over a surviving edge (the view the contracts evaluate
    from ``i``'s side); ``weights[i][j]`` counts the parallel surviving
    ports behind that bit.  ``simple`` is False when any weight exceeds 1
    — multiplicity then matters for edge/neighbor *counts* and the
    checkers switch to the weighted path.
    """
    n = len(adjacency)
    bitsets = [0] * n
    weights: List[Dict[int, int]] = [dict() for _ in range(n)]
    simple = True
    for i in range(n):
        if not alive[i]:
            continue
        w = weights[i]
        for p, j in enumerate(adjacency[i]):
            if not alive[j]:
                continue
            if edge_ok is not None and not edge_ok(i, p):
                continue
            bitsets[i] |= 1 << j
            w[j] = w.get(j, 0) + 1
            if w[j] > 1:
                simple = False
    return bitsets, weights, simple


def exact_mis_violations(
    adjacency,
    mis: Set[int],
    alive: Optional[Sequence[bool]] = None,
    edge_ok=None,
) -> Tuple[int, int]:
    """``(independence, domination)`` recomputed with bitset arithmetic.

    Matches the counting convention of
    :func:`repro.scenarios.contracts.mis_violations`: independence counts
    surviving MIS-MIS edges once from the lower endpoint's side (with
    multiplicity on multigraphs), domination counts alive non-MIS nodes
    whose surviving view contains no MIS node.
    """
    n = len(adjacency)
    require(n <= CERTIFY_MAX_NODES, f"oracle instances are capped at {CERTIFY_MAX_NODES} nodes")
    if alive is None:
        alive = [True] * n
    views, weights, simple = _surviving_views(adjacency, alive, edge_ok)
    mis_bits = 0
    for v in mis:
        mis_bits |= 1 << v
    independence = 0
    domination = 0
    for i in range(n):
        if not alive[i]:
            continue
        if i in mis:
            higher = views[i] & mis_bits & ~((1 << (i + 1)) - 1)
            if simple:
                independence += higher.bit_count()
            else:
                while higher:
                    j = (higher & -higher).bit_length() - 1
                    independence += weights[i][j]
                    higher &= higher - 1
        elif not (views[i] & mis_bits):
            domination += 1
    return independence, domination


def exact_surviving_sinks(
    adjacency,
    orientation: Dict[Tuple[int, int], bool],
    alive: Sequence[bool],
    min_degree: int = 1,
) -> List[int]:
    """Accountable alive sinks recomputed with bitset arithmetic.

    Matches :func:`repro.scenarios.contracts.surviving_sinks`:
    accountability uses the alive-neighbor count of the *full* adjacency,
    outgoing edges only help when both endpoints are alive.
    """
    n = len(adjacency)
    require(n <= CERTIFY_MAX_NODES, f"oracle instances are capped at {CERTIFY_MAX_NODES} nodes")
    alive_bits = _alive_bits(alive)
    out_bits = [0] * n
    for (u, v) in orientation:
        out_bits[u] |= 1 << v
    bad: List[int] = []
    for i in range(n):
        if not alive[i]:
            continue
        nbr_bits = 0
        for j in adjacency[i]:
            nbr_bits |= 1 << j
        if (nbr_bits & alive_bits).bit_count() < min_degree:
            continue
        if not (out_bits[i] & alive_bits):
            bad.append(i)
    return bad


def _exact_bounds(spec, degree: int) -> Tuple[Fraction, Fraction]:
    """The spec's red-count window in exact rational arithmetic."""
    eps = Fraction(spec.eps)
    return (Fraction(1, 2) - eps) * degree, (Fraction(1, 2) + eps) * degree


def exact_splitting_violations(
    adjacency,
    partition: Sequence,
    spec,
    alive: Optional[Sequence[bool]] = None,
    edge_ok=None,
) -> List[int]:
    """Constrained nodes outside the spec window, recomputed exactly.

    Neighbor counts are popcounts over surviving-view bitsets (weighted on
    multigraphs) and the window check runs in :class:`Fraction` arithmetic
    — no float rounding between ``(1/2 ± eps) · deg`` and the integer red
    count.
    """
    n = len(adjacency)
    require(n <= CERTIFY_MAX_NODES, f"oracle instances are capped at {CERTIFY_MAX_NODES} nodes")
    if alive is None:
        alive = [True] * n
    views, weights, simple = _surviving_views(adjacency, alive, edge_ok)
    red_bits = 0
    for j in range(n):
        if alive[j] and partition[j] == RED:
            red_bits |= 1 << j
    bad: List[int] = []
    for i in range(n):
        if not alive[i]:
            continue
        if simple:
            degree = views[i].bit_count()
            red = (views[i] & red_bits).bit_count()
        else:
            degree = sum(weights[i].values())
            red = sum(c for j, c in weights[i].items() if red_bits >> j & 1)
        if not spec.constrains(degree):
            continue
        lo, hi = _exact_bounds(spec, degree)
        if not (lo <= red <= hi):
            bad.append(i)
    return bad


def sinkless_feasible(
    adjacency,
    alive: Optional[Sequence[bool]] = None,
    min_degree: int = 1,
) -> bool:
    """Whether *any* orientation of the surviving graph has zero
    accountable sinks — DPLL-style backtracking with unit propagation.

    Each accountable node must claim one of its surviving edges as
    outgoing, and an edge satisfies at most one endpoint; the search
    branches on the unsatisfied node with the fewest free edges, forcing
    single-choice nodes first (unit propagation) and backtracking on
    conflicts.  A recovered sinkless state is a feasibility *witness*, so
    ``recovered`` must imply ``sinkless_feasible(...)`` — the consistency
    check :func:`certify_scenario` applies.
    """
    n = len(adjacency)
    require(n <= CERTIFY_MAX_NODES, f"oracle instances are capped at {CERTIFY_MAX_NODES} nodes")
    if alive is None:
        alive = [True] * n
    # Surviving edge list (parallel edges kept: each is a separate claim).
    edges: List[Tuple[int, int]] = []
    incident: List[List[int]] = [[] for _ in range(n)]
    for i in range(n):
        if not alive[i]:
            continue
        for j in adjacency[i]:
            if i < j and alive[j]:
                incident[i].append(len(edges))
                incident[j].append(len(edges))
                edges.append((i, j))
    accountable = [
        alive[i] and len(incident[i]) >= min_degree for i in range(n)
    ]
    taken = [False] * len(edges)
    satisfied = [not accountable[i] for i in range(n)]

    def free_edges(i: int) -> List[int]:
        return [e for e in incident[i] if not taken[e]]

    def search(pending: List[int]) -> bool:
        pending = [i for i in pending if not satisfied[i]]
        if not pending:
            return True
        # Unit propagation: a node with one free edge has no choice; a
        # node with none is a conflict.
        pending.sort(key=lambda i: len(free_edges(i)))
        node = pending[0]
        choices = free_edges(node)
        if not choices:
            return False
        for e in choices:
            taken[e] = True
            satisfied[node] = True
            if search(pending[1:]):
                return True
            taken[e] = False
            satisfied[node] = False
        return False

    return search([i for i in range(n) if accountable[i]])


def min_splitting_violations(
    adjacency,
    spec,
    alive: Optional[Sequence[bool]] = None,
    edge_ok=None,
    max_free: int = 20,
) -> int:
    """The minimum violation count any red/blue partition can achieve —
    branch-and-bound over the alive nodes' colorings.

    Nodes are colored in index order; a constrained node becomes a
    *certain* violation as soon as no completion can land it in the spec
    window (reds already exceed ``hi``, or reds plus every undecided
    neighbor fall short of ``lo``), and branches whose certain count
    reaches the incumbent are pruned.  Exponential by design — ``max_free``
    caps the number of alive nodes (default 20).  This bounds what the
    recovery layer can promise: if the optimum is positive, no repair
    schedule can reach zero violations on that instance.
    """
    n = len(adjacency)
    require(n <= CERTIFY_MAX_NODES, f"oracle instances are capped at {CERTIFY_MAX_NODES} nodes")
    if alive is None:
        alive = [True] * n
    free = [i for i in range(n) if alive[i]]
    require(
        len(free) <= max_free,
        f"branch-and-bound is capped at {max_free} alive nodes, got {len(free)}",
    )
    views, weights, simple = _surviving_views(adjacency, alive, edge_ok)

    def neighbor_count(i: int, member_bits: int) -> int:
        if simple:
            return (views[i] & member_bits).bit_count()
        return sum(c for j, c in weights[i].items() if member_bits >> j & 1)

    degrees = {
        i: (views[i].bit_count() if simple else sum(weights[i].values()))
        for i in free
    }
    constrained = [i for i in free if spec.constrains(degrees[i])]
    bounds = {i: _exact_bounds(spec, degrees[i]) for i in constrained}
    best = len(constrained) + 1

    def certain_violations(red_bits: int, undecided_bits: int) -> int:
        count = 0
        for i in constrained:
            red = neighbor_count(i, red_bits)
            open_n = neighbor_count(i, undecided_bits)
            lo, hi = bounds[i]
            if red > hi or red + open_n < lo:
                count += 1
        return count

    def search(idx: int, red_bits: int, undecided_bits: int) -> None:
        nonlocal best
        lower = certain_violations(red_bits, undecided_bits)
        if lower >= best:
            return
        if idx == len(free):
            best = lower
            return
        node_bit = 1 << free[idx]
        search(idx + 1, red_bits | node_bit, undecided_bits & ~node_bit)
        search(idx + 1, red_bits, undecided_bits & ~node_bit)

    search(0, 0, _alive_bits(alive))
    return best


# ---------------------------------------------------------------------------
# Scenario-level certification.
# ---------------------------------------------------------------------------


def certify_scenario(
    scenario,
    n: int = 48,
    seed: int = 0,
    backend: str = "engine",
    fault_mode: str = "replay",
    recover: bool = True,
    graph_seed: int = 1,
    coins: str = "replay",
    strict: bool = True,
) -> Dict[str, Union[int, str, List[str]]]:
    """Run one scenario trial and certify its contract verdicts exactly.

    Executes :func:`~repro.scenarios.run.run_scenario` with
    ``return_state=True`` on a small instance, recomputes the contract
    with the matching exact checker, and cross-checks:

    * the recorded ``violations`` (and the Luby split counts) equal the
      oracle's count on the end state;
    * a ``recovered`` run on a settling fault schedule has **zero** exact
      violations — the recovery layer's headline claim (never-settling
      channels only promise best-effort repair and skip this check);
    * a recovered sinkless state is consistent with
      :func:`sinkless_feasible` (the state is a witness, so the DPLL
      oracle must agree).

    Returns a report dict (``ok``, ``mismatches``, the counts); with
    ``strict=True`` (default) any mismatch raises instead, which is how
    the tier-1 property suite consumes it.
    """
    from repro.scenarios.registry import get_scenario
    from repro.scenarios.run import run_scenario

    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    metrics, state = run_scenario(
        sc, n=n, seed=seed, graph_seed=graph_seed, backend=backend,
        coins=coins, fault_mode=fault_mode, recover=recover, return_state=True,
    )
    adjacency = state["adjacency"]
    alive = state["alive"]
    mismatches: List[str] = []

    def check(label: str, recorded, exact) -> None:
        if recorded != exact:
            mismatches.append(f"{label}: recorded {recorded} != exact {exact}")

    if state["pipeline"] == "luby":
        ind, dom = exact_mis_violations(
            adjacency, state["mis"], alive=alive, edge_ok=state["edge_ok"]
        )
        check("independence_violations", metrics["independence_violations"], ind)
        check("domination_violations", metrics["domination_violations"], dom)
        check("violations", metrics["violations"], ind + dom)
        exact_total = ind + dom
    elif state["pipeline"] == "sinkless":
        bad = exact_surviving_sinks(
            adjacency, state["orientation"], alive, state["min_degree"]
        )
        check("violations", metrics["violations"], len(bad))
        exact_total = len(bad)
        if recover and metrics.get("recovered") and exact_total == 0:
            if not sinkless_feasible(adjacency, alive, state["min_degree"]):
                mismatches.append(
                    "recovered sinkless state contradicts the feasibility oracle"
                )
    else:
        bad = exact_splitting_violations(
            adjacency, state["partition"], state["spec"], alive=alive,
            edge_ok=state["edge_ok"],
        )
        check("violations", metrics["violations"], len(bad))
        exact_total = len(bad)
    # The zero-violation guarantee only holds for settling fault schedules
    # — a never-settling channel (churn, iid drops) can hide a violation
    # from the repair probe's clean round, so recovery there is best
    # effort and only the exact-vs-recorded checks above apply.
    if recover and metrics.get("recovered") and state.get("settles", True):
        check("recovered implies zero violations", 0, exact_total)

    report: Dict[str, Union[int, str, List[str]]] = {
        "scenario": sc.name,
        "backend": backend,
        "fault_mode": fault_mode,
        "violations": metrics["violations"],
        "exact_violations": exact_total,
        "recovered": int(metrics.get("recovered", 0)),
        "repair_rounds": int(metrics.get("repair_rounds", 0)),
        "mismatches": mismatches,
        "ok": int(not mismatches),
    }
    require(
        not (strict and mismatches),
        f"certification failed for {sc.name}@{backend}: {mismatches}",
    )
    return report


def certify_all(
    n: int = 48,
    seed: int = 0,
    fault_mode: str = "replay",
    recover: bool = True,
    strict: bool = True,
) -> List[Dict[str, Union[int, str, List[str]]]]:
    """Certify every registered scenario on each of its backends."""
    from repro.scenarios.registry import all_scenarios

    return [
        certify_scenario(
            sc, n=n, seed=seed, backend=backend, fault_mode=fault_mode,
            recover=recover, strict=strict,
        )
        for sc in all_scenarios()
        for backend in sc.backends
    ]
