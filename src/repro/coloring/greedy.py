"""(d+1)-coloring baselines for general graphs.

Section 4.1 uses, as a black box, the [FHK16] algorithm that properly colors
a graph of maximum degree ``d`` with ``d + 1`` colors in
``Õ(√d) + O(log* n)`` rounds.  We provide the coloring via first-fit (which
also needs at most ``d + 1`` colors) and charge the cited bound, so the
Lemma 4.1 pipeline's round accounting follows the paper.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

from repro.local.complexity import log_star
from repro.local.ledger import RoundLedger
from repro.coloring.distance import greedy_coloring
from repro.utils.validation import require

__all__ = ["fhk_coloring_rounds", "d_plus_one_coloring", "is_proper_coloring"]


def fhk_coloring_rounds(max_degree: int, n: int) -> float:
    """[FHK16] round bound ``Õ(√d) + O(log* n)`` with constants 1.

    The Õ hides a ``polylog d`` factor; we charge ``√d · (1 + log₂(d+2))``
    plus ``log* n``.
    """
    require(max_degree >= 0, "max_degree must be >= 0")
    d = max(1, max_degree)
    return math.sqrt(d) * (1.0 + math.log2(d + 2)) + log_star(max(2, n))


def d_plus_one_coloring(
    adjacency: Sequence[Sequence[int]],
    ledger: Optional[RoundLedger] = None,
    order: Optional[Sequence[int]] = None,
    label: str = "(d+1)-coloring",
) -> Tuple[List[int], int]:
    """Proper coloring with at most ``Δ + 1`` colors; charges [FHK16] rounds."""
    colors = greedy_coloring(adjacency, order=order)
    num_colors = (max(colors) + 1) if colors else 0
    if ledger is not None:
        max_deg = max((len(set(nbrs)) for nbrs in adjacency), default=0)
        ledger.charge(fhk_coloring_rounds(max_deg, len(adjacency)), label)
    return colors, num_colors


def is_proper_coloring(adjacency: Sequence[Sequence[int]], colors: Sequence[int]) -> bool:
    """Verify that no edge is monochromatic and every node is colored."""
    n = len(adjacency)
    if len(colors) != n or any(c is None or c < 0 for c in colors):
        return False
    for v in range(n):
        for w in adjacency[v]:
            if w != v and colors[w] == colors[v]:
                return False
    return True
