"""Vertex coloring baselines and distance colorings."""

from repro.coloring.distance import distance_coloring, greedy_coloring, power_graph
from repro.coloring.greedy import d_plus_one_coloring, fhk_coloring_rounds, is_proper_coloring

__all__ = [
    "power_graph",
    "greedy_coloring",
    "distance_coloring",
    "d_plus_one_coloring",
    "fhk_coloring_rounds",
    "is_proper_coloring",
]
