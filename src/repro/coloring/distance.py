"""Power graphs and distance-k colorings.

Lemma 2.1 colors the square ``B²`` of the bipartite graph with ``O(∆·r)``
colors to drive the SLOCAL→LOCAL conversion; Theorem 5.2 needs a coloring of
``B⁴`` with ``O(∆²r²)`` colors.  The cited tool is the [BEK14a] algorithm,
which colors a graph of maximum degree ``D`` with ``O(D)`` colors in
``O(D + log* n)`` rounds.  We implement the coloring itself greedily in ID
order (which also yields at most ``D + 1`` colors) and charge the cited round
bound through :func:`repro.local.complexity.power_graph_coloring_rounds`.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Set, Tuple

from repro.local.complexity import power_graph_coloring_rounds
from repro.local.ledger import RoundLedger
from repro.utils.validation import require

__all__ = ["power_graph", "greedy_coloring", "distance_coloring"]


def power_graph(adjacency: Sequence[Sequence[int]], k: int) -> List[List[int]]:
    """Adjacency of the k-th power graph (edges between nodes at distance ≤ k).

    Parallel edges in the input collapse; the result is simple.
    """
    require(k >= 1, f"k must be >= 1, got {k}")
    n = len(adjacency)
    power: List[List[int]] = []
    for v in range(n):
        dist = {v: 0}
        q = deque([v])
        while q:
            x = q.popleft()
            if dist[x] == k:
                continue
            for y in adjacency[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    q.append(y)
        power.append(sorted(x for x in dist if x != v))
    return power


def greedy_coloring(
    adjacency: Sequence[Sequence[int]], order: Optional[Sequence[int]] = None
) -> List[int]:
    """First-fit coloring in ``order`` (default: index order); ≤ Δ+1 colors."""
    n = len(adjacency)
    if order is None:
        order = range(n)
    colors = [-1] * n
    for v in order:
        used: Set[int] = {colors[w] for w in adjacency[v] if colors[w] != -1}
        c = 0
        while c in used:
            c += 1
        colors[v] = c
    return colors


def distance_coloring(
    adjacency: Sequence[Sequence[int]],
    k: int,
    ledger: Optional[RoundLedger] = None,
    label: str = "power-graph-coloring",
) -> Tuple[List[int], int]:
    """Proper coloring of the k-th power graph, with [BEK14a] round charge.

    Returns ``(colors, num_colors)``.  The charge is
    ``O(Δ_P + log* n)`` where ``Δ_P`` is the power graph's maximum degree —
    e.g. ``Δ·r`` for ``B²`` as in Lemma 2.1.
    """
    pg = power_graph(adjacency, k)
    colors = greedy_coloring(pg)
    num_colors = (max(colors) + 1) if colors else 0
    if ledger is not None:
        max_deg = max((len(nbrs) for nbrs in pg), default=0)
        ledger.charge(power_graph_coloring_rounds(max_deg, len(adjacency)), label)
    return colors, num_colors
