"""SLOCAL model simulator and SLOCAL -> LOCAL conversion."""

from repro.slocal.model import BallView, SLocalAlgorithm, SLocalSimulator
from repro.slocal.conversion import run_slocal_via_coloring, verify_power_coloring

__all__ = [
    "BallView",
    "SLocalAlgorithm",
    "SLocalSimulator",
    "run_slocal_via_coloring",
    "verify_power_coloring",
]
