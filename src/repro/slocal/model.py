"""The SLOCAL model of [GKM17] and a faithful simulator for it.

In an ``SLOCAL(t)`` algorithm the nodes of a graph are processed in an
*arbitrary* (adversarial) sequential order.  Each node owns a local memory,
initially holding only its unique ID and its problem input.  When node ``v``
is processed it reads the *current* states of all nodes within distance ``t``
and then writes its output (and any auxiliary information) into its own
memory.  Crucially a node is processed exactly once and never revisits its
decision.

The paper uses the SLOCAL model as the intermediate stop of every
derandomization: a randomized 0/1-round algorithm with local checking radius
``c`` derandomizes into an SLOCAL(O(c)) algorithm ([GHK16, Thm III.1]), which
in turn runs in the LOCAL model given a coloring of the appropriate power
graph ([GHK17a, Prop. 3.2]; see :mod:`repro.slocal.conversion`).

The simulator enforces the model's information constraints: the callback
receives exactly the radius-``t`` ball around the processed node (structure +
current memories) and can write only to the processed node's memory.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.utils.validation import require

__all__ = ["SLocalAlgorithm", "BallView", "SLocalSimulator"]


@dataclass
class BallView:
    """The radius-``t`` view handed to a node when it is processed.

    ``nodes`` lists the node indices in the ball (center first, then by
    increasing distance); ``dist``, ``uid`` and ``memory`` are keyed by node
    index.  ``adjacency_in_ball`` restricts the graph to the ball, so the
    algorithm can inspect local structure (degrees, shared neighbors, ...).
    ``memory`` entries are *live references* for read purposes but writing is
    only honored for the center (the simulator copies everything else).
    """

    center: int
    radius: int
    nodes: List[int]
    dist: Dict[int, int]
    uid: Dict[int, int]
    memory: Dict[int, Dict[str, Any]]
    adjacency_in_ball: Dict[int, List[int]]


class SLocalAlgorithm(ABC):
    """An SLOCAL(t) algorithm: a per-node processing rule."""

    #: The locality radius ``t``.
    radius: int = 1

    @abstractmethod
    def process(self, view: BallView) -> Any:
        """Process the center node of ``view``; return its output.

        The implementation may also record auxiliary state in
        ``view.memory[view.center]`` — that dictionary is the node's
        persistent local memory.
        """


class SLocalSimulator:
    """Runs SLOCAL algorithms on a fixed graph.

    Parameters
    ----------
    adjacency:
        Symmetric adjacency lists of the underlying graph.
    ids:
        Unique node identifiers; defaults to indices.
    """

    def __init__(
        self, adjacency: Sequence[Sequence[int]], ids: Optional[Sequence[int]] = None
    ) -> None:
        self.adjacency: Tuple[Tuple[int, ...], ...] = tuple(tuple(a) for a in adjacency)
        n = len(self.adjacency)
        if ids is None:
            ids = list(range(n))
        require(len(ids) == n, "ids must have one entry per node")
        require(len(set(ids)) == n, "ids must be unique")
        self.ids: Tuple[int, ...] = tuple(ids)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.adjacency)

    def ball(self, center: int, radius: int) -> Tuple[List[int], Dict[int, int]]:
        """BFS ball of ``radius`` around ``center``: (nodes, distances)."""
        dist = {center: 0}
        order = [center]
        q = deque([center])
        while q:
            x = q.popleft()
            if dist[x] == radius:
                continue
            for y in self.adjacency[x]:
                if y not in dist:
                    dist[y] = dist[x] + 1
                    order.append(y)
                    q.append(y)
        return order, dist

    def run(
        self,
        algorithm: SLocalAlgorithm,
        order: Optional[Sequence[int]] = None,
        memories: Optional[List[Dict[str, Any]]] = None,
    ) -> Tuple[List[Any], List[Dict[str, Any]]]:
        """Process every node once, in ``order`` (default: index order).

        Returns ``(outputs, memories)``.  ``memories`` may be pre-seeded to
        pass per-node problem inputs (the model allows arbitrary inputs in the
        initial local memory).
        """
        n = self.n
        if order is None:
            order = list(range(n))
        require(sorted(order) == list(range(n)), "order must be a permutation of all nodes")
        if memories is None:
            memories = [dict() for _ in range(n)]
        require(len(memories) == n, "memories must have one entry per node")
        outputs: List[Any] = [None] * n
        t = algorithm.radius
        for v in order:
            nodes, dist = self.ball(v, t)
            # Copy non-center memories so illegal writes cannot leak state.
            mem_view: Dict[int, Dict[str, Any]] = {
                x: (memories[x] if x == v else dict(memories[x])) for x in nodes
            }
            ball_set = set(nodes)
            adj_in_ball = {
                x: [y for y in self.adjacency[x] if y in ball_set] for x in nodes
            }
            view = BallView(
                center=v,
                radius=t,
                nodes=nodes,
                dist=dist,
                uid={x: self.ids[x] for x in nodes},
                memory=mem_view,
                adjacency_in_ball=adj_in_ball,
            )
            outputs[v] = algorithm.process(view)
            memories[v]["output"] = outputs[v]
        return outputs, memories
