"""SLOCAL(t) → LOCAL conversion via power-graph colorings.

[GHK17a, Proposition 3.2]: given a proper ``C``-coloring of the power graph
``G^t`` (any two nodes at distance at most ``t`` receive different colors),
an SLOCAL(t) algorithm can be executed in ``O(C)`` rounds of the LOCAL model:
color classes are processed one after another, and within a class all nodes
act *simultaneously* — legal because same-class nodes are more than ``t``
apart, hence their radius-``t`` views are disjoint in the written coordinate
and their decisions cannot conflict.

Our implementation realizes the conversion semantically: it verifies the
coloring is proper on ``G^t``, then processes nodes in (color, id) order —
which produces *exactly* the same outputs as the simultaneous schedule, since
same-class nodes cannot read each other — and charges
``slocal_conversion_rounds(C, t)`` LOCAL rounds to the ledger.

This conversion is the engine behind Lemma 2.1 (weak splitting in ``O(∆·r)``
via a coloring of ``B²``), Theorem 3.2 (multicolor splitting in ``O(C)``) and
Theorem 5.2 (high-girth, via a coloring of ``B⁴``).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.local.complexity import slocal_conversion_rounds
from repro.local.ledger import RoundLedger
from repro.slocal.model import SLocalAlgorithm, SLocalSimulator
from repro.utils.validation import require

__all__ = ["verify_power_coloring", "run_slocal_via_coloring"]


def verify_power_coloring(
    adjacency: Sequence[Sequence[int]], colors: Sequence[int], radius: int
) -> bool:
    """Check that ``colors`` is proper on the ``radius``-th power graph."""
    sim = SLocalSimulator(adjacency)
    for v in range(len(adjacency)):
        nodes, dist = sim.ball(v, radius)
        for x in nodes:
            if x != v and colors[x] == colors[v]:
                return False
    return True


def run_slocal_via_coloring(
    adjacency: Sequence[Sequence[int]],
    algorithm: SLocalAlgorithm,
    colors: Sequence[int],
    ledger: Optional[RoundLedger] = None,
    memories: Optional[List[Dict[str, Any]]] = None,
    ids: Optional[Sequence[int]] = None,
    label: str = "slocal-conversion",
    verify: bool = True,
) -> Tuple[List[Any], List[Dict[str, Any]]]:
    """Execute ``algorithm`` in LOCAL given a power-graph coloring.

    Parameters
    ----------
    colors:
        A proper coloring of ``G^t`` where ``t = algorithm.radius``;
        ``C = max(colors) + 1`` determines the round charge.
    verify:
        When True (default) the coloring is checked and a ``ValueError`` is
        raised if improper — running the conversion with a broken coloring
        silently would void the model guarantee.

    Returns the same ``(outputs, memories)`` as the sequential simulator and
    charges ``O(C)`` rounds on ``ledger``.
    """
    n = len(adjacency)
    require(len(colors) == n, "colors must have one entry per node")
    t = algorithm.radius
    if verify:
        require(
            verify_power_coloring(adjacency, colors, t),
            f"coloring is not proper on the {t}-th power graph",
        )
    num_colors = (max(colors) + 1) if n else 1
    # (color, index) order is output-equivalent to the simultaneous schedule.
    order = sorted(range(n), key=lambda v: (colors[v], v))
    sim = SLocalSimulator(adjacency, ids=ids)
    outputs, memories = sim.run(algorithm, order=order, memories=memories)
    if ledger is not None:
        ledger.charge(slocal_conversion_rounds(num_colors, t), label)
    return outputs, memories
