"""Masked-array view of a perturbation stack for the dense backend.

The dense kernels (:mod:`repro.local.dense`) execute whole rounds as numpy
array ops, so faults reach them as per-round *masks* instead of per-message
hook calls: a boolean crash mask over nodes and boolean delivery masks over
CSR slots.  :class:`DenseFaults` builds those masks from the stack's
vectorized ``delivers_mask`` / ``crashes_mask`` decisions — one
counter-based hash-kernel call per dropper per round in ``"mask"`` fault
mode, the scalar-chain replay in ``"replay"`` mode — and falls back to a
per-slot sweep of the pure scalar ``delivers`` for perturbations without a
vectorized path, so any stack stays exactly equivalent to the hooked
engine (property-tested in ``tests/scenarios/test_hook_equivalence.py``
and ``tests/scenarios/test_mask_kernels.py``).

Three structural savings over the per-slot-loop implementation this
replaces:

* ``delivered_in`` is a **gather** of ``delivered_out`` through the CSR
  partner permutation (``delivered_in[k] == delivered_out[partner(k)]``,
  both sides of a slot name the same (sender, port) message) instead of a
  second O(m) sweep;
* rounds past the stack's quiet horizon (``max(quiet_after)``) reuse one
  **steady-state** mask — ``None`` for stacks that heal, the frozen
  deletion mask for :class:`~repro.scenarios.dynamic.DropEdges` — so long
  recovery tails pay zero mask cost and the per-round cache stops growing;
* never-settling stacks (``quiet_after=None``) keep a size-bounded FIFO
  cache instead of one entry per round forever.

Capability flags on the bound perturbations short-circuit the mask builds:
a stack that never crashes returns ``None`` crash masks, one that never
drops returns ``None`` delivery masks, and the kernels skip the masking
entirely — keeping the fault-free dense hot path untouched.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.local.engine import CSREngine
from repro.scenarios.base import BoundPerturbation, quiet_after

__all__ = ["SlotLayout", "DenseFaults"]


class SlotLayout:
    """Per-engine CSR slot coordinates shared by every :class:`DenseFaults`.

    ``out_sender[k]`` / ``out_port[k]`` read slot ``k`` as an *outgoing*
    message (sender = slot owner); ``partner[k]`` is the CSR slot on the
    other endpoint of slot ``k``'s edge, so a gather through it converts an
    outgoing mask into the receiving-side view.  Building these is O(m);
    cache one per engine (the scenario runner does) so mask setup
    amortizes across trial seeds.
    """

    def __init__(self, engine: CSREngine):
        import numpy as np

        offsets, dst_node, dst_port = engine.dense_arrays()
        n = engine.n
        self.n = n
        self.out_sender = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        self.out_port = (
            np.arange(offsets[-1], dtype=np.int64) - offsets[:-1][self.out_sender]
        )
        self.partner = offsets[:-1][dst_node] + dst_port


class DenseFaults:
    """Per-round crash and delivery masks over one engine's CSR layout.

    ``crashed_at(r)`` — nodes crashing at the start of round ``r`` (or
    ``None``); ``delivered_out(r)`` — per-slot mask of the slot as an
    *outgoing* message (sender = slot owner); ``delivered_in(r)`` — per-slot
    mask of the slot as the *receiving* side, computed as the partner-gather
    of ``delivered_out(r)``.  ``expired(r)`` tells a kernel the stack can
    never inject from round ``r`` on, so its loop may drop the faults
    object entirely.

    Pass a cached :class:`SlotLayout` to amortize the O(m) coordinate
    build across seeds; the fault schedule itself comes from ``bound``
    (whose fault mode was fixed at
    :func:`~repro.scenarios.base.bind_all` time).
    """

    #: FIFO cap on cached per-round masks (never-settling stacks only need
    #: a window of recent rounds: kernels query round r and r+1, plus
    #: retries of the same round).
    CACHE_MAX = 32

    def __init__(
        self,
        engine: CSREngine,
        bound: Sequence[BoundPerturbation],
        layout: Optional[SlotLayout] = None,
    ):
        import numpy as np

        self._np = np
        self.bound = tuple(bound)
        self.layout = layout if layout is not None else SlotLayout(engine)
        self.n = self.layout.n
        self._crashing = any(b.crashes_nodes for b in self.bound)
        self._droppers = tuple(b for b in self.bound if b.drops_messages)
        self._corrupters = tuple(b for b in self.bound if b.corrupts_messages)
        #: Whether the stack can rewrite payloads at all — kernels without a
        #: corruption-mask path must refuse corrupting stacks instead of
        #: silently ignoring them.
        self.corrupting = bool(self._corrupters)
        #: Last round at which the stack can still change its schedule;
        #: ``None`` for never-settling stacks.
        self.quiet = quiet_after(self.bound)
        # Decisions are pure per round, so repeated queries (retry loops,
        # multi-phase kernels) reuse the mask instead of rebuilding it.
        self._cache: dict = {}

    def expired(self, round_no: int) -> bool:
        """True when no fault can occur at any round >= ``round_no``.

        Requires a settling stack whose steady state is fault-free: past
        the quiet horizon nothing crashes and everything is delivered, so
        kernels may stop consulting the masks entirely.
        """
        if self.quiet is None or round_no <= self.quiet:
            return False
        return (
            self._steady("crash") is None
            and self._steady("out") is None
            and self._steady("cout") is None
        )

    def _steady(self, kind: str):
        """The constant mask for rounds past the quiet horizon.

        Pure decisions + the ``quiet_after`` contract make the schedule
        round-invariant past the horizon, so one build (at ``quiet + 1``)
        serves every later round — all-deliver stacks collapse to ``None``,
        persistent deletions to their frozen mask.
        """
        key = ("steady", kind)
        if key not in self._cache:
            self._cache[key] = self._build(kind, self.quiet + 1)
        return self._cache[key]

    def _lookup(self, kind: str, round_no: int):
        if self.quiet is not None and round_no > self.quiet:
            return self._steady(kind)
        key = (kind, round_no)
        if key not in self._cache:
            # Build before the eviction check: an "in" build re-enters
            # _lookup for its "out" mask, so evicting first would let the
            # nested insert push the cache one past the cap.
            value = self._build(kind, round_no)
            if len(self._cache) >= self.CACHE_MAX:
                # FIFO eviction; steady entries are re-derivable, and
                # rounds mostly advance, so dropping the oldest is safe.
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = value
        return self._cache[key]

    def _build(self, kind: str, round_no: int):
        if kind == "crash":
            return self._build_crash(round_no)
        if kind == "out":
            return self._build_out(round_no)
        if kind == "cout":
            return self._build_corrupt(round_no)
        if kind == "cin":
            cout = self._lookup("cout", round_no)
            return None if cout is None else cout[self.layout.partner]
        out = self._lookup("out", round_no)
        return None if out is None else out[self.layout.partner]

    def _build_crash(self, round_no: int):
        np = self._np
        mask = None
        for b in self.bound:
            part = b.crashes_mask(round_no, self.n)
            if part is NotImplemented:
                victims = list(b.crashes(round_no))
                if not victims:
                    continue
                part = np.zeros(self.n, dtype=bool)
                part[victims] = True
            if part is None:
                continue
            mask = part if mask is None else (mask | part)
        return mask

    def _build_out(self, round_no: int):
        senders = self.layout.out_sender
        ports = self.layout.out_port
        mask = None
        for b in self._droppers:
            part = b.delivers_mask(round_no, senders, ports)
            if part is NotImplemented:
                part = self._scalar_sweep(b, round_no, senders, ports)
            if part is None:
                continue
            mask = part if mask is None else (mask & part)
        return mask

    def _build_corrupt(self, round_no: int):
        """Per-slot corruption mask (True = payload rewritten), outgoing
        view.  OR over the corrupters — any one rewrite leaves the payload
        corrupted for the semantic masks the kernels apply."""
        senders = self.layout.out_sender
        ports = self.layout.out_port
        np = self._np
        mask = None
        for b in self._corrupters:
            part = b.corrupts_mask(round_no, senders, ports)
            if part is NotImplemented:
                part = np.zeros(senders.shape[0], dtype=bool)
                corrupts = b.corrupts
                for k in range(senders.shape[0]):
                    if corrupts(round_no, int(senders[k]), int(ports[k])):
                        part[k] = True
                if not part.any():
                    part = None
            if part is None:
                continue
            mask = part if mask is None else (mask | part)
        return mask

    def _scalar_sweep(self, b, round_no: int, senders, ports):
        """O(m) fallback over the pure scalar decision (third-party
        perturbations without a vectorized path)."""
        np = self._np
        out = np.ones(senders.shape[0], dtype=bool)
        delivers = b.delivers
        for k in range(senders.shape[0]):
            if not delivers(round_no, int(senders[k]), int(ports[k])):
                out[k] = False
        return out

    def crashed_at(self, round_no: int):
        """Bool node mask of crashes scheduled at ``round_no``, or None."""
        if not self._crashing:
            return None
        return self._lookup("crash", round_no)

    def delivered_out(self, round_no: int):
        """Per-slot delivery mask, slot read as an outgoing message."""
        if not self._droppers:
            return None
        return self._lookup("out", round_no)

    def delivered_in(self, round_no: int):
        """Per-slot delivery mask, slot read as the receiving side."""
        if not self._droppers:
            return None
        return self._lookup("in", round_no)

    def corrupted_out(self, round_no: int):
        """Per-slot corruption mask (True = rewritten), outgoing view."""
        if not self._corrupters:
            return None
        return self._lookup("cout", round_no)

    def corrupted_in(self, round_no: int):
        """Per-slot corruption mask, slot read as the receiving side."""
        if not self._corrupters:
            return None
        return self._lookup("cin", round_no)
