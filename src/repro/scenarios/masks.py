"""Masked-array view of a perturbation stack for the dense backend.

The dense kernels (:mod:`repro.local.dense`) execute whole rounds as numpy
array ops, so faults reach them as per-round *masks* instead of per-message
hook calls: a boolean crash mask over nodes and boolean delivery masks over
CSR slots.  :class:`DenseFaults` builds those masks from the same pure
decision functions the :class:`~repro.scenarios.base.PerturbationHooks`
adapter consults — evaluated slot-by-slot in Python, O(m) per faulty round
— so a dense run with replayed coins stays bit-identical to the hooked
engine run (property-tested in ``tests/scenarios/test_hook_equivalence.py``).

Capability flags on the bound perturbations short-circuit the mask builds:
a stack that never crashes returns ``None`` crash masks, one that never
drops returns ``None`` delivery masks, and the kernels skip the masking
entirely — keeping the fault-free dense hot path untouched.
"""

from __future__ import annotations

from typing import Sequence

from repro.local.engine import CSREngine
from repro.scenarios.base import BoundPerturbation

__all__ = ["DenseFaults"]


class DenseFaults:
    """Per-round crash and delivery masks over one engine's CSR layout.

    ``crashed_at(r)`` — nodes crashing at the start of round ``r`` (or
    ``None``); ``delivered_out(r)`` — per-slot mask of the slot as an
    *outgoing* message (sender = slot owner); ``delivered_in(r)`` — per-slot
    mask of the slot as the *receiving* side (sender = the CSR destination,
    i.e. ``delivered_in[k] == delivered_out[partner(k)]``).
    """

    def __init__(self, engine: CSREngine, bound: Sequence[BoundPerturbation]):
        import numpy as np

        self._np = np
        self.bound = tuple(bound)
        offsets, dst_node, dst_port = engine.dense_arrays()
        n = engine.n
        self.n = n
        self._out_sender = np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))
        self._out_port = (
            np.arange(offsets[-1], dtype=np.int64) - offsets[:-1][self._out_sender]
        )
        self._in_sender = dst_node
        self._in_port = dst_port
        self._crashing = any(b.crashes_nodes for b in self.bound)
        self._droppers = tuple(b for b in self.bound if b.drops_messages)
        # Decisions are pure per round, so repeated queries (retry loops,
        # multi-phase kernels) reuse the slot sweep instead of redoing it.
        self._cache: dict = {}

    def crashed_at(self, round_no: int):
        """Bool node mask of crashes scheduled at ``round_no``, or None."""
        if not self._crashing:
            return None
        key = ("crash", round_no)
        if key in self._cache:
            return self._cache[key]
        np = self._np
        mask = np.zeros(self.n, dtype=bool)
        hit = False
        for b in self.bound:
            victims = list(b.crashes(round_no))
            if victims:
                mask[victims] = True
                hit = True
        result = mask if hit else None
        self._cache[key] = result
        return result

    def _delivered(self, kind: str, round_no: int, senders, ports):
        if not self._droppers:
            return None
        key = (kind, round_no)
        if key in self._cache:
            return self._cache[key]
        np = self._np
        out = np.ones(senders.shape[0], dtype=bool)
        for k in range(senders.shape[0]):
            sender = int(senders[k])
            port = int(ports[k])
            for b in self._droppers:
                if not b.delivers(round_no, sender, port):
                    out[k] = False
                    break
        self._cache[key] = out
        return out

    def delivered_out(self, round_no: int):
        """Per-slot delivery mask, slot read as an outgoing message."""
        return self._delivered("out", round_no, self._out_sender, self._out_port)

    def delivered_in(self, round_no: int):
        """Per-slot delivery mask, slot read as the receiving side."""
        return self._delivered("in", round_no, self._in_sender, self._in_port)
