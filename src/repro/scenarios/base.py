"""Perturbation protocol: composable faults/adversaries over the simulators.

A :class:`Perturbation` is one declarative ingredient of a scenario — node
crashes, lossy links, dynamic edges, adversarial renamings.  It acts on a
run through two channels:

* :meth:`Perturbation.rewrite` — a graph-level transform applied before the
  :class:`~repro.local.network.Network` is built (ID relabelings, port
  permutations, multi-edge lifts, supergraphs for insertion streams);
* :meth:`Perturbation.bind` — a per-run :class:`BoundPerturbation` whose
  round decisions (``crashes``, ``delivers``) are **pure functions** of the
  round number and message coordinates.

Purity is the load-bearing property: the reference simulator, the batched
engine and the dense kernels all consult the same decisions, but in
different orders (dict sweep vs CSR slot sweep vs vectorized mask build).
Because every decision is a pure function of ``(fault_seed, round, where)``
— no internal stream consumption — hooked runs stay *bit-identical* across
executors, which ``tests/scenarios/test_hook_equivalence.py`` property-
tests.

Fault coins come in two **fault modes**, mirroring the philox/replay split
of :class:`~repro.utils.rng.CoinTable`:

* ``fault_mode="replay"`` — coins from :func:`fault_u01`, built on the same
  :func:`~repro.utils.rng.node_rng` machinery as the nodes' private coins
  but under a disjoint ``"fault/..."`` salt namespace.  This is the
  historical schedule the bit-identity property tests pin; evaluating one
  coin costs a sha512-seeded ``random.Random`` (~9 µs), so large-n mask
  builds pay an O(m) interpreter loop.
* ``fault_mode="mask"`` — coins from :func:`fault_u01_mix`, a SplitMix64-
  style integer mix over ``(fault_seed, salt_hash, entity, *key)``.  The
  same chain vectorizes to one numpy kernel call per round
  (:func:`fault_u01_array`), so a faulty dense round costs about as much
  as a fault-free one.  Schedules are deterministic per seed and
  distribution-identical to replay mode, but draw *different* values —
  within one mode every executor still agrees bit-for-bit, because scalar
  and array kernels share the mixing chain exactly.
"""

from __future__ import annotations

import hashlib
from abc import ABC
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.local.network import Network, NodeView, RoundHooks
from repro.utils.rng import node_rng
from repro.utils.validation import require

__all__ = [
    "FAULT_MODES",
    "fault_u01",
    "fault_u01_mix",
    "fault_u01_array",
    "Perturbation",
    "BoundPerturbation",
    "PerturbationHooks",
    "bind_all",
    "rewrite_all",
    "quiet_after",
]

Adjacency = List[List[int]]

#: Supported fault-coin modes (see module docstring).
FAULT_MODES = ("replay", "mask")


def fault_u01(fault_seed: int, label: str, entity, *key) -> float:
    """One deterministic uniform in ``[0, 1)`` per (seed, label, entity, key).

    A pure function — repeated calls with the same arguments return the same
    value, so the executors may evaluate fault decisions in any order (or
    several times) without diverging.  Built on :func:`node_rng` with a
    ``fault/``-prefixed salt, keeping fault coins independent of the node
    coin streams ``{seed}/{uid}/`` that the algorithms consume.
    """
    salt = "fault/" + label
    if key:
        salt += "/" + "/".join(str(k) for k in key)
    return node_rng(fault_seed, entity, salt=salt).random()


# ---------------------------------------------------------------------------
# Counter-based fault coins (fault_mode="mask").
#
# A SplitMix64-style finalizer folded over the key components.  The scalar
# (:func:`fault_u01_mix`) and vectorized (:func:`fault_u01_array`) forms
# share this chain bit-for-bit, so a hooked engine run consulting scalar
# decisions and a dense run consuming whole-round mask arrays see the same
# fault schedule.  Not cryptographic — just a well-avalanched keyed hash.
# ---------------------------------------------------------------------------

_MASK64 = (1 << 64) - 1
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB
_TO_U01 = 2.0 ** -53

_SALT_HASHES: dict = {}


def _salt_hash(label: str) -> int:
    """Stable 64-bit hash of a salt label (cached — labels are few)."""
    h = _SALT_HASHES.get(label)
    if h is None:
        digest = hashlib.blake2b(label.encode("utf-8"), digest_size=8).digest()
        h = _SALT_HASHES[label] = int.from_bytes(digest, "little")
    return h


def _mix64(z: int) -> int:
    """SplitMix64 finalizer on python ints (mod 2^64)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _SM_M1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_M2) & _MASK64
    return z ^ (z >> 31)


def fault_u01_mix(fault_seed: int, label: str, entity: int, *key: int) -> float:
    """Counter-based uniform in ``[0, 1)`` — the ``"mask"``-mode coin.

    Same contract as :func:`fault_u01` (pure function of its arguments,
    order-insensitive) but built on integer mixing instead of sha512-seeded
    generators, so it costs nanoseconds and vectorizes
    (:func:`fault_u01_array` evaluates the identical chain on arrays).
    ``entity`` and every ``key`` component must be integers.
    """
    h = _mix64((fault_seed & _MASK64) ^ _salt_hash(label))
    h = _mix64((h + _SM_GAMMA) ^ (entity & _MASK64))
    for k in key:
        h = _mix64((h + _SM_GAMMA) ^ (k & _MASK64))
    return (h >> 11) * _TO_U01


def fault_u01_array(fault_seed: int, label: str, entity, *key, mode: str = "mask"):
    """One uniform per element of ``entity`` (float64 numpy array).

    ``mode="mask"`` runs the :func:`fault_u01_mix` chain as a vectorized
    numpy kernel over ``(fault_seed, salt_hash(label), entity, *key)`` —
    every component may be an int array (elementwise) or a scalar
    (broadcast); elementwise results equal :func:`fault_u01_mix` bit-for-
    bit.  ``mode="replay"`` instead reproduces today's scalar
    :func:`fault_u01` values exactly, element by element — an O(len)
    interpreter loop that exists for the bit-identity property tests and
    the replay fallback, not for speed (entities/keys may be any objects
    the scalar form accepts, e.g. string edge keys).
    """
    import numpy as np  # lazy: the pure-python scenario paths never need it

    require(mode in FAULT_MODES, f"unknown fault coin mode {mode!r}")
    if mode == "replay":
        cols = [_as_column(c, len(entity)) for c in key]
        return np.array(
            [
                fault_u01(fault_seed, label, e, *(c[i] for c in cols))
                for i, e in enumerate(entity)
            ],
            dtype=np.float64,
        )
    # Fold scalar components in python ints (numpy warns on uint64 scalar
    # overflow) and switch to wrapping uint64 array arithmetic at the first
    # array component; scalar folds before/after the switch stay bit-equal
    # to :func:`fault_u01_mix` because both run the same chain mod 2^64.
    h_int = _mix64((fault_seed & _MASK64) ^ _salt_hash(label))
    h = None
    for c in (entity, *key):
        if not isinstance(c, int) and np.ndim(c) == 0:
            c = int(c)
        if isinstance(c, int):
            if h is None:
                h_int = _mix64((h_int + _SM_GAMMA) ^ (c & _MASK64))
            else:
                h = _mix64_np(np, (h + np.uint64(_SM_GAMMA)) ^ np.uint64(c & _MASK64))
            continue
        cu = _as_u64(np, c)
        if h is None:
            h = _mix64_np(np, np.uint64((h_int + _SM_GAMMA) & _MASK64) ^ cu)
        else:
            h = _mix64_np(np, (h + np.uint64(_SM_GAMMA)) ^ cu)
    if h is None:  # every component was scalar: one-element degenerate call
        return np.float64((h_int >> 11) * _TO_U01)
    return (h >> np.uint64(11)) * _TO_U01


def _as_column(c, n: int):
    """Broadcast a replay-mode key component to ``n`` elements."""
    if isinstance(c, (str, bytes, int, float)):
        return [c] * n
    return list(c)


def _as_u64(np, x):
    """Coerce an int scalar or array to uint64 (two's-complement wrap)."""
    if isinstance(x, int):
        return np.uint64(x & _MASK64)
    a = np.asarray(x)
    if a.dtype != np.uint64:
        a = a.astype(np.int64, copy=False).astype(np.uint64)
    return a


def _mix64_np(np, z):
    """SplitMix64 finalizer on uint64 arrays (wrapping multiply)."""
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SM_M1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SM_M2)
    return z ^ (z >> np.uint64(31))


class BoundPerturbation:
    """A perturbation bound to one ``(network, fault_seed)`` pair.

    Subclasses may precompute anything at bind time (victim sets, edge
    keys), but the per-round methods must remain pure functions of their
    arguments.  The base class is the identity perturbation.
    """

    #: Last round whose fault schedule differs from the steady state, or
    #: ``None`` if the perturbation never settles (e.g. i.i.d. drops with no
    #: end round).  The scenario runner derives the ``rounds_to_recover``
    #: resilience metric from the max over the stack.
    quiet_after: Optional[int] = 0

    #: Capability flags — let the dense adapter skip O(n)/O(m) mask builds
    #: for rounds (or whole runs) that cannot be affected.
    crashes_nodes: bool = False
    drops_messages: bool = False
    corrupts_messages: bool = False

    def crashes(self, round_no: int) -> Iterable[int]:
        """Node indices that crash at the start of ``round_no``."""
        return ()

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        """Whether the message ``sender`` emits on ``port`` arrives."""
        return True

    def corrupts(self, round_no: int, sender: int, port: int) -> bool:
        """Whether the delivered message on this slot is rewritten in
        transit.  Like :meth:`delivers`, a pure function of its arguments —
        the hooked executors and the dense corruption masks consult the
        same decision in different orders."""
        return False

    def corrupt_payload(self, message):
        """Byzantine rewrite applied where :meth:`corrupts` fires.  Must be
        a pure function of the payload (no coordinates, no state) so the
        dense kernels can mirror it as per-slot semantic masks."""
        return message

    def corrupts_mask(self, round_no: int, senders, ports):
        """Optional vectorized form of :meth:`corrupts`.

        Same contract as :meth:`delivers_mask` (``None`` = nothing
        corrupted this round, ``NotImplemented`` = scalar fallback), with
        True meaning *corrupted*.  Must agree elementwise with
        :meth:`corrupts`.
        """
        return NotImplemented

    def crashes_mask(self, round_no: int, n: int):
        """Optional vectorized form of :meth:`crashes`.

        Returns a bool numpy array of length ``n`` (True = crashes at the
        start of ``round_no``), ``None`` for "nobody crashes this round",
        or ``NotImplemented`` when the perturbation has no vectorized path
        — the caller (:class:`~repro.scenarios.masks.DenseFaults`) then
        falls back to the scalar :meth:`crashes` sweep.  Must agree with
        :meth:`crashes` exactly.
        """
        return NotImplemented

    def delivers_mask(self, round_no: int, senders, ports):
        """Optional vectorized form of :meth:`delivers`.

        ``senders``/``ports`` are parallel int arrays of message
        coordinates; returns a bool array of the same length (True =
        delivered), ``None`` for "everything delivered this round", or
        ``NotImplemented`` to request the scalar fallback.  Must agree
        elementwise with :meth:`delivers` — in ``"replay"`` fault mode that
        pins it to the historical :func:`fault_u01` schedule, in ``"mask"``
        mode both sides consult the same :func:`fault_u01_mix` chain.
        """
        return NotImplemented

    def edge_alive_final(self, sender: int, port: int) -> bool:
        """Whether the edge behind ``(sender, port)`` belongs to the final
        graph (dynamic-graph perturbations override this so contracts can
        validate against the post-churn topology)."""
        return True


class Perturbation(ABC):
    """Declarative fault/adversary ingredient of a :class:`Scenario`."""

    def rewrite(self, adjacency: Adjacency, ids: List[int]) -> Tuple[Adjacency, List[int]]:
        """Graph-level transform applied before the network is built."""
        return adjacency, ids

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> BoundPerturbation:
        """Bind the per-round fault schedule to a concrete network.

        ``fault_mode`` selects the coin kernel: ``"replay"`` (the
        historical :func:`fault_u01` schedule, bit-identity tested) or
        ``"mask"`` (the vectorizable :func:`fault_u01_mix` schedule —
        distribution-identical, cheap at scale).  Perturbations without
        runtime coins (graph rewrites, degree-ranked victim sets) bind
        identically in both modes.
        """
        return BoundPerturbation()


def rewrite_all(
    perturbations: Sequence[Perturbation],
    adjacency: Adjacency,
    ids: Optional[List[int]] = None,
) -> Tuple[Adjacency, List[int]]:
    """Apply every perturbation's graph transform, in declaration order."""
    if ids is None:
        ids = list(range(len(adjacency)))
    for p in perturbations:
        adjacency, ids = p.rewrite(adjacency, ids)
    return adjacency, ids


def bind_all(
    perturbations: Sequence[Perturbation],
    network: Network,
    fault_seed: int,
    fault_mode: str = "replay",
) -> Tuple[BoundPerturbation, ...]:
    """Bind every perturbation to one ``(network, fault_seed, mode)``."""
    require(fault_mode in FAULT_MODES, f"unknown fault_mode {fault_mode!r}")
    return tuple(p.bind(network, fault_seed, fault_mode) for p in perturbations)


def quiet_after(bound: Sequence[BoundPerturbation]) -> Optional[int]:
    """Last round at which the stack can still inject, ``None`` if never."""
    q = 0
    for b in bound:
        if b.quiet_after is None:
            return None
        q = max(q, b.quiet_after)
    return q


class PerturbationHooks(RoundHooks):
    """:class:`RoundHooks` adapter over a stack of bound perturbations.

    ``before_round`` crashes scheduled nodes (setting ``view.halted`` and
    the ``state["crashed"]`` marker contracts key off); ``deliver`` is the
    conjunction of the stack's pure delivery decisions; ``transform``
    applies the Byzantine payload rewrites of every corrupting
    perturbation whose pure ``corrupts`` decision fires.  Create a fresh
    instance per run — the ``crashed`` set is per-run bookkeeping (the
    decisions themselves are pure, so two instances over the same stack
    behave identically).
    """

    def __init__(self, bound: Sequence[BoundPerturbation]):
        self.bound = tuple(bound)
        self.crashed: set = set()
        self._corrupters = tuple(b for b in self.bound if b.corrupts_messages)

    def before_round(self, round_no: int, views: List[NodeView]) -> None:
        for b in self.bound:
            for i in b.crashes(round_no):
                view = views[i]
                if not view.halted:
                    view.halted = True
                    view.state["crashed"] = True
                    self.crashed.add(i)

    def deliver(self, round_no: int, sender: int, port: int) -> bool:
        for b in self.bound:
            if not b.delivers(round_no, sender, port):
                return False
        return True

    def transform(self, round_no: int, sender: int, port: int, message):
        for b in self._corrupters:
            if b.corrupts(round_no, sender, port):
                message = b.corrupt_payload(message)
        return message
