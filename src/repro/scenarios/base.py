"""Perturbation protocol: composable faults/adversaries over the simulators.

A :class:`Perturbation` is one declarative ingredient of a scenario — node
crashes, lossy links, dynamic edges, adversarial renamings.  It acts on a
run through two channels:

* :meth:`Perturbation.rewrite` — a graph-level transform applied before the
  :class:`~repro.local.network.Network` is built (ID relabelings, port
  permutations, multi-edge lifts, supergraphs for insertion streams);
* :meth:`Perturbation.bind` — a per-run :class:`BoundPerturbation` whose
  round decisions (``crashes``, ``delivers``) are **pure functions** of the
  round number and message coordinates.

Purity is the load-bearing property: the reference simulator, the batched
engine and the dense kernels all consult the same decisions, but in
different orders (dict sweep vs CSR slot sweep vs vectorized mask build).
Because every decision is a pure function of ``(fault_seed, round, where)``
— no internal stream consumption — hooked runs stay *bit-identical* across
executors, which ``tests/scenarios/test_hook_equivalence.py`` property-
tests.

Fault coins come from :func:`fault_u01`, built on the same
:func:`~repro.utils.rng.node_rng` machinery as the nodes' private coins but
under a disjoint ``"fault/..."`` salt namespace, so fault schedules are
deterministic per seed yet never correlate with algorithm randomness.
"""

from __future__ import annotations

from abc import ABC
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.local.network import Network, NodeView, RoundHooks
from repro.utils.rng import node_rng

__all__ = [
    "fault_u01",
    "Perturbation",
    "BoundPerturbation",
    "PerturbationHooks",
    "bind_all",
    "rewrite_all",
    "quiet_after",
]

Adjacency = List[List[int]]


def fault_u01(fault_seed: int, label: str, entity, *key) -> float:
    """One deterministic uniform in ``[0, 1)`` per (seed, label, entity, key).

    A pure function — repeated calls with the same arguments return the same
    value, so the executors may evaluate fault decisions in any order (or
    several times) without diverging.  Built on :func:`node_rng` with a
    ``fault/``-prefixed salt, keeping fault coins independent of the node
    coin streams ``{seed}/{uid}/`` that the algorithms consume.
    """
    salt = "fault/" + label
    if key:
        salt += "/" + "/".join(str(k) for k in key)
    return node_rng(fault_seed, entity, salt=salt).random()


class BoundPerturbation:
    """A perturbation bound to one ``(network, fault_seed)`` pair.

    Subclasses may precompute anything at bind time (victim sets, edge
    keys), but the per-round methods must remain pure functions of their
    arguments.  The base class is the identity perturbation.
    """

    #: Last round whose fault schedule differs from the steady state, or
    #: ``None`` if the perturbation never settles (e.g. i.i.d. drops with no
    #: end round).  The scenario runner derives the ``rounds_to_recover``
    #: resilience metric from the max over the stack.
    quiet_after: Optional[int] = 0

    #: Capability flags — let the dense adapter skip O(n)/O(m) mask builds
    #: for rounds (or whole runs) that cannot be affected.
    crashes_nodes: bool = False
    drops_messages: bool = False

    def crashes(self, round_no: int) -> Iterable[int]:
        """Node indices that crash at the start of ``round_no``."""
        return ()

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        """Whether the message ``sender`` emits on ``port`` arrives."""
        return True

    def edge_alive_final(self, sender: int, port: int) -> bool:
        """Whether the edge behind ``(sender, port)`` belongs to the final
        graph (dynamic-graph perturbations override this so contracts can
        validate against the post-churn topology)."""
        return True


class Perturbation(ABC):
    """Declarative fault/adversary ingredient of a :class:`Scenario`."""

    def rewrite(self, adjacency: Adjacency, ids: List[int]) -> Tuple[Adjacency, List[int]]:
        """Graph-level transform applied before the network is built."""
        return adjacency, ids

    def bind(self, network: Network, fault_seed: int) -> BoundPerturbation:
        """Bind the per-round fault schedule to a concrete network."""
        return BoundPerturbation()


def rewrite_all(
    perturbations: Sequence[Perturbation],
    adjacency: Adjacency,
    ids: Optional[List[int]] = None,
) -> Tuple[Adjacency, List[int]]:
    """Apply every perturbation's graph transform, in declaration order."""
    if ids is None:
        ids = list(range(len(adjacency)))
    for p in perturbations:
        adjacency, ids = p.rewrite(adjacency, ids)
    return adjacency, ids


def bind_all(
    perturbations: Sequence[Perturbation], network: Network, fault_seed: int
) -> Tuple[BoundPerturbation, ...]:
    """Bind every perturbation to one ``(network, fault_seed)`` pair."""
    return tuple(p.bind(network, fault_seed) for p in perturbations)


def quiet_after(bound: Sequence[BoundPerturbation]) -> Optional[int]:
    """Last round at which the stack can still inject, ``None`` if never."""
    q = 0
    for b in bound:
        if b.quiet_after is None:
            return None
        q = max(q, b.quiet_after)
    return q


class PerturbationHooks(RoundHooks):
    """:class:`RoundHooks` adapter over a stack of bound perturbations.

    ``before_round`` crashes scheduled nodes (setting ``view.halted`` and
    the ``state["crashed"]`` marker contracts key off); ``deliver`` is the
    conjunction of the stack's pure delivery decisions.  Create a fresh
    instance per run — the ``crashed`` set is per-run bookkeeping (the
    decisions themselves are pure, so two instances over the same stack
    behave identically).
    """

    def __init__(self, bound: Sequence[BoundPerturbation]):
        self.bound = tuple(bound)
        self.crashed: set = set()

    def before_round(self, round_no: int, views: List[NodeView]) -> None:
        for b in self.bound:
            for i in b.crashes(round_no):
                view = views[i]
                if not view.halted:
                    view.halted = True
                    view.state["crashed"] = True
                    self.crashed.add(i)

    def deliver(self, round_no: int, sender: int, port: int) -> bool:
        for b in self.bound:
            if not b.delivers(round_no, sender, port):
                return False
        return True
