"""Scenario subsystem: fault injection, dynamic graphs, adversarial schedules.

The paper's algorithms are analyzed on clean static graphs; this package
turns *unclean* conditions into a first-class experimental axis.  A
:class:`Scenario` is a declarative triple — graph family x perturbation
schedule x validity contract — executed by :func:`run_scenario` on any of
the three backends (reference simulator, batched CSR engine, dense numpy
kernels) with **deterministic** fault schedules: every fault decision is a
pure function of the trial seed, so faulty runs are reproducible and
bit-identical between the reference and the engine (and, with replayed
coins, the dense kernels).

Vocabulary:

* faults — :class:`CrashNodes`, :class:`IIDMessageDrop`, :class:`MuteHubs`;
* harder fault models — :class:`CorrelatedCrash` (spatially-clustered
  fail-stop), :class:`CorruptMessages` (Byzantine payload rewriting);
* dynamic graphs — :class:`EdgeChurn`, :class:`LateEdges`,
  :class:`DropEdges` (supergraph + per-round delivery masking);
* adversarial presentations — :class:`AdversarialIDs`,
  :class:`PortScramble`, :class:`MultiEdgeLift`.

Recovery: ``run_scenario(..., recover=True)`` appends the self-stabilizing
detect-and-repair layer (:mod:`repro.scenarios.recovery`) to any scenario
run; the exact oracle in :mod:`repro.verify.certify` independently
certifies the contract verdicts on small instances.

Registered scenarios (``scenario_names()``) are runnable by name from the
sweep CLI: ``python benchmarks/run_experiments.py --scenarios all``.
"""

from repro.scenarios.adversary import AdversarialIDs, MultiEdgeLift, PortScramble
from repro.scenarios.base import (
    FAULT_MODES,
    BoundPerturbation,
    Perturbation,
    PerturbationHooks,
    bind_all,
    fault_u01,
    fault_u01_array,
    fault_u01_mix,
    quiet_after,
    rewrite_all,
)
from repro.scenarios.byzantine import (
    FORGED_PRIORITY,
    CorrelatedCrash,
    CorruptMessages,
    corrupt_payload,
)
from repro.scenarios.contracts import (
    alive_mask,
    final_edge_ok,
    mis_violations,
    orientation_from_views,
    splitting_violations,
    surviving_sinks,
)
from repro.scenarios.dynamic import (
    DropEdges,
    EdgeChurn,
    LateEdges,
    edge_key_triples,
    edge_keys,
)
from repro.scenarios.faults import CrashNodes, IIDMessageDrop, MuteHubs
from repro.scenarios.recovery import (
    REPAIR_ROUND_CAP,
    RepairResult,
    luby_mis_recovering,
    luby_repair,
    repair_hash,
    sinkless_recovering,
    sinkless_repair,
    splitting_recovering,
    splitting_repair,
)
from repro.scenarios.registry import (
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.scenarios.run import run_scenario

__all__ = [
    # protocol
    "Perturbation",
    "BoundPerturbation",
    "PerturbationHooks",
    "bind_all",
    "rewrite_all",
    "quiet_after",
    "FAULT_MODES",
    "fault_u01",
    "fault_u01_mix",
    "fault_u01_array",
    # perturbations
    "CrashNodes",
    "IIDMessageDrop",
    "MuteHubs",
    "CorrelatedCrash",
    "CorruptMessages",
    "corrupt_payload",
    "FORGED_PRIORITY",
    "EdgeChurn",
    "LateEdges",
    "DropEdges",
    "edge_keys",
    "edge_key_triples",
    "AdversarialIDs",
    "PortScramble",
    "MultiEdgeLift",
    # contracts
    "alive_mask",
    "final_edge_ok",
    "mis_violations",
    "surviving_sinks",
    "splitting_violations",
    "orientation_from_views",
    # recovery
    "RepairResult",
    "REPAIR_ROUND_CAP",
    "repair_hash",
    "luby_repair",
    "sinkless_repair",
    "splitting_repair",
    "luby_mis_recovering",
    "sinkless_recovering",
    "splitting_recovering",
    # registry + execution
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
    "run_scenario",
]
