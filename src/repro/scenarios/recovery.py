"""Self-stabilizing recovery: detect-and-repair phases over a run's end state.

A faulty environment (crashes, drops, Byzantine corruption — see
:mod:`repro.scenarios.faults` and :mod:`repro.scenarios.byzantine`) can
leave a pipeline's output violating its contract: adjacent MIS nodes seated
by forged priorities, surviving sinks whose outgoing edges lead into
crashed neighbors, constrained splitting nodes outside the spec bounds.
This module adds the *recovering* variants: after the base algorithm stops,
the nodes keep running a *detect-and-repair* phase — defensive message
validation, restart-on-inconsistency of the violating neighborhood, gossip
re-join of orphaned (undominated) nodes — until the contract holds on the
surviving graph or a round cap is hit.

Three structural properties make the repair layer exact and cheap to test:

* **State-level repair.**  Each repair driver consumes only the end-state
  arrays that every backend exposes bit-identically (``in_mis``/``crashed``
  for Luby, per-slot ``out`` orientation bits for sinkless, ``colors`` for
  splitting), plus per-round fault masks from
  :class:`~repro.scenarios.masks.DenseFaults` and keyed repair coins.  A
  recovering run on the hooked engine therefore matches a recovering run on
  the dense kernels bit for bit (property-tested in
  ``tests/scenarios/test_recovery.py``) — the repair itself is one shared
  vectorized implementation.
* **Faults keep landing.**  Repair rounds continue the base run's round
  numbering, so the perturbation stack's schedule applies unchanged: a
  Byzantine window reaching into the repair keeps corrupting repair
  messages, crashes scheduled late keep killing repairers.  Past the
  stack's quiet horizon every detection is exact, so a stable repair state
  implies **zero contract violations** — certified independently by the
  exact oracle in :mod:`repro.verify.certify`.
* **Keyed repair coins.**  All repair randomness flows through
  :func:`~repro.utils.rng.keyed_u01` under a dedicated salt
  (:func:`repair_hash`), pure in ``(seed, node, round)`` — no consumption
  order, so executors may evaluate repair decisions in any order without
  diverging, and the repair coins never perturb the base algorithm's
  streams.

Never-settling stacks (``quiet_after=None``, e.g. ``luby/drop-iid``) get
best-effort repair bounded by :data:`REPAIR_ROUND_CAP`; the zero-violation
guarantee applies to settling schedules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.utils.rng import ensure_rng, keyed_u01, mix64
from repro.utils.validation import require

__all__ = [
    "REPAIR_SALT",
    "REPAIR_ROUND_CAP",
    "repair_hash",
    "RepairResult",
    "bound_stack",
    "edge_ok_slot_mask",
    "luby_repair",
    "sinkless_repair",
    "splitting_repair",
    "luby_mis_recovering",
    "sinkless_recovering",
    "splitting_recovering",
]

#: Salt xored into the (pre-hashed) trial seed so repair coins live in a
#: namespace disjoint from both the algorithm coins and the fault coins.
REPAIR_SALT = 0x5EC0_7E5A_1A9B_D00D

#: Default bound on repair rounds — a backstop for never-settling fault
#: schedules, far above the O(log n) tail a settling schedule needs.
REPAIR_ROUND_CAP = 256


def repair_hash(seed: int) -> int:
    """64-bit key for the repair coin chain (pure function of the seed)."""
    return mix64(mix64(int(seed)) ^ REPAIR_SALT)


@dataclass(frozen=True)
class RepairResult:
    """Outcome of one repair run.

    ``recovered`` — the repair reached a stable, violation-free state
    (exact past the stack's quiet horizon); ``repair_rounds`` — the number
    of simulated rounds the repair consumed; ``last_round`` — the last
    round number executed (base rounds + repair tail).
    """

    recovered: bool
    repair_rounds: int
    last_round: int


def _round_masks(faults, round_no: int):
    """``(crash, delivered_in, corrupted_in)`` masks for one repair round."""
    if faults is None:
        return None, None, None
    corrupted_in = getattr(faults, "corrupted_in", None)
    return (
        faults.crashed_at(round_no),
        faults.delivered_in(round_no),
        corrupted_in(round_no) if corrupted_in is not None else None,
    )


def _budget(last_round, used, k, max_rounds, cap):
    """Whether ``k`` more repair rounds fit under both caps."""
    if used + k > cap:
        return False
    return max_rounds is None or last_round + k <= max_rounds


def bound_stack(hooks=None, faults=None):
    """The bound perturbation stack behind a ``hooks``/``faults`` argument.

    The pipeline entry points (``luby_mis(recover=True)`` and friends)
    receive faults either as a :class:`~repro.scenarios.masks.DenseFaults`
    (dense methods) or as hooks (a
    :class:`~repro.scenarios.base.PerturbationHooks`, possibly wrapped by
    :class:`~repro.obs.hooks.TracingHooks` — the ``inner`` chain is
    walked); both carry the bound stack the repair layer needs.
    """
    if faults is not None:
        return tuple(faults.bound)
    h = hooks
    while h is not None:
        b = getattr(h, "bound", None)
        if b is not None:
            return tuple(b)
        h = getattr(h, "inner", None)
    return ()


def edge_ok_slot_mask(engine, bound):
    """Per-slot final-graph membership mask, or ``None`` when trivial.

    The conjunction of the stack's
    :meth:`~repro.scenarios.base.BoundPerturbation.edge_alive_final`
    predicates evaluated per CSR slot — the vector form of
    :func:`~repro.scenarios.contracts.final_edge_ok` that the repair
    probes consume.  Returns ``None`` when no perturbation overrides the
    predicate (every edge final), skipping the O(m) sweep.
    """
    from repro.scenarios.base import BoundPerturbation

    if all(
        type(b).edge_alive_final is BoundPerturbation.edge_alive_final for b in bound
    ):
        return None
    import numpy as np

    from repro.local.dense import _slot_owner

    offsets, _, _ = engine.dense_arrays()
    owner = _slot_owner(offsets)
    port = np.arange(offsets[-1], dtype=np.int64) - offsets[:-1][owner]
    mask = np.ones(int(offsets[-1]), dtype=bool)
    for k in range(int(offsets[-1])):
        s, p = int(owner[k]), int(port[k])
        if not all(b.edge_alive_final(s, p) for b in bound):
            mask[k] = False
    return mask


# ---------------------------------------------------------------------------
# Luby MIS: gossip detection + Luby-with-blockers re-election.
# ---------------------------------------------------------------------------


def luby_repair(
    engine,
    faults,
    seed: int,
    in_mis,
    crashed,
    start_round: int,
    max_rounds: Optional[int] = None,
    cap: int = REPAIR_ROUND_CAP,
) -> RepairResult:
    """Detect-and-repair for Luby MIS end states (mutates the arrays).

    Iterates ``detect round; re-election phase`` until stable:

    * **detect** (1 round) — every alive node gossips its MIS bit.  An MIS
      node hearing an alive MIS neighbor *demotes* itself back to active
      (restart-on-inconsistency: forged priorities or lost announcements
      seated adjacent MIS nodes); an alive undecided node hearing no MIS
      neighbor *re-activates* (gossip re-join of orphans — their dominator
      crashed, their kill was forged, or a deleted edge orphaned them).
      Stable = no demotions, no orphans, no active nodes.
    * **re-election** (2 rounds) — one Luby phase over the active nodes
      with *standing-MIS blockers*: surviving MIS nodes always block their
      active neighbors in the priority round and always announce in the
      join round, so repair never unseats a consistent MIS node and active
      nodes adjacent to one are re-dominated immediately.

    Detection messages ride the same faulty channel as the base run
    (delivery and corruption masks keyed by the continuing round numbers),
    so a Byzantine window reaching into the repair can forge demotions —
    later detect rounds catch them; past the quiet horizon detection is
    exact (the steady delivery mask *is* the final surviving edge set) and
    a stable state has zero contract violations.
    """
    import numpy as np

    from repro.local.dense import _segment_or, _slot_owner, _uids

    offsets, dst_node, _ = engine.dense_arrays()
    nbr = dst_node
    owner = _slot_owner(offsets)
    uid = _uids(engine)
    n = engine.n
    node_idx = np.arange(n, dtype=np.int64)
    sh = repair_hash(seed)

    active = np.zeros(n, dtype=bool)
    used = 0
    last = start_round - 1
    recovered = False
    while _budget(last, used, 1, max_rounds, cap):
        # --- detect round -------------------------------------------------
        r = last + 1
        crash, din, cin = _round_masks(faults, r)
        if crash is not None:
            crashed |= crash
        alive = ~crashed
        bit = in_mis[nbr]
        if cin is not None:
            bit = bit ^ cin  # Byzantine: MIS bit flipped in transit
        heard = bit & alive[nbr]
        if din is not None:
            heard = heard & din
        heard_mis = _segment_or(heard, offsets)
        demote = alive & in_mis & heard_mis
        orphan = alive & ~in_mis & ~active & ~heard_mis
        used += 1
        last = r
        in_mis &= ~demote
        active = (active & alive) | demote | orphan
        if not active.any():
            recovered = True
            break
        if not _budget(last, used, 2, max_rounds, cap):
            break
        # --- re-election phase (2 rounds) ---------------------------------
        r1 = last + 1
        crash, din1, cin1 = _round_masks(faults, r1)
        if crash is not None:
            crashed |= crash
        alive = ~crashed
        act = active & alive
        pri = keyed_u01(np, sh, node_idx, r1)
        better = (pri[nbr] > pri[owner]) | (
            (pri[nbr] == pri[owner]) & (uid[nbr] > uid[owner])
        )
        if cin1 is not None:
            better = better | cin1  # forged-winner priority
        block = alive[nbr] & (in_mis[nbr] | (act[nbr] & better))
        if din1 is not None:
            block = block & din1
        joining = act & ~_segment_or(block, offsets)
        r2 = r1 + 1
        crash, din2, cin2 = _round_masks(faults, r2)
        if crash is not None:
            crashed |= crash
            alive = ~crashed
            act = act & alive
            joining = joining & alive
        sender = act | (in_mis & alive)
        announced = joining[nbr] | in_mis[nbr]
        if cin2 is not None:
            announced = announced ^ cin2  # join <-> stay flipped in transit
        announced = announced & sender[nbr]
        if din2 is not None:
            announced = announced & din2
        killed = act & ~joining & _segment_or(announced, offsets)
        in_mis |= joining
        active = act & ~joining & ~killed
        used += 2
        last = r2
    return RepairResult(recovered=recovered, repair_rounds=used, last_round=last)


# ---------------------------------------------------------------------------
# Sinkless orientation: reconcile views + alive-aware sink fixes.
# ---------------------------------------------------------------------------


def sinkless_repair(
    engine,
    faults,
    seed: int,
    out,
    crashed,
    min_degree: int,
    start_round: int,
    max_rounds: Optional[int] = None,
    cap: int = REPAIR_ROUND_CAP,
) -> RepairResult:
    """Detect-and-repair for sinkless orientations (mutates the arrays).

    Iterates two-round repair phases until the *contract* probe (surviving
    sinks on the authoritative orientation, exactly
    :func:`~repro.scenarios.contracts.surviving_sinks`) reaches zero:

    * **reconcile** (1 round) — defensive validation of the shared edge
      state: every alive node re-broadcasts its own direction bit per
      port, and the higher-index endpoint adopts the complement of the
      lower-index (authoritative) endpoint's delivered claim.  This
      repairs the silent disagreements dropped or corrupted flip
      announcements leave behind — a node believing it owns an outgoing
      edge the rest of the network attributes to its neighbor.
    * **fix** (1 round) — alive-aware sink fixing: every alive node that
      is accountable on the *surviving* graph (>= ``min_degree`` alive
      neighbors) and has no outgoing edge to an alive neighbor flips one
      keyed-uniform **live** port outward (the base algorithm wastes flips
      on edges into crashed neighbors; the repair does not).  Flip
      announcements travel under the round's delivery and corruption
      masks with the base kernel's exact semantics (a corrupted slot
      flips ``flip`` <-> ``ok``).
    """
    import numpy as np

    from repro.local.dense import _segment_or, _segment_sum, _slot_owner

    offsets, dst_node, dst_port = engine.dense_arrays()
    owner = _slot_owner(offsets)
    partner = offsets[:-1][dst_node] + dst_port
    low_view = owner < dst_node
    n = engine.n
    node_idx = np.arange(n, dtype=np.int64)
    sh = repair_hash(seed)

    used = 0
    last = start_round - 1
    recovered = False
    while _budget(last, used, 2, max_rounds, cap):
        # --- reconcile round ----------------------------------------------
        r = last + 1
        crash, din, cin = _round_masks(faults, r)
        if crash is not None:
            crashed |= crash
        alive = ~crashed
        claim = out[partner]  # sender's own view of the shared edge
        if cin is not None:
            claim = claim ^ cin
        heard = alive[dst_node] & alive[owner]
        if din is not None:
            heard = heard & din
        adopt = heard & ~low_view  # only the non-authoritative side adopts
        out[adopt] = ~claim[adopt]
        used += 1
        last = r
        # --- fix round ----------------------------------------------------
        rb = last + 1
        crash = faults.crashed_at(rb) if faults is not None else None
        if crash is not None:
            crashed |= crash
        alive = ~crashed
        live = alive[dst_node]
        alive_deg = _segment_sum(live.astype(np.int64), offsets)
        accountable = alive & (alive_deg >= min_degree)
        sink = accountable & ~_segment_or(out & live, offsets)
        # Choose each sink's flip among its live ports: rank the live
        # slots within the segment and pick the keyed-uniform index.
        exc = np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(live.astype(np.int64)))
        )[:-1]
        rank = exc - exc[offsets[:-1][owner]]
        target = (keyed_u01(np, sh, node_idx, rb) * alive_deg).astype(np.int64)
        chosen = live & sink[owner] & (rank == target[owner])
        out[chosen] = True
        corrupted_out = getattr(faults, "corrupted_out", None)
        cout = corrupted_out(rb) if corrupted_out is not None else None
        dout = faults.delivered_out(rb) if faults is not None else None
        is_flip = chosen if cout is None else (chosen ^ cout)
        mark = is_flip & alive[owner] & alive[dst_node]
        if dout is not None:
            mark = mark & dout
        out[partner[np.flatnonzero(mark)]] = False
        used += 1
        last = rb
        # --- contract probe (authoritative orientation) -------------------
        eff = np.where(low_view, out, ~out[partner])
        good = _segment_or(eff & live, offsets)
        if not (accountable & ~good).any():
            recovered = True
            break
    return RepairResult(recovered=recovered, repair_rounds=used, last_round=last)


# ---------------------------------------------------------------------------
# Uniform splitting: violator NACK gossip + neighborhood redraw.
# ---------------------------------------------------------------------------


def splitting_repair(
    engine,
    faults,
    spec,
    seed: int,
    colors,
    crashed,
    start_round: int,
    red: int,
    blue: int,
    max_rounds: Optional[int] = None,
    cap: int = REPAIR_ROUND_CAP,
    edge_ok_mask=None,
) -> RepairResult:
    """Detect-and-repair for uniform splitting (mutates the arrays).

    Iterates two-round repair phases until the contract
    (:func:`~repro.scenarios.contracts.splitting_violations` on the
    surviving graph) holds:

    * **check** (1 round) — colors are re-broadcast; every alive
      constrained node recounts its red neighbors over the colors it
      actually heard (delivery and corruption masks applied) and flags
      itself a violator if outside the spec bounds;
    * **redraw** (1 round) — violators NACK their neighborhood; every
      violator and every alive node hearing a NACK redraws its color from
      the keyed repair chain (restart-on-inconsistency of the violating
      neighborhood — a violator's count only moves if neighbors move with
      it).

    The stop probe is the central ground-truth recount, so ``recovered``
    implies zero violations by construction.  ``edge_ok_mask`` (per-slot
    bool, see :func:`edge_ok_slot_mask`) restricts the probe under
    edge-deleting perturbations.
    """
    import numpy as np

    from repro.local.dense import _segment_or, _segment_sum

    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    node_idx = np.arange(n, dtype=np.int64)
    sh = repair_hash(seed)

    def true_violations(alive):
        live = alive[dst_node]
        if edge_ok_mask is not None:
            live = live & edge_ok_mask
        deg = _segment_sum(live.astype(np.int64), offsets)
        red_n = _segment_sum(
            (live & (colors[dst_node] == red)).astype(np.int64), offsets
        )
        constrained = alive & spec.constrains(deg)
        return constrained & ~((red_n >= spec.lo(deg)) & (red_n <= spec.hi(deg)))

    used = 0
    last = start_round - 1
    if not true_violations(~crashed).any():
        return RepairResult(recovered=True, repair_rounds=0, last_round=last)
    recovered = False
    while _budget(last, used, 2, max_rounds, cap):
        # --- check round --------------------------------------------------
        r = last + 1
        crash, din, cin = _round_masks(faults, r)
        if crash is not None:
            crashed |= crash
        alive = ~crashed
        is_red = colors[dst_node] == red
        if cin is not None:
            is_red = is_red ^ cin  # Byzantine: color flipped in transit
        heard = alive[dst_node]
        if din is not None:
            heard = heard & din
        deg_h = _segment_sum(heard.astype(np.int64), offsets)
        red_h = _segment_sum((heard & is_red).astype(np.int64), offsets)
        violator = (
            alive
            & spec.constrains(deg_h)
            & ~((red_h >= spec.lo(deg_h)) & (red_h <= spec.hi(deg_h)))
        )
        used += 1
        last = r
        # --- redraw round -------------------------------------------------
        rb = last + 1
        crash, dinb, cinb = _round_masks(faults, rb)
        if crash is not None:
            crashed |= crash
            alive = ~crashed
            violator = violator & alive
        nack = violator[dst_node]
        if cinb is not None:
            nack = nack ^ cinb
        nack = nack & alive[dst_node]
        if dinb is not None:
            nack = nack & dinb
        redraw = alive & (violator | _segment_or(nack, offsets))
        fresh = np.where(keyed_u01(np, sh, node_idx, rb) < 0.5, red, blue)
        colors[redraw] = fresh[redraw]
        used += 1
        last = rb
        if not true_violations(alive).any():
            recovered = True
            break
    return RepairResult(recovered=recovered, repair_rounds=used, last_round=last)


# ---------------------------------------------------------------------------
# End-to-end recovering variants (base pipeline + repair).
# ---------------------------------------------------------------------------


def _build_engine(adjacency, engine):
    if engine is not None:
        return engine
    from repro.local.engine import CSREngine
    from repro.local.network import Network

    return CSREngine(Network(adjacency))


def luby_mis_recovering(
    adjacency,
    perturbations=(),
    seed: int = 0,
    fault_mode: str = "replay",
    method: str = "engine",
    coins="replay",
    max_rounds: int = 10_000,
    cap: int = REPAIR_ROUND_CAP,
    engine=None,
):
    """Luby MIS with post-run detect-and-repair.

    Runs the base pipeline under the bound perturbation stack on the
    requested backend (``method="engine"`` — hooked CSR engine,
    ``method="dense"`` — masked numpy kernel, bit-identical to the engine
    with ``coins="replay"``), then applies :func:`luby_repair`.  Returns
    ``(mis, rounds, repair)``: the surviving nodes' MIS set, the total
    simulated rounds (base + repair tail) and the :class:`RepairResult`.
    """
    import numpy as np

    from repro.scenarios.base import PerturbationHooks, bind_all
    from repro.scenarios.masks import DenseFaults

    require(method in ("engine", "dense"), f"unknown method {method!r}")
    engine = _build_engine(adjacency, engine)
    bound = bind_all(perturbations, engine.network, seed, fault_mode)
    if method == "dense":
        from repro.local.dense import luby_mis_dense

        result = luby_mis_dense(
            engine, seed=seed, coins=coins, max_rounds=max_rounds,
            faults=DenseFaults(engine, bound),
        )
        in_mis = result.in_mis.copy()
        crashed = result.crashed.copy()
        rounds = result.rounds
    else:
        from repro.mis.luby import LubyMIS

        result = engine.run(
            LubyMIS(), max_rounds=max_rounds, seed=seed,
            hooks=PerturbationHooks(bound),
        )
        in_mis = np.array([bool(v.state.get("in_mis")) for v in result.views])
        crashed = np.array([bool(v.state.get("crashed")) for v in result.views])
        rounds = result.rounds
    repair = luby_repair(
        engine, DenseFaults(engine, bound), seed, in_mis, crashed,
        start_round=rounds + 1, max_rounds=max_rounds, cap=cap,
    )
    mis = {int(i) for i in np.flatnonzero(in_mis & ~crashed)}
    return mis, repair.last_round, repair


def sinkless_recovering(
    adjacency,
    perturbations=(),
    min_degree: int = 1,
    seed: int = 0,
    fault_mode: str = "replay",
    method: str = "engine",
    coins="replay",
    max_rounds: int = 400,
    cap: int = REPAIR_ROUND_CAP,
    engine=None,
):
    """Trial-and-fix sinkless orientation with post-run detect-and-repair.

    Runs the base trial-and-fix under the bound stack (non-strict: an
    unrecovered base run is the repair's starting point, not an error),
    then applies :func:`sinkless_repair`.  The perturbation schedule must
    leave round 1 (the proposal exchange) clean, like every sinkless
    scenario.  Returns ``(orientation, rounds, repair)`` with the
    authoritative orientation dict over all nodes.
    """
    import numpy as np

    from repro.local.dense import dense_orientation
    from repro.scenarios.base import PerturbationHooks, bind_all
    from repro.scenarios.masks import DenseFaults

    require(method in ("engine", "dense"), f"unknown method {method!r}")
    engine = _build_engine(adjacency, engine)
    network = engine.network
    bound = bind_all(perturbations, network, seed, fault_mode)
    if method == "dense":
        from repro.local.dense import sinkless_trial_dense

        result = sinkless_trial_dense(
            engine, min_degree=min_degree, seed=seed, coins=coins,
            max_rounds=max_rounds, faults=DenseFaults(engine, bound),
            strict=False,
        )
        out = result.out.copy()
        crashed = result.crashed.copy()
        rounds = result.rounds
    else:
        from repro.orientation.sinkless import TrialAndFixSinkless, sinks
        from repro.scenarios.contracts import alive_mask, orientation_from_views

        def probe(round_no, views):
            if round_no < 2:
                return False
            orientation = orientation_from_views(network.adjacency, views)
            alive = alive_mask(views)
            return not any(
                alive[v] for v in sinks(network.adjacency, orientation, min_degree)
            )

        result = engine.run(
            TrialAndFixSinkless(min_degree=min_degree), max_rounds=max_rounds,
            seed=seed, probe=probe, hooks=PerturbationHooks(bound),
        )
        offsets, _, _ = engine.dense_arrays()
        out = np.zeros(int(offsets[-1]), dtype=bool)
        crashed = np.zeros(network.n, dtype=bool)
        for i, view in enumerate(result.views):
            base = int(offsets[i])
            for p, is_out in view.state.get("out", {}).items():
                out[base + p] = bool(is_out)
            crashed[i] = bool(view.state.get("crashed"))
        rounds = result.rounds
    repair = sinkless_repair(
        engine, DenseFaults(engine, bound), seed, out, crashed, min_degree,
        start_round=rounds + 1, max_rounds=max_rounds, cap=cap,
    )
    return dense_orientation(engine, out), repair.last_round, repair


def splitting_recovering(
    adjacency,
    spec,
    perturbations=(),
    seed: int = 0,
    fault_mode: str = "replay",
    method: str = "engine",
    coins="replay",
    max_attempts: int = 64,
    cap: int = REPAIR_ROUND_CAP,
    engine=None,
):
    """Las-Vegas uniform splitting with post-run detect-and-repair.

    Runs the standard per-attempt loop (each attempt rebinds the fault
    schedule on its own run seed, exactly like the scenario runner), then
    applies :func:`splitting_repair` to the final attempt's binding from
    round 2 on.  Returns ``(partition, rounds, repair)`` where ``rounds``
    counts one verification round per attempt plus the repair tail.
    """
    import numpy as np

    from repro.bipartite.instance import BLUE, RED
    from repro.scenarios.base import PerturbationHooks, bind_all
    from repro.scenarios.masks import DenseFaults

    require(method in ("engine", "dense"), f"unknown method {method!r}")
    engine = _build_engine(adjacency, engine)
    network = engine.network
    rng = ensure_rng(seed)
    run_seed = 0
    colors = np.full(network.n, BLUE, dtype=np.int64)
    crashed = np.zeros(network.n, dtype=bool)
    attempt_bound = ()
    accepted = False
    attempts = 0
    for attempts in range(1, max_attempts + 1):
        run_seed = rng.randrange(2**31)
        attempt_bound = bind_all(perturbations, network, run_seed, fault_mode)
        if method == "dense":
            from repro.local.dense import uniform_splitting_dense

            result = uniform_splitting_dense(
                engine, spec, seed=run_seed, coins=coins, red=RED, blue=BLUE,
                faults=DenseFaults(engine, attempt_bound),
            )
            colors = result.colors.astype(np.int64).copy()
            crashed = result.crashed.copy()
            accepted = result.ok
        else:
            from repro.apps.splitting import ZeroRoundSplitting

            result = engine.run(
                ZeroRoundSplitting(spec), max_rounds=1, seed=run_seed,
                hooks=PerturbationHooks(attempt_bound),
            )
            colors = np.array(
                [int(v.state["color"]) for v in result.views], dtype=np.int64
            )
            crashed = np.array(
                [bool(v.state.get("crashed")) for v in result.views]
            )
            accepted = all(
                v.output[1] for v in result.views if v.output is not None
            )
        if accepted:
            break
    repair = splitting_repair(
        engine, DenseFaults(engine, attempt_bound), spec, run_seed, colors,
        crashed, start_round=2, red=RED, blue=BLUE, cap=cap,
        edge_ok_mask=edge_ok_slot_mask(engine, attempt_bound),
    )
    return [int(c) for c in colors], attempts + repair.repair_rounds, repair
