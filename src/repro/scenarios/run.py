"""Scenario execution: drive a pipeline under a perturbation stack.

:func:`run_scenario` is the single entry point: it resolves a registered
:class:`~repro.scenarios.registry.Scenario` (or takes one directly), builds
the scenario graph, applies the stack's graph rewrites, binds the fault
schedule to the trial seed, executes the pipeline on the requested backend
and returns a flat dict of **resilience metrics** — the shape the sweep
runner (:mod:`repro.exp`) records straight into the BENCH json:

* ``rounds`` / ``completed`` — how long the run took and whether every
  surviving node decided;
* ``violations`` — contract defects on the surviving graph (plus
  pipeline-specific splits such as ``independence_violations``);
* ``survivors`` / ``crashed_nodes`` — who is left;
* ``rounds_to_recover`` — rounds executed after the last fault injection
  (only for schedules that settle);
* solution quality (``mis_size``, ``attempts``, ...) and the standard
  ``solve_seconds`` / ``setup_seconds`` timing channels.

Fault coins and node coins both derive from the trial ``seed`` but under
disjoint salt namespaces, so one seed axis drives the whole trial
reproducibly (see :func:`~repro.scenarios.base.fault_u01`).  The
``fault_mode`` knob selects the coin kernel — ``"replay"`` (historical,
bit-identity tested) or ``"mask"`` (counter-based, vectorized — the
performance mode for large-n dense sweeps); within either mode all
backends agree on the schedule.

Scenario cells are amortized like the :func:`~repro.exp.workloads.scenario_engine`
cache: the built graph, packed engine and dense slot layout for one
``(scenario, n, degree, graph_seed)`` cell are cached per process and
reused across trial seeds — only the seeds drive coins and fault
schedules, so packing and mask setup are paid once per cell.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Union

from repro.apps.splitting import ZeroRoundSplitting
from repro.bipartite.generators import configuration_model_regular, random_sparse_graph
from repro.core.problems import UniformSplittingSpec
from repro.local.engine import CSREngine
from repro.local.network import Network, run_local
from repro.mis.luby import LubyMIS
from repro.obs.hooks import TracingHooks
from repro.orientation.sinkless import TrialAndFixSinkless, sinks
from repro.scenarios.base import PerturbationHooks, bind_all, quiet_after, rewrite_all
from repro.scenarios.contracts import (
    alive_mask,
    final_edge_ok,
    mis_violations,
    orientation_from_views,
    splitting_violations,
    surviving_sinks,
)
from repro.scenarios.registry import Scenario, get_scenario
from repro.utils.rng import ensure_rng
from repro.utils.validation import require

__all__ = ["run_scenario"]

_DEFAULT_DEGREE = {"luby": 8, "sinkless": 4, "splitting": 40}


def _scenario_adjacency(sc: Scenario, n: int, degree: int, graph_seed: int):
    if sc.topology == "regular":
        if n * degree % 2:
            n += 1
        return configuration_model_regular(n, degree, seed=graph_seed)
    require(sc.topology == "sparse", f"unknown scenario topology {sc.topology!r}")
    return random_sparse_graph(n, float(degree), seed=graph_seed)


# Per-process cell cache: built network + packed engine + dense slot layout
# for one (scenario, n, degree, graph_seed) cell, reused across trial seeds
# (the seeds drive coins and fault schedules, never the topology).  Keyed by
# the Scenario object itself — registered scenarios are module singletons,
# ad-hoc ones simply miss.  Small FIFO cap: a sweep touches a handful of
# cells per worker.
_CELL_CACHE: dict = {}
_CELL_CACHE_MAX = 4


def _scenario_cell(sc: Scenario, n: int, degree: int, graph_seed: int, backend: str):
    """``(network, engine, layout, setup_seconds)`` for one scenario cell.

    ``setup_seconds`` is the graph build + rewrite + packing time paid by
    *this* call (0.0 on a full cache hit); ``engine`` is ``None`` for the
    reference backend, ``layout`` (a :class:`~repro.scenarios.masks.SlotLayout`)
    only exists for the dense backend.
    """
    key = (sc, int(n), int(degree), int(graph_seed))
    cell = _CELL_CACHE.get(key)
    setup_start = time.perf_counter()
    if cell is None:
        adjacency = _scenario_adjacency(sc, n, degree, graph_seed)
        adjacency, ids = rewrite_all(sc.perturbations, adjacency)
        cell = {"network": Network(adjacency, ids=ids), "engine": None, "layout": None}
        if len(_CELL_CACHE) >= _CELL_CACHE_MAX:
            _CELL_CACHE.pop(next(iter(_CELL_CACHE)))
        _CELL_CACHE[key] = cell
    if backend in ("engine", "dense") and cell["engine"] is None:
        cell["engine"] = CSREngine(cell["network"])
    if backend == "dense" and cell["layout"] is None:
        from repro.scenarios.masks import SlotLayout

        cell["engine"].dense_arrays()
        cell["layout"] = SlotLayout(cell["engine"])
    return cell["network"], cell["engine"], cell["layout"], (
        time.perf_counter() - setup_start
    )


def run_scenario(
    scenario: Union[str, Scenario],
    n: int = 600,
    degree: Optional[int] = None,
    seed: int = 0,
    graph_seed: int = 1,
    backend: str = "engine",
    adjacency=None,
    max_rounds: Optional[int] = None,
    coins: str = "philox",
    max_attempts: int = 64,
    fault_mode: str = "replay",
    tracer=None,
    recover: bool = False,
    return_state: bool = False,
):
    """Execute one scenario trial and return its resilience metrics.

    ``scenario`` is a registry name or a :class:`Scenario`;
    ``backend`` one of the scenario's supported executors (``reference`` —
    hooked :func:`run_local`, ``engine`` — hooked :class:`CSREngine`,
    ``dense`` — masked numpy kernels; ``coins`` selects the dense coin
    table, ``"replay"`` for engine-bit-identical runs).  ``fault_mode``
    selects the fault-coin kernel: ``"replay"`` reproduces the historical
    scalar schedule exactly (the bit-identity mode), ``"mask"`` uses the
    counter-based vectorized kernel — distribution-identical and cheap at
    large n, still bit-identical *across backends* for one mode.
    ``adjacency`` overrides the default scenario graph (the perturbation
    stack's graph rewrites are still applied on top; such runs bypass the
    cell cache).  ``seed`` drives both the algorithm's coins and the fault
    schedule; ``graph_seed`` only the topology.  ``max_rounds`` defaults
    per pipeline: 10_000 (luby), 400 (sinkless — every round pays an
    O(n + m) probe, and a run that has not recovered by then is recorded
    as incomplete, which is data).

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`; None by default) records
    one round record per executed round — via
    :class:`~repro.obs.hooks.TracingHooks` on the hook backends, via the
    kernels' own trace points on the dense backend — plus a final
    ``result`` event carrying this trial's metrics.

    ``recover=True`` runs the pipeline's *recovering* variant: after the
    base run the self-stabilizing repair layer
    (:mod:`repro.scenarios.recovery`) executes detect-and-repair rounds
    under the same fault schedule (round numbering continues, so late
    faults keep landing).  ``rounds`` then includes the repair tail (and
    so does ``rounds_to_recover``), ``violations`` is recomputed on the
    repaired state, and the metrics gain ``recovered``/``repair_rounds``/
    ``violations_before_recovery``.  Repair rounds are not traced.

    ``return_state=True`` returns ``(metrics, state)`` where ``state``
    holds the end state the contract was judged on (``alive`` plus the
    pipeline's solution and parameters) — the input shape of the exact
    certification oracle (:mod:`repro.verify.certify`).
    """
    sc = get_scenario(scenario) if isinstance(scenario, str) else scenario
    require(
        backend in sc.backends,
        f"scenario {sc.name!r} supports backends {sc.backends}, got {backend!r}",
    )
    require(
        not (sc.pipeline == "sinkless" and backend == "reference"),
        "the sinkless pipeline has no reference-mode driver (probe-driven); "
        "use backend='engine' or 'dense'",
    )
    if degree is None:
        degree = sc.degree if sc.degree is not None else _DEFAULT_DEGREE[sc.pipeline]
    if max_rounds is None:
        max_rounds = 400 if sc.pipeline == "sinkless" else 10_000

    layout = None
    # The repair layer runs on CSR arrays, so a recovering reference run
    # still needs the packed engine (the base run stays hook-driven).
    cell_backend = "engine" if (recover and backend == "reference") else backend
    if adjacency is None:
        network, engine, layout, setup_seconds = _scenario_cell(
            sc, n, degree, graph_seed, cell_backend
        )
    else:
        setup_start = time.perf_counter()
        adjacency, ids = rewrite_all(sc.perturbations, adjacency)
        network = Network(adjacency, ids=ids)
        engine = (
            CSREngine(network) if cell_backend in ("engine", "dense") else None
        )
        setup_seconds = time.perf_counter() - setup_start

    bound = bind_all(sc.perturbations, network, fault_seed=seed, fault_mode=fault_mode)
    quiet = quiet_after(bound)

    solve_start = time.perf_counter()
    if sc.pipeline == "luby":
        metrics, state = _run_luby(
            sc, network, engine, bound, backend, seed, max_rounds, coins, layout,
            tracer=tracer, recover=recover,
        )
    elif sc.pipeline == "sinkless":
        metrics, state = _run_sinkless(
            sc, network, engine, bound, backend, seed, max_rounds, coins, layout,
            tracer=tracer, recover=recover,
        )
    else:
        metrics, state = _run_splitting(
            sc, network, engine, backend, seed, degree, coins, max_attempts,
            fault_mode, layout, tracer=tracer, recover=recover,
        )
    metrics["solve_seconds"] = time.perf_counter() - solve_start

    metrics["n"] = network.n
    metrics["m"] = sum(len(a) for a in network.adjacency) // 2
    metrics["setup_seconds"] = setup_seconds
    # Split the setup tax for the analytics layer: graph build + packing
    # (``pack_seconds``, 0.0 on a cell-cache hit) vs per-run RNG
    # construction (``rng_seconds``, the ROADMAP's O(n) node_rng tax; the
    # pipelines record it into metrics from their result objects).
    metrics["pack_seconds"] = setup_seconds
    metrics.setdefault("rng_seconds", 0.0)
    if quiet is not None and quiet > 0:
        # Rounds the run needed after the last fault injection; omitted for
        # never-settling schedules (quiet=None) and fault-free stacks.
        metrics["rounds_to_recover"] = max(0, metrics["rounds"] - quiet)
    if sc.strict:
        require(
            metrics["violations"] == 0,
            f"strict scenario {sc.name!r} produced {metrics['violations']} violations",
        )
        require(
            metrics["completed"] == 1,
            f"strict scenario {sc.name!r} did not complete",
        )
    if tracer is not None and tracer.enabled:
        tracer.event("result", **metrics)
    if return_state:
        # Settling schedules back the recovery layer's zero-violation
        # guarantee; never-settling ones only promise best-effort repair.
        state["settles"] = quiet is not None
        return metrics, state
    return metrics


def _run_luby(sc, network, engine, bound, backend, seed, max_rounds, coins, layout=None,
              tracer=None, recover=False):
    adjacency = network.adjacency
    edge_ok = final_edge_ok(bound)
    if backend == "dense":
        from repro.local.dense import luby_mis_dense
        from repro.scenarios.masks import DenseFaults

        result = luby_mis_dense(
            engine, seed=seed, coins=coins, max_rounds=max_rounds,
            faults=DenseFaults(engine, bound, layout=layout), tracer=tracer,
        )
        alive = [not c for c in result.crashed]
        mis = {int(i) for i in result.in_mis.nonzero()[0]}
        completed = result.completed
        rounds = result.rounds
    else:
        hooks = PerturbationHooks(bound)
        if tracer is not None and tracer.enabled:
            hooks = TracingHooks(tracer, inner=hooks)
        if backend == "reference":
            result = run_local(network, LubyMIS(), max_rounds=max_rounds, seed=seed, hooks=hooks)
        else:
            result = engine.run(LubyMIS(), max_rounds=max_rounds, seed=seed, hooks=hooks)
        alive = alive_mask(result.views)
        mis = {
            i
            for i, v in enumerate(result.views)
            if alive[i] and v.state.get("in_mis")
        }
        completed = result.completed
        rounds = result.rounds
    metrics = {}
    if recover:
        import numpy as np

        from repro.scenarios.masks import DenseFaults
        from repro.scenarios.recovery import luby_repair

        if backend == "dense":
            in_mis = result.in_mis
            crashed = result.crashed
        else:
            in_mis = np.array([bool(v.state.get("in_mis")) for v in result.views])
            crashed = np.array([bool(v.state.get("crashed")) for v in result.views])
        pre_ind, pre_dom = mis_violations(adjacency, mis, alive=alive, edge_ok=edge_ok)
        # ``max_rounds`` bounds the base run only: a base run that stalled
        # against its cap is exactly the state repair exists for, so the
        # tail gets its own REPAIR_ROUND_CAP-bounded budget.
        rep = luby_repair(
            engine, DenseFaults(engine, bound, layout=layout), seed, in_mis,
            crashed, start_round=rounds + 1,
        )
        alive = [not bool(c) for c in crashed]
        mis = {i for i in range(network.n) if alive[i] and in_mis[i]}
        rounds = rep.last_round
        completed = bool(completed) or rep.recovered
        metrics["recovered"] = int(rep.recovered)
        metrics["repair_rounds"] = rep.repair_rounds
        metrics["violations_before_recovery"] = pre_ind + pre_dom
    independence, domination = mis_violations(adjacency, mis, alive=alive, edge_ok=edge_ok)
    survivors = sum(alive)
    metrics.update({
        "rounds": rounds,
        "completed": int(completed),
        "mis_size": len(mis),
        "survivors": survivors,
        "crashed_nodes": network.n - survivors,
        "independence_violations": independence,
        "domination_violations": domination,
        "violations": independence + domination,
        "rng_seconds": getattr(result, "rng_seconds", 0.0),
    })
    state = {
        "pipeline": "luby",
        "adjacency": adjacency,
        "mis": mis,
        "alive": alive,
        "edge_ok": edge_ok,
    }
    return metrics, state


def _round_one_delivers_clean(b, network, layout) -> bool:
    """Whether perturbation ``b`` delivers every round-1 message.

    Uses the vectorized mask when the dense slot layout is at hand (one
    kernel call instead of an O(m) scalar sweep); falls back to the pure
    per-message decision otherwise.
    """
    if layout is not None:
        mask = b.delivers_mask(1, layout.out_sender, layout.out_port)
        if mask is not NotImplemented:
            return mask is None or bool(mask.all())
    return all(
        b.delivers(1, s, p)
        for s in range(network.n)
        for p in range(len(network.adjacency[s]))
    )


def _round_one_corruption_free(b, network, layout) -> bool:
    """Whether perturbation ``b`` leaves every round-1 payload intact."""
    if not getattr(b, "corrupts_messages", False):
        return True
    if layout is not None:
        mask = b.corrupts_mask(1, layout.out_sender, layout.out_port)
        if mask is not NotImplemented:
            return mask is None or not bool(mask.any())
    return not any(
        b.corrupts(1, s, p)
        for s in range(network.n)
        for p in range(len(network.adjacency[s]))
    )


def _run_sinkless(sc, network, engine, bound, backend, seed, max_rounds, coins,
                  layout=None, tracer=None, recover=False):
    adjacency = network.adjacency
    min_degree = sc.min_degree
    # Fault schedules for sinkless must leave round 1 (the proposal
    # exchange) clean — the dense kernel's fault window starts at round 2,
    # so a round-1 fault would silently diverge between backends instead of
    # degrading gracefully.  Enforce it as a loud error rather than wrong
    # data (vectorized where the slot layout exists).
    for b in bound:
        require(
            not tuple(b.crashes(1)),
            "sinkless scenarios must leave round 1 clean: schedule crashes "
            "from round 2 on (e.g. CrashNodes(at_round=2))",
        )
        require(
            _round_one_delivers_clean(b, network, layout),
            "sinkless scenarios must leave round 1 clean: start message "
            "faults from round 2 (e.g. IIDMessageDrop(from_round=2))",
        )
        require(
            _round_one_corruption_free(b, network, layout),
            "sinkless scenarios must leave round 1 clean: start Byzantine "
            "corruption from round 2 (e.g. CorruptMessages(from_round=2))",
        )
    # Recovery dynamics start with the fix rounds.
    if backend == "dense":
        from repro.local.dense import sinkless_trial_dense
        from repro.scenarios.masks import DenseFaults

        result = sinkless_trial_dense(
            engine, min_degree=min_degree, seed=seed, coins=coins,
            max_rounds=max_rounds, faults=DenseFaults(engine, bound, layout=layout),
            strict=False, tracer=tracer,
        )
        alive = [not c for c in result.crashed]
        from repro.local.dense import dense_orientation

        orientation = dense_orientation(engine, result.out)
        completed = result.completed
        rounds = result.rounds
    else:
        hooks = PerturbationHooks(bound)
        if tracer is not None and tracer.enabled:
            hooks = TracingHooks(tracer, inner=hooks)

        # Stop when no *alive* node is a full-graph sink — the strongest
        # condition the algorithm can reach: crashes are silent, so a node
        # whose outgoing edge leads to a dead neighbor rightly believes it
        # is done.  Residual surviving-subgraph sinks are recorded as
        # violations below.  (This is exactly the dense kernel's probe.)
        def probe(round_no: int, views) -> bool:
            if round_no < 2:
                return False
            orientation = orientation_from_views(adjacency, views)
            alive = alive_mask(views)
            return not any(alive[v] for v in sinks(adjacency, orientation, min_degree))

        result = engine.run(
            TrialAndFixSinkless(min_degree=min_degree),
            max_rounds=max_rounds, seed=seed, probe=probe, hooks=hooks,
        )
        alive = alive_mask(result.views)
        orientation = orientation_from_views(adjacency, result.views)
        rounds = result.rounds
        completed = rounds >= 2 and not any(
            alive[v] for v in sinks(adjacency, orientation, min_degree)
        )
    metrics = {}
    if recover:
        import numpy as np

        from repro.local.dense import dense_orientation
        from repro.scenarios.masks import DenseFaults
        from repro.scenarios.recovery import sinkless_repair

        if backend == "dense":
            out = result.out
            crashed = result.crashed
        else:
            offsets, _, _ = engine.dense_arrays()
            out = np.zeros(int(offsets[-1]), dtype=bool)
            crashed = np.zeros(network.n, dtype=bool)
            for i, view in enumerate(result.views):
                base = int(offsets[i])
                for p, is_out in view.state.get("out", {}).items():
                    out[base + p] = bool(is_out)
                crashed[i] = bool(view.state.get("crashed"))
        pre = len(surviving_sinks(adjacency, orientation, alive, min_degree))
        # Base-run cap only; the repair tail is REPAIR_ROUND_CAP-bounded
        # (a base run livelocked by corrupted flips *needs* the tail).
        rep = sinkless_repair(
            engine, DenseFaults(engine, bound, layout=layout), seed, out,
            crashed, min_degree, start_round=rounds + 1,
        )
        alive = [not bool(c) for c in crashed]
        orientation = dense_orientation(engine, out)
        rounds = rep.last_round
        completed = bool(completed) or rep.recovered
        metrics["recovered"] = int(rep.recovered)
        metrics["repair_rounds"] = rep.repair_rounds
        metrics["violations_before_recovery"] = pre
    remaining = surviving_sinks(adjacency, orientation, alive, min_degree)
    survivors = sum(alive)
    metrics.update({
        "rounds": rounds,
        "completed": int(completed),
        "survivors": survivors,
        "crashed_nodes": network.n - survivors,
        "violations": len(remaining),
        "rng_seconds": getattr(result, "rng_seconds", 0.0),
    })
    state = {
        "pipeline": "sinkless",
        "adjacency": adjacency,
        "orientation": orientation,
        "alive": alive,
        "min_degree": min_degree,
    }
    return metrics, state


def _run_splitting(sc, network, engine, backend, seed, degree, coins, max_attempts,
                   fault_mode="replay", layout=None, tracer=None, recover=False):
    adjacency = network.adjacency
    spec = UniformSplittingSpec(eps=sc.eps, min_constrained_degree=max(2, degree // 2))
    rng = ensure_rng(seed)
    if backend == "dense":
        from repro.local.dense import uniform_splitting_dense
        from repro.scenarios.masks import DenseFaults
    partition: List[Optional[int]] = [None] * network.n
    alive = [True] * network.n
    accepted = False
    attempts = 0
    rng_seconds = 0.0
    for attempts in range(1, max_attempts + 1):
        run_seed = rng.randrange(2**31)
        # Every attempt is one fresh round-1 execution, so the fault
        # schedule rebinds on the attempt's own seed — otherwise a lossy
        # environment would replay the identical drop pattern against all
        # retries (a frozen adversary instead of an i.i.d. channel).
        attempt_bound = bind_all(
            sc.perturbations, network, fault_seed=run_seed, fault_mode=fault_mode
        )
        if backend == "dense":
            result = uniform_splitting_dense(
                engine, spec, seed=run_seed, coins=coins,
                faults=DenseFaults(engine, attempt_bound, layout=layout),
                tracer=tracer,
            )
            partition = [int(c) for c in result.colors]
            alive = [not c for c in result.crashed]
            accepted = result.ok
            rng_seconds += result.rng_seconds
        else:
            hooks = PerturbationHooks(attempt_bound)
            if tracer is not None and tracer.enabled:
                hooks = TracingHooks(tracer, inner=hooks)
            algorithm = ZeroRoundSplitting(spec)
            if backend == "reference":
                result = run_local(network, algorithm, max_rounds=1, seed=run_seed, hooks=hooks)
            else:
                result = engine.run(algorithm, max_rounds=1, seed=run_seed, hooks=hooks)
            alive = alive_mask(result.views)
            partition = [
                v.output[0] if alive[i] and v.output is not None else v.state.get("color")
                for i, v in enumerate(result.views)
            ]
            accepted = all(
                v.output[1]
                for i, v in enumerate(result.views)
                if alive[i] and v.output is not None
            )
            rng_seconds += result.rng_seconds
        if accepted:
            break
    # Ground truth for the attempt that actually stood (its binding decides
    # the final edge set under edge-dropping perturbations).
    edge_ok = final_edge_ok(attempt_bound)
    rounds = attempts  # one communication round per Las-Vegas attempt
    completed = accepted
    metrics = {}
    if recover:
        import numpy as np

        from repro.bipartite.instance import BLUE, RED
        from repro.scenarios.masks import DenseFaults
        from repro.scenarios.recovery import edge_ok_slot_mask, splitting_repair

        colors = np.asarray(partition, dtype=np.int64)
        crashed = np.array([not a for a in alive], dtype=bool)
        pre = len(
            splitting_violations(adjacency, partition, spec, alive=alive, edge_ok=edge_ok)
        )
        # Repair continues the final attempt's environment: its binding is
        # the schedule still in force and its run seed keys the repair coins.
        rep = splitting_repair(
            engine, DenseFaults(engine, attempt_bound, layout=layout), spec,
            run_seed, colors, crashed, start_round=2, red=RED, blue=BLUE,
            edge_ok_mask=edge_ok_slot_mask(engine, attempt_bound),
        )
        partition = [int(c) for c in colors]
        alive = [not bool(c) for c in crashed]
        rounds = attempts + rep.repair_rounds
        completed = bool(accepted) or rep.recovered
        metrics["recovered"] = int(rep.recovered)
        metrics["repair_rounds"] = rep.repair_rounds
        metrics["violations_before_recovery"] = pre
    bad = splitting_violations(
        adjacency, partition, spec, alive=alive, edge_ok=edge_ok
    )
    survivors = sum(alive)
    constrained = sum(
        1
        for i in range(network.n)
        if alive[i]
        and spec.constrains(sum(1 for j in adjacency[i] if alive[j]))
    )
    metrics.update({
        "rounds": rounds,
        "completed": int(completed),
        "attempts": attempts,
        "accepted": int(accepted),
        "survivors": survivors,
        "crashed_nodes": network.n - survivors,
        "constrained": constrained,
        "violations": len(bad),
        "rng_seconds": rng_seconds,
    })
    state = {
        "pipeline": "splitting",
        "adjacency": adjacency,
        "partition": partition,
        "alive": alive,
        "spec": spec,
        "edge_ok": edge_ok,
    }
    return metrics, state
