"""Correlated crash sets and Byzantine message corruption.

Two harder fault families than the IID models in :mod:`repro.scenarios.faults`:

* :class:`CorrelatedCrash` — spatially-clustered fail-stop faults: the
  victim set is a BFS ball around a coin-picked center (``mode="ball"``) or
  a shard-aligned contiguous node-range (``mode="shard"``, the failure
  domain of one :mod:`repro.local.sharded` worker dying).  Binding reuses
  the :class:`~repro.scenarios.faults._BoundCrash` schedule, so the whole
  vectorized crash-mask surface applies unchanged.
* :class:`CorruptMessages` — a Byzantine channel adversary: each delivered
  message is independently rewritten with probability ``p`` during the
  active window.  The *decision* (which slots are corrupted) runs on the
  counter-based :func:`~repro.scenarios.base.fault_u01_array` kernels with
  a replay mode, exactly like drops, so mask-mode corruption schedules
  stay vectorized and bit-identical across the hooked executors and the
  dense kernels.  The *rewrite* (:func:`corrupt_payload`) is one pure
  payload function covering the three shipped pipelines' vocabularies —
  forged Luby priorities, flipped join/stay and flip/ok bits, flipped
  proposal coins and splitting colors — which the dense kernels mirror as
  per-slot semantic masks (see ``corrupted_in``/``corrupted_out`` in
  :class:`~repro.scenarios.masks.DenseFaults`).
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.local.network import Network
from repro.scenarios.base import (
    BoundPerturbation,
    Perturbation,
    fault_u01,
    fault_u01_array,
    fault_u01_mix,
)
from repro.scenarios.faults import _BoundCrash
from repro.utils.validation import require

__all__ = ["CorrelatedCrash", "CorruptMessages", "corrupt_payload", "FORGED_PRIORITY"]

#: A priority no honest Luby draw can beat: genuine priorities are
#: ``(rng.random() < 1.0, uid)`` tuples, so ``(2.0, big)`` always wins the
#: lexicographic comparison — a forged-winner payload.
FORGED_PRIORITY = (2.0, 1 << 62)


def corrupt_payload(message):
    """The Byzantine rewrite: one pure payload function for all pipelines.

    Covers every message the shipped pipelines emit; unknown payloads pass
    through unchanged (a corrupted message an algorithm ignores is a no-op,
    matching the dense kernels, which only mask the semantic bits they
    consume).
    """
    if type(message) is int and message in (0, 1):
        return 1 - message  # splitting color broadcast: RED <-> BLUE
    if isinstance(message, tuple) and message:
        kind = message[0]
        if kind == "prio":
            return ("prio", FORGED_PRIORITY)
        if kind == "join":
            return ("stay",)
        if kind == "stay":
            return ("join",)
        if kind == "flip":
            return ("ok",) + message[1:]
        if kind == "ok":
            return ("flip",) + message[1:]
        if kind == "prop":
            return ("prop", not message[1]) + message[2:]
    return message


class CorrelatedCrash(Perturbation):
    """Crash a spatially-correlated victim set at round ``at_round``.

    ``mode="ball"`` grows a BFS ball around a center picked by one fault
    coin per node (lowest coin wins; the ball spills into the next-lowest
    unvisited center when a component is exhausted, so the count is always
    met).  ``mode="shard"`` crashes one contiguous ``count``-sized
    node-range block — the node-aligned failure domain of a sharded
    worker — picked by a single fault coin.  Selection happens at bind
    time under the bound ``fault_mode`` (one ``fault_u01_array`` kernel
    call in mask mode), and the bound schedule is the same vectorized
    :class:`~repro.scenarios.faults._BoundCrash` that :class:`CrashNodes`
    uses, so ``quiet_after``/steady-mask reuse apply unchanged.
    """

    def __init__(self, fraction: float = 0.15, at_round: int = 3, mode: str = "ball"):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 1, f"at_round must be >= 1, got {at_round}")
        require(mode in ("ball", "shard"), f"unknown correlation mode {mode!r}")
        self.fraction = fraction
        self.at_round = at_round
        self.mode = mode

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> _BoundCrash:
        n = network.n
        count = int(round(self.fraction * n))
        if self.fraction > 0 and n > 0:
            count = max(1, count)
        count = min(count, n)
        if count == 0:
            return _BoundCrash((), self.at_round)
        if self.mode == "shard":
            if fault_mode == "mask":
                u = fault_u01_mix(fault_seed, "crash-shard", 0)
            else:
                u = fault_u01(fault_seed, "crash-shard", 0)
            blocks = (n + count - 1) // count
            start = min(int(u * blocks), blocks - 1) * count
            victims = range(start, min(start + count, n))
            return _BoundCrash(tuple(victims), self.at_round)
        import numpy as np  # lazy, like the fault-coin kernels

        ids = np.asarray(network.ids, dtype=np.int64)
        u = fault_u01_array(fault_seed, "crash-ball", ids, mode=fault_mode)
        centers = np.argsort(u, kind="stable")
        victims: list = []
        seen = set()
        for c in centers:
            if len(victims) >= count:
                break
            c = int(c)
            if c in seen:
                continue
            queue = deque([c])
            seen.add(c)
            while queue and len(victims) < count:
                v = queue.popleft()
                victims.append(v)
                for w in network.adjacency[v]:
                    if w not in seen:
                        seen.add(w)
                        queue.append(w)
        return _BoundCrash(tuple(sorted(victims)), self.at_round)


class CorruptMessages(Perturbation):
    """Byzantine corruption: each delivered message is rewritten with
    probability ``p`` for rounds in ``[from_round, until_round]``
    (``until_round=None`` = forever; the scenario then has no recovery
    point).  Corruption is per *directed* message, independent across the
    two directions of an edge, keyed like drops on
    ``(fault_seed, "corrupt", sender uid, round, port)``.
    """

    def __init__(self, p: float = 0.1, from_round: int = 1, until_round: Optional[int] = None):
        require(0.0 <= p <= 1.0, f"p must be in [0, 1], got {p}")
        require(from_round >= 1, f"from_round must be >= 1, got {from_round}")
        require(
            until_round is None or until_round >= from_round,
            "until_round must be >= from_round",
        )
        self.p = p
        self.from_round = from_round
        self.until_round = until_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundCorrupt":
        return _BoundCorrupt(
            network.ids, fault_seed, self.p, self.from_round, self.until_round,
            fault_mode,
        )


class _BoundCorrupt(BoundPerturbation):
    corrupts_messages = True

    def __init__(self, ids, fault_seed, p, from_round, until_round, fault_mode="replay"):
        self.ids = ids
        self.fault_seed = fault_seed
        self.p = p
        self.from_round = from_round
        self.until_round = until_round
        self.quiet_after = until_round
        self.fault_mode = fault_mode
        self._uid_arr = None

    def _quiet(self, round_no: int) -> bool:
        if round_no < self.from_round:
            return True
        return self.until_round is not None and round_no > self.until_round

    def corrupts(self, round_no: int, sender: int, port: int) -> bool:
        if self._quiet(round_no):
            return False
        if self.fault_mode == "mask":
            u = fault_u01_mix(
                self.fault_seed, "corrupt", self.ids[sender], round_no, port
            )
        else:
            u = fault_u01(self.fault_seed, "corrupt", self.ids[sender], round_no, port)
        return u < self.p

    def corrupts_mask(self, round_no: int, senders, ports):
        if self._quiet(round_no):
            return None
        if self._uid_arr is None:
            import numpy as np

            self._uid_arr = np.asarray(self.ids, dtype=np.int64)
        u = fault_u01_array(
            self.fault_seed, "corrupt", self._uid_arr[senders], round_no, ports,
            mode=self.fault_mode,
        )
        return u < self.p

    def corrupt_payload(self, message):
        return corrupt_payload(message)
