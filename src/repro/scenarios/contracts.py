"""Validity contracts under faults: verify what survived.

A clean-run verifier asks "is this output correct?".  Under crashes and
dynamic edges the honest question is "how correct is the output *on the
graph that remains*?" — crashed nodes are excluded, deleted edges are
excluded, and the contract returns a **violation count** instead of a
boolean, so resilience becomes a measured axis rather than a pass/fail.

Conventions shared by all contracts here:

* ``alive[i]`` — node ``i`` did not crash (a normally-terminated node is
  alive);
* the *surviving graph* has the alive nodes and the edges whose
  ``edge_ok(i, p)`` predicate holds on both endpoints' ports (the
  conjunction of the perturbation stack's
  :meth:`~repro.scenarios.base.BoundPerturbation.edge_alive_final`);
* degrees, degree thresholds and neighbor counts are all computed on the
  surviving graph.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import RED

__all__ = [
    "alive_mask",
    "final_edge_ok",
    "orientation_from_views",
    "mis_violations",
    "surviving_sinks",
    "splitting_violations",
]

Adjacency = Sequence[Sequence[int]]
EdgeOk = Callable[[int, int], bool]


def alive_mask(views) -> List[bool]:
    """Per-node survival flags from simulator views (crash marker unset)."""
    return [not v.state.get("crashed") for v in views]


def final_edge_ok(bound) -> EdgeOk:
    """Conjunction of the stack's final-graph edge predicates."""

    def ok(sender: int, port: int) -> bool:
        return all(b.edge_alive_final(sender, port) for b in bound)

    return ok


def orientation_from_views(adjacency: Adjacency, views) -> Dict[Tuple[int, int], bool]:
    """Extract ``{(u, v): True}`` from sinkless node states.

    Same rule as the driver in :mod:`repro.orientation.sinkless`: the lower-
    index endpoint's ``state["out"]`` is authoritative for each edge —
    including frozen state of crashed nodes, which is exactly what the rest
    of the network observes.
    """
    orientation: Dict[Tuple[int, int], bool] = {}
    for i, view in enumerate(views):
        out = view.state.get("out", {})
        for p, is_out in out.items():
            j = adjacency[i][p]
            if i < j:
                orientation[(i, j) if is_out else (j, i)] = True
    return orientation


def mis_violations(
    adjacency: Adjacency,
    mis: Set[int],
    alive: Optional[Sequence[bool]] = None,
    edge_ok: Optional[EdgeOk] = None,
) -> Tuple[int, int]:
    """MIS defects on the surviving graph.

    Returns ``(independence, domination)``: the number of surviving edges
    with both endpoints in the MIS, and the number of alive non-MIS nodes
    with no alive MIS neighbor over a surviving edge (isolated alive nodes
    outside the MIS count — they are undominated).
    """
    n = len(adjacency)
    if alive is None:
        alive = [True] * n
    independence = 0
    domination = 0
    for i in range(n):
        if not alive[i]:
            continue
        dominated = i in mis
        for p, j in enumerate(adjacency[i]):
            if not alive[j]:
                continue
            if edge_ok is not None and not edge_ok(i, p):
                continue
            if j in mis:
                if i in mis and i < j:
                    independence += 1
                dominated = True
        if not dominated:
            domination += 1
    return independence, domination


def surviving_sinks(
    adjacency: Adjacency,
    orientation: Dict[Tuple[int, int], bool],
    alive: Sequence[bool],
    min_degree: int = 1,
) -> List[int]:
    """Sinks among the alive nodes on the alive-induced subgraph.

    A node is accountable if its count of alive neighbors is at least
    ``min_degree``; it violates if none of its outgoing edges leads to an
    alive node.  (An outgoing edge into a crashed node no longer helps: in
    the surviving graph that edge is gone.)
    """
    n = len(adjacency)
    out_alive = [0] * n
    for (u, v) in orientation:
        if alive[u] and alive[v]:
            out_alive[u] += 1
    bad: List[int] = []
    for i in range(n):
        if not alive[i]:
            continue
        alive_degree = sum(1 for j in adjacency[i] if alive[j])
        if alive_degree >= min_degree and out_alive[i] == 0:
            bad.append(i)
    return bad


def splitting_violations(
    adjacency: Adjacency,
    partition: Sequence,
    spec,
    alive: Optional[Sequence[bool]] = None,
    edge_ok: Optional[EdgeOk] = None,
) -> List[int]:
    """Uniform-splitting defects on the surviving graph.

    Degrees, the ``spec.constrains`` threshold and the red-neighbor bounds
    are all evaluated on the surviving graph; crashed (uncolored) nodes are
    neither constrained nor counted.
    """
    n = len(adjacency)
    if alive is None:
        alive = [True] * n
    bad: List[int] = []
    for i in range(n):
        if not alive[i]:
            continue
        degree = 0
        red = 0
        for p, j in enumerate(adjacency[i]):
            if not alive[j]:
                continue
            if edge_ok is not None and not edge_ok(i, p):
                continue
            degree += 1
            if partition[j] == RED:
                red += 1
        if spec.constrains(degree) and not (spec.lo(degree) <= red <= spec.hi(degree)):
            bad.append(i)
    return bad
