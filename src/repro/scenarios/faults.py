"""Node-crash and message-loss perturbations.

Three classic fault models from the distributed-computing literature:

* :class:`CrashNodes` — crash (fail-stop) faults: a deterministic victim
  set halts at the start of one round and never speaks again;
* :class:`IIDMessageDrop` — independent per-message loss with probability
  ``p`` (an oblivious lossy-link adversary);
* :class:`MuteHubs` — an adversarial schedule that silences the
  highest-degree nodes for a prefix of the execution, the worst case for
  algorithms whose progress is carried by hubs.

All schedules are deterministic functions of the bind-time ``fault_seed``
and ``fault_mode`` (see :func:`~repro.scenarios.base.fault_u01` /
:func:`~repro.scenarios.base.fault_u01_mix`), so a faulty run is exactly
reproducible and bit-identical across executors.  Every bound class
implements the vectorized ``delivers_mask`` / ``crashes_mask`` surface:
i.i.d. drops collapse to one counter-based hash kernel call per round,
victim-set models to an ``np.isin`` / index scatter.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.local.network import Network
from repro.scenarios.base import (
    BoundPerturbation,
    Perturbation,
    fault_u01,
    fault_u01_array,
    fault_u01_mix,
)
from repro.utils.validation import require

__all__ = ["CrashNodes", "IIDMessageDrop", "MuteHubs"]


class CrashNodes(Perturbation):
    """Crash a deterministic set of nodes at the start of round ``at_round``.

    ``fraction`` of the nodes (at least one, if the graph is non-empty and
    ``fraction > 0``) is selected either uniformly (``select="random"``,
    keyed by fault coins on the node uids) or adversarially
    (``select="hubs"``: the highest-degree nodes go first).  Victim
    selection happens once at bind time and follows the fault-coin mode:
    ``fault_mode="mask"`` draws every node's selection coin in one
    counter-based :func:`~repro.scenarios.base.fault_u01_array` kernel
    call (no per-node RNG construction — the bind is O(n) numpy work, not
    O(n) sha512 ``random.Random`` builds), while ``fault_mode="replay"``
    reproduces the historical per-node :func:`fault_u01` selection
    bit-for-bit.  ``select="hubs"`` is coin-free and mode-independent.
    """

    def __init__(self, fraction: float = 0.1, at_round: int = 3, select: str = "random"):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 1, f"at_round must be >= 1, got {at_round}")
        require(select in ("random", "hubs"), f"unknown selection rule {select!r}")
        self.fraction = fraction
        self.at_round = at_round
        self.select = select

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundCrash":
        n = network.n
        count = int(round(self.fraction * n))
        if self.fraction > 0 and n > 0:
            count = max(1, count)
        if count == 0:
            return _BoundCrash((), self.at_round)
        if self.select == "hubs":
            order = sorted(
                range(n), key=lambda i: (-len(network.adjacency[i]), -network.ids[i])
            )
            victims = order[:count]
        else:
            import numpy as np  # lazy, like the fault-coin kernels

            ids = np.asarray(network.ids, dtype=np.int64)
            u = fault_u01_array(fault_seed, "crash", ids, mode=fault_mode)
            # Stable argsort ties match the stable python sort the replay
            # selection historically ran, so replay mode stays bit-compatible.
            victims = np.argsort(u, kind="stable")[:count].tolist()
        return _BoundCrash(tuple(sorted(int(v) for v in victims)), self.at_round)


class _BoundCrash(BoundPerturbation):
    crashes_nodes = True

    def __init__(self, victims: Tuple[int, ...], at_round: int):
        self.victims = victims
        self.at_round = at_round
        self.quiet_after = at_round
        self._victim_mask = None  # built on first crashes_mask call

    def crashes(self, round_no: int):
        return self.victims if round_no == self.at_round else ()

    def crashes_mask(self, round_no: int, n: int):
        if round_no != self.at_round or not self.victims:
            return None
        if self._victim_mask is None:
            import numpy as np

            mask = np.zeros(n, dtype=bool)
            mask[list(self.victims)] = True
            self._victim_mask = mask
        return self._victim_mask


class IIDMessageDrop(Perturbation):
    """Each message is lost independently with probability ``p``.

    Active for rounds in ``[from_round, until_round]`` (``until_round=None``
    = forever, in which case the scenario has no recovery point and the
    runner omits ``rounds_to_recover``).  Loss is per *directed* message —
    the two directions of an edge fail independently, like a lossy duplex
    link.
    """

    def __init__(self, p: float = 0.05, from_round: int = 1, until_round: Optional[int] = None):
        require(0.0 <= p <= 1.0, f"p must be in [0, 1], got {p}")
        require(from_round >= 1, f"from_round must be >= 1, got {from_round}")
        require(
            until_round is None or until_round >= from_round,
            "until_round must be >= from_round",
        )
        self.p = p
        self.from_round = from_round
        self.until_round = until_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundIIDDrop":
        return _BoundIIDDrop(
            network.ids, fault_seed, self.p, self.from_round, self.until_round,
            fault_mode,
        )


class _BoundIIDDrop(BoundPerturbation):
    drops_messages = True

    def __init__(self, ids, fault_seed, p, from_round, until_round, fault_mode="replay"):
        self.ids = ids
        self.fault_seed = fault_seed
        self.p = p
        self.from_round = from_round
        self.until_round = until_round
        self.quiet_after = until_round
        self.fault_mode = fault_mode
        self._uid_arr = None

    def _quiet(self, round_no: int) -> bool:
        if round_no < self.from_round:
            return True
        return self.until_round is not None and round_no > self.until_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        if self._quiet(round_no):
            return True
        if self.fault_mode == "mask":
            u = fault_u01_mix(
                self.fault_seed, "drop", self.ids[sender], round_no, port
            )
        else:
            u = fault_u01(self.fault_seed, "drop", self.ids[sender], round_no, port)
        return u >= self.p

    def delivers_mask(self, round_no: int, senders, ports):
        if self._quiet(round_no):
            return None
        if self._uid_arr is None:
            import numpy as np

            self._uid_arr = np.asarray(self.ids, dtype=np.int64)
        # One hash-kernel call for the whole round (replay mode falls back
        # to the scalar chain internally, elementwise-identical to
        # ``delivers``).
        u = fault_u01_array(
            self.fault_seed, "drop", self._uid_arr[senders], round_no, ports,
            mode=self.fault_mode,
        )
        return u >= self.p


class MuteHubs(Perturbation):
    """Adversarial silence: the top-``count`` degree nodes deliver nothing
    for rounds ``1..until_round`` (their outgoing messages are dropped; they
    still receive and compute).  Ties break on higher uid.
    """

    def __init__(self, count: int = 3, until_round: int = 4):
        require(count >= 1, f"count must be >= 1, got {count}")
        require(until_round >= 1, f"until_round must be >= 1, got {until_round}")
        self.count = count
        self.until_round = until_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundMute":
        order = sorted(
            range(network.n),
            key=lambda i: (-len(network.adjacency[i]), -network.ids[i]),
        )
        return _BoundMute(frozenset(order[: self.count]), self.until_round)


class _BoundMute(BoundPerturbation):
    drops_messages = True

    def __init__(self, victims: frozenset, until_round: int):
        self.victims = victims
        self.until_round = until_round
        self.quiet_after = until_round
        self._victim_arr = None

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no > self.until_round or sender not in self.victims

    def delivers_mask(self, round_no: int, senders, ports):
        if round_no > self.until_round or not self.victims:
            return None
        import numpy as np

        if self._victim_arr is None:
            self._victim_arr = np.array(sorted(self.victims), dtype=np.int64)
        return ~np.isin(senders, self._victim_arr)
