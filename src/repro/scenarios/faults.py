"""Node-crash and message-loss perturbations.

Three classic fault models from the distributed-computing literature:

* :class:`CrashNodes` — crash (fail-stop) faults: a deterministic victim
  set halts at the start of one round and never speaks again;
* :class:`IIDMessageDrop` — independent per-message loss with probability
  ``p`` (an oblivious lossy-link adversary);
* :class:`MuteHubs` — an adversarial schedule that silences the
  highest-degree nodes for a prefix of the execution, the worst case for
  algorithms whose progress is carried by hubs.

All schedules are deterministic functions of the bind-time ``fault_seed``
(see :func:`~repro.scenarios.base.fault_u01`), so a faulty run is exactly
reproducible and bit-identical across executors.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.local.network import Network
from repro.scenarios.base import BoundPerturbation, Perturbation, fault_u01
from repro.utils.validation import require

__all__ = ["CrashNodes", "IIDMessageDrop", "MuteHubs"]


class CrashNodes(Perturbation):
    """Crash a deterministic set of nodes at the start of round ``at_round``.

    ``fraction`` of the nodes (at least one, if the graph is non-empty and
    ``fraction > 0``) is selected either uniformly (``select="random"``,
    keyed by fault coins on the node uids) or adversarially
    (``select="hubs"``: the highest-degree nodes go first).
    """

    def __init__(self, fraction: float = 0.1, at_round: int = 3, select: str = "random"):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 1, f"at_round must be >= 1, got {at_round}")
        require(select in ("random", "hubs"), f"unknown selection rule {select!r}")
        self.fraction = fraction
        self.at_round = at_round
        self.select = select

    def bind(self, network: Network, fault_seed: int) -> "_BoundCrash":
        n = network.n
        count = int(round(self.fraction * n))
        if self.fraction > 0 and n > 0:
            count = max(1, count)
        if self.select == "hubs":
            order = sorted(
                range(n), key=lambda i: (-len(network.adjacency[i]), -network.ids[i])
            )
        else:
            order = sorted(
                range(n), key=lambda i: fault_u01(fault_seed, "crash", network.ids[i])
            )
        return _BoundCrash(tuple(sorted(order[:count])), self.at_round)


class _BoundCrash(BoundPerturbation):
    crashes_nodes = True

    def __init__(self, victims: Tuple[int, ...], at_round: int):
        self.victims = victims
        self.at_round = at_round
        self.quiet_after = at_round

    def crashes(self, round_no: int):
        return self.victims if round_no == self.at_round else ()


class IIDMessageDrop(Perturbation):
    """Each message is lost independently with probability ``p``.

    Active for rounds in ``[from_round, until_round]`` (``until_round=None``
    = forever, in which case the scenario has no recovery point and the
    runner omits ``rounds_to_recover``).  Loss is per *directed* message —
    the two directions of an edge fail independently, like a lossy duplex
    link.
    """

    def __init__(self, p: float = 0.05, from_round: int = 1, until_round: Optional[int] = None):
        require(0.0 <= p <= 1.0, f"p must be in [0, 1], got {p}")
        require(from_round >= 1, f"from_round must be >= 1, got {from_round}")
        require(
            until_round is None or until_round >= from_round,
            "until_round must be >= from_round",
        )
        self.p = p
        self.from_round = from_round
        self.until_round = until_round

    def bind(self, network: Network, fault_seed: int) -> "_BoundIIDDrop":
        return _BoundIIDDrop(
            network.ids, fault_seed, self.p, self.from_round, self.until_round
        )


class _BoundIIDDrop(BoundPerturbation):
    drops_messages = True

    def __init__(self, ids, fault_seed, p, from_round, until_round):
        self.ids = ids
        self.fault_seed = fault_seed
        self.p = p
        self.from_round = from_round
        self.until_round = until_round
        self.quiet_after = until_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        if round_no < self.from_round:
            return True
        if self.until_round is not None and round_no > self.until_round:
            return True
        return (
            fault_u01(self.fault_seed, "drop", self.ids[sender], round_no, port)
            >= self.p
        )


class MuteHubs(Perturbation):
    """Adversarial silence: the top-``count`` degree nodes deliver nothing
    for rounds ``1..until_round`` (their outgoing messages are dropped; they
    still receive and compute).  Ties break on higher uid.
    """

    def __init__(self, count: int = 3, until_round: int = 4):
        require(count >= 1, f"count must be >= 1, got {count}")
        require(until_round >= 1, f"until_round must be >= 1, got {until_round}")
        self.count = count
        self.until_round = until_round

    def bind(self, network: Network, fault_seed: int) -> "_BoundMute":
        order = sorted(
            range(network.n),
            key=lambda i: (-len(network.adjacency[i]), -network.ids[i]),
        )
        return _BoundMute(frozenset(order[: self.count]), self.until_round)


class _BoundMute(BoundPerturbation):
    drops_messages = True

    def __init__(self, victims: frozenset, until_round: int):
        self.victims = victims
        self.until_round = until_round
        self.quiet_after = until_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no > self.until_round or sender not in self.victims
