"""Dynamic-graph perturbations: edge churn, insertion and deletion streams.

The simulators run on a fixed CSR layout, so dynamic graphs are modeled
with the standard *supergraph* device: the network contains every edge that
ever exists, and a perturbation masks delivery on edges that are currently
down.  An edge that is down delivers nothing in either direction — to the
algorithm this is indistinguishable from the edge being absent, which is
exactly the dynamic-graph semantics of the faulty-LOCAL literature (nodes
keep their port numbering; links come and go underneath).

Edges are identified by canonical keys ``(min uid, max uid, k)`` where
``k`` is the multi-edge occurrence index under the simulator's
order-of-appearance pairing rule
(:func:`~repro.local.network.build_reverse_ports`) — both endpoints of a
parallel edge derive the same key, so up/down decisions are symmetric per
edge, never per direction.  In ``"replay"`` fault mode the key is the
string ``"{lo}:{hi}:{k}"`` fed to :func:`~repro.scenarios.base.fault_u01`
(the historical schedule); in ``"mask"`` mode the integer triple feeds the
counter-based :func:`~repro.scenarios.base.fault_u01_mix` chain, which
vectorizes to one hash-kernel call per round over the flat per-slot key
arrays (:func:`edge_key_triples`).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.local.network import Network
from repro.scenarios.base import (
    BoundPerturbation,
    Perturbation,
    fault_u01,
    fault_u01_array,
    fault_u01_mix,
)
from repro.utils.validation import require

__all__ = ["edge_keys", "edge_key_triples", "EdgeChurn", "LateEdges", "DropEdges"]


def edge_keys(network: Network) -> List[List[str]]:
    """Canonical per-port edge keys: ``keys[i][p]`` names the edge behind
    node ``i``'s port ``p``, identically from both endpoints.

    The key is ``"{min uid}:{max uid}:{k}"`` with ``k`` the occurrence
    index of the pair — the k-th ``j`` in ``adjacency[i]`` pairs with the
    k-th ``i`` in ``adjacency[j]``, so both directions count to the same
    ``k``.  The string form of :func:`edge_key_triples` (one shared
    pairing loop, so replay-mode string keys and mask-mode integer triples
    can never disagree on which ports share an edge coin).
    """
    offsets, lo_col, hi_col, k_col = edge_key_triples(network)
    return [
        [
            f"{lo_col[s]}:{hi_col[s]}:{k_col[s]}"
            for s in range(offsets[i], offsets[i + 1])
        ]
        for i in range(len(network.adjacency))
    ]


def edge_key_triples(network: Network) -> Tuple[list, list, list, list]:
    """Integer canonical edge keys, flattened per CSR slot.

    Returns ``(offsets, lo, hi, k)`` python lists where slot
    ``offsets[i] + p`` holds the ``(min uid, max uid, occurrence)`` triple
    of the edge behind node ``i``'s port ``p`` — the integer form of
    :func:`edge_keys`, shared by both endpoints, ready to feed the
    vectorized :func:`~repro.scenarios.base.fault_u01_array` mask kernel.
    """
    adjacency = network.adjacency
    ids = network.ids
    offsets = [0] * (len(adjacency) + 1)
    lo_col: List[int] = []
    hi_col: List[int] = []
    k_col: List[int] = []
    occurrence: dict = {}
    for i, nbrs in enumerate(adjacency):
        offsets[i + 1] = offsets[i] + len(nbrs)
        for j in nbrs:
            k = occurrence.get((i, j), 0)
            occurrence[(i, j)] = k + 1
            lo, hi = (ids[i], ids[j]) if ids[i] <= ids[j] else (ids[j], ids[i])
            lo_col.append(lo)
            hi_col.append(hi)
            k_col.append(k)
    return offsets, lo_col, hi_col, k_col


class _EdgeKeyed(BoundPerturbation):
    """Shared machinery: per-slot canonical edge keys in the bound mode.

    Replay mode stores the string keys (fed to the sha512 ``fault_u01``);
    mask mode stores the integer triples as numpy columns for the
    vectorized kernel plus scalar ``fault_u01_mix`` reads.  Both expose
    ``_slot(sender, port)`` indexing into the flat layout.
    """

    drops_messages = True

    def __init__(self, network: Network, fault_mode: str):
        self.fault_mode = fault_mode
        if fault_mode == "mask":
            import numpy as np

            offsets, lo, hi, k = edge_key_triples(network)
            self._offsets = offsets
            self._lo = np.asarray(lo, dtype=np.int64)
            self._hi = np.asarray(hi, dtype=np.int64)
            self._k = np.asarray(k, dtype=np.int64)
            self._offsets_arr = np.asarray(offsets, dtype=np.int64)
            self._keys = None
            self._flat_keys = None
        else:
            keys = edge_keys(network)
            self._keys = keys
            self._offsets = None
            self._flat_keys = None

    def _flat_string_keys(self) -> list:
        """Flat per-slot string keys (replay mode), built on first use."""
        if self._flat_keys is None:
            offsets = [0]
            flat: List[str] = []
            for row in self._keys:
                flat.extend(row)
                offsets.append(len(flat))
            self._offsets = offsets
            self._flat_keys = flat
        return self._flat_keys

    def _slots(self, senders, ports):
        """Flat slot indices for parallel (sender, port) arrays."""
        if self.fault_mode == "mask":
            return self._offsets_arr[senders] + ports
        import numpy as np

        self._flat_string_keys()
        return np.asarray(self._offsets, dtype=np.int64)[senders] + ports

    def _edge_u01(self, label: str, senders, ports, *round_key):
        """Per-slot edge-keyed uniforms for the given round key, vectorized."""
        slots = self._slots(senders, ports)
        if self.fault_mode == "mask":
            return fault_u01_array(
                self.fault_seed, label,
                self._lo[slots], self._hi[slots], self._k[slots], *round_key,
                mode="mask",
            )
        flat = self._flat_string_keys()
        return fault_u01_array(
            self.fault_seed, label, [flat[s] for s in slots], *round_key,
            mode="replay",
        )

    def _edge_u01_scalar(self, label: str, sender: int, port: int, *round_key):
        """One edge-keyed uniform — the scalar twin of :meth:`_edge_u01`."""
        if self.fault_mode == "mask":
            s = self._offsets[sender] + port
            return fault_u01_mix(
                self.fault_seed, label,
                int(self._lo[s]), int(self._hi[s]), int(self._k[s]), *round_key,
            )
        return fault_u01(
            self.fault_seed, label, self._keys[sender][port], *round_key
        )


class EdgeChurn(Perturbation):
    """i.i.d. per-round edge downtime — a churning dynamic graph.

    Every round in ``[from_round, until_round]`` each edge is independently
    down with probability ``p_down`` (both directions together, keyed by
    the canonical edge key).  ``until_round=None`` churns forever.
    """

    def __init__(
        self,
        p_down: float = 0.1,
        from_round: int = 1,
        until_round: Optional[int] = None,
    ):
        require(0.0 <= p_down <= 1.0, f"p_down must be in [0, 1], got {p_down}")
        require(from_round >= 1, f"from_round must be >= 1, got {from_round}")
        require(
            until_round is None or until_round >= from_round,
            "until_round must be >= from_round",
        )
        self.p_down = p_down
        self.from_round = from_round
        self.until_round = until_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundChurn":
        return _BoundChurn(
            network, fault_seed, self.p_down, self.from_round, self.until_round,
            fault_mode,
        )


class _BoundChurn(_EdgeKeyed):
    def __init__(self, network, fault_seed, p_down, from_round, until_round,
                 fault_mode="replay"):
        super().__init__(network, fault_mode)
        self.fault_seed = fault_seed
        self.p_down = p_down
        self.from_round = from_round
        self.until_round = until_round
        self.quiet_after = until_round

    def _quiet(self, round_no: int) -> bool:
        if round_no < self.from_round:
            return True
        return self.until_round is not None and round_no > self.until_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        if self._quiet(round_no):
            return True
        return self._edge_u01_scalar("churn", sender, port, round_no) >= self.p_down

    def delivers_mask(self, round_no: int, senders, ports):
        if self._quiet(round_no):
            return None
        return self._edge_u01("churn", senders, ports, round_no) >= self.p_down


class _BoundEdgeSet(_EdgeKeyed):
    """Shared machinery: a fixed edge subset that is down inside a window."""

    def __init__(self, network, fault_seed, label, fraction, fault_mode="replay"):
        super().__init__(network, fault_mode)
        self.fault_seed = fault_seed
        # One coin per *edge* (not per direction): both ports of an edge see
        # the same key and therefore the same membership decision.  Replay
        # mode keeps the historical per-key sha512 coins; mask mode computes
        # the whole membership array with one vectorized hash-kernel call.
        if fault_mode == "mask":
            self._member = (
                fault_u01_array(
                    fault_seed, label, self._lo, self._hi, self._k, mode="mask"
                )
                < fraction
            )
            self._member_rows = None
        else:
            self._member_rows = [
                [fault_u01(fault_seed, label, key) < fraction for key in row]
                for row in self._keys
            ]
            self._member = None

    def _in_set(self, sender: int, port: int) -> bool:
        if self._member_rows is not None:
            return self._member_rows[sender][port]
        return bool(self._member[self._offsets[sender] + port])

    def _member_flat(self):
        """Flat per-slot membership bools as a numpy array."""
        if self._member is None:
            import numpy as np

            self._flat_string_keys()  # populates self._offsets
            self._member = np.array(
                [m for row in self._member_rows for m in row], dtype=bool
            )
        return self._member

    def _members_at(self, senders, ports):
        return self._member_flat()[self._slots(senders, ports)]


class LateEdges(Perturbation):
    """Insertion stream: a deterministic ``fraction`` of the edges only
    comes up at round ``at_round`` — before that they deliver nothing.

    Models a growing dynamic graph: the final topology is the full graph,
    so contracts validate against all edges, but early symmetry breaking
    happened on the sparser prefix.
    """

    def __init__(self, fraction: float = 0.3, at_round: int = 3):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 2, f"at_round must be >= 2, got {at_round}")
        self.fraction = fraction
        self.at_round = at_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundLate":
        return _BoundLate(network, fault_seed, self.fraction, self.at_round, fault_mode)


class _BoundLate(_BoundEdgeSet):
    def __init__(self, network, fault_seed, fraction, at_round, fault_mode="replay"):
        super().__init__(network, fault_seed, "late", fraction, fault_mode)
        self.at_round = at_round
        self.quiet_after = at_round - 1

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no >= self.at_round or not self._in_set(sender, port)

    def delivers_mask(self, round_no: int, senders, ports):
        if round_no >= self.at_round:
            return None
        return ~self._members_at(senders, ports)


class DropEdges(Perturbation):
    """Deletion stream: a deterministic ``fraction`` of the edges goes down
    at round ``at_round`` and stays down.

    The final graph excludes the dropped edges, and
    :meth:`~repro.scenarios.base.BoundPerturbation.edge_alive_final`
    reports that, so contracts validate against the post-deletion topology.
    """

    def __init__(self, fraction: float = 0.2, at_round: int = 3):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 1, f"at_round must be >= 1, got {at_round}")
        self.fraction = fraction
        self.at_round = at_round

    def bind(
        self, network: Network, fault_seed: int, fault_mode: str = "replay"
    ) -> "_BoundDrop":
        return _BoundDrop(network, fault_seed, self.fraction, self.at_round, fault_mode)


class _BoundDrop(_BoundEdgeSet):
    def __init__(self, network, fault_seed, fraction, at_round, fault_mode="replay"):
        super().__init__(network, fault_seed, "dropedge", fraction, fault_mode)
        self.at_round = at_round
        self.quiet_after = at_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no < self.at_round or not self._in_set(sender, port)

    def delivers_mask(self, round_no: int, senders, ports):
        if round_no < self.at_round:
            return None
        return ~self._members_at(senders, ports)

    def edge_alive_final(self, sender: int, port: int) -> bool:
        return not self._in_set(sender, port)
