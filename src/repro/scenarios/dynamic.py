"""Dynamic-graph perturbations: edge churn, insertion and deletion streams.

The simulators run on a fixed CSR layout, so dynamic graphs are modeled
with the standard *supergraph* device: the network contains every edge that
ever exists, and a perturbation masks delivery on edges that are currently
down.  An edge that is down delivers nothing in either direction — to the
algorithm this is indistinguishable from the edge being absent, which is
exactly the dynamic-graph semantics of the faulty-LOCAL literature (nodes
keep their port numbering; links come and go underneath).

Edges are identified by canonical keys ``(min uid, max uid, k)`` where
``k`` is the multi-edge occurrence index under the simulator's
order-of-appearance pairing rule
(:func:`~repro.local.network.build_reverse_ports`) — both endpoints of a
parallel edge derive the same key, so up/down decisions are symmetric per
edge, never per direction.
"""

from __future__ import annotations

from typing import List, Optional

from repro.local.network import Network
from repro.scenarios.base import BoundPerturbation, Perturbation, fault_u01
from repro.utils.validation import require

__all__ = ["edge_keys", "EdgeChurn", "LateEdges", "DropEdges"]


def edge_keys(network: Network) -> List[List[str]]:
    """Canonical per-port edge keys: ``keys[i][p]`` names the edge behind
    node ``i``'s port ``p``, identically from both endpoints.

    The key is ``"{min uid}:{max uid}:{k}"`` with ``k`` the occurrence
    index of the pair — the k-th ``j`` in ``adjacency[i]`` pairs with the
    k-th ``i`` in ``adjacency[j]``, so both directions count to the same
    ``k``.
    """
    adjacency = network.adjacency
    ids = network.ids
    keys: List[List[str]] = []
    occurrence: dict = {}
    for i, nbrs in enumerate(adjacency):
        row = []
        for j in nbrs:
            k = occurrence.get((i, j), 0)
            occurrence[(i, j)] = k + 1
            lo, hi = (ids[i], ids[j]) if ids[i] <= ids[j] else (ids[j], ids[i])
            row.append(f"{lo}:{hi}:{k}")
        keys.append(row)
    return keys


class EdgeChurn(Perturbation):
    """i.i.d. per-round edge downtime — a churning dynamic graph.

    Every round in ``[from_round, until_round]`` each edge is independently
    down with probability ``p_down`` (both directions together, keyed by
    the canonical edge key).  ``until_round=None`` churns forever.
    """

    def __init__(
        self,
        p_down: float = 0.1,
        from_round: int = 1,
        until_round: Optional[int] = None,
    ):
        require(0.0 <= p_down <= 1.0, f"p_down must be in [0, 1], got {p_down}")
        require(from_round >= 1, f"from_round must be >= 1, got {from_round}")
        require(
            until_round is None or until_round >= from_round,
            "until_round must be >= from_round",
        )
        self.p_down = p_down
        self.from_round = from_round
        self.until_round = until_round

    def bind(self, network: Network, fault_seed: int) -> "_BoundChurn":
        return _BoundChurn(
            edge_keys(network), fault_seed, self.p_down, self.from_round, self.until_round
        )


class _BoundChurn(BoundPerturbation):
    drops_messages = True

    def __init__(self, keys, fault_seed, p_down, from_round, until_round):
        self.keys = keys
        self.fault_seed = fault_seed
        self.p_down = p_down
        self.from_round = from_round
        self.until_round = until_round
        self.quiet_after = until_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        if round_no < self.from_round:
            return True
        if self.until_round is not None and round_no > self.until_round:
            return True
        key = self.keys[sender][port]
        return fault_u01(self.fault_seed, "churn", key, round_no) >= self.p_down


class _BoundEdgeSet(BoundPerturbation):
    """Shared machinery: a fixed edge subset that is down inside a window."""

    drops_messages = True

    def __init__(self, network, fault_seed, label, fraction):
        keys = edge_keys(network)
        # One coin per *edge* (not per direction): both ports of an edge see
        # the same key and therefore the same membership decision.
        self.member = [
            [fault_u01(fault_seed, label, key) < fraction for key in row]
            for row in keys
        ]

    def _in_set(self, sender: int, port: int) -> bool:
        return self.member[sender][port]


class LateEdges(Perturbation):
    """Insertion stream: a deterministic ``fraction`` of the edges only
    comes up at round ``at_round`` — before that they deliver nothing.

    Models a growing dynamic graph: the final topology is the full graph,
    so contracts validate against all edges, but early symmetry breaking
    happened on the sparser prefix.
    """

    def __init__(self, fraction: float = 0.3, at_round: int = 3):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 2, f"at_round must be >= 2, got {at_round}")
        self.fraction = fraction
        self.at_round = at_round

    def bind(self, network: Network, fault_seed: int) -> "_BoundLate":
        return _BoundLate(network, fault_seed, self.fraction, self.at_round)


class _BoundLate(_BoundEdgeSet):
    def __init__(self, network, fault_seed, fraction, at_round):
        super().__init__(network, fault_seed, "late", fraction)
        self.at_round = at_round
        self.quiet_after = at_round - 1

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no >= self.at_round or not self._in_set(sender, port)


class DropEdges(Perturbation):
    """Deletion stream: a deterministic ``fraction`` of the edges goes down
    at round ``at_round`` and stays down.

    The final graph excludes the dropped edges, and
    :meth:`~repro.scenarios.base.BoundPerturbation.edge_alive_final`
    reports that, so contracts validate against the post-deletion topology.
    """

    def __init__(self, fraction: float = 0.2, at_round: int = 3):
        require(0.0 <= fraction <= 1.0, f"fraction must be in [0, 1], got {fraction}")
        require(at_round >= 1, f"at_round must be >= 1, got {at_round}")
        self.fraction = fraction
        self.at_round = at_round

    def bind(self, network: Network, fault_seed: int) -> "_BoundDrop":
        return _BoundDrop(network, fault_seed, self.fraction, self.at_round)


class _BoundDrop(_BoundEdgeSet):
    def __init__(self, network, fault_seed, fraction, at_round):
        super().__init__(network, fault_seed, "dropedge", fraction)
        self.at_round = at_round
        self.quiet_after = at_round

    def delivers(self, round_no: int, sender: int, port: int) -> bool:
        return round_no < self.at_round or not self._in_set(sender, port)

    def edge_alive_final(self, sender: int, port: int) -> bool:
        return not self._in_set(sender, port)
