"""Adversarial graph presentations: renamings, port orders, multi-edges.

These perturbations inject no runtime faults — they attack the *inputs*
the LOCAL model lets an adversary pick: the unique identifiers, the port
numbering, and edge multiplicities.  A correct algorithm must produce a
valid output under every such presentation, so scenarios built from these
run with ``strict=True``: the verifier-checked contract must hold exactly.

Because they are rewrite-only, all three bind to the identity
:class:`~repro.scenarios.base.BoundPerturbation`, whose vectorized
``delivers_mask`` / ``crashes_mask`` surface is trivially fault-free in
every fault mode — the dense adapter's capability flags skip their mask
builds entirely, so adversarial scenarios keep the fault-free hot path.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.scenarios.base import Perturbation
from repro.utils.validation import require

__all__ = ["AdversarialIDs", "PortScramble", "MultiEdgeLift"]

Adjacency = List[List[int]]


class AdversarialIDs(Perturbation):
    """Degree-rank relabeling: identifiers ordered by degree.

    ``order="hubs_high"`` gives the highest-degree nodes the largest uids
    (they win every uid tie-break and own the highest-priority coin
    streams); ``"hubs_low"`` inverts that.  Since each node's private coins
    are a pure function of its uid, this also adversarially reassigns the
    coin streams — a naming attack the analyses must be indifferent to.
    """

    def __init__(self, order: str = "hubs_high"):
        require(order in ("hubs_high", "hubs_low"), f"unknown order {order!r}")
        self.order = order

    def rewrite(self, adjacency: Adjacency, ids: List[int]) -> Tuple[Adjacency, List[int]]:
        n = len(adjacency)
        rank = sorted(range(n), key=lambda i: (len(adjacency[i]), ids[i]))
        new_ids = [0] * n
        for pos, i in enumerate(rank):
            new_ids[i] = pos if self.order == "hubs_high" else n - 1 - pos
        return adjacency, new_ids


class PortScramble(Perturbation):
    """Adversarial port permutation: each node's neighbor list is shuffled
    by a deterministic per-node permutation (keyed on ``salt`` and the
    node's uid).  Port pairings are re-derived by the simulator's
    order-of-appearance rule, so the wiring an algorithm observes — which
    port leads where — changes completely while the graph stays the same.
    """

    def __init__(self, salt: int = 0):
        self.salt = salt

    def rewrite(self, adjacency: Adjacency, ids: List[int]) -> Tuple[Adjacency, List[int]]:
        scrambled: Adjacency = []
        for i, nbrs in enumerate(adjacency):
            row = list(nbrs)
            random.Random(f"ports/{self.salt}/{ids[i]}").shuffle(row)
            scrambled.append(row)
        return scrambled, ids


class MultiEdgeLift(Perturbation):
    """Weighted/multi-edge variant: every edge duplicated ``times`` times.

    Each adjacency entry is repeated, multiplying every degree (and every
    neighbor count a verifier sees) by ``times`` — an integer-weighted
    graph in the multigraph encoding the simulators already support.
    Splitting specs with affine bounds remain meaningful on the lift; MIS
    is unchanged semantically but the algorithm now has to cope with
    parallel ports.
    """

    def __init__(self, times: int = 2):
        require(times >= 1, f"times must be >= 1, got {times}")
        self.times = times

    def rewrite(self, adjacency: Adjacency, ids: List[int]) -> Tuple[Adjacency, List[int]]:
        lifted = [[j for j in nbrs for _ in range(self.times)] for nbrs in adjacency]
        return lifted, ids
