"""Declarative scenario registry.

A :class:`Scenario` names one experimental condition: a graph family, a
perturbation schedule, and the pipeline whose validity contract gets
checked on whatever survives.  Scenarios are declarative data — the
execution semantics live in :mod:`repro.scenarios.run` — so registering a
new one is a few lines of composition over the perturbation vocabulary
(:mod:`~repro.scenarios.faults`, :mod:`~repro.scenarios.dynamic`,
:mod:`~repro.scenarios.adversary`).

``strict=True`` marks adversarial-but-fault-free scenarios (renamings,
port permutations, multi-edge lifts): the algorithm is still accountable
for an exactly-valid output, and the runner raises on any violation.
Fault scenarios instead *record* violation counts as resilience metrics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.scenarios.adversary import AdversarialIDs, MultiEdgeLift, PortScramble
from repro.scenarios.base import Perturbation
from repro.scenarios.byzantine import CorrelatedCrash, CorruptMessages
from repro.scenarios.dynamic import DropEdges, EdgeChurn, LateEdges
from repro.scenarios.faults import CrashNodes, IIDMessageDrop, MuteHubs
from repro.utils.validation import require

__all__ = [
    "Scenario",
    "register_scenario",
    "get_scenario",
    "scenario_names",
    "all_scenarios",
]

#: Pipelines the runner knows how to drive and validate.
PIPELINES = ("luby", "sinkless", "splitting")


@dataclass(frozen=True)
class Scenario:
    """One named scenario: graph family x perturbation schedule x contract."""

    name: str
    pipeline: str  #: "luby" | "sinkless" | "splitting"
    perturbations: Tuple[Perturbation, ...]
    description: str = ""
    topology: str = "sparse"  #: default graph family ("sparse" | "regular")
    degree: Optional[int] = None  #: default degree (None = pipeline default)
    min_degree: int = 2  #: sinkless accountability threshold
    eps: float = 0.25  #: splitting spec epsilon
    strict: bool = False  #: require zero violations (adversarial, fault-free)
    backends: Tuple[str, ...] = ("reference", "engine", "dense")

    def __post_init__(self):
        require(self.pipeline in PIPELINES, f"unknown pipeline {self.pipeline!r}")


_REGISTRY: Dict[str, Scenario] = {}


def register_scenario(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names must be unique)."""
    require(
        scenario.name not in _REGISTRY,
        f"scenario {scenario.name!r} is already registered",
    )
    _REGISTRY[scenario.name] = scenario
    return scenario


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name, with a helpful error."""
    if name not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown scenario {name!r}; registered: {known}")
    return _REGISTRY[name]


def scenario_names() -> List[str]:
    """All registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """All registered scenarios, sorted by name."""
    return [_REGISTRY[name] for name in scenario_names()]


# ---------------------------------------------------------------------------
# Built-in scenarios.  Luby MIS is the main stress subject (it runs on all
# three backends and its contract degrades gracefully); sinkless orientation
# covers recovery dynamics; splitting covers weighted graphs and fault-blind
# verification.
# ---------------------------------------------------------------------------

register_scenario(Scenario(
    name="luby/crash",
    pipeline="luby",
    perturbations=(CrashNodes(fraction=0.1, at_round=3),),
    description="10% of the nodes fail-stop right before round 3; survivors "
    "must still decide.  Violations = MIS defects on the surviving subgraph.",
))

register_scenario(Scenario(
    name="luby/crash-hubs",
    pipeline="luby",
    perturbations=(CrashNodes(fraction=0.05, at_round=3, select="hubs"),),
    description="The 5% highest-degree nodes fail-stop before round 3 — the "
    "adversarial crash pattern (hubs carry the most progress).",
))

register_scenario(Scenario(
    name="luby/drop-iid",
    pipeline="luby",
    perturbations=(IIDMessageDrop(p=0.08),),
    description="Every message is lost i.i.d. with probability 8% for the "
    "whole run; lost priorities can seat adjacent MIS nodes — the recorded "
    "independence violations measure that.",
))

register_scenario(Scenario(
    name="luby/mute-hubs",
    pipeline="luby",
    perturbations=(MuteHubs(count=4, until_round=4),),
    description="An adversary silences the 4 highest-degree nodes for the "
    "first 4 rounds (they compute but deliver nothing), then the network "
    "heals; rounds_to_recover measures the tail.",
))

register_scenario(Scenario(
    name="luby/churn",
    pipeline="luby",
    perturbations=(EdgeChurn(p_down=0.15),),
    description="Dynamic graph: each edge is down i.i.d. 15% of every "
    "round.  The contract validates against the full topology, so churn "
    "shows up as recorded violations.",
))

register_scenario(Scenario(
    name="luby/late-edges",
    pipeline="luby",
    perturbations=(LateEdges(fraction=0.3, at_round=4),),
    description="Insertion stream: 30% of the edges only come up at round "
    "4, after early phases broke symmetry on the sparser prefix; the "
    "contract checks the final (full) graph.",
))

register_scenario(Scenario(
    name="luby/edge-deletion",
    pipeline="luby",
    perturbations=(DropEdges(fraction=0.25, at_round=3),),
    description="Deletion stream: 25% of the edges vanish at round 3 and "
    "stay gone.  The contract validates against the post-deletion graph "
    "(kills caused by now-deleted neighbors surface as domination "
    "violations).",
))

register_scenario(Scenario(
    name="luby/crash-correlated",
    pipeline="luby",
    perturbations=(CorrelatedCrash(fraction=0.1, at_round=3, mode="ball"),),
    description="A spatially-clustered failure: a BFS ball covering 10% of "
    "the nodes fail-stops before round 3 — unlike i.i.d. crashes, the dead "
    "region's entire frontier loses progress at once, orphaning its "
    "boundary (domination violations concentrate there).",
))

register_scenario(Scenario(
    name="luby/crash-shard",
    pipeline="luby",
    perturbations=(CorrelatedCrash(fraction=0.125, at_round=3, mode="shard"),),
    description="One contiguous node-range block (12.5% of the nodes, the "
    "failure domain of a sharded worker dying) fail-stops before round 3; "
    "node-range locality makes the victim set shard-aligned rather than "
    "topology-aligned.",
))

register_scenario(Scenario(
    name="luby/byzantine",
    pipeline="luby",
    perturbations=(CorruptMessages(p=0.1, until_round=6),),
    description="A Byzantine channel rewrites 10% of delivered messages for "
    "the first 6 rounds: forged priorities seat adjacent MIS nodes and "
    "flipped join/stay announcements kill or orphan their neighbors.  The "
    "window closes at round 6, so rounds_to_recover measures the tail and "
    "the recovering variant must reach zero violations.",
))

register_scenario(Scenario(
    name="sinkless/byzantine",
    pipeline="sinkless",
    perturbations=(CorruptMessages(p=0.1, from_round=2, until_round=6),),
    description="Byzantine flip/ok announcements during trial-and-fix "
    "rounds 2-6 (round 1, the proposal exchange, must stay clean): a "
    "corrupted flip leaves the two endpoints disagreeing about the edge "
    "direction, a defect only the recovering variant's reconcile round can "
    "repair.",
    topology="regular",
    backends=("engine", "dense"),
))

register_scenario(Scenario(
    name="splitting/byzantine",
    pipeline="splitting",
    perturbations=(CorruptMessages(p=0.05, until_round=1),),
    description="The splitting verification round runs over a Byzantine "
    "channel flipping 5% of the broadcast colors: nodes accept based on "
    "forged counts, and the contract recomputes the true violation count "
    "centrally.",
))

register_scenario(Scenario(
    name="luby/adversarial-naming",
    pipeline="luby",
    perturbations=(AdversarialIDs(), PortScramble()),
    description="Fault-free adversarial presentation: hubs get the highest "
    "uids (and thus different coin streams) and every port table is "
    "scrambled.  The MIS must still be exactly valid (strict).",
    strict=True,
))

register_scenario(Scenario(
    name="sinkless/crash",
    pipeline="sinkless",
    perturbations=(CrashNodes(fraction=0.05, at_round=3),),
    description="5% of the nodes fail-stop during trial-and-fix sinkless "
    "orientation (round 3); the run continues until no *surviving* node is "
    "a sink, and rounds_to_recover measures the repair tail.",
    topology="regular",
    backends=("engine", "dense"),
))

register_scenario(Scenario(
    name="splitting/multi-edge",
    pipeline="splitting",
    perturbations=(MultiEdgeLift(times=2),),
    description="Weighted variant: every edge doubled, so all degrees and "
    "neighbor counts scale by 2.  The Las-Vegas 0-round splitting must "
    "still land every constrained node inside the spec bounds (strict).",
    strict=True,
))

register_scenario(Scenario(
    name="splitting/drop-iid",
    pipeline="splitting",
    perturbations=(IIDMessageDrop(p=0.05),),
    description="The splitting verification round runs over 5%-lossy "
    "links: nodes accept based on the colors they actually heard, and the "
    "contract recomputes the true violation count centrally.",
))
