"""The Section 4 (uniform / strong) splitting problem on general graphs.

Section 4 treats splitting as an oracle: divide the nodes into red and blue
so every constrained node keeps between ``(1/2 − ε)d`` and ``(1/2 + ε)d``
neighbors on each side.  The paper reduces coloring (Lemma 4.1) and MIS
(Lemma 4.2) *to* this oracle; the oracle itself is realized here the same
way every splitting in this reproduction is realized:

* a randomized 0-round process (uniform coin per node), valid w.h.p. when
  every constrained degree is Ω(log n / ε²) — both as a centralized coin
  flip (``method="random"``) and as a genuine message-passing LOCAL
  algorithm (:class:`ZeroRoundSplitting`, ``method="local"``) whose single
  communication round is a broadcast and therefore runs on the batched
  engine's CSR fast path;
* its derandomization by conditional expectations with a two-sided
  Chernoff/MGF pessimistic estimator (:class:`BalancedSplitEstimator`),
  giving a deterministic SLOCAL(2) algorithm run in LOCAL via a ``B²``
  coloring — mirroring Lemma 2.1's structure one-for-one.

The Remark in Section 4.1 (virtual δ-clique gadgets that lift low-degree
nodes to degree δ) is provided by :func:`attach_clique_gadgets` and tested,
though the pipelines use the equivalent "unconstrained below δ" formulation
the Remark proves interchangeable.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.core.basic import processing_order
from repro.core.problems import UniformSplittingSpec
from repro.core.verifiers import uniform_splitting_violations
from repro.derand.conditional import DerandomizationError, greedy_minimize
from repro.derand.estimators import ColoringEstimator
from repro.local.complexity import slocal_conversion_rounds
from repro.local.engine import CSREngine
from repro.local.ledger import RoundLedger
from repro.local.network import LocalAlgorithm, Network, NodeView
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "BalancedSplitEstimator",
    "ZeroRoundSplitting",
    "uniform_splitting",
    "min_constrained_degree",
    "attach_clique_gadgets",
]


def min_constrained_degree(n: int, eps: float, slack: float = 1.1) -> int:
    """Smallest degree the derandomized splitter can certify.

    With MGF parameter ``t = 1 + 2ε`` both tails of
    :class:`BalancedSplitEstimator` decay at rate

        rate(ε) = (1/2 + ε)·ln(1 + 2ε) − ln(1 + ε)   (≈ (3/2)ε² for small ε),

    per unit of degree, so the union over ``n`` nodes (two tails each) stays
    below 1 once ``d >= ln(4n) / rate(ε)``.  ``slack`` adds headroom for the
    ceiling effects in the thresholds.  This is the concrete form of the
    paper's "splitting needs ∆ = Ω(log n / ε²)" remark (Section 1.1).
    """
    require(0 < eps < 0.5, f"eps must lie in (0, 1/2), got {eps}")
    rate = (0.5 + eps) * math.log1p(2.0 * eps) - math.log1p(eps)
    return math.ceil(slack * math.log(4.0 * max(2, n)) / rate)


class BalancedSplitEstimator(ColoringEstimator):
    """Two-sided MGF pessimistic estimator for uniform splitting.

    For constrained node ``u`` of degree ``d`` let ``X`` be its final red
    neighbor count; failure is ``X > hi_u`` or ``X < lo_u`` with
    ``hi_u = ⌊(1/2+ε)d⌋`` and ``lo_u = ⌈(1/2−ε)d⌉``.  With MGF parameter
    ``t = 1 + 2ε``,

        up(u) = t^{red(u)} · ((1+t)/2)^{free(u)} / t^{hi_u + 1}
        dn(u) = t^{−red(u)} · ((1+1/t)/2)^{free(u)} · t^{lo_u − 1}

    each upper-bounds its tail (Markov on ``t^{±X}``) and is a martingale
    under uniform completion, so the greedy argmin preserves ``Σ (up + dn)``.
    """

    num_colors = 2

    def __init__(self, inst: BipartiteInstance, spec: UniformSplittingSpec) -> None:
        self.inst = inst
        self.spec = spec
        self.t = 1.0 + 2.0 * spec.eps
        self.up_step = (1.0 + self.t) / 2.0  # E[t^{coin}] for one free var
        self.dn_step = (1.0 + 1.0 / self.t) / 2.0
        self.free: List[int] = [inst.left_degree(u) for u in range(inst.n_left)]
        self.red: List[int] = [0] * inst.n_left
        self.hi: List[int] = []
        self.lo: List[int] = []
        for u in range(inst.n_left):
            d = inst.left_degree(u)
            self.hi.append(math.floor(spec.hi(d)))
            self.lo.append(math.ceil(spec.lo(d)))
        self._value = sum(self._contribution(u) for u in range(inst.n_left))

    def _contribution(self, u: int) -> float:
        t = self.t
        up = (t ** self.red[u]) * (self.up_step ** self.free[u]) / (t ** (self.hi[u] + 1))
        dn = (t ** (-self.red[u])) * (self.dn_step ** self.free[u]) * (t ** (self.lo[u] - 1))
        return up + dn

    def value(self) -> float:
        return self._value

    def gain(self, v: int, color: int) -> float:
        require(color in (RED, BLUE), f"invalid color {color}")
        delta = 0.0
        for u in self.inst.right_neighbors(v):
            old = self._contribution(u)
            self.free[u] -= 1
            if color == RED:
                self.red[u] += 1
            new = self._contribution(u)
            # restore
            self.free[u] += 1
            if color == RED:
                self.red[u] -= 1
            delta += new - old
        return delta

    def commit(self, v: int, color: int) -> None:
        self._value += self.gain(v, color)
        for u in self.inst.right_neighbors(v):
            self.free[u] -= 1
            if color == RED:
                self.red[u] += 1

    def violations(self) -> int:
        """Fully-decided constraints outside [lo, hi]."""
        return sum(
            1
            for u in range(self.inst.n_left)
            if self.free[u] == 0 and not (self.lo[u] <= self.red[u] <= self.hi[u])
        )


class ZeroRoundSplitting(LocalAlgorithm):
    """Section 4.1's 0-round splitting as a message-passing LOCAL algorithm.

    Each node flips a uniform coin for its own color before round 1; round 1
    broadcasts the color on every port (declared via
    :meth:`LocalAlgorithm.broadcast`, so the batched engine delivers it on
    the CSR fast path); on receive every constrained node checks its red
    neighbor count against the spec and reports validity.  Output per node
    is ``(color, ok)``; one communication round total — the 0-round process
    plus the standard 1-round verification.
    """

    def __init__(self, spec: UniformSplittingSpec) -> None:
        self.spec = spec

    def init(self, view: NodeView) -> None:
        view.state["color"] = RED if view.rng.random() < 0.5 else BLUE

    def broadcast(self, view: NodeView, round_no: int) -> int:
        return view.state["color"]

    def send(self, view: NodeView, round_no: int) -> Dict[int, int]:
        color = view.state["color"]
        return {p: color for p in range(view.degree)}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, int]) -> None:
        d = view.degree
        if self.spec.constrains(d):
            red = 0
            for c in inbox.values():
                if c == RED:
                    red += 1
            ok = self.spec.lo(d) <= red <= self.spec.hi(d)
        else:
            ok = True
        view.output = (view.state["color"], ok)
        view.halted = True


def _constraint_instance(
    adjacency: Sequence[Sequence[int]], spec: UniformSplittingSpec
) -> BipartiteInstance:
    """Bipartite view: constrained nodes (left) vs. all nodes (right)."""
    n = len(adjacency)
    constrained = [v for v in range(n) if spec.constrains(len(adjacency[v]))]
    edges = [(i, w) for i, v in enumerate(constrained) for w in adjacency[v]]
    return BipartiteInstance(len(constrained), n, edges, allow_multi=True)


def uniform_splitting(
    adjacency: Sequence[Sequence[int]],
    spec: UniformSplittingSpec,
    ledger: Optional[RoundLedger] = None,
    method: str = "derandomized",
    seed: SeedLike = None,
    max_attempts: int = 64,
    coins="philox",
    engine: Optional[CSREngine] = None,
    hooks=None,
    faults=None,
    shards: Optional[int] = None,
    executor=None,
    recover: bool = False,
) -> List[int]:
    """Split a general graph's nodes red/blue per the Section 4.1 spec.

    ``method="derandomized"`` (default) certifies the result whenever every
    constrained degree is at least :func:`min_constrained_degree` (raises
    :class:`DerandomizationError` otherwise); ``method="random"`` runs the
    0-round process Las-Vegas (verify and retry); ``method="local"`` runs
    the same Las-Vegas process as a genuine message-passing algorithm
    (:class:`ZeroRoundSplitting`) on the batched engine, with the validity
    check distributed to the nodes themselves; ``method="dense"`` runs the
    identical Las-Vegas loop through the vectorized numpy kernel
    (:func:`repro.local.dense.uniform_splitting_dense`) — with the default
    counter-based ``coins="philox"`` it is distribution-identical with
    O(1) per-attempt setup (the performance mode, like the other dense
    pipelines), with ``coins="replay"`` the accepted partition is
    bit-identical to ``method="local"`` for the same seed.  A prebuilt
    ``engine`` over the same adjacency amortizes CSR packing across calls
    (used by the ``local`` and ``dense`` methods only).

    ``hooks`` (``local`` method) / ``faults`` (``dense`` method) run the
    Las-Vegas loop in a faulty environment (see :mod:`repro.scenarios`):
    acceptance is then based on what the nodes *heard*, which a lossy
    network can fool — the scenario contracts recompute ground truth.
    ``recover=True`` (``local`` and ``dense`` methods) appends the
    self-stabilizing detect-and-repair tail
    (:func:`~repro.scenarios.recovery.splitting_repair`) to the final
    attempt — violators NACK their neighborhood and redraw under the same
    fault schedule — so the returned partition satisfies the spec on the
    surviving graph even when the fault-blinded acceptance was wrong (or
    never fired).

    ``method="dense-batched"`` runs the Las-Vegas loop for a whole batch
    of master seeds in one kernel call: pass a sequence of seeds as
    ``seed`` and get back a list of color lists, one per seed, each
    bit-identical to a ``method="dense", coins="keyed"`` run of that seed
    (:func:`repro.local.dense.uniform_splitting_batched`).  The ledger is
    charged one verification round per attempt per trial.

    ``method="dense-sharded"`` runs the identical Las-Vegas loop across
    node-range CSR shards on a persistent process pool
    (:func:`repro.local.sharded.uniform_splitting_sharded`): colors are
    keyed counter-based per ``(attempt seed, node)``, so attempts need no
    halo exchange at all and the accepted partition is bit-identical to a
    ``method="dense", coins="keyed"`` run of the same seed.  Pass
    ``executor`` (a live :class:`~repro.local.sharded.ShardedExecutor`) to
    keep shard workers hot across calls; ``shards`` sizes a throwaway one.
    """
    n = len(adjacency)

    if method == "dense-sharded":
        from repro.local.sharded import uniform_splitting_sharded

        require(
            coins in ("philox", "keyed"),
            f"dense-sharded runs keyed coins only, got coins={coins!r}",
        )
        if engine is None:
            engine = CSREngine(Network(adjacency))
        sharded = uniform_splitting_sharded(
            engine, spec, seed=seed, shards=shards, max_attempts=max_attempts,
            red=RED, blue=BLUE, faults=faults, executor=executor,
        )
        if ledger is not None:
            for _ in range(int(sharded.attempts)):
                ledger.charge_simulated(1, "0-round-splitting+check")
        if not sharded.ok:
            raise RuntimeError(
                f"{method} uniform splitting failed {max_attempts} times; "
                "constrained degrees are below the w.h.p. regime"
            )
        return [int(c) for c in sharded.colors]

    if method == "dense-batched":
        from repro.local.dense import uniform_splitting_batched

        if engine is None:
            engine = CSREngine(Network(adjacency))
        batch = uniform_splitting_batched(
            engine, spec, list(seed), coins=coins, max_attempts=max_attempts,
            red=RED, blue=BLUE, faults=faults,
        )
        if ledger is not None:
            for t in range(len(batch)):
                for _ in range(int(batch.attempts[t])):
                    ledger.charge_simulated(1, "0-round-splitting+check")
        if not bool(batch.ok.all()):
            raise RuntimeError(
                f"{method} uniform splitting failed {max_attempts} times; "
                "constrained degrees are below the w.h.p. regime"
            )
        return [[int(c) for c in batch.colors[t]] for t in range(len(batch))]

    if method in ("local", "dense"):
        rng = ensure_rng(seed)
        if engine is None:
            engine = CSREngine(Network(adjacency))
        if method == "dense":
            from repro.local.dense import uniform_splitting_dense
        else:
            algorithm = ZeroRoundSplitting(spec)
        accepted = False
        run_seed = 0
        colors: List[int] = []
        crashed: List[bool] = [False] * n
        for _ in range(max_attempts):
            run_seed = rng.randrange(2**31)
            if method == "dense":
                dense = uniform_splitting_dense(
                    engine, spec, seed=run_seed, coins=coins, red=RED, blue=BLUE,
                    faults=faults,
                )
                if ledger is not None:
                    ledger.charge_simulated(dense.rounds, "0-round-splitting+check")
                accepted = bool(dense.ok)
                if accepted or recover:
                    colors = [int(c) for c in dense.colors]
                    crashed = [bool(c) for c in dense.crashed]
            else:
                result = engine.run(algorithm, max_rounds=1, seed=run_seed, hooks=hooks)
                if ledger is not None:
                    ledger.charge_simulated(result.rounds, "0-round-splitting+check")
                # Crashed nodes (faulty environments) never output; they do
                # not vote and their init-time color stands in for them.
                accepted = all(
                    v.output[1] for v in result.views if v.output is not None
                )
                if accepted or recover:
                    colors = [
                        v.output[0] if v.output is not None else v.state["color"]
                        for v in result.views
                    ]
                    crashed = [bool(v.state.get("crashed")) for v in result.views]
            if accepted:
                break
        if recover:
            import numpy as np

            from repro.scenarios.masks import DenseFaults
            from repro.scenarios.recovery import (
                bound_stack,
                edge_ok_slot_mask,
                splitting_repair,
            )

            bound = bound_stack(hooks=hooks, faults=faults)
            colors_arr = np.asarray(colors, dtype=np.int64)
            crashed_arr = np.asarray(crashed, dtype=bool)
            rep = splitting_repair(
                engine, DenseFaults(engine, bound) if bound else None, spec,
                run_seed, colors_arr, crashed_arr, start_round=2, red=RED,
                blue=BLUE, edge_ok_mask=edge_ok_slot_mask(engine, bound),
            )
            if ledger is not None and rep.repair_rounds:
                ledger.charge_simulated(rep.repair_rounds, "splitting-repair")
            if accepted or rep.recovered:
                return [int(c) for c in colors_arr]
        elif accepted:
            return colors
        raise RuntimeError(
            f"{method} uniform splitting failed {max_attempts} times; "
            "constrained degrees are below the w.h.p. regime"
        )

    inst = _constraint_instance(adjacency, spec)

    if method == "random":
        rng = ensure_rng(seed)
        for _ in range(max_attempts):
            partition = [RED if rng.random() < 0.5 else BLUE for _ in range(n)]
            if ledger is not None:
                ledger.charge_simulated(1, "0-round-splitting+check")
            if not uniform_splitting_violations(adjacency, partition, spec):
                return partition
        raise RuntimeError(
            f"random uniform splitting failed {max_attempts} times; "
            "constrained degrees are below the w.h.p. regime"
        )

    require(method == "derandomized", f"unknown method {method!r}")
    order, num_colors = processing_order(inst, ledger=ledger)
    if ledger is not None:
        ledger.charge(slocal_conversion_rounds(num_colors, radius=2), "slocal-conversion")
    estimator = BalancedSplitEstimator(inst, spec)
    partition = greedy_minimize(estimator, order, strict=True)
    return [c if c is not None else RED for c in partition]


def attach_clique_gadgets(
    adjacency: Sequence[Sequence[int]], delta: int
) -> Tuple[List[List[int]], int]:
    """The Remark's gadget: lift every node below degree ``delta``.

    Every node ``v`` with ``deg(v) < delta`` receives a private virtual
    ``delta``-clique, ``delta − deg(v)`` of whose members are joined to
    ``v``.  The result has minimum degree >= ``delta`` while the original
    nodes' neighborhoods only gain virtual nodes (so a uniform splitting of
    the gadget graph restricted to original nodes solves the modified
    problem).  Returns ``(new adjacency, original node count)``.
    """
    require(delta >= 1, f"delta must be >= 1, got {delta}")
    n = len(adjacency)
    new_adj: List[List[int]] = [list(nbrs) for nbrs in adjacency]
    for v in range(n):
        missing = delta - len(adjacency[v])
        if missing <= 0:
            continue
        base = len(new_adj)
        for _ in range(delta):
            new_adj.append([])
        clique = list(range(base, base + delta))
        for i in clique:
            for j in clique:
                if i < j:
                    new_adj[i].append(j)
                    new_adj[j].append(i)
        for i in clique[:missing]:
            new_adj[v].append(i)
            new_adj[i].append(v)
    return new_adj, n
