"""Lemma 4.1 — (1 + o(1))∆ vertex coloring via repeated uniform splitting.

The divide-and-conquer from Sections 1.1 and 4.1: recursively split the
graph into two color classes (each induced subgraph keeping at most
``(1/2 + ε)`` of every constrained node's degree), for ``r`` levels; the
``2^r`` leaf subgraphs have maximum degree about ``∆ (1+ε)^r / 2^r``; color
each leaf with a ``(d+1)``-coloring ([FHK16]) using pairwise disjoint
palettes.  With ``ε = 1/log² n`` and ``r = log ∆ − log log n`` the total
palette is ``(1+ε)^r ∆ + 2^r = (1 + o(1))∆``.

Implementation notes:

* Splitting constrains only nodes whose *current induced* degree is at
  least :func:`~repro.apps.splitting.min_constrained_degree` — the Remark's
  modified problem, equivalent via clique gadgets.
* The recursion stops early (before ``r`` levels) once every leaf's maximum
  degree falls below the splittable threshold; leaves are then ``(d+1)``-
  colored.  This matches the paper's stopping rule ``∆* = poly log n``.
* ``ε`` defaults to the paper's ``1/log² n`` but is clamped so the
  derandomization certificate exists at the first level; experiment E12
  sweeps ∆ and reports measured palette / ∆ → 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.bipartite.instance import BLUE, RED
from repro.apps.splitting import min_constrained_degree, uniform_splitting
from repro.coloring.greedy import d_plus_one_coloring, is_proper_coloring
from repro.core.problems import UniformSplittingSpec
from repro.local.ledger import RoundLedger
from repro.utils.mathx import log2
from repro.utils.rng import SeedLike
from repro.utils.validation import require

__all__ = ["SplitColoringResult", "coloring_via_splitting"]


@dataclass
class SplitColoringResult:
    """Outcome of the Lemma 4.1 pipeline."""

    colors: List[int]  #: a proper coloring of the input graph
    num_colors: int  #: palette size actually used
    Delta: int  #: input maximum degree
    levels: int  #: splitting levels performed
    leaf_degrees: List[int] = field(default_factory=list)  #: max degree per leaf

    @property
    def palette_ratio(self) -> float:
        """``num_colors / (∆ + 1)`` — the paper predicts → 1 as ∆ grows."""
        return self.num_colors / (self.Delta + 1)


def _induced_adjacency(
    adjacency: Sequence[Sequence[int]], members: Sequence[int]
) -> Tuple[List[List[int]], List[int]]:
    """Induced subgraph on ``members``; returns (adj, member list)."""
    index = {v: i for i, v in enumerate(members)}
    sub = [
        [index[w] for w in adjacency[v] if w in index]
        for v in members
    ]
    return sub, list(members)


def coloring_via_splitting(
    adjacency: Sequence[Sequence[int]],
    eps: Optional[float] = None,
    ledger: Optional[RoundLedger] = None,
    method: str = "derandomized",
    seed: SeedLike = 0,
    max_levels: Optional[int] = None,
) -> SplitColoringResult:
    """Color a graph with (1 + o(1))∆ colors via Lemma 4.1.

    Parameters
    ----------
    eps:
        Per-level splitting accuracy; default ``1/log² n`` clamped so the
        top level is certifiably splittable (``∆ >= c·ln n / ε²``).
    method:
        ``"derandomized"`` or ``"random"``, forwarded to the splitter.
    max_levels:
        Cap on the recursion depth; default ``log ∆ − log log n`` per the
        lemma.

    The returned coloring is verified proper before being handed back.
    """
    n = len(adjacency)
    require(n >= 1, "graph must be non-empty")
    Delta = max((len(set(nbrs)) for nbrs in adjacency), default=0)

    if eps is None:
        eps = 1.0 / max(4.0, log2(max(4, n)) ** 2)
        # Clamp so the first level's constrained-degree threshold is below ∆
        # (otherwise no node is constrained and splitting is vacuous).
        while Delta >= 8 and min_constrained_degree(n, eps) > Delta and eps < 0.24:
            eps *= 1.5
        eps = min(eps, 0.24)

    threshold = min_constrained_degree(n, eps)
    if max_levels is None:
        if Delta > max(2, math.ceil(log2(max(4, n)))):
            max_levels = max(0, math.floor(log2(Delta) - log2(log2(max(4, n)))))
        else:
            max_levels = 0

    spec = UniformSplittingSpec(eps=eps, min_constrained_degree=threshold)
    groups: List[List[int]] = [list(range(n))]
    levels = 0
    for _level in range(max_levels):
        # Stop once no leaf still has a splittable (constrained) node.
        if all(
            max((len(sub_nbrs) for sub_nbrs in _induced_adjacency(adjacency, g)[0]), default=0)
            < threshold
            for g in groups
        ):
            break
        next_groups: List[List[int]] = []
        for g in groups:
            sub_adj, members = _induced_adjacency(adjacency, g)
            if max((len(x) for x in sub_adj), default=0) < threshold:
                next_groups.append(g)  # already low degree; keep whole
                continue
            partition = uniform_splitting(
                sub_adj, spec, ledger=ledger, method=method, seed=seed
            )
            reds = [members[i] for i in range(len(members)) if partition[i] == RED]
            blues = [members[i] for i in range(len(members)) if partition[i] == BLUE]
            if reds:
                next_groups.append(reds)
            if blues:
                next_groups.append(blues)
        groups = next_groups
        levels += 1

    # Color each leaf with a (d+1)-coloring on a disjoint palette.
    colors = [-1] * n
    palette_base = 0
    leaf_degrees: List[int] = []
    for g in groups:
        sub_adj, members = _induced_adjacency(adjacency, g)
        leaf_colors, leaf_palette = d_plus_one_coloring(sub_adj, ledger=ledger)
        leaf_degrees.append(max((len(x) for x in sub_adj), default=0))
        for i, v in enumerate(members):
            colors[v] = palette_base + leaf_colors[i]
        palette_base += leaf_palette

    require(is_proper_coloring(adjacency, colors), "pipeline produced an improper coloring")
    return SplitColoringResult(
        colors=colors,
        num_colors=palette_base,
        Delta=Delta,
        levels=levels,
        leaf_degrees=leaf_degrees,
    )
