"""Section 4 applications: coloring and MIS via splitting."""

from repro.apps.splitting import (
    BalancedSplitEstimator,
    ZeroRoundSplitting,
    attach_clique_gadgets,
    min_constrained_degree,
    uniform_splitting,
)
from repro.apps.coloring_via_splitting import SplitColoringResult, coloring_via_splitting
from repro.apps.defective import (
    defective_two_coloring,
    defective_violations,
    is_defective_two_coloring,
)
from repro.apps.mis_via_splitting import MISResult, mis_via_splitting

__all__ = [
    "BalancedSplitEstimator",
    "uniform_splitting",
    "ZeroRoundSplitting",
    "min_constrained_degree",
    "attach_clique_gadgets",
    "SplitColoringResult",
    "coloring_via_splitting",
    "MISResult",
    "mis_via_splitting",
    "defective_two_coloring",
    "defective_violations",
    "is_defective_two_coloring",
]
