"""Lemma 4.2 — MIS via splitting-driven heavy-node elimination.

Section 4.2's algorithm, phase by phase:

* A node is *heavy* when its remaining degree is at least ∆/2 (∆ = the
  remaining graph's maximum degree).  ``G'`` is induced by the heavy nodes
  and their neighbors; initially all of ``G'`` is *active*.
* Repeatedly split the active nodes red/blue (constraint: every active node
  keeps a balanced number of red neighbors); blue nodes become passive, as
  does every node with fewer than ``log n`` red (active) neighbors.  After
  ``~2 log ∆`` splits the active graph ``G*`` has maximum degree
  ``< 4 log n`` while heavy nodes that survived keep ``> log n`` active
  neighbors.
* Compute an MIS on ``G*`` (we use Luby — the paper's [BEK14b] black box
  has the same role) and remove the MIS nodes and their neighbors from the
  remaining graph.  Lemma 4.4: each round covers Ω(|V_H| / log³ n) heavy
  nodes, so O(log⁴ n) repetitions empty the heavy set; O(log ∆) phases
  later the whole graph has poly log degree and one final MIS finishes.

For small/medium experimental inputs the asymptotic thresholds are larger
than the graph itself; the implementation therefore degrades explicitly: if
an elimination round makes no progress (or no node qualifies as a splitting
constraint), it falls back to running the MIS step on the current active
graph directly — correctness (a verified MIS) is never compromised, and the
experiments report the split-phase statistics only in the regimes where the
machinery actually engages.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import BLUE, RED
from repro.apps.splitting import min_constrained_degree, uniform_splitting
from repro.core.problems import UniformSplittingSpec
from repro.local.ledger import RoundLedger
from repro.mis.greedy import greedy_mis
from repro.mis.luby import is_mis, luby_mis
from repro.utils.mathx import log2
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = ["MISResult", "mis_via_splitting"]


@dataclass
class MISResult:
    """Outcome of the Section 4.2 pipeline."""

    mis: Set[int]  #: the maximal independent set
    phases: int  #: heavy-elimination phases executed
    splits: int  #: total uniform splittings performed
    heavy_history: List[int] = field(default_factory=list)  #: heavy count per phase
    luby_rounds: int = 0  #: simulated rounds spent in MIS subcalls


def _remaining_adjacency(
    adjacency: Sequence[Sequence[int]], alive: Set[int]
) -> List[List[int]]:
    return [
        [w for w in adjacency[v] if w in alive] if v in alive else []
        for v in range(len(adjacency))
    ]


def mis_via_splitting(
    adjacency: Sequence[Sequence[int]],
    seed: SeedLike = 0,
    ledger: Optional[RoundLedger] = None,
    method: str = "random",
    eps: Optional[float] = None,
    low_degree_factor: float = 4.0,
    max_phases: int = 10_000,
) -> MISResult:
    """Compute a (verified) MIS via splitting-driven heavy-node elimination.

    ``method`` selects the splitter ("random" Las-Vegas by default — the
    derandomized splitter requires degrees Ω(log n/ε²) which only large
    instances meet; experiment E13 uses both).  ``low_degree_factor · log n``
    is the degree below which the endgame MIS runs directly.
    """
    rng = ensure_rng(seed)
    n = len(adjacency)
    log_n = max(2.0, log2(max(4, n)))
    low_degree = low_degree_factor * log_n

    alive: Set[int] = set(range(n))
    mis: Set[int] = set()
    phases = 0
    splits = 0
    luby_rounds = 0
    heavy_history: List[int] = []

    while alive and phases < max_phases:
        phases += 1
        rem = _remaining_adjacency(adjacency, alive)
        Delta = max((len(rem[v]) for v in alive), default=0)
        if Delta <= low_degree:
            # Endgame: poly log degree, one MIS finishes everything.
            sub_mis, rounds = _mis_on(rem, alive, rng, ledger)
            luby_rounds += rounds
            mis |= sub_mis
            break

        heavy = {v for v in alive if len(rem[v]) >= Delta / 2.0}
        heavy_history.append(len(heavy))
        g_prime = set(heavy)
        for v in heavy:
            g_prime.update(rem[v])

        # Degree-reduction splits on the active set.  The paper's accuracy is
        # ε = 1/log² n; at experimental scale that demands astronomically
        # large degrees, so the default loosens to 1/log n (capped at 0.24) —
        # still o(1), and the palette arithmetic of Lemma 4.1/4.4 is
        # unaffected in shape.
        active = set(g_prime)
        split_eps = eps if eps is not None else min(0.24, 1.0 / log2(max(4, n)))
        while True:
            act_adj = _remaining_adjacency(adjacency, active & alive)
            act_degree = max((len(act_adj[v]) for v in active), default=0)
            if act_degree <= low_degree:
                break
            spec = UniformSplittingSpec(
                eps=split_eps,
                min_constrained_degree=max(
                    int(low_degree), min_constrained_degree(n, split_eps)
                )
                if method == "derandomized"
                else max(int(low_degree), min_constrained_degree(n, split_eps)),
            )
            try:
                partition = uniform_splitting(
                    act_adj, spec, ledger=ledger, method=method,
                    seed=rng.getrandbits(62),
                )
            except RuntimeError:
                break  # splitter cannot engage; fall through to direct MIS
            splits += 1
            reds = {v for v in active if partition[v] == RED}
            # The paper additionally passivates nodes with < log n red
            # (still-active) neighbors; apply the rule when it leaves a
            # non-empty set (below the asymptotic regime it would empty it).
            strict = {
                v
                for v in reds
                if sum(1 for w in act_adj[v] if w in reds) >= log_n
            }
            new_active = strict if strict else reds
            if not new_active or new_active == active:
                break
            active = new_active

        g_star = _remaining_adjacency(adjacency, active & alive)
        sub_mis, rounds = _mis_on(g_star, active & alive, rng, ledger)
        luby_rounds += rounds
        mis |= sub_mis
        removed = set(sub_mis)
        for v in sub_mis:
            removed.update(w for w in adjacency[v] if w in alive)
        if not removed:
            # No progress through splitting machinery: finish directly.
            sub_mis, rounds = _mis_on(rem, alive, rng, ledger)
            luby_rounds += rounds
            mis |= sub_mis
            break
        alive -= removed

    # Maximality sweep: greedily admit any still-undominated node (this is
    # the final poly log-degree MIS step of the paper, done sequentially).
    for v in sorted(alive):
        if v not in mis and not any(w in mis for w in adjacency[v]):
            mis.add(v)

    require(is_mis(adjacency, mis), "pipeline produced an invalid MIS")
    return MISResult(
        mis=mis,
        phases=phases,
        splits=splits,
        heavy_history=heavy_history,
        luby_rounds=luby_rounds,
    )


def _mis_on(
    rem: Sequence[Sequence[int]],
    members: Set[int],
    rng,
    ledger: Optional[RoundLedger],
) -> Tuple[Set[int], int]:
    """MIS restricted to ``members`` of the (global-index) graph ``rem``."""
    members = sorted(members)
    index = {v: i for i, v in enumerate(members)}
    sub = [[index[w] for w in rem[v] if w in index] for v in members]
    sub_mis, rounds = luby_mis(sub, seed=rng.getrandbits(31), ledger=ledger)
    return {members[i] for i in sub_mis}, rounds
