"""Defective 2-coloring — the weaker splitting of the paper's footnote 2.

Footnote 2 (Section 1.1): for the coloring application, "it would be enough
if each node has at most (∆/2)(1+ε) neighbors *in its own color*.  This is
a form of defective coloring, and it is a weaker requirement than
splitting."  We provide the weaker problem explicitly — verifier and
solver — because it is the natural target for users interested only in the
coloring application.

The solver simply delegates to the uniform splitter (a uniform splitting
bounds *both* color classes around d/2, hence in particular the node's own
class), which also demonstrates the footnote's "weaker than" relation
constructively.  The verifier, however, accepts strictly more colorings
than the uniform one — tested explicitly.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.splitting import uniform_splitting
from repro.core.problems import UniformSplittingSpec
from repro.local.ledger import RoundLedger
from repro.utils.rng import SeedLike
from repro.utils.validation import require

__all__ = ["defective_violations", "is_defective_two_coloring", "defective_two_coloring"]


def defective_violations(
    adjacency: Sequence[Sequence[int]],
    partition: Sequence[Optional[int]],
    spec: UniformSplittingSpec,
) -> List[int]:
    """Nodes with more than ``(1/2 + ε)·d`` *same-color* neighbors.

    Only nodes with ``spec.constrains(deg)`` are checked, mirroring the
    uniform splitting conventions.
    """
    n = len(adjacency)
    require(len(partition) == n, "partition must cover all nodes")
    bad: List[int] = []
    for v in range(n):
        d = len(adjacency[v])
        if not spec.constrains(d) or partition[v] is None:
            continue
        same = sum(1 for w in adjacency[v] if partition[w] == partition[v])
        if same > spec.hi(d):
            bad.append(v)
    return bad


def is_defective_two_coloring(
    adjacency: Sequence[Sequence[int]],
    partition: Sequence[Optional[int]],
    spec: UniformSplittingSpec,
) -> bool:
    """Boolean form of :func:`defective_violations`."""
    return not defective_violations(adjacency, partition, spec)


def defective_two_coloring(
    adjacency: Sequence[Sequence[int]],
    spec: UniformSplittingSpec,
    ledger: Optional[RoundLedger] = None,
    method: str = "derandomized",
    seed: SeedLike = None,
) -> List[int]:
    """Compute a defective 2-coloring by solving the stronger problem.

    Any uniform splitting is a defective 2-coloring (same-color neighbors
    of ``v`` number at most ``hi(d)`` regardless of ``v``'s own color), so
    the uniform splitter's guarantee regime carries over verbatim.
    """
    partition = uniform_splitting(
        adjacency, spec, ledger=ledger, method=method, seed=seed
    )
    assert is_defective_two_coloring(adjacency, partition, spec)
    return partition
