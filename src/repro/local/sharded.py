"""Sharded CSR execution: node-range shards with per-round halo exchange.

The dense kernels (:mod:`repro.local.dense`) run a whole graph inside one
process, so the largest instances are capped by a single core's memory
bandwidth.  The LOCAL model itself is the license to shard: a round's
output depends only on each node's one-hop neighborhood, so the packed CSR
arrays can be partitioned into contiguous *node-range shards* — each
holding its interior slots plus a **halo** of cut-edge partner state — and
a full round needs to move only the boundary frontier values between
shards, never the CSR state itself.

Three properties of the existing stack make the sharded run *bit-identical*
per trial to the unsharded ``coins="keyed"`` dense kernels:

* **Keyed coins are pure.**  Every coin is ``keyed_hash53`` of
  ``(seed_hash, global node/slot index, round)``
  (:mod:`repro.utils.rng`), so a shard recomputes its nodes' (and its halo
  nodes') coins locally from *global* indices — no coin ever crosses a
  shard boundary.
* **Fault masks are pure.**  The SplitMix64 mask kernels
  (:mod:`repro.scenarios.base`, PR 4) are pure functions of
  ``(fault_seed, entity, round, port)``; :class:`_ShardFaults` evaluates
  the same bound perturbation stack over shard-local slot coordinates,
  producing exactly the mask slices :class:`~repro.scenarios.masks.DenseFaults`
  would hand the unsharded kernel.
* **Only frontier state is dynamic.**  What a neighbor shard cannot
  recompute is the *outcome* of a round on the other side of a cut edge —
  Luby's join/active bits, sinkless' flip clears — and those are exactly
  the per-round ``(boundary node -> frontier value)`` vectors the halo
  exchange ships, through per-shard shared-memory buffers
  (:mod:`multiprocessing.shared_memory`) with a pickle fallback.

Execution model: one persistent single-worker process pool per shard (the
worker keeps its shard arrays hot across rounds *and* across trials of a
batch), a hub-and-spoke driver that dispatches per-round step calls and
assembles halo inputs between them, and deterministic replay-based
healing — the driver logs every step's halo input (small vectors), so when
a shard worker dies (``BrokenProcessPool``) the pool is rebuilt
(:func:`repro.exp.resilient._kill_pool` idiom) and the shard's state is
reconstructed exactly by replaying the logged rounds from the checkpoint
history, then the failed step is retried.

Partition and halo-exchange wall time are tracked per run
(``partition_seconds`` / ``halo_seconds`` on the results) and emitted as
``repro.obs`` span records when a tracer is attached — the E22 gate in
``benchmarks/bench_engine.py`` reports them as their own columns.
"""

from __future__ import annotations

import os
import time
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.local.dense import (
    DenseResult,
    _segment_or,
    _segment_sum,
)
from repro.local.engine import CSREngine
from repro.scenarios.base import quiet_after
from repro.utils.rng import ensure_rng, keyed_u01, mix64
from repro.utils.validation import require

__all__ = [
    "ShardSpec",
    "ShardPlan",
    "plan_shards",
    "ShardedExecutor",
    "luby_mis_sharded",
    "luby_mis_sharded_batch",
    "sinkless_trial_sharded",
    "uniform_splitting_sharded",
]


# ---------------------------------------------------------------------------
# Shard planning.
# ---------------------------------------------------------------------------


class ShardSpec:
    """The picklable per-shard payload: one contiguous node range's CSR slice.

    Shipped to the shard's worker exactly once at pool init (re-shipped only
    on heal); everything per-round derives from it plus the halo exchange.
    All indices are global unless suffixed ``_local``; local node space is
    ``[0, hi-lo)`` for interior nodes followed by the sorted halo nodes.
    """

    def __init__(self, sid, lo, hi, n_global, slot_base, offsets, dst_local,
                 dst_global, dst_port, partner_global, halo_global, uid_local,
                 boundary_local, cut_slots):
        self.sid = sid
        self.lo = lo
        self.hi = hi
        self.n_global = n_global
        self.slot_base = slot_base
        self.offsets = offsets            # local CSR offsets, len (hi-lo)+1
        self.dst_local = dst_local        # per-slot neighbor, local index
        self.dst_global = dst_global      # per-slot neighbor, global index
        self.dst_port = dst_port          # per-slot reverse port (global semantics)
        self.partner_global = partner_global  # per-slot partner slot, global index
        self.halo_global = halo_global    # sorted global ids of halo nodes
        self.uid_local = uid_local        # uid for interior + halo nodes
        self.boundary_local = boundary_local  # interior nodes with a cut edge
        self.cut_slots = cut_slots        # local slots whose dst is external


class ShardPlan:
    """A full partition of one engine's CSR arrays plus exchange routing.

    ``specs`` are the per-shard payloads; the routing arrays say, for each
    shard, which *other* shard (and which position in its boundary / cut
    vectors) every halo node / cut slot reads from during the exchange.
    ``partition_seconds`` is the wall time of the plan build — the E22 gate
    reports it as its own column.
    """

    def __init__(self, engine: CSREngine, cuts: Sequence[int]):
        start = time.perf_counter()
        offsets, dst_node, dst_port = engine.dense_arrays()
        n = engine.n
        uid = np.asarray(engine.network.ids, dtype=np.int64)
        self.n = n
        self.m = int(dst_node.shape[0])
        starts = offsets[:-1]

        ranges = []
        for lo, hi in zip(cuts[:-1], cuts[1:]):
            if hi > lo:
                ranges.append((int(lo), int(hi)))
        if not ranges:  # empty graph: keep one empty shard so all paths run
            ranges = [(0, n)]
        self.los = np.array([lo for lo, _ in ranges], dtype=np.int64)

        self.specs: List[ShardSpec] = []
        for sid, (lo, hi) in enumerate(ranges):
            s0, s1 = int(offsets[lo]), int(offsets[hi])
            dstg = dst_node[s0:s1]
            ext = (dstg < lo) | (dstg >= hi)
            halo = np.unique(dstg[ext])
            interior = hi - lo
            dst_local = np.where(
                ext, interior + np.searchsorted(halo, dstg), dstg - lo
            ).astype(np.int64)
            off_local = (offsets[lo:hi + 1] - s0).astype(np.int64)
            owner_local = np.repeat(
                np.arange(interior, dtype=np.int64), np.diff(off_local)
            )
            cut_slots = np.flatnonzero(ext)
            boundary = np.unique(owner_local[ext])
            uid_local = np.concatenate([uid[lo:hi], uid[halo]])
            partner_global = starts[dstg] + dst_port[s0:s1]
            self.specs.append(ShardSpec(
                sid, lo, hi, n, s0, off_local, dst_local,
                dstg.astype(np.int64), dst_port[s0:s1].astype(np.int64),
                partner_global.astype(np.int64), halo.astype(np.int64),
                uid_local.astype(np.int64), boundary.astype(np.int64),
                cut_slots.astype(np.int64),
            ))

        # Exchange routing: halo node -> (owner shard, boundary position) and
        # cut slot -> (partner shard, partner cut position).
        boundary_global = [sp.lo + sp.boundary_local for sp in self.specs]
        self.halo_src_shard: List[np.ndarray] = []
        self.halo_src_pos: List[np.ndarray] = []
        self.cut_peer_shard: List[np.ndarray] = []
        self.cut_peer_pos: List[np.ndarray] = []
        for sp in self.specs:
            src = self._shard_of(sp.halo_global)
            pos = np.empty(sp.halo_global.shape[0], dtype=np.int64)
            for t in np.unique(src):
                sel = src == t
                pos[sel] = np.searchsorted(boundary_global[t], sp.halo_global[sel])
            self.halo_src_shard.append(src)
            self.halo_src_pos.append(pos)

            cut_dst = sp.dst_global[sp.cut_slots]
            peer = self._shard_of(cut_dst)
            ppos = np.empty(cut_dst.shape[0], dtype=np.int64)
            partner_g = sp.partner_global[sp.cut_slots]
            for t in np.unique(peer):
                sel = peer == t
                ppos[sel] = np.searchsorted(
                    self.specs[t].cut_slots, partner_g[sel] - self.specs[t].slot_base
                )
            self.cut_peer_shard.append(peer)
            self.cut_peer_pos.append(ppos)
        self.partition_seconds = time.perf_counter() - start

    def _shard_of(self, nodes: np.ndarray) -> np.ndarray:
        return (np.searchsorted(self.los, nodes, side="right") - 1).astype(np.int64)

    def __len__(self) -> int:
        return len(self.specs)


def plan_shards(
    engine: CSREngine,
    shards: Optional[int] = None,
    *,
    max_shard_slots: Optional[int] = None,
    bounds: Optional[Sequence[int]] = None,
) -> ShardPlan:
    """Partition ``engine``'s CSR arrays into contiguous node-range shards.

    Exactly one sizing rule applies: explicit ``bounds`` (interior node cut
    points — uneven ranges allowed), a slot budget ``max_shard_slots``
    (size-bounded shards: ``ceil(m / max_shard_slots)`` of them), or a
    target ``shards`` count with slot-balanced cuts (default 2).  Cuts are
    always node-aligned, so every CSR row lives wholly inside one shard.
    """
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    m = int(dst_node.shape[0])
    if bounds is not None:
        cuts = [0]
        for b in bounds:
            b = int(b)
            require(0 <= b <= n, f"shard bound {b} outside [0, {n}]")
            require(b >= cuts[-1], "shard bounds must be nondecreasing")
            cuts.append(b)
        cuts.append(n)
    else:
        if shards is None:
            if max_shard_slots is not None:
                require(max_shard_slots >= 1, "max_shard_slots must be >= 1")
                shards = max(1, -(-m // max_shard_slots))
            else:
                shards = 2
        require(shards >= 1, f"shards must be >= 1, got {shards}")
        shards = min(int(shards), max(1, n))
        cuts = [0]
        for i in range(1, shards):
            target = (m * i) // shards
            cut = int(np.searchsorted(offsets, target, side="left"))
            cuts.append(min(max(cut, cuts[-1]), n))
        cuts.append(n)
    return ShardPlan(engine, cuts)


# ---------------------------------------------------------------------------
# Shard-local fault masks.
# ---------------------------------------------------------------------------


class _ShardFaults:
    """:class:`~repro.scenarios.masks.DenseFaults` over shard coordinates.

    Built worker-side from the picklable bound perturbation stack.  Every
    mask is the shard-local slice of what the unsharded adapter would
    build: crash masks over interior + halo nodes (sliced from the full-n
    mask — crashes are pure per node), delivery masks evaluated directly on
    the shard's slot coordinates — ``delivered_in[k]`` is the decision for
    ``(sender = dst_global[k], port = dst_port[k])``, which is exactly the
    partner-gather the dense adapter computes, because each dropper's
    decision is pure per ``(sender, round, port)``.
    """

    CACHE_MAX = 32

    def __init__(self, sp: ShardSpec, bound, node_global, owner_global, out_port):
        self.bound = tuple(bound)
        require(
            not any(getattr(b, "corrupts_messages", False) for b in self.bound),
            "sharded kernels do not implement Byzantine corruption masks",
        )
        self._crashing = any(b.crashes_nodes for b in self.bound)
        self._droppers = tuple(b for b in self.bound if b.drops_messages)
        self.quiet = quiet_after(self.bound)
        self._cache: dict = {}
        self._sp = sp
        self._node_global = node_global      # interior + halo, global indices
        self._owner_global = owner_global    # per local slot: sender as global node
        self._out_port = out_port            # per local slot: port on the sender

    def expired(self, round_no: int) -> bool:
        if self.quiet is None or round_no <= self.quiet:
            return False
        # Unlike the global adapter, incoming deliveries are built directly
        # (not gathered from "out"), so the steady "in" mask is checked too.
        return (
            self._steady("crash") is None
            and self._steady("out") is None
            and self._steady("in") is None
        )

    def _steady(self, kind: str):
        key = ("steady", kind)
        if key not in self._cache:
            self._cache[key] = self._build(kind, self.quiet + 1)
        return self._cache[key]

    def _lookup(self, kind: str, round_no: int):
        if self.quiet is not None and round_no > self.quiet:
            return self._steady(kind)
        key = (kind, round_no)
        if key not in self._cache:
            value = self._build(kind, round_no)
            if len(self._cache) >= self.CACHE_MAX:
                self._cache.pop(next(iter(self._cache)))
            self._cache[key] = value
        return self._cache[key]

    def _build(self, kind: str, round_no: int):
        if kind == "crash":
            return self._build_crash(round_no)
        if kind == "out":
            return self._build_del(round_no, self._owner_global, self._out_port)
        return self._build_del(round_no, self._sp.dst_global, self._sp.dst_port)

    def _build_crash(self, round_no: int):
        mask = None
        n = self._sp.n_global
        for b in self.bound:
            part = b.crashes_mask(round_no, n)
            if part is NotImplemented:
                victims = list(b.crashes(round_no))
                if not victims:
                    continue
                part = np.zeros(n, dtype=bool)
                part[victims] = True
            if part is None:
                continue
            mask = part if mask is None else (mask | part)
        return None if mask is None else mask[self._node_global]

    def _build_del(self, round_no: int, senders, ports):
        mask = None
        for b in self._droppers:
            part = b.delivers_mask(round_no, senders, ports)
            if part is NotImplemented:
                part = np.ones(senders.shape[0], dtype=bool)
                delivers = b.delivers
                for k in range(senders.shape[0]):
                    if not delivers(round_no, int(senders[k]), int(ports[k])):
                        part[k] = False
            if part is None:
                continue
            mask = part if mask is None else (mask & part)
        return mask

    def crashed_at(self, round_no: int):
        if not self._crashing:
            return None
        return self._lookup("crash", round_no)

    def delivered_out(self, round_no: int):
        if not self._droppers:
            return None
        return self._lookup("out", round_no)

    def delivered_in(self, round_no: int):
        if not self._droppers:
            return None
        return self._lookup("in", round_no)


# ---------------------------------------------------------------------------
# Worker side: process-global shard state + step functions.
#
# Each step function takes ``(key, ..., payload)`` where ``payload`` is the
# halo input for that step — either ``("data", bytes-or-array)`` carried in
# the call itself (pickle transport / inline mode) or ``("shm", nbytes)``
# meaning the driver already wrote the vector into the shard's shared-memory
# IN region.  Step outputs flow the same way in reverse: written into the
# OUT region (shm) or returned alongside the small scalar result (pickle).
# ---------------------------------------------------------------------------

_STATE: dict = {}


def _attach_shm(name: str):
    from multiprocessing import shared_memory

    # Attaching must not (re-)register the driver-owned segment with the
    # resource tracker: a forked worker shares the driver's tracker, so a
    # second register/unregister pair would strip the driver's own entry
    # and a spawn worker's private tracker would unlink the segment when
    # the worker exits.  Python 3.13's track=False replaces this idiom.
    try:
        from multiprocessing import resource_tracker

        orig_register = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
    except Exception:
        orig_register = None
    try:
        return shared_memory.SharedMemory(name=name)
    finally:
        if orig_register is not None:
            resource_tracker.register = orig_register


def _w_init(key, spec: ShardSpec, shm_name, out_nbytes, in_nbytes):
    """Install one shard's arrays into this process; derive slot coordinates."""
    nI = spec.hi - spec.lo
    owner = np.repeat(np.arange(nI, dtype=np.int64), np.diff(spec.offsets))
    degrees = np.diff(spec.offsets)
    out_port = np.arange(spec.dst_local.shape[0], dtype=np.int64) - \
        spec.offsets[:-1][owner]
    node_global = np.concatenate(
        [np.arange(spec.lo, spec.hi, dtype=np.int64), spec.halo_global]
    )
    is_cut = np.zeros(spec.dst_local.shape[0], dtype=bool)
    is_cut[spec.cut_slots] = True
    st = {
        "spec": spec,
        "nI": nI,
        "L": nI + spec.halo_global.shape[0],
        "owner": owner,
        "degrees": degrees,
        "out_port": out_port,
        "node_global": node_global,
        "owner_global": node_global[owner],
        "is_cut": is_cut,
        # partner slot local index; only valid where ~is_cut
        "partner_local": spec.partner_global - spec.slot_base,
        "low_view": node_global[owner] < spec.dst_global,
        "shm": None,
        "out_view": None,
        "in_view": None,
    }
    if shm_name is not None:
        shm = _attach_shm(shm_name)
        st["shm"] = shm
        st["out_view"] = shm.buf[:out_nbytes]
        st["in_view"] = shm.buf[out_nbytes:out_nbytes + in_nbytes]
    _STATE[key] = st
    return spec.sid


def _w_close(key):
    st = _STATE.pop(key, None)
    if st is not None and st.get("shm") is not None:
        st["out_view"] = st["in_view"] = None
        st["shm"].close()
    return True


def _get_payload(st, payload) -> Optional[np.ndarray]:
    if payload is None:
        return None
    kind, value = payload
    if kind == "shm":
        return np.frombuffer(st["in_view"], dtype=np.uint8, count=value).copy()
    return np.frombuffer(memoryview(value), dtype=np.uint8).copy()


def _put_payload(st, arr: np.ndarray):
    """Ship a uint8 vector back: into the OUT region, or with the return."""
    arr = np.ascontiguousarray(arr, dtype=np.uint8)
    if st["out_view"] is not None:
        st["out_view"][:arr.shape[0]] = arr.tobytes()
        return None
    return arr.tobytes()


def _shard_faults(st, bound) -> Optional[_ShardFaults]:
    if bound is None:
        return None
    return _ShardFaults(
        st["spec"], bound, st["node_global"], st["owner_global"], st["out_port"]
    )


def _w_set_fail(key):
    """Test hook: make this worker die at the start of its next step."""
    _STATE[key]["fail_next"] = True
    return True


def _maybe_fail(st):
    if st.pop("fail_next", False):
        os._exit(17)


# -- Luby MIS ---------------------------------------------------------------


def _w_luby_start(key, seed_hash, bound, payload=None):
    st = _STATE[key]
    _maybe_fail(st)
    nI = st["nI"]
    halo = st["L"] - nI
    in_mis = st["degrees"] == 0
    active = np.concatenate([~in_mis, np.ones(halo, dtype=bool)])
    st["luby"] = {
        "sh": seed_hash,
        "in_mis": in_mis,
        "crashed": np.zeros(nI, dtype=bool),
        "active": active,
        "r": np.zeros(st["L"], dtype=np.float64),
        "faults": _shard_faults(st, bound),
        "joining": None,
        "active2": None,
        "heard2": None,
    }
    return (int(active[:nI].sum()), None)


def _w_luby_phase_a(key, round1, do_join, payload=None):
    """Rounds ``round1`` (priorities) and the setup of ``round1 + 1``.

    Mirrors :func:`repro.local.dense.luby_mis_dense`'s loop body exactly:
    expiry check, round-1 crashes leave before drawing, active nodes draw
    keyed priorities, then (unless the mid-phase ``max_rounds`` cap stops
    the trial — ``do_join=False``) round-2 crashes and both delivery masks
    are evaluated and the shard's interior joins are decided.  Ships the
    boundary joining bits; the kill/deactivate half runs in phase B once
    the halo joins arrive.
    """
    st = _STATE[key]
    _maybe_fail(st)
    lu = st["luby"]
    sp = st["spec"]
    nI = st["nI"]
    halo_active = _get_payload(st, payload)
    active = lu["active"]
    if halo_active is not None:
        active[nI:] = halo_active.view(bool)[: st["L"] - nI]
    faults = lu["faults"]
    if faults is not None and faults.expired(round1):
        faults = lu["faults"] = None
    if faults is not None:
        crash = faults.crashed_at(round1)
        if crash is not None:
            lu["crashed"] |= active[:nI] & crash[:nI]
            active &= ~crash
    act_idx = np.flatnonzero(active)
    lu["r"][act_idx] = keyed_u01(np, lu["sh"], st["node_global"][act_idx], round1)
    if not do_join:
        return (int(active[:nI].sum()), None)
    round2 = round1 + 1
    active2 = heard1 = heard2 = None
    if faults is not None:
        crash = faults.crashed_at(round2)
        if crash is not None:
            lu["crashed"] |= active[:nI] & crash[:nI]
            active2 = active & ~crash
        heard1 = faults.delivered_in(round1)
        heard2 = faults.delivered_in(round2)
    r = lu["r"]
    uid = sp.uid_local
    nbr = st["dst_local"] if "dst_local" in st else sp.dst_local
    own = st["owner"]
    nbr_better = active[nbr] & (
        (r[nbr] > r[own]) | ((r[nbr] == r[own]) & (uid[nbr] > uid[own]))
    )
    if heard1 is not None:
        nbr_better &= heard1
    joining = active[:nI] & ~_segment_or(nbr_better, sp.offsets)
    if active2 is not None:
        joining = joining & active2[:nI]
    lu["joining"] = joining
    lu["active2"] = active2
    lu["heard2"] = heard2
    return (0, _put_payload(st, joining[sp.boundary_local]))


def _w_luby_phase_b(key, round1, payload=None):
    """The announcement half: kills, MIS updates, next frontier."""
    st = _STATE[key]
    _maybe_fail(st)
    lu = st["luby"]
    sp = st["spec"]
    nI = st["nI"]
    halo_join = _get_payload(st, payload)
    joining = lu["joining"]
    join_ext = np.concatenate(
        [joining, np.zeros(st["L"] - nI, dtype=bool)]
    )
    if halo_join is not None:
        join_ext[nI:] = halo_join.view(bool)[: st["L"] - nI]
    nbr = sp.dst_local
    announced = join_ext[nbr]
    if lu["heard2"] is not None:
        announced = announced & lu["heard2"]
    active2 = lu["active2"]
    act_base = lu["active"] if active2 is None else active2
    killed = act_base[:nI] & ~joining & _segment_or(announced, sp.offsets)
    lu["in_mis"] |= joining
    new_active = act_base.copy()
    new_active[:nI] &= ~(joining | killed)
    # Halo joins deactivate halo copies too; their authoritative next-phase
    # state still arrives with the next phase A's halo exchange.
    new_active[nI:] &= ~join_ext[nI:]
    lu["active"] = new_active
    lu["joining"] = lu["active2"] = lu["heard2"] = None
    return (
        int(new_active[:nI].sum()),
        _put_payload(st, new_active[:nI][sp.boundary_local]),
    )


def _w_luby_gather(key, payload=None):
    lu = _STATE[key]["luby"]
    return ((lu["in_mis"].copy(), lu["crashed"].copy()), None)


# -- Sinkless orientation ---------------------------------------------------


def _w_sink_start(key, seed_hash, bound, min_degree, payload=None):
    """Round 1: per-port proposal coins, higher-uid endpoint's coin wins.

    Both endpoints' round-1 coins are keyed by *global slot index*, so the
    shard computes the partner's coin directly — round 1 needs no exchange.
    """
    st = _STATE[key]
    _maybe_fail(st)
    sp = st["spec"]
    nI = st["nI"]
    m_local = sp.dst_local.shape[0]
    slot_global = sp.slot_base + np.arange(m_local, dtype=np.int64)
    coins_own = keyed_u01(np, seed_hash, slot_global, 1) < 0.5
    coins_partner = keyed_u01(np, seed_hash, sp.partner_global, 1) < 0.5
    uid = sp.uid_local
    higher = uid[st["owner"]] > uid[sp.dst_local]
    out = np.where(higher, coins_own, ~coins_partner)
    st["sink"] = {
        "sh": seed_hash,
        "out": out,
        "crashed": np.zeros(st["L"], dtype=bool),
        "constrained": st["degrees"] >= min_degree,
        "faults": _shard_faults(st, bound),
        "clear_sent": np.zeros(sp.cut_slots.shape[0], dtype=bool),
        "partner_out_cut": np.zeros(sp.cut_slots.shape[0], dtype=bool),
    }
    return (int(nI), None)


def _w_sink_send(key, round_no, payload=None):
    """Fix-round send phase: crashes land, own-view sinks flip one port.

    Ships ``(post-set out bits, clear bits)`` for the cut slots — the
    receiving shard derives the partner's final bit as
    ``post_set & ~clear``, so one exchange settles both the clears and the
    probe's partner view.
    """
    st = _STATE[key]
    _maybe_fail(st)
    sk = st["sink"]
    sp = st["spec"]
    nI = st["nI"]
    faults = sk["faults"]
    if faults is not None and faults.expired(round_no):
        faults = sk["faults"] = None
    crashed = sk["crashed"]
    if faults is not None:
        crash = faults.crashed_at(round_no)
        if crash is not None:
            crashed |= crash
    out = sk["out"]
    sinks_own = sk["constrained"] & ~crashed[:nI] & ~_segment_or(out, sp.offsets)
    sink_idx = np.flatnonzero(sinks_own)
    clear = np.zeros(sp.cut_slots.shape[0], dtype=bool)
    if sink_idx.shape[0]:
        degrees = st["degrees"]
        # Keyed by global node index, exactly CoinTable("keyed").randints.
        ports = (
            keyed_u01(np, sk["sh"], st["node_global"][sink_idx], round_no)
            * degrees[sink_idx]
        ).astype(np.int64)
        chosen = sp.offsets[:-1][sink_idx] + ports
        out[chosen] = True
        keep = np.ones(chosen.shape[0], dtype=bool)
        if faults is not None:
            keep = ~crashed[sp.dst_local[chosen]]
            delivered = faults.delivered_out(round_no)
            if delivered is not None:
                keep &= delivered[chosen]
        cleared = chosen[keep]
        internal = cleared[~st["is_cut"][cleared]]
        out[st["partner_local"][internal]] = False
        external = cleared[st["is_cut"][cleared]]
        if external.shape[0]:
            clear[np.searchsorted(sp.cut_slots, external)] = True
    sk["clear_sent"] = clear
    post_set = out[sp.cut_slots]
    packed = np.concatenate(
        [post_set.view(np.uint8), clear.view(np.uint8)]
    ) if sp.cut_slots.shape[0] else np.zeros(0, dtype=np.uint8)
    return (0, _put_payload(st, packed))


def _w_sink_settle(key, round_no, payload=None):
    """Apply incoming clears, record partner cut state, run the probe."""
    st = _STATE[key]
    _maybe_fail(st)
    sk = st["sink"]
    sp = st["spec"]
    nI = st["nI"]
    out = sk["out"]
    c = sp.cut_slots.shape[0]
    data = _get_payload(st, payload)
    if c and data is not None:
        peer_post = data[:c].view(bool)
        peer_clear = data[c:2 * c].view(bool)
        out[sp.cut_slots] &= ~peer_clear
        sk["partner_out_cut"] = peer_post & ~sk["clear_sent"]
    partner_out = np.empty(out.shape[0], dtype=bool)
    internal = ~st["is_cut"]
    partner_out[internal] = out[st["partner_local"][internal]]
    partner_out[sp.cut_slots] = sk["partner_out_cut"]
    effective_out = np.where(st["low_view"], out, ~partner_out)
    live = bool(
        (
            sk["constrained"]
            & ~sk["crashed"][:nI]
            & ~_segment_or(effective_out, sp.offsets)
        ).any()
    )
    return (live, None)


def _w_sink_gather(key, payload=None):
    sk = _STATE[key]["sink"]
    return ((sk["out"].copy(), sk["crashed"][: _STATE[key]["nI"]].copy()), None)


# -- Uniform splitting ------------------------------------------------------


def _w_split_start(key, spec_obj, bound, red, blue, payload=None):
    st = _STATE[key]
    _maybe_fail(st)
    faults = _shard_faults(st, bound)
    crashed = np.zeros(st["L"], dtype=bool)
    heard = None
    if faults is not None:
        crash = faults.crashed_at(1)
        if crash is not None:
            crashed = crash.copy()
        heard = faults.delivered_in(1)
    degrees = st["degrees"]
    st["split"] = {
        "spec_obj": spec_obj,
        "red": red,
        "blue": blue,
        "crashed": crashed,
        "heard": heard,
        "constrained": spec_obj.constrains(degrees) & ~crashed[: st["nI"]],
        "lo": spec_obj.lo(degrees),
        "hi": spec_obj.hi(degrees),
        "colors": None,
    }
    return (0, None)


def _w_split_attempt(key, run_hash, payload=None):
    """One 0-round splitting + verification: colors are pure per
    ``(run_hash, node)``, so no halo exchange is needed at all."""
    st = _STATE[key]
    _maybe_fail(st)
    sl = st["split"]
    sp = st["spec"]
    u = keyed_u01(np, run_hash, st["node_global"], 1)
    cols = np.where(u < 0.5, sl["red"], sl["blue"])
    sent = (cols[sp.dst_local] == sl["red"]).astype(np.int64)
    if sl["crashed"].any():
        sent &= ~sl["crashed"][sp.dst_local]
    if sl["heard"] is not None:
        sent &= sl["heard"]
    red_nbrs = _segment_sum(sent, sp.offsets)
    ok = bool(
        (
            ~sl["constrained"]
            | ((red_nbrs >= sl["lo"]) & (red_nbrs <= sl["hi"]))
        ).all()
    )
    sl["colors"] = cols[: st["nI"]]
    return (ok, None)


def _w_split_gather(key, payload=None):
    st = _STATE[key]
    sl = st["split"]
    return ((sl["colors"].copy(), sl["crashed"][: st["nI"]].copy()), None)


# ---------------------------------------------------------------------------
# The executor: per-shard pools, shared-memory channels, healing.
# ---------------------------------------------------------------------------

_EXEC_SEQ = [0]


class _ShardHandle:
    """One shard's pool, shared-memory channel, and replay log."""

    def __init__(self, spec: ShardSpec):
        self.spec = spec
        b = int(spec.boundary_local.shape[0])
        h = int(spec.halo_global.shape[0])
        c = int(spec.cut_slots.shape[0])
        self.out_nbytes = max(1, b, 2 * c)
        self.in_nbytes = max(1, h, 2 * c)
        self.pool = None
        self.shm = None
        self.out_view = None
        self.in_view = None
        self.log: List[Tuple] = []  # (fn, args, in_bytes) since job start


class ShardedExecutor:
    """Persistent sharded runtime over one engine's CSR arrays.

    One single-worker process pool per shard keeps that shard's arrays hot
    across rounds and across trials of a batch; ``workers=0`` runs every
    shard step inline in the driver process (the property-test mode — same
    code path, no processes).  ``transport="shm"`` moves the per-round halo
    vectors through per-shard :mod:`multiprocessing.shared_memory` buffers;
    ``"pickle"`` carries them in the task messages instead (the automatic
    fallback where shared memory is unavailable).

    A shard worker dying mid-run surfaces as ``BrokenProcessPool``; the
    executor kills and rebuilds that shard's pool, replays the shard's
    logged steps (init + every dispatched round, with the recorded halo
    inputs — all step math is pure given those inputs, so the state is
    reconstructed exactly), and retries the failed step.
    """

    MAX_HEALS = 3

    def __init__(
        self,
        engine: CSREngine,
        shards: Optional[int] = None,
        *,
        max_shard_slots: Optional[int] = None,
        bounds: Optional[Sequence[int]] = None,
        workers: Optional[int] = None,
        transport: str = "shm",
        tracer=None,
    ):
        require(transport in ("shm", "pickle"), f"unknown transport {transport!r}")
        self.engine = engine
        self.plan = plan_shards(
            engine, shards, max_shard_slots=max_shard_slots, bounds=bounds
        )
        self.inline = workers == 0
        if workers is not None and workers != 0:
            require(
                workers == len(self.plan),
                f"workers ({workers}) must equal the shard count "
                f"({len(self.plan)}); each shard is pinned to one worker",
            )
        self.transport = "pickle" if self.inline else transport
        self.tracer = tracer
        self.halo_seconds = 0.0
        self.heals = 0
        _EXEC_SEQ[0] += 1
        self._job = f"shard-{os.getpid()}-{_EXEC_SEQ[0]}"
        self._handles = [_ShardHandle(sp) for sp in self.plan.specs]
        self._closed = False
        for h in self._handles:
            self._open_channel(h)
            self._start_pool(h)
            self._init_shard(h)

    # -- lifecycle ----------------------------------------------------------

    def _open_channel(self, h: _ShardHandle):
        if self.transport != "shm":
            return
        try:
            from multiprocessing import shared_memory

            h.shm = shared_memory.SharedMemory(
                create=True, size=h.out_nbytes + h.in_nbytes
            )
            h.out_view = h.shm.buf[: h.out_nbytes]
            h.in_view = h.shm.buf[h.out_nbytes : h.out_nbytes + h.in_nbytes]
        except Exception:
            self.transport = "pickle"  # fall back for every shard
            for other in self._handles:
                self._close_channel(other)

    def _close_channel(self, h: _ShardHandle):
        if h.shm is not None:
            h.out_view = h.in_view = None
            h.shm.close()
            try:
                h.shm.unlink()
            except Exception:
                pass
            h.shm = None

    def _start_pool(self, h: _ShardHandle):
        if self.inline:
            return
        from concurrent.futures import ProcessPoolExecutor

        h.pool = ProcessPoolExecutor(max_workers=1)

    def _key(self, sid: int):
        return (self._job, sid)

    def _init_shard(self, h: _ShardHandle, record: bool = True):
        shm_name = h.shm.name if h.shm is not None else None
        args = (h.spec, shm_name, h.out_nbytes, h.in_nbytes)
        if self.inline:
            _w_init(self._key(h.spec.sid), *args)
        else:
            h.pool.submit(_w_init, self._key(h.spec.sid), *args).result()
        if record:
            h.log = [("_init", None, None)]

    def close(self):
        if self._closed:
            return
        self._closed = True
        for h in self._handles:
            try:
                if self.inline:
                    _w_close(self._key(h.spec.sid))
                elif h.pool is not None:
                    h.pool.submit(_w_close, self._key(h.spec.sid)).result(timeout=10)
            except Exception:
                pass
            if h.pool is not None:
                h.pool.shutdown(wait=True, cancel_futures=True)
                h.pool = None
            self._close_channel(h)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False

    def __del__(self):  # best-effort: never leak shm segments
        try:
            self.close()
        except Exception:
            pass

    # -- dispatch + healing -------------------------------------------------

    def _submit(self, h: _ShardHandle, fn, args, payload_bytes):
        key = self._key(h.spec.sid)
        if payload_bytes is None:
            payload = None
        elif self.transport == "shm":
            h.in_view[: len(payload_bytes)] = payload_bytes
            payload = ("shm", len(payload_bytes))
        else:
            payload = ("data", payload_bytes)
        if self.inline:
            result, outdata = fn(key, *args, payload=payload)
            return result, outdata
        future = h.pool.submit(fn, key, *args, payload=payload)
        return future

    def _heal(self, h: _ShardHandle):
        self.heals += 1
        require(
            self.heals <= self.MAX_HEALS * max(1, len(self._handles)),
            "sharded pool healing limit exceeded (worker keeps dying)",
        )
        from repro.exp.resilient import _kill_pool

        _kill_pool(h.pool)
        self._start_pool(h)
        # Deterministic replay from the round checkpoint: re-init the shard
        # then re-run every logged step with its recorded halo input.  All
        # step math is pure given those inputs, so the rebuilt worker's
        # state is exactly the dead worker's.
        self._init_shard(h, record=False)
        for fn_name, args, in_bytes in h.log[1:]:
            fn = globals()[fn_name]
            fut = self._submit(h, fn, args, in_bytes)
            fut.result()

    def _step_all(self, fn, args_per_shard, payloads=None, record: bool = True):
        """Dispatch one step to every shard; collect ``(result, out_bytes)``.

        ``payloads`` are per-shard uint8 arrays (or None).  Output vectors
        are read back from the OUT regions (shm) or the returned bytes.
        """
        from concurrent.futures.process import BrokenProcessPool

        k = len(self._handles)
        payload_bytes = [
            None if payloads is None or payloads[s] is None
            else np.ascontiguousarray(payloads[s], dtype=np.uint8).tobytes()
            for s in range(k)
        ]
        results: List = [None] * k
        if self.inline:
            for s, h in enumerate(self._handles):
                results[s] = self._submit(h, fn, args_per_shard[s], payload_bytes[s])
        else:
            futures = [
                self._submit(h, fn, args_per_shard[s], payload_bytes[s])
                for s, h in enumerate(self._handles)
            ]
            for s, h in enumerate(self._handles):
                try:
                    results[s] = futures[s].result()
                except BrokenProcessPool:
                    self._heal(h)
                    retry = self._submit(h, fn, args_per_shard[s], payload_bytes[s])
                    results[s] = retry.result()
        if record:
            for s, h in enumerate(self._handles):
                h.log.append((fn.__name__, args_per_shard[s], payload_bytes[s]))
        out: List[Tuple[object, Optional[np.ndarray]]] = []
        for s, h in enumerate(self._handles):
            result, outdata = results[s]
            if outdata is not None:
                vec = np.frombuffer(memoryview(outdata), dtype=np.uint8).copy()
            elif h.out_view is not None:
                vec = np.frombuffer(
                    h.out_view, dtype=np.uint8, count=h.out_nbytes
                ).copy()
            else:
                vec = None
            out.append((result, vec))
        return out

    def start_trial(self):
        """Reset the per-trial replay logs (shard arrays stay hot)."""
        for h in self._handles:
            h.log = [("_init", None, None)]

    def inject_worker_failure(self, sid: int = 0):
        """Test hook: the shard's worker will die at its next step (the
        flag is deliberately not logged, so healing replay succeeds)."""
        if self.inline:
            return
        h = self._handles[sid]
        h.pool.submit(_w_set_fail, self._key(sid)).result()

    # -- halo assembly ------------------------------------------------------

    def _assemble_halo(self, boundary_vecs: List[Optional[np.ndarray]]):
        """Per-shard boundary bit vectors -> per-shard halo input vectors."""
        start = time.perf_counter()
        plan = self.plan
        out: List[Optional[np.ndarray]] = []
        for s, sp in enumerate(plan.specs):
            h_len = sp.halo_global.shape[0]
            if h_len == 0:
                out.append(np.zeros(0, dtype=np.uint8))
                continue
            res = np.empty(h_len, dtype=np.uint8)
            src = plan.halo_src_shard[s]
            pos = plan.halo_src_pos[s]
            for t in np.unique(src):
                sel = src == t
                res[sel] = boundary_vecs[t][pos[sel]]
            out.append(res)
        self.halo_seconds += time.perf_counter() - start
        return out

    def _assemble_cut(self, cut_vecs: List[Optional[np.ndarray]]):
        """Per-shard ``(post_set | clear)`` cut vectors -> peer-side inputs."""
        start = time.perf_counter()
        plan = self.plan
        out: List[Optional[np.ndarray]] = []
        for s, sp in enumerate(plan.specs):
            c = sp.cut_slots.shape[0]
            if c == 0:
                out.append(np.zeros(0, dtype=np.uint8))
                continue
            res = np.empty(2 * c, dtype=np.uint8)
            peer = plan.cut_peer_shard[s]
            pos = plan.cut_peer_pos[s]
            for t in np.unique(peer):
                sel = peer == t
                ct = plan.specs[t].cut_slots.shape[0]
                res[:c][sel] = cut_vecs[t][:ct][pos[sel]]
                res[c:][sel] = cut_vecs[t][ct:2 * ct][pos[sel]]
            out.append(res)
        self.halo_seconds += time.perf_counter() - start
        return out

    def _emit_spans(self, algo: str, exchanges: int):
        tracer = self.tracer
        if tracer is not None and tracer.enabled:
            tracer.event(
                "span", name="sharded.partition", algo=algo,
                seconds=self.plan.partition_seconds, shards=len(self.plan),
            )
            tracer.event(
                "span", name="sharded.halo_exchange", algo=algo,
                seconds=self.halo_seconds, exchanges=exchanges,
            )

    # -- gathering ----------------------------------------------------------

    def _gather_nodes(self, pairs: List[Tuple[np.ndarray, np.ndarray]]):
        a = np.concatenate([p[0] for p in pairs]) if pairs else np.zeros(0, bool)
        b = np.concatenate([p[1] for p in pairs]) if pairs else np.zeros(0, bool)
        return a, b


def _bound_of(faults):
    """Accept a DenseFaults, a bound perturbation stack, or None."""
    if faults is None:
        return None
    bound = getattr(faults, "bound", faults)
    return tuple(bound)


def _result_extras(ex: ShardedExecutor):
    return {
        "partition_seconds": ex.plan.partition_seconds,
        "halo_seconds": ex.halo_seconds,
        "shards": len(ex.plan),
    }


# ---------------------------------------------------------------------------
# Drivers.
# ---------------------------------------------------------------------------


def _luby_one_trial(ex: ShardedExecutor, seed: int, max_rounds: int, bound):
    k = len(ex._handles)
    ex.start_trial()
    sh = mix64(int(seed))
    res = ex._step_all(_w_luby_start, [(sh, bound)] * k)
    active_total = sum(r for r, _ in res)
    rounds = 0
    exchanges = 0
    halo_active: Optional[List[Optional[np.ndarray]]] = None
    while active_total:
        if rounds + 1 > max_rounds:
            break
        round1 = rounds + 1
        do_join = rounds + 2 <= max_rounds
        res_a = ex._step_all(
            _w_luby_phase_a,
            [(round1, do_join)] * k,
            payloads=halo_active,
        )
        rounds += 1
        if not do_join:
            active_total = sum(r for r, _ in res_a)
            break
        boundary_join = [
            vec[: ex._handles[s].spec.boundary_local.shape[0]]
            for s, (_, vec) in enumerate(res_a)
        ]
        halo_join = ex._assemble_halo(boundary_join)
        exchanges += 1
        res_b = ex._step_all(_w_luby_phase_b, [(round1,)] * k, payloads=halo_join)
        rounds += 1
        active_total = sum(r for r, _ in res_b)
        boundary_active = [
            vec[: ex._handles[s].spec.boundary_local.shape[0]]
            for s, (_, vec) in enumerate(res_b)
        ]
        halo_active = ex._assemble_halo(boundary_active)
        exchanges += 1
    gathered = ex._step_all(_w_luby_gather, [()] * k, record=False)
    in_mis, crashed = ex._gather_nodes([r for r, _ in gathered])
    ex._emit_spans("luby", exchanges)
    return DenseResult(
        rounds,
        completed=active_total == 0,
        in_mis=in_mis,
        crashed=crashed,
        **_result_extras(ex),
    )


def luby_mis_sharded_batch(
    ex: ShardedExecutor,
    seeds: Sequence[int],
    max_rounds: int = 10_000,
    faults=None,
) -> List[DenseResult]:
    """Luby's MIS for a batch of seeds on a live executor (shards stay hot).

    Each trial is bit-identical to
    ``luby_mis_dense(engine, seed=s, coins="keyed", ...)`` — same MIS
    membership, crash records, round counts and completion flags.
    """
    require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
    bound = _bound_of(faults)
    return [_luby_one_trial(ex, s, max_rounds, bound) for s in seeds]


def luby_mis_sharded(
    engine: CSREngine,
    seed: int = 0,
    shards: Optional[int] = None,
    max_rounds: int = 10_000,
    faults=None,
    workers: Optional[int] = None,
    transport: str = "shm",
    tracer=None,
    executor: Optional[ShardedExecutor] = None,
) -> DenseResult:
    """One sharded Luby MIS trial; see :func:`luby_mis_sharded_batch`.

    Pass ``executor`` (a live :class:`ShardedExecutor` over the same
    engine) to amortize partitioning and worker spin-up across calls;
    otherwise one is built and torn down around the trial.
    """
    if executor is not None:
        return luby_mis_sharded_batch(executor, [seed], max_rounds, faults)[0]
    with ShardedExecutor(
        engine, shards, workers=workers, transport=transport, tracer=tracer
    ) as ex:
        return luby_mis_sharded_batch(ex, [seed], max_rounds, faults)[0]


def sinkless_trial_sharded(
    engine: CSREngine,
    min_degree: int = 1,
    seed: int = 0,
    shards: Optional[int] = None,
    max_rounds: int = 200,
    faults=None,
    strict: bool = True,
    workers: Optional[int] = None,
    transport: str = "shm",
    tracer=None,
    executor: Optional[ShardedExecutor] = None,
) -> DenseResult:
    """Sharded trial-and-fix sinkless orientation.

    Bit-identical per trial to ``sinkless_trial_dense(engine, min_degree,
    seed=s, coins="keyed", ...)``: round-1 proposal coins are keyed by
    global slot index (both endpoints computable shard-locally), and each
    fix round exchanges one ``(post-set out, clear)`` bit pair per cut slot
    — enough for the receiving shard to apply cross-cut flip clears *and*
    reconstruct the partner's final bit for the sink probe.
    """
    require(min_degree >= 1, f"min_degree must be >= 1, got {min_degree}")
    if executor is None:
        with ShardedExecutor(
            engine, shards, workers=workers, transport=transport, tracer=tracer
        ) as ex:
            return sinkless_trial_sharded(
                engine, min_degree, seed, max_rounds=max_rounds, faults=faults,
                strict=strict, executor=ex,
            )
    ex = executor
    offsets, dst_node, _ = engine.dense_arrays()
    owner = np.repeat(np.arange(engine.n, dtype=np.int64), np.diff(offsets))
    m = dst_node.shape[0]
    require(
        np.unique(owner * np.int64(max(engine.n, 1)) + dst_node).shape[0] == m,
        "sinkless_trial_sharded requires a simple graph (no multi-edges/self-loops)",
    )
    bound = _bound_of(faults)
    k = len(ex._handles)
    ex.start_trial()
    sh = mix64(int(seed))
    ex._step_all(_w_sink_start, [(sh, bound, min_degree)] * k)
    rounds = 1
    exchanges = 0
    completed = False
    for round_no in range(2, max_rounds + 1):
        res_a = ex._step_all(_w_sink_send, [(round_no,)] * k)
        cut_vecs = [
            vec[: 2 * ex._handles[s].spec.cut_slots.shape[0]]
            for s, (_, vec) in enumerate(res_a)
        ]
        peer_vecs = ex._assemble_cut(cut_vecs)
        exchanges += 1
        res_b = ex._step_all(
            _w_sink_settle, [(round_no,)] * k, payloads=peer_vecs
        )
        rounds = round_no
        if not any(r for r, _ in res_b):
            completed = True
            break
    if not completed and strict:
        raise RuntimeError(f"no sinkless orientation after {max_rounds} rounds")
    gathered = ex._step_all(_w_sink_gather, [()] * k, record=False)
    out = np.concatenate([r[0] for r, _ in gathered]) if k else np.zeros(0, bool)
    crashed = (
        np.concatenate([r[1] for r, _ in gathered]) if k else np.zeros(0, bool)
    )
    ex._emit_spans("sinkless", exchanges)
    return DenseResult(
        rounds, completed=completed, out=out, crashed=crashed, **_result_extras(ex)
    )


def uniform_splitting_sharded(
    engine: CSREngine,
    spec,
    seed: int = 0,
    shards: Optional[int] = None,
    max_attempts: int = 64,
    red: int = 0,
    blue: int = 1,
    faults=None,
    workers: Optional[int] = None,
    transport: str = "shm",
    tracer=None,
    executor: Optional[ShardedExecutor] = None,
) -> DenseResult:
    """The sharded uniform-splitting Las-Vegas loop.

    Colors are pure per ``(run_hash, node)``, so an attempt needs *zero*
    halo exchange: the driver replays the sequential loop's per-attempt
    ``randrange(2**31)`` seed stream, broadcasts each run hash, and ANDs
    the shard verdicts.  Per attempt this is bit-identical to
    ``uniform_splitting_dense(engine, spec, seed=run_seed, coins="keyed")``.
    Returns the last attempt's colors with ``ok``/``attempts`` fields (the
    pipeline wrapper decides whether a failed final attempt is fatal).
    """
    require(max_attempts >= 1, f"max_attempts must be >= 1, got {max_attempts}")
    if executor is None:
        with ShardedExecutor(
            engine, shards, workers=workers, transport=transport, tracer=tracer
        ) as ex:
            return uniform_splitting_sharded(
                engine, spec, seed, max_attempts=max_attempts, red=red, blue=blue,
                faults=faults, executor=ex,
            )
    ex = executor
    bound = _bound_of(faults)
    k = len(ex._handles)
    ex.start_trial()
    ex._step_all(_w_split_start, [(spec, bound, red, blue)] * k)
    rng = ensure_rng(int(seed))
    ok = False
    attempts = 0
    for attempt_no in range(1, max_attempts + 1):
        run_hash = mix64(rng.randrange(2**31))
        res = ex._step_all(_w_split_attempt, [(run_hash,)] * k)
        attempts = attempt_no
        ok = all(r for r, _ in res)
        if ok:
            break
    gathered = ex._step_all(_w_split_gather, [()] * k, record=False)
    colors = (
        np.concatenate([r[0] for r, _ in gathered])
        if k else np.zeros(0, dtype=np.int64)
    )
    crashed = (
        np.concatenate([r[1] for r, _ in gathered]) if k else np.zeros(0, bool)
    )
    ex._emit_spans("splitting", 0)
    return DenseResult(
        1, completed=True, colors=colors, ok=ok, attempts=attempts,
        crashed=crashed, **_result_extras(ex),
    )
