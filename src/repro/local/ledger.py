"""Round accounting for LOCAL-model algorithms.

The paper's results are *round complexity* statements.  Parts of our
implementation run genuinely inside the synchronous simulator
(:mod:`repro.local.network`) where rounds are simply counted; other parts —
the black-box substrates the paper itself imports, such as the [GHK+17b]
degree-splitting routine of Theorem 2.3 or the [GHK17a] SLOCAL→LOCAL
conversion — are executed by an equivalent centralized computation and their
round cost is *charged analytically* using the cited theorem's formula (see
DESIGN.md §2.3).  The :class:`RoundLedger` records both kinds of charges with
labels, so experiments can report totals as well as per-phase breakdowns that
mirror the paper's proofs (e.g. Theorem 2.5's ``O(r/δ·log²n)`` reduction cost
versus its ``O(log³n (log log n)^1.1)`` splitting cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple

__all__ = ["Charge", "RoundLedger"]


@dataclass(frozen=True)
class Charge:
    """A single round charge.

    ``kind`` is ``"simulated"`` for rounds actually executed by the message
    simulator and ``"analytic"`` for black-box substrate charges.
    """

    label: str
    rounds: float
    kind: str = "analytic"

    def __post_init__(self) -> None:
        if self.rounds < 0:
            raise ValueError(f"negative round charge: {self.rounds}")
        if self.kind not in ("analytic", "simulated"):
            raise ValueError(f"unknown charge kind: {self.kind}")


class RoundLedger:
    """Accumulates round charges; supports parallel (max) composition.

    In the LOCAL model, independent connected components run in parallel, so
    the cost of "solve every residual component" is the *maximum* component
    cost, not the sum.  :meth:`charge_parallel` implements exactly that, which
    the shattering algorithms (Theorem 1.2, Theorem 5.3) rely on.
    """

    def __init__(self) -> None:
        self._charges: List[Charge] = []

    # ------------------------------------------------------------- recording
    def charge(self, rounds: float, label: str, kind: str = "analytic") -> None:
        """Record ``rounds`` rounds under ``label``."""
        self._charges.append(Charge(label=label, rounds=float(rounds), kind=kind))

    def charge_simulated(self, rounds: float, label: str) -> None:
        """Record rounds that were actually executed by the simulator."""
        self.charge(rounds, label, kind="simulated")

    def charge_parallel(self, ledgers: List["RoundLedger"], label: str) -> None:
        """Charge the max total over ``ledgers`` (parallel composition)."""
        worst = max((l.total for l in ledgers), default=0.0)
        self.charge(worst, label)

    def merge(self, other: "RoundLedger") -> None:
        """Append all of ``other``'s charges (sequential composition)."""
        self._charges.extend(other._charges)

    # -------------------------------------------------------------- querying
    @property
    def total(self) -> float:
        """Total rounds charged so far."""
        return sum(c.rounds for c in self._charges)

    @property
    def charges(self) -> Tuple[Charge, ...]:
        """All recorded charges, in order."""
        return tuple(self._charges)

    def breakdown(self) -> Dict[str, float]:
        """Total rounds per label."""
        out: Dict[str, float] = {}
        for c in self._charges:
            out[c.label] = out.get(c.label, 0.0) + c.rounds
        return out

    def simulated_total(self) -> float:
        """Total of simulated (actually executed) rounds."""
        return sum(c.rounds for c in self._charges if c.kind == "simulated")

    def analytic_total(self) -> float:
        """Total of analytically charged substrate rounds."""
        return sum(c.rounds for c in self._charges if c.kind == "analytic")

    def __iter__(self) -> Iterator[Charge]:
        return iter(self._charges)

    def __len__(self) -> int:
        return len(self._charges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RoundLedger(total={self.total:.1f}, charges={len(self._charges)})"
