"""A synchronous message-passing simulator for the LOCAL model.

The LOCAL model [Lin92, Pel00] (footnote 1 of the paper): a communication
graph ``G``; computation proceeds in synchronous rounds; in each round every
node may send an arbitrarily large message to each neighbor, receive the
messages of its neighbors, and update its state.  Nodes know ``n`` (or an
upper bound) and carry unique identifiers.  Time complexity is the number of
rounds until every node has produced its output.

The simulator here is faithful to that definition:

* messages are delivered only along edges, with one-round latency;
* a node's behaviour is a function of its own state, its private coins and
  the messages received — there is no global shared state;
* the round count is exact and is reported to the caller, who typically
  forwards it to a :class:`repro.local.ledger.RoundLedger` as a *simulated*
  charge.

Randomized LOCAL algorithms receive per-node private coin sources derived
from a master seed (see :func:`repro.utils.rng.node_rng`), keeping runs
reproducible without correlating nodes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

import random
import time

from repro.utils.rng import node_rng
from repro.utils.validation import require

__all__ = [
    "Network",
    "NodeView",
    "LocalAlgorithm",
    "RoundHooks",
    "run_local",
    "SimulationResult",
    "NO_BROADCAST",
    "build_reverse_ports",
]


class _NoBroadcast:
    """Sentinel: the algorithm has no broadcast message this round."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "NO_BROADCAST"


#: Returned by :meth:`LocalAlgorithm.broadcast` to fall back to :meth:`send`.
NO_BROADCAST = _NoBroadcast()


class Network:
    """A communication graph for the simulator.

    Parameters
    ----------
    adjacency:
        ``adjacency[i]`` lists the node indices adjacent to node ``i``.  The
        graph must be symmetric; parallel entries are allowed (multi-edges)
        and are presented to the algorithm as distinct ports.
    ids:
        Unique identifiers (the LOCAL model's O(log n)-bit names).  Defaults
        to the node indices.
    """

    def __init__(self, adjacency: Sequence[Sequence[int]], ids: Optional[Sequence[int]] = None):
        self.adjacency: Tuple[Tuple[int, ...], ...] = tuple(tuple(a) for a in adjacency)
        n = len(self.adjacency)
        counts: Dict[Tuple[int, int], int] = {}
        for i, nbrs in enumerate(self.adjacency):
            for j in nbrs:
                require(0 <= j < n, f"node {i} lists out-of-range neighbor {j}")
                counts[(i, j)] = counts.get((i, j), 0) + 1
        for (i, j), c in counts.items():
            require(
                counts.get((j, i), 0) == c,
                f"asymmetric adjacency between nodes {i} and {j}",
            )
        if ids is None:
            ids = list(range(n))
        require(len(ids) == n, "ids must have one entry per node")
        require(len(set(ids)) == n, "ids must be unique")
        self.ids: Tuple[int, ...] = tuple(int(x) for x in ids)

    @property
    def n(self) -> int:
        """Number of nodes."""
        return len(self.adjacency)

    def degree(self, i: int) -> int:
        """Degree (number of ports) of node ``i``."""
        return len(self.adjacency[i])

    @classmethod
    def from_bipartite(cls, inst, ids: Optional[Sequence[int]] = None) -> "Network":
        """Communication network of a bipartite instance.

        Left node ``u`` becomes simulator node ``u``; right node ``v`` becomes
        node ``inst.n_left + v``.  Each bipartite edge is one communication
        link (one port on each side).
        """
        adj: List[List[int]] = [[] for _ in range(inst.n_left + inst.n_right)]
        for u, v in inst.edges:
            adj[u].append(inst.n_left + v)
            adj[inst.n_left + v].append(u)
        return cls(adj, ids=ids)


@dataclass
class NodeView:
    """Everything a node may legitimately see during the simulation.

    ``state`` is the node's private memory; ``rng`` its private coin source;
    ``ports`` maps port number to nothing the node shouldn't know — the node
    addresses neighbors only by port, never by global index.
    """

    index: int  #: simulator-internal index (used by the harness, not the node)
    uid: int  #: the node's unique identifier (visible to the algorithm)
    degree: int  #: number of incident ports
    n: int  #: number of nodes in the network (known in the LOCAL model)
    rng: random.Random  #: private coins
    state: Dict[str, Any] = field(default_factory=dict)  #: private memory
    output: Any = None  #: final output once set
    halted: bool = False  #: whether the node has terminated


class LocalAlgorithm(ABC):
    """A node-uniform algorithm for the synchronous simulator.

    Subclasses implement three hooks.  ``init`` runs before round 1;
    ``send`` produces this round's outgoing messages as ``{port: message}``
    (missing ports send nothing); ``receive`` consumes the inbox
    ``{port: message}`` and may set ``view.output`` / ``view.halted``.
    The simulation stops when every node has halted or after ``max_rounds``.
    """

    @abstractmethod
    def init(self, view: NodeView) -> None:
        """Initialize private state before the first round."""

    @abstractmethod
    def send(self, view: NodeView, round_no: int) -> Dict[int, Any]:
        """Messages to emit in round ``round_no`` (1-based), keyed by port."""

    @abstractmethod
    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, Any]) -> None:
        """Process the messages received in round ``round_no``."""

    def broadcast(self, view: NodeView, round_no: int) -> Any:
        """Message to emit on *every* port this round, or :data:`NO_BROADCAST`.

        Many LOCAL algorithms are *broadcast algorithms*: each round a node
        sends one message, identical on all its ports.  Declaring the round
        here (instead of materializing ``{port: msg}`` dicts in ``send``)
        lets the batched engine deliver the message in a tight loop over the
        node's CSR slice.  The default falls back to :meth:`send`.

        Both :func:`run_local` and the engine consult this hook exactly once
        per active node per round, *before* ``send``; when it returns a
        message, ``send`` is not called.  Overrides must therefore perform
        any per-round state updates (coin flips, counters) in whichever hook
        actually runs.
        """
        return NO_BROADCAST


class RoundHooks:
    """Harness-side round instrumentation shared by both executors.

    Hooks model the *environment* rather than the algorithm: node crashes,
    lossy links, dynamic edges, adversarial schedules.  The nodes never see
    the hook object — they only observe its effects (missing messages,
    silent neighbors), exactly as in the faulty-LOCAL literature.

    Call points (identical in :func:`run_local` and
    :class:`~repro.local.engine.CSREngine`, so hooked runs stay
    bit-identical across executors):

    * :meth:`before_round` — after the all-halted check, before the send
      phase.  May crash nodes by setting ``view.halted`` (by convention a
      crash also sets ``view.state["crashed"] = True`` so contracts can
      tell a crash from a normal termination).
    * :meth:`deliver` — once per outgoing message, after port validation.
      Returning False silently drops the message.  **Must be a pure
      function of ``(round_no, sender, port)``** — both executors consult
      it while sweeping senders, but the engine's broadcast fast path and
      the reference's dict loop enumerate messages in different orders, so
      any internal state consumption would break the bit-identity
      guarantee.
    * :meth:`transform` — once per *delivered* message, immediately after
      :meth:`deliver` approves it.  Returns the (possibly rewritten)
      payload — the Byzantine corruption channel.  Like ``deliver`` it
      **must be pure** in ``(round_no, sender, port, message)`` and must
      not mutate the payload in place (broadcast messages are shared
      across ports).
    * :meth:`after_round` — after the receive phase of every executed
      round (observation only, e.g. per-round violation tracking).

    The default implementation is a no-op; ``hooks=None`` skips all calls
    on the original fast paths.
    """

    def before_round(self, round_no: int, views: List["NodeView"]) -> None:
        """Inject faults for ``round_no`` (crash nodes via ``view.halted``)."""

    def deliver(self, round_no: int, sender: int, port: int) -> bool:
        """Whether the message ``sender`` emits on ``port`` arrives."""
        return True

    def transform(self, round_no: int, sender: int, port: int, message):
        """The payload actually delivered for an approved message."""
        return message

    def after_round(self, round_no: int, views: List["NodeView"]) -> None:
        """Observe the state after ``round_no``'s receive phase."""


@dataclass
class SimulationResult:
    """Outcome of a simulation run."""

    rounds: int  #: number of executed rounds
    views: List[NodeView]  #: final node views (outputs in ``view.output``)
    completed: bool  #: True iff all nodes halted before the round cap
    #: wall time of per-node RNG construction (the O(n) ``node_rng`` setup
    #: tax the ROADMAP tracks; see also ``TrialResult.rng_seconds``)
    rng_seconds: float = 0.0

    def outputs(self) -> List[Any]:
        """Convenience: the per-node outputs in index order."""
        return [v.output for v in self.views]


def build_reverse_ports(adjacency: Sequence[Sequence[int]]) -> List[List[int]]:
    """Port tables: ``reverse_port[i][p]`` is the counterpart's port.

    If node ``i`` lists ``j`` at port ``p`` then ``j`` lists ``i`` at port
    ``reverse_port[i][p]``.  Multi-edges are matched in order of appearance:
    the k-th occurrence of ``j`` in ``adjacency[i]`` pairs with the k-th
    occurrence of ``i`` in ``adjacency[j]``.  Shared by :func:`run_local`
    and the batched engine so both deliver along identical port pairings.
    """
    n = len(adjacency)
    reverse_port: List[List[int]] = [[-1] * len(adjacency[i]) for i in range(n)]
    cursor: Dict[Tuple[int, int], List[int]] = {}
    for i in range(n):
        for p, j in enumerate(adjacency[i]):
            cursor.setdefault((j, i), []).append(p)
    taken: Dict[Tuple[int, int], int] = {}
    for i in range(n):
        for p, j in enumerate(adjacency[i]):
            k = taken.get((i, j), 0)
            taken[(i, j)] = k + 1
            reverse_port[i][p] = cursor[(i, j)][k]
    return reverse_port


def run_local(
    network: Network,
    algorithm: LocalAlgorithm,
    max_rounds: int = 10_000,
    seed: int = 0,
    hooks: Optional[RoundHooks] = None,
) -> SimulationResult:
    """Execute ``algorithm`` on ``network`` synchronously.

    Message delivery is port-to-port: if node ``a`` lists ``b`` at port ``p``
    and ``b`` lists ``a`` at port ``q``, a message sent by ``a`` on port ``p``
    in round ``t`` arrives in ``b``'s inbox under port ``q`` in the same
    round's receive phase (standard synchronous semantics).

    ``hooks`` (a :class:`RoundHooks`) injects environment faults — crashes
    in ``before_round``, message loss via ``deliver`` — at the same call
    points the batched engine uses, so hooked runs remain bit-identical
    between the two executors (the scenario subsystem in
    :mod:`repro.scenarios` is built on this).

    This is the *reference* implementation: simple, dict-based, audited
    against the model definition.  :func:`repro.local.engine.run_local_fast`
    is the batched drop-in replacement, bit-identical for a fixed seed.
    """
    require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
    n = network.n
    reverse_port = build_reverse_ports(network.adjacency)

    rng_start = time.perf_counter()
    views = [
        NodeView(
            index=i,
            uid=network.ids[i],
            degree=network.degree(i),
            n=n,
            rng=node_rng(seed, network.ids[i]),
        )
        for i in range(n)
    ]
    rng_seconds = time.perf_counter() - rng_start
    for view in views:
        algorithm.init(view)

    rounds = 0
    for round_no in range(1, max_rounds + 1):
        if all(v.halted for v in views):
            break
        if hooks is not None:
            hooks.before_round(round_no, views)
        inboxes: List[Dict[int, Any]] = [{} for _ in range(n)]
        for i in range(n):
            if views[i].halted:
                continue
            bmsg = algorithm.broadcast(views[i], round_no)
            if bmsg is not NO_BROADCAST:
                outgoing = {p: bmsg for p in range(network.degree(i))}
            else:
                outgoing = algorithm.send(views[i], round_no)
            for port, message in outgoing.items():
                require(
                    0 <= port < network.degree(i),
                    f"node {i} sent on invalid port {port}",
                )
                if hooks is not None:
                    if not hooks.deliver(round_no, i, port):
                        continue
                    message = hooks.transform(round_no, i, port, message)
                j = network.adjacency[i][port]
                inboxes[j][reverse_port[i][port]] = message
        for i in range(n):
            if views[i].halted:
                continue
            algorithm.receive(views[i], round_no, inboxes[i])
        rounds = round_no
        if hooks is not None:
            hooks.after_round(round_no, views)
        if all(v.halted for v in views):
            break
    return SimulationResult(
        rounds=rounds,
        views=views,
        completed=all(v.halted for v in views),
        rng_seconds=rng_seconds,
    )
