"""Analytic round-complexity formulas from the paper and its cited substrates.

All constants hidden in the paper's O(·) notation are set to 1 here; the
experiments check *shape* (scaling in the stated parameters), never absolute
round counts, exactly as EXPERIMENTS.md documents.

The formulas implemented:

* Theorem 2.3 ([GHK+17b, Thm 1]) — directed degree splitting with discrepancy
  ``ε d(v) + 2`` in ``O(ε⁻¹ · log ε⁻¹ · (log log ε⁻¹)^1.71 · log n)`` rounds
  deterministically, and with ``log n`` replaced by ``log log n`` randomized.
  (The paper itself later upper-bounds the middle factor by ``(log ε⁻¹)^1.1``
  "to ease presentation"; we keep the exact 1.71 exponent of the citation and
  expose the paper's simplified bound separately.)
* [GHK17a, Prop. 3.2] — an SLOCAL(t) algorithm runs in ``O(C)`` LOCAL rounds
  given a ``C``-coloring of the t-th power graph.
* [BEK14a] — a ``O(Δ_P)``-coloring of a power graph with maximum degree
  ``Δ_P`` is computable in ``O(Δ_P + log* n)`` rounds.
"""

from __future__ import annotations

import math

from repro.utils.validation import require, require_positive

__all__ = [
    "log_star",
    "degree_splitting_rounds",
    "degree_splitting_rounds_simplified",
    "slocal_conversion_rounds",
    "power_graph_coloring_rounds",
]


def log_star(n: float) -> int:
    """Iterated binary logarithm ``log* n`` (number of logs to reach <= 1)."""
    require(n >= 0, f"log_star requires n >= 0, got {n}")
    count = 0
    x = float(n)
    while x > 1.0:
        x = math.log2(x)
        count += 1
    return count


def _loglog_factor(inv_eps: float, exponent: float) -> float:
    """``(log log ε⁻¹)^exponent`` guarded against tiny arguments."""
    inner = max(2.0, math.log2(max(2.0, inv_eps)))
    return max(1.0, math.log2(inner)) ** exponent


def degree_splitting_rounds(eps: float, n: int, randomized: bool = False) -> float:
    """Round cost of one directed degree splitting per Theorem 2.3.

    ``O(ε⁻¹ · log ε⁻¹ · (log log ε⁻¹)^1.71 · log n)`` deterministic;
    randomized replaces the trailing ``log n`` by ``log log n`` (obtained in
    the paper by swapping in the randomized sinkless-orientation routine of
    [GS17]).
    """
    require_positive(eps, "eps")
    require(n >= 2, f"n must be >= 2, got {n}")
    inv_eps = max(2.0, 1.0 / eps)
    tail = math.log2(math.log2(max(4.0, n))) if randomized else math.log2(n)
    return inv_eps * math.log2(inv_eps) * _loglog_factor(inv_eps, 1.71) * max(1.0, tail)


def degree_splitting_rounds_simplified(eps: float, n: int, randomized: bool = False) -> float:
    """The paper's presentation bound ``O(ε⁻¹ (log ε⁻¹)^1.1 log n)``.

    Stated just after Theorem 2.3; used when reproducing the paper's own
    runtime arithmetic (e.g. Theorem 2.5's ``log³n (log log n)^1.1`` term).
    """
    require_positive(eps, "eps")
    require(n >= 2, f"n must be >= 2, got {n}")
    inv_eps = max(2.0, 1.0 / eps)
    tail = math.log2(math.log2(max(4.0, n))) if randomized else math.log2(n)
    return inv_eps * (math.log2(inv_eps) ** 1.1) * max(1.0, tail)


def slocal_conversion_rounds(num_colors: int, radius: int = 2) -> float:
    """LOCAL rounds to execute an SLOCAL algorithm color-class by color-class.

    [GHK17a, Prop. 3.2]: given a ``C``-coloring of the t-th power graph, an
    SLOCAL(t) algorithm runs in ``O(C)`` LOCAL rounds (each color class acts
    simultaneously; a class member reads its radius-``t`` view, so one class
    costs ``t`` rounds — we charge ``C * t``).
    """
    require(num_colors >= 1, f"need >= 1 color, got {num_colors}")
    require(radius >= 1, f"radius must be >= 1, got {radius}")
    return float(num_colors * radius)


def power_graph_coloring_rounds(power_degree: int, n: int) -> float:
    """Rounds to color a power graph of max degree ``Δ_P``: ``O(Δ_P + log* n)``.

    Matches the [BEK14a] bound invoked in Lemma 2.1 and Theorem 5.2.
    """
    require(power_degree >= 0, f"power_degree must be >= 0, got {power_degree}")
    return float(power_degree + log_star(max(2, n)))
