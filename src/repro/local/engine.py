"""Batched high-throughput executor for the synchronous LOCAL simulator.

:func:`repro.local.network.run_local` is the reference implementation: a
straightforward transcription of the model definition whose per-round cost
is O(n + m) in Python dict operations *regardless of how many nodes are
still running*.  That loop dominates every benchmark in this repository.

:class:`CSREngine` executes the same algorithms with the same semantics —
bit-identical outputs for a fixed seed — but restructures the hot path:

* **CSR packing.**  Adjacency and port tables are flattened once into
  contiguous arrays (``offsets``, ``dst_node``, ``dst_port``): the ports of
  node ``i`` occupy slots ``offsets[i]:offsets[i+1]``, and a message sent on
  slot ``k`` lands in the inbox of ``dst_node[k]`` under port
  ``dst_port[k]``.  Packing is paid once per network and reused across runs
  (multi-seed sweeps amortize it to nothing).

* **Active-set tracking.**  Only non-halted nodes are visited in the send
  and receive phases, and inboxes are materialized lazily for nodes that
  actually receive something.  Algorithms that retire nodes quickly (Luby
  MIS, trial-and-fix sinkless orientation) spend rounds on a shrinking
  frontier instead of rescanning all ``n`` views.

* **Broadcast fast path.**  Algorithms that send one identical message on
  every port declare it via :meth:`LocalAlgorithm.broadcast`; the engine
  then skips the ``{port: message}`` dict construction entirely and writes
  the message across the node's CSR slice in a tight loop.

Equivalence with the reference is structural, not accidental: both derive
per-node coins from the same ``node_rng``, call ``init``/``broadcast``/
``send``/``receive`` for the same nodes in the same index order, and pair
multi-edge ports with the same order-of-appearance rule
(:func:`repro.local.network.build_reverse_ports`).  Inbox dicts are even
populated in the same insertion order (sender index, then port), so
algorithms that iterate ``inbox.values()`` observe identical sequences.
``tests/local/test_engine.py`` property-tests this bit-for-bit.

The engine additionally supports a *global stopping probe* — a callback
``probe(round_no, views) -> bool`` evaluated between rounds.  The probe is
harness-side instrumentation (the nodes never see it); it lets Las-Vegas
drivers such as :func:`repro.orientation.sinkless.run_trial_and_fix` stop
at the first globally-good configuration in one pass instead of rerunning
the simulation under growing round caps.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from repro.local.network import (
    NO_BROADCAST,
    LocalAlgorithm,
    Network,
    NodeView,
    RoundHooks,
    SimulationResult,
    build_reverse_ports,
)
from repro.utils.rng import node_rng
from repro.utils.validation import require

__all__ = ["CSREngine", "run_local_fast"]

#: Signature of the optional global stopping probe.
Probe = Callable[[int, List[NodeView]], bool]


class CSREngine:
    """Reusable batched executor for one :class:`Network`.

    Construction flattens the network's adjacency and port tables into CSR
    arrays; :meth:`run` then executes any :class:`LocalAlgorithm` against
    them.  Build once, run many times (different algorithms and seeds).
    """

    def __init__(self, network: Network):
        self.network = network
        adjacency = network.adjacency
        n = len(adjacency)
        reverse_port = build_reverse_ports(adjacency)
        offsets = [0] * (n + 1)
        for i in range(n):
            offsets[i + 1] = offsets[i] + len(adjacency[i])
        m = offsets[n]
        dst_node = [0] * m
        dst_port = [0] * m
        k = 0
        for i in range(n):
            rev = reverse_port[i]
            for p, j in enumerate(adjacency[i]):
                dst_node[k] = j
                dst_port[k] = rev[p]
                k += 1
        self.offsets = offsets
        self.dst_node = dst_node
        self.dst_port = dst_port
        # Per-node delivery slices: out_slots[i][p] = (dst node, dst port).
        # Tuple lists iterate faster than indexing the flat arrays per slot.
        self.out_slots = [
            list(zip(dst_node[offsets[i]:offsets[i + 1]], dst_port[offsets[i]:offsets[i + 1]]))
            for i in range(n)
        ]
        self._dense_arrays = None  # numpy mirrors, built lazily on first use

    def dense_arrays(self):
        """The CSR layout as numpy int64 arrays ``(offsets, dst_node, dst_port)``.

        Built on first call and cached; this is the substrate the vectorized
        round kernels in :mod:`repro.local.dense` index into.  Requires
        numpy (imported lazily so the pure-Python engine path works without
        it).
        """
        if self._dense_arrays is None:
            import numpy as np

            self._dense_arrays = (
                np.asarray(self.offsets, dtype=np.int64),
                np.asarray(self.dst_node, dtype=np.int64),
                np.asarray(self.dst_port, dtype=np.int64),
            )
        return self._dense_arrays

    @property
    def n(self) -> int:
        return self.network.n

    def run(
        self,
        algorithm: LocalAlgorithm,
        max_rounds: int = 10_000,
        seed: int = 0,
        probe: Optional[Probe] = None,
        hooks: Optional[RoundHooks] = None,
    ) -> SimulationResult:
        """Execute ``algorithm``; same contract as :func:`run_local`.

        ``probe``, if given, is called after each completed round with
        ``(round_no, views)``; returning True stops the simulation (the
        result's ``completed`` flag still reports whether all nodes halted).

        ``hooks`` (a :class:`~repro.local.network.RoundHooks`) injects
        environment faults at the same call points as the reference:
        ``before_round`` right after the frontier check (crashed nodes drop
        out of the active set before sending), ``deliver`` once per
        outgoing message, ``after_round`` after the receive phase.  With
        ``hooks=None`` the original tight loops run unchanged; hooked runs
        stay bit-identical to :func:`run_local` with the same hooks because
        ``deliver`` is required to be a pure function of
        ``(round_no, sender, port)``.
        """
        require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
        network = self.network
        out_slots = self.out_slots
        n = self.n

        rng_start = time.perf_counter()
        views = [
            NodeView(
                index=i,
                uid=network.ids[i],
                degree=len(out_slots[i]),
                n=n,
                rng=node_rng(seed, network.ids[i]),
            )
            for i in range(n)
        ]
        rng_seconds = time.perf_counter() - rng_start
        init = algorithm.init
        for view in views:
            init(view)

        # Active frontier: (index, view) pairs for non-halted nodes, kept in
        # index order so hook-call order matches the reference exactly.
        active = [(i, v) for i, v in enumerate(views) if not v.halted]
        broadcast = algorithm.broadcast
        send = algorithm.send
        receive = algorithm.receive

        # Per-receiver inboxes, indexed by node: created lazily per round and
        # reset via the ``touched`` list (cheaper than reallocating n slots).
        boxes: List[Optional[Dict[int, Any]]] = [None] * n

        rounds = 0
        for round_no in range(1, max_rounds + 1):
            if not active:
                break
            if hooks is not None:
                # Crashes injected here drop out of the frontier before the
                # send phase — the reference skips them via ``view.halted``.
                hooks.before_round(round_no, views)
                active = [iv for iv in active if not iv[1].halted]
            # Send phase.  Inbox insertion order (sender index, then port)
            # matches run_local, so iteration over inbox items is identical.
            touched: List[int] = []
            touch = touched.append
            if hooks is None:
                for i, view in active:
                    slots = out_slots[i]
                    msg = broadcast(view, round_no)
                    if msg is not NO_BROADCAST:
                        for j, q in slots:
                            box = boxes[j]
                            if box is None:
                                box = boxes[j] = {}
                                touch(j)
                            box[q] = msg
                    else:
                        outgoing = send(view, round_no)
                        degree = len(slots)
                        for port, message in outgoing.items():
                            require(
                                0 <= port < degree,
                                f"node {i} sent on invalid port {port}",
                            )
                            j, q = slots[port]
                            box = boxes[j]
                            if box is None:
                                box = boxes[j] = {}
                                touch(j)
                            box[q] = message
            else:
                # Hook-aware twin of the loop above: one ``deliver`` consult
                # (plus one ``transform``) per outgoing message, after port
                # validation — exactly the reference's call points, so drops
                # and corruptions match message-for-message.
                deliver = hooks.deliver
                transform = hooks.transform
                for i, view in active:
                    slots = out_slots[i]
                    msg = broadcast(view, round_no)
                    if msg is not NO_BROADCAST:
                        for port, (j, q) in enumerate(slots):
                            if not deliver(round_no, i, port):
                                continue
                            box = boxes[j]
                            if box is None:
                                box = boxes[j] = {}
                                touch(j)
                            # Per-port: a Byzantine transform may rewrite a
                            # broadcast payload on some ports only.
                            box[q] = transform(round_no, i, port, msg)
                    else:
                        outgoing = send(view, round_no)
                        degree = len(slots)
                        for port, message in outgoing.items():
                            require(
                                0 <= port < degree,
                                f"node {i} sent on invalid port {port}",
                            )
                            if not deliver(round_no, i, port):
                                continue
                            j, q = slots[port]
                            box = boxes[j]
                            if box is None:
                                box = boxes[j] = {}
                                touch(j)
                            box[q] = transform(round_no, i, port, message)
            # Receive phase (index order, skipping nodes halted mid-send).
            for i, view in active:
                if view.halted:
                    continue
                box = boxes[i]
                receive(view, round_no, box if box is not None else {})
            for j in touched:
                boxes[j] = None
            rounds = round_no
            if hooks is not None:
                hooks.after_round(round_no, views)
            active = [iv for iv in active if not iv[1].halted]
            if not active:
                break
            if probe is not None and probe(round_no, views):
                break
        return SimulationResult(
            rounds=rounds, views=views, completed=not active, rng_seconds=rng_seconds
        )


def run_local_fast(
    network: Network,
    algorithm: LocalAlgorithm,
    max_rounds: int = 10_000,
    seed: int = 0,
    probe: Optional[Probe] = None,
    hooks: Optional[RoundHooks] = None,
) -> SimulationResult:
    """Drop-in replacement for :func:`run_local` using :class:`CSREngine`.

    Packs the network on every call; reuse a :class:`CSREngine` directly
    when running the same network repeatedly.
    """
    return CSREngine(network).run(
        algorithm, max_rounds=max_rounds, seed=seed, probe=probe, hooks=hooks
    )
