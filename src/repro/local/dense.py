"""Vectorized dense round kernels: whole LOCAL rounds as numpy array ops.

:class:`~repro.local.engine.CSREngine` removed the reference simulator's
dict overhead, but its hot loop still makes O(active) Python hook calls
(``init``/``broadcast``/``send``/``receive``) per round and pays ~9 µs per
node of :func:`~repro.utils.rng.node_rng` setup.  For the paper's randomized
pipelines — Luby MIS, trial-and-fix sinkless orientation, 0-round uniform
splitting — the per-node logic is a few comparisons, so at n >= 10^5 the
interpreter *is* the cost.

The kernels here execute an entire round of one specific algorithm as
masked array arithmetic over the engine's CSR layout
(:meth:`CSREngine.dense_arrays`): candidate coin draws come from a
:class:`~repro.utils.rng.CoinTable`, neighborhood reductions are
``np.logical_or.reduceat`` / ``np.add.reduceat`` over the CSR segments, and
the per-slot owner array ``np.repeat(arange(n), degrees)`` turns "compare
me against each neighbor" into two gathers and a compare.

Coin contract (see :class:`~repro.utils.rng.CoinTable`):

* ``coins="replay"`` feeds the kernels the *exact* per-node ``node_rng``
  streams the engine consumes, in the same per-node draw order, so outputs
  and round counts are **bit-identical** to :class:`CSREngine` (and hence to
  :func:`~repro.local.network.run_local`).  O(n) setup — for tests and
  cross-checks.
* ``coins="philox"`` uses a counter-based numpy stream with O(1) setup —
  **distribution-identical** runs for performance work.
* ``coins="keyed"`` keys every value by ``(seed, counter, round tag)`` —
  order-insensitive, which is what lets a *trial-batched* kernel
  (:func:`luby_mis_batched`, :func:`sinkless_trial_batched`,
  :func:`uniform_splitting_batched`) reproduce k sequential keyed runs
  bit-for-bit while advancing all k trials through shared array passes.

Each kernel documents exactly which hook-level draws it replays; any change
to the corresponding :class:`LocalAlgorithm` must be mirrored here (the
equivalence property tests in ``tests/local/test_dense.py`` enforce this).
"""

from __future__ import annotations

import time
from typing import Dict, Sequence, Tuple

import numpy as np

from repro.local.engine import CSREngine
from repro.utils.rng import (
    CoinTable,
    as_coin_table,
    ensure_rng,
    keyed_hash53,
    keyed_u01,
    mix64,
)
from repro.utils.validation import require

__all__ = [
    "DenseResult",
    "BatchedDenseResult",
    "luby_round_dense",
    "luby_mis_dense",
    "luby_mis_batched",
    "sinkless_trial_dense",
    "sinkless_trial_batched",
    "dense_orientation",
    "uniform_splitting_dense",
    "uniform_splitting_batched",
]


class DenseResult:
    """Outcome of a dense kernel run: per-node arrays instead of NodeViews.

    ``rng_seconds`` is the wall time of coin-table construction (the
    kernels' analogue of the executors' per-node ``node_rng`` setup — the
    O(n) RNG tax the ROADMAP tracks; O(1) for counter-based coin kinds).
    """

    __slots__ = ("rounds", "completed", "rng_seconds", "data")

    def __init__(self, rounds: int, completed: bool, rng_seconds: float = 0.0, **data):
        self.rounds = rounds
        self.completed = completed
        self.rng_seconds = rng_seconds
        self.data = data

    def __getattr__(self, name):
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None


class BatchedDenseResult:
    """Outcome of a trial-batched dense kernel: one leading trial axis.

    ``rounds`` (int64) and ``completed`` (bool) have shape ``(k,)``, aligned
    with ``seeds``; every array in ``data`` has shape ``(k, ...)`` — e.g.
    ``in_mis`` is ``(trials, nodes)``.  Trials finish at different rounds
    (ragged termination): a finished trial's rows are frozen at their final
    state while survivors keep iterating.  :meth:`trial` slices one trial
    back out as a :class:`DenseResult`, bit-identical to the corresponding
    sequential ``coins="keyed"`` run of the same kernel.
    """

    __slots__ = ("seeds", "rounds", "completed", "rng_seconds", "data")

    def __init__(self, seeds, rounds, completed, rng_seconds: float = 0.0, **data):
        self.seeds = list(seeds)
        self.rounds = rounds
        self.completed = completed
        self.rng_seconds = rng_seconds
        self.data = data

    def __getattr__(self, name):
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None

    def __len__(self) -> int:
        return len(self.seeds)

    def trial(self, t: int) -> DenseResult:
        """The ``t``-th trial's slice as a sequential-shaped result.

        The batch-wide RNG setup time is amortized evenly across trials.
        """
        return DenseResult(
            int(self.rounds[t]),
            bool(self.completed[t]),
            rng_seconds=self.rng_seconds / max(len(self.seeds), 1),
            **{key: value[t] for key, value in self.data.items()},
        )


# ---------------------------------------------------------------------------
# Segment (per-CSR-row) reductions.
# ---------------------------------------------------------------------------


def _segment_or(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment logical OR; empty segments reduce to False.

    ``reduceat`` has two sharp edges this wraps: an empty segment yields the
    element *at* its start index (garbage — masked out afterwards), and a
    *trailing* empty segment has a start index of ``len(values)`` (out of
    range — and clipping it would insert a bogus boundary that drops the
    last slot of the final non-empty segment).  Trailing empties are the
    suffix of starts equal to ``m``; we reduce only the prefix before them.
    """
    n = offsets.shape[0] - 1
    m = values.shape[0]
    out = np.zeros(n, dtype=bool)
    if m == 0:
        return out
    starts = offsets[:-1]
    k = int(np.searchsorted(starts, m))  # first trailing-empty segment
    out[:k] = np.logical_or.reduceat(values, starts[:k])
    out[starts == offsets[1:]] = False
    return out


def _segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum; empty segments reduce to 0 (see :func:`_segment_or`)."""
    n = offsets.shape[0] - 1
    m = values.shape[0]
    out = np.zeros(n, dtype=values.dtype)
    if m == 0:
        return out
    starts = offsets[:-1]
    k = int(np.searchsorted(starts, m))
    out[:k] = np.add.reduceat(values, starts[:k])
    out[starts == offsets[1:]] = 0
    return out


def _segment_or_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_segment_or` over a ``(trials, slots)`` array.

    One ``reduceat`` along axis 1 advances every trial's neighborhood OR at
    once — the trial-batched kernels' workhorse.  Same empty/trailing
    segment guards as the 1D version.
    """
    k = values.shape[0]
    m = values.shape[1]
    n = offsets.shape[0] - 1
    out = np.zeros((k, n), dtype=bool)
    if m == 0:
        return out
    starts = offsets[:-1]
    j = int(np.searchsorted(starts, m))
    out[:, :j] = np.logical_or.reduceat(values, starts[:j], axis=1)
    out[:, starts == offsets[1:]] = False
    return out


def _segment_sum_2d(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Row-wise :func:`_segment_sum` over a ``(trials, slots)`` array."""
    k = values.shape[0]
    m = values.shape[1]
    n = offsets.shape[0] - 1
    out = np.zeros((k, n), dtype=values.dtype)
    if m == 0:
        return out
    starts = offsets[:-1]
    j = int(np.searchsorted(starts, m))
    out[:, :j] = np.add.reduceat(values, starts[:j], axis=1)
    out[:, starts == offsets[1:]] = 0
    return out


def _slot_owner(offsets: np.ndarray) -> np.ndarray:
    """``owner[k]`` = the node whose CSR row contains slot ``k``."""
    n = offsets.shape[0] - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))


def _ragged_slots(offsets: np.ndarray, degrees: np.ndarray, idx: np.ndarray) -> np.ndarray:
    """All CSR slots owned by the nodes in ``idx``, in node order.

    O(output) — the batched Luby kernel uses it to touch only the surviving
    frontier's slots instead of sweeping all ``m`` pairs per phase.
    """
    cnt = degrees[idx]
    total = int(cnt.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = offsets[idx]
    base = np.repeat(starts - np.concatenate(([0], np.cumsum(cnt[:-1]))), cnt)
    return np.arange(total, dtype=np.int64) + base


def _uids(engine: CSREngine) -> np.ndarray:
    return np.asarray(engine.network.ids, dtype=np.int64)


# ---------------------------------------------------------------------------
# Luby MIS.
# ---------------------------------------------------------------------------


def luby_round_dense(
    active: np.ndarray,
    r: np.ndarray,
    uid: np.ndarray,
    offsets: np.ndarray,
    dst_node: np.ndarray,
    owner: np.ndarray,
    active2: "np.ndarray" = None,
    heard1: "np.ndarray" = None,
    heard2: "np.ndarray" = None,
    corrupt1: "np.ndarray" = None,
    corrupt2: "np.ndarray" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Luby phase (priority exchange + announcement) as array ops.

    ``active`` is the per-node frontier mask, ``r`` the per-node priority
    coins (only entries of active nodes are read).  Returns
    ``(joining, killed)``: nodes that enter the MIS this phase, and nodes
    eliminated because a neighbor joined.  The priority order is the
    engine's tuple compare ``(r, uid)`` — ties on ``r`` (possible across
    independent replay streams) break on uid, exactly like
    :class:`~repro.mis.luby.LubyMIS`, so there is no float-tie hazard.

    The optional fault arguments mirror the hooked engine's semantics on a
    faulty environment (all default to the clean-run behaviour):

    * ``heard1`` — per-slot delivery mask for the priority round: a dropped
      priority does not suppress the receiver's join;
    * ``active2`` — frontier at the announcement round (nodes crashing
      between the two rounds decided to join but never announce — and never
      enter the MIS);
    * ``heard2`` — per-slot delivery mask for the announcement round: a
      dropped join announcement does not kill the receiver;
    * ``corrupt1`` — per-slot Byzantine mask (receiving side) for the
      priority round: a corrupted priority from an active sender is the
      forged always-winning payload
      (:data:`~repro.scenarios.byzantine.FORGED_PRIORITY`), so the receiver
      loses the comparison regardless of the genuine draws;
    * ``corrupt2`` — per-slot Byzantine mask for the announcement round: a
      corrupted announcement from an active sender arrives with its
      join/stay bit flipped.
    """
    # Slot k: does the (active) neighbor at this slot beat the slot's owner?
    nbr = dst_node
    nbr_better = (r[nbr] > r[owner]) | ((r[nbr] == r[owner]) & (uid[nbr] > uid[owner]))
    if corrupt1 is not None:
        nbr_better |= corrupt1  # forged winner: beats any genuine priority
    nbr_better &= active[nbr]
    if heard1 is not None:
        nbr_better &= heard1
    joining = active & ~_segment_or(nbr_better, offsets)
    if active2 is None:
        active2 = active
    else:
        joining = joining & active2
    announced = joining[nbr]
    if corrupt2 is not None:
        # Flipped join/stay bit; any *sending* (active) neighbor counts.
        announced = (announced ^ corrupt2) & active2[nbr]
    if heard2 is not None:
        announced = announced & heard2
    killed = active2 & ~joining & _segment_or(announced, offsets)
    return joining, killed


def luby_mis_dense(
    engine: CSREngine,
    seed: int = 0,
    coins="philox",
    max_rounds: int = 10_000,
    faults=None,
    tracer=None,
) -> DenseResult:
    """Luby's MIS as dense phases; same semantics as running
    :class:`~repro.mis.luby.LubyMIS` on the engine.

    Replayed draws per engine hook call: one ``random()`` per *active* node
    per odd (priority) round, nothing on even rounds; degree-0 nodes join
    the MIS in ``init`` and never draw.  With ``coins="replay"`` the
    returned ``in_mis`` mask and round count are bit-identical to the
    engine's outputs for the same seed.

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`, or any object
    with ``crashed_at``/``delivered_in``) is the masked-array equivalent of
    running the engine with scenario hooks: crashed nodes leave the frontier
    before drawing (and never join), dropped priority/announcement messages
    are excluded from the neighborhood reductions.  With ``coins="replay"``
    a faulty dense run is bit-identical to the engine under the same
    perturbation stack.

    ``tracer`` (a :class:`~repro.obs.trace.Tracer`; None or a NullTracer by
    default) records one round record per executed round — the same round
    numbers, active-set sizes and total as a hook-traced engine run of the
    same seed (mask-based delivery accounting means the dense records omit
    the per-round delivered/dropped message counts).

    Returns a :class:`DenseResult` with ``in_mis`` (bool array of length n)
    and ``crashed`` (bool array; all-False on a clean run).
    """
    require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
    trace = tracer is not None and tracer.enabled
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    rng_start = time.perf_counter()
    table = as_coin_table(coins, seed, engine.network.ids)
    rng_seconds = time.perf_counter() - rng_start
    degrees = np.diff(offsets)

    in_mis = degrees == 0  # isolated nodes join immediately (init)
    active = ~in_mis
    crashed = np.zeros(n, dtype=bool)
    owner = _slot_owner(offsets)
    r = np.zeros(n, dtype=np.float64)

    # Past the stack's quiet horizon no fault can occur, so the loop drops
    # the faults object and the recovery tail runs at fault-free cost
    # (DenseFaults.expired; other mask providers may omit it).
    faults_expired = getattr(faults, "expired", None)

    rounds = 0
    while active.any():
        if rounds + 1 > max_rounds:
            break
        round1 = rounds + 1
        if faults is not None and faults_expired is not None and faults_expired(round1):
            faults = None
        if faults is not None:
            crash = faults.crashed_at(round1)
            if crash is not None:
                crashed |= active & crash
                active = active & ~crash
        # Odd round: active nodes draw priorities (index order, like the
        # engine's broadcast sweep — per-node replay streams make the
        # cross-node order immaterial, the per-node draw count exact).  The
        # round tag keys the keyed kind; philox/replay ignore it.
        if trace:
            phase_start = time.perf_counter()
        act_idx = np.flatnonzero(active)
        r[act_idx] = table.uniforms(act_idx, tag=round1)
        rounds += 1
        if trace:
            # Post-round-1-crash frontier == the reference's non-halted
            # count after the odd round (degree-0 nodes halted in init).
            tracer.round(
                round1,
                active=int(active.sum()),
                seconds=time.perf_counter() - phase_start,
            )
            phase_start = time.perf_counter()
        if rounds + 1 > max_rounds:
            break  # engine would stop after the odd round, mid-phase
        active2 = heard1 = heard2 = corrupt1 = corrupt2 = None
        if faults is not None:
            round2 = rounds + 1
            crash = faults.crashed_at(round2)
            if crash is not None:
                crashed |= active & crash
                active2 = active & ~crash
            heard1 = faults.delivered_in(round1)
            heard2 = faults.delivered_in(round2)
            corrupted_in = getattr(faults, "corrupted_in", None)
            if corrupted_in is not None:
                corrupt1 = corrupted_in(round1)
                corrupt2 = corrupted_in(round2)
        joining, killed = luby_round_dense(
            active, r, uid, offsets, dst_node, owner,
            active2=active2, heard1=heard1, heard2=heard2,
            corrupt1=corrupt1, corrupt2=corrupt2,
        )
        in_mis |= joining
        active = (active if active2 is None else active2) & ~(joining | killed)
        rounds += 1
        if trace:
            tracer.round(
                rounds,
                active=int(active.sum()),
                seconds=time.perf_counter() - phase_start,
            )
    return DenseResult(
        rounds,
        completed=not active.any(),
        rng_seconds=rng_seconds,
        in_mis=in_mis,
        crashed=crashed,
    )


# ---------------------------------------------------------------------------
# Trial-batched Luby MIS.
#
# The batched kernel advances k seeds of one graph at once.  Its state per
# still-running trial is *compressed*: a flat array of active (trial, node)
# keys plus pair-endpoint positions into it, so every phase costs
# O(surviving frontier) instead of O(k * m).  Two execution regimes chosen
# purely for cache behaviour (semantics are identical):
#
# * a trial whose live pair count is still large is advanced on its own
#   (its arrays are cache-resident; pooling them with 63 siblings would
#   blow the working set on 1-CPU CI hardware);
# * once a trial's frontier shrinks below ``pool_pairs`` it merges into one
#   communal pool, and a single bincount/segment pass advances every pooled
#   trial per phase — the "one pass, many seeds" payoff, since Luby's
#   frontier decays geometrically and the tail phases dominate the count.
#
# Coins are ``keyed`` (pure hash of (seed, node, round)), so the batched
# run is bit-identical to k sequential ``coins="keyed"`` runs — enforced by
# the property tests in tests/local/test_dense_batched.py.
# ---------------------------------------------------------------------------


def _compress_state(keep, nodes, o_pos, n_pos, slots, sh):
    """Drop nodes where ``keep`` is False; remap pair positions."""
    if keep.all():
        return nodes, o_pos, n_pos, slots, sh
    remap = np.cumsum(keep) - 1
    pair_keep = keep[o_pos] & keep[n_pos]
    return (
        nodes[keep],
        remap[o_pos[pair_keep]],
        remap[n_pos[pair_keep]],
        slots[pair_keep],
        sh[keep],
    )


def _merge_states(parts):
    """Concatenate compressed states (disjoint trial sets) into one pool."""
    base = 0
    cols = ([], [], [], [], [])
    for nodes, o_pos, n_pos, slots, sh in parts:
        cols[0].append(nodes)
        cols[1].append(o_pos + base)
        cols[2].append(n_pos + base)
        cols[3].append(slots)
        cols[4].append(sh)
        base += nodes.shape[0]
    return tuple(np.concatenate(c) for c in cols)


def _luby_phase_batched(state, n, round1, uid_gt, in_mis_flat, crashed_flat, faults):
    """One full Luby phase (rounds ``round1``, ``round1 + 1``) on one
    compressed state; returns the surviving state.

    Mirrors the sequential loop body of :func:`luby_mis_dense` exactly:
    round-1 crashes leave before drawing, priorities are 53-bit keyed
    hashes (rank-isomorphic to the keyed uniforms the sequential kernel
    compares, ties broken by uid), dropped priorities don't suppress joins,
    round-2 crashers neither join nor announce, dropped announcements don't
    kill.  Fault masks are shared across every trial in the state.
    """
    nodes, o_pos, n_pos, slots, sh = state
    if faults is not None:
        crash = faults.crashed_at(round1)
        if crash is not None:
            hit = crash[nodes % n]
            if hit.any():
                crashed_flat[nodes[hit]] = True
                nodes, o_pos, n_pos, slots, sh = _compress_state(
                    ~hit, nodes, o_pos, n_pos, slots, sh
                )
    N = nodes.shape[0]
    if N == 0:
        return nodes, o_pos, n_pos, slots, sh
    r = keyed_hash53(np, sh, nodes % n, round1)
    ro = r[o_pos]
    rn = r[n_pos]
    better = (rn > ro) | ((rn == ro) & uid_gt[slots])
    crash2 = None
    if faults is not None:
        heard1 = faults.delivered_in(round1)
        if heard1 is not None:
            better &= heard1[slots]
        cmask = faults.crashed_at(round1 + 1)
        if cmask is not None:
            crash2 = cmask[nodes % n]
    joining = np.bincount(o_pos[better], minlength=N) == 0
    if crash2 is not None and crash2.any():
        crashed_flat[nodes[crash2]] = True
        joining &= ~crash2
    announced = joining[n_pos]
    if faults is not None:
        heard2 = faults.delivered_in(round1 + 1)
        if heard2 is not None:
            announced &= heard2[slots]
    killed = ~joining & (np.bincount(o_pos[announced], minlength=N) > 0)
    in_mis_flat[nodes[joining]] = True
    keep = ~joining & ~killed
    if crash2 is not None:
        keep &= ~crash2
    return _compress_state(keep, nodes, o_pos, n_pos, slots, sh)


def _luby_phase1_fast(t, s_hash, n, node_idx, act0, uid_gt, offsets, dst_node,
                      owner, degrees, in_mis_row, pos_map):
    """Fault-free phase 1 for one trial, full-graph arrays (cache-hot).

    Joins/kills over all ``m`` pairs via segment reductions; the kill set
    is scattered from the joining nodes' own slots and the surviving
    frontier's pairs are extracted from the survivors' CSR rows only — both
    O(joining/surviving slots), not O(m).  Returns the compressed state of
    phase-2 survivors, or ``None`` when the trial finished at round 2.
    """
    rt = keyed_hash53(np, s_hash, node_idx, 1)
    ro = rt[owner]
    rn = rt[dst_node]
    better = (rn > ro) | ((rn == ro) & uid_gt)
    join = act0 & ~_segment_or(better, offsets)
    jslots = _ragged_slots(offsets, degrees, np.flatnonzero(join))
    killed = np.zeros(n, dtype=bool)
    killed[dst_node[jslots]] = True
    in_mis_row[:] = ~act0 | join
    at = act0 & ~join & ~killed
    act_idx = np.flatnonzero(at)
    if act_idx.shape[0] == 0:
        return None
    sslots = _ragged_slots(offsets, degrees, act_idx)
    live = sslots[at[dst_node[sslots]]]
    pos_map[act_idx] = np.arange(act_idx.shape[0])
    sh = np.full(act_idx.shape[0], s_hash, dtype=np.uint64)
    return (t * n + act_idx, pos_map[owner[live]], pos_map[dst_node[live]], live, sh)


def luby_mis_batched(
    engine: CSREngine,
    seeds: Sequence[int],
    coins="keyed",
    max_rounds: int = 10_000,
    faults=None,
    pool_pairs: int = 4096,
    tracer=None,
) -> BatchedDenseResult:
    """Luby's MIS for a batch of seeds on one graph, in one kernel call.

    Per trial this is exactly ``luby_mis_dense(engine, seed=s,
    coins="keyed", max_rounds=..., faults=...)`` — same MIS membership,
    crash records, round counts and completion flags, bit for bit — but the
    trials advance together: phase 1 runs per trial over cache-hot full
    arrays, and once a trial's frontier is small (``pool_pairs`` live pairs
    or fewer) it merges into a communal compressed pool where one
    bincount/segment pass per phase advances every surviving trial at once.
    Trials finish raggedly; finished trials freeze, survivors iterate.

    ``faults`` is one shared :class:`~repro.scenarios.masks.DenseFaults`
    schedule broadcast across the trial axis (per-round masks are built
    once and reused by every trial).  ``coins`` accepts ``"keyed"`` or its
    performance-default alias ``"philox"``; ``"replay"`` streams are
    consumption-ordered and cannot be batched.

    ``tracer`` records one ``batch_phase`` event per communal phase (the
    per-trial round semantics of the batched regime make per-round records
    ambiguous; phase events carry the surviving trial/pool shape instead).

    Returns a :class:`BatchedDenseResult` with ``in_mis`` and ``crashed``
    of shape ``(trials, n)``.
    """
    require(
        coins in ("keyed", "philox"),
        "trial-batched kernels draw keyed counter-based coins "
        "(replay streams are consumption-ordered and cannot be batched)",
    )
    require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
    require(
        not getattr(faults, "corrupting", False),
        "trial-batched kernels do not implement Byzantine corruption masks",
    )
    trace = tracer is not None and tracer.enabled
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    owner = _slot_owner(offsets)
    degrees = np.diff(offsets)
    m = dst_node.shape[0]
    k = len(seeds)

    in_mis = np.zeros((k, n), dtype=bool)
    in_mis[:, degrees == 0] = True
    crashed = np.zeros((k, n), dtype=bool)
    rounds = np.zeros(k, dtype=np.int64)
    completed = np.ones(k, dtype=bool)
    act0 = degrees > 0
    if k == 0 or not act0.any():
        return BatchedDenseResult(seeds, rounds, completed, in_mis=in_mis, crashed=crashed)

    imf = in_mis.ravel()
    crf = crashed.ravel()
    seed_hashes = [mix64(int(s)) for s in seeds]
    uid_gt = uid[dst_node] > uid[owner]
    node_idx = np.arange(n, dtype=np.int64)
    pos_map = np.empty(n, dtype=np.int64)
    faults_expired = getattr(faults, "expired", None)

    if max_rounds == 0:
        completed[:] = False
        return BatchedDenseResult(seeds, rounds, completed, in_mis=in_mis, crashed=crashed)
    if faults is not None and faults_expired is not None and faults_expired(1):
        faults = None
    if max_rounds == 1:
        # Mid-phase cap inside phase 1: crashes land, priorities are drawn,
        # nothing is ever announced (matches the sequential odd-round break).
        frontier = act0
        if faults is not None:
            crash = faults.crashed_at(1)
            if crash is not None:
                crashed[:, :] = (act0 & crash)[None, :]
                frontier = act0 & ~crash
        rounds[:] = 1
        completed[:] = not frontier.any()
        return BatchedDenseResult(seeds, rounds, completed, in_mis=in_mis, crashed=crashed)

    # Phase 1 (rounds 1-2), per trial: the fault-free fast path, or the
    # generic compressed phase seeded with the full graph under faults.
    singles = {}
    if faults is None:
        for t, s_hash in enumerate(seed_hashes):
            st = _luby_phase1_fast(
                t, s_hash, n, node_idx, act0, uid_gt, offsets, dst_node,
                owner, degrees, in_mis[t], pos_map,
            )
            if st is None:
                rounds[t] = 2
            else:
                singles[t] = st
    else:
        act_idx0 = np.flatnonzero(act0)
        pos_map[act_idx0] = np.arange(act_idx0.shape[0])
        o_pos0 = pos_map[owner]
        n_pos0 = pos_map[dst_node]
        slots0 = np.arange(m, dtype=np.int64)
        for t, s_hash in enumerate(seed_hashes):
            state = (
                t * n + act_idx0, o_pos0, n_pos0, slots0,
                np.full(act_idx0.shape[0], s_hash, dtype=np.uint64),
            )
            st = _luby_phase_batched(state, n, 1, uid_gt, imf, crf, faults)
            if st[0].shape[0] == 0:
                rounds[t] = 2
            else:
                singles[t] = st

    pool = None
    round_no = 2
    while singles or pool is not None:
        round1 = round_no + 1
        if round1 > max_rounds:
            # Cap reached between phases: survivors stop incomplete.
            for t in singles:
                rounds[t] = round_no
                completed[t] = False
            if pool is not None:
                for t in np.unique(pool[0] // n):
                    rounds[t] = round_no
                    completed[t] = False
            break
        if faults is not None and faults_expired is not None and faults_expired(round1):
            faults = None
        if round1 + 1 > max_rounds:
            # Mid-phase cap: round-1 crashes land, then the odd-round break.
            states = list(singles.values()) + ([pool] if pool is not None else [])
            nodes_all = np.concatenate([st[0] for st in states])
            left = nodes_all
            if faults is not None:
                crash = faults.crashed_at(round1)
                if crash is not None:
                    hit = crash[nodes_all % n]
                    crf[nodes_all[hit]] = True
                    left = nodes_all[~hit]
            total = np.bincount(nodes_all // n, minlength=k)
            remaining = np.bincount(left // n, minlength=k)
            running = total > 0
            rounds[running] = round1
            completed[running] = remaining[running] == 0
            break
        round2 = round1 + 1
        if trace:
            tracer.event(
                "batch_phase",
                round=round1,
                singles=len(singles),
                pool_nodes=0 if pool is None else int(pool[0].shape[0]),
            )
        # Small trials merge into the communal pool (once pooled, a trial's
        # frontier only shrinks, so it never leaves).
        small = [t for t, st in singles.items() if st[3].shape[0] <= pool_pairs]
        if small:
            parts = ([pool] if pool is not None else []) + [singles.pop(t) for t in small]
            pool = _merge_states(parts)
        for t in list(singles):
            st = _luby_phase_batched(singles[t], n, round1, uid_gt, imf, crf, faults)
            if st[0].shape[0] == 0:
                rounds[t] = round2
                del singles[t]
            else:
                singles[t] = st
        if pool is not None:
            before = pool[0]
            pool = _luby_phase_batched(pool, n, round1, uid_gt, imf, crf, faults)
            if pool[0].shape[0] != before.shape[0]:
                had = np.bincount(before // n, minlength=k) > 0
                have = np.bincount(pool[0] // n, minlength=k) > 0
                rounds[had & ~have] = round2
                if pool[0].shape[0] == 0:
                    pool = None
        round_no = round2
    return BatchedDenseResult(seeds, rounds, completed, in_mis=in_mis, crashed=crashed)


# ---------------------------------------------------------------------------
# Trial-and-fix sinkless orientation.
# ---------------------------------------------------------------------------


def sinkless_trial_dense(
    engine: CSREngine,
    min_degree: int = 1,
    seed: int = 0,
    coins="philox",
    max_rounds: int = 200,
    faults=None,
    strict: bool = True,
    tracer=None,
) -> DenseResult:
    """Trial-and-fix sinkless orientation as dense rounds.

    Mirrors :class:`~repro.orientation.sinkless.TrialAndFixSinkless` driven
    by :func:`~repro.orientation.sinkless.run_trial_and_fix`'s global probe:

    * round 1 — every node draws one coin per port (port order); for each
      edge the higher-uid endpoint's coin decides the direction;
    * rounds >= 2 — every *current sink* (own-view: degree >= ``min_degree``
      and no outward port) draws one ``randrange(degree)`` and flips that
      port outward; the neighbor marks the paired port inward.  Two sinks
      flipping the same edge in one round leave both sides inward — the
      reference's exact (quirky) semantics;
    * after each round >= 2 the harness-side probe checks the *extracted*
      orientation (lower endpoint's view wins) and stops when sink-free.

    Requires a simple graph (no multi-edges or self-loops): the probe's
    orientation dict collapses parallel edges, which has no faithful slot
    representation.  Returns a :class:`DenseResult` with ``out`` (bool per
    CSR slot, True = outward in the owner's own view) and ``crashed`` (bool
    per node).  Raises ``RuntimeError`` if no sink-free round occurs within
    ``max_rounds``, matching the driver; ``strict=False`` instead returns
    an incomplete result (the scenario runner's mode — under faults,
    non-recovery is data).

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`) mirrors the
    hooked engine from round 2 on: crashed nodes freeze their slot state
    (they neither flip nor process flips) and leave the sink probe; dropped
    flip announcements leave the receiving side outward, exactly like the
    reference's receive phase.  Round-1 faults are not supported here —
    scenario schedules for sinkless orientation leave the proposal round
    clean.

    ``tracer`` records one round record per executed round; ``active`` is
    the surviving (non-crashed) node count, matching the hook-traced
    reference where sinkless nodes never halt on their own.
    """
    require(min_degree >= 1, f"min_degree must be >= 1, got {min_degree}")
    trace = tracer is not None and tracer.enabled
    offsets, dst_node, dst_port = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    degrees = np.diff(offsets)
    owner = _slot_owner(offsets)
    m = dst_node.shape[0]

    pair_keys = owner * np.int64(n) + dst_node
    require(
        np.unique(pair_keys).shape[0] == m,
        "sinkless_trial_dense requires a simple graph (no multi-edges/self-loops)",
    )
    # partner[k]: the CSR slot on the other endpoint of slot k's edge.
    partner = offsets[:-1][dst_node] + dst_port

    rng_start = time.perf_counter()
    table = as_coin_table(coins, seed, engine.network.ids)
    rng_seconds = time.perf_counter() - rng_start

    # Round 1: per-port proposals, higher-uid endpoint's coin wins; the
    # winner's coin True means "winner's side points outward".
    if trace:
        phase_start = time.perf_counter()
    coins1 = table.uniform_runs(np.arange(n, dtype=np.int64), degrees, tag=1) < 0.5
    higher = uid[owner] > uid[dst_node]
    out = np.where(higher, coins1, ~coins1[partner])
    rounds = 1
    if trace:
        tracer.round(1, active=n, seconds=time.perf_counter() - phase_start)

    constrained = degrees >= min_degree
    low_view = owner < dst_node  # extraction rule: lower *index* endpoint's view
    crashed = np.zeros(n, dtype=bool)
    faults_expired = getattr(faults, "expired", None)
    if faults is not None and getattr(faults, "corrupting", False):
        # The proposal round has no slot-state representation for rewritten
        # coins; corruption schedules for sinkless orientation must leave
        # round 1 clean (the scenario runner enforces the same contract).
        require(
            faults.corrupted_out(1) is None,
            "sinkless_trial_dense requires a corruption-free proposal round",
        )

    for round_no in range(2, max_rounds + 1):
        if trace:
            phase_start = time.perf_counter()
        if faults is not None and faults_expired is not None and faults_expired(round_no):
            faults = None  # quiet horizon passed: fix rounds run fault-free
        if faults is not None:
            crash = faults.crashed_at(round_no)
            if crash is not None:
                crashed |= crash
        # Send phase: sinks by their own view flip one uniformly random port
        # (crashed nodes are frozen: no draws, no flips).
        sinks_own = constrained & ~crashed & ~_segment_or(out, offsets)
        sink_idx = np.flatnonzero(sinks_own)
        corrupt = None
        if faults is not None:
            corrupted_out = getattr(faults, "corrupted_out", None)
            if corrupted_out is not None:
                corrupt = corrupted_out(round_no)
        if corrupt is not None:
            # Byzantine fix round: every live node sends on every port
            # ("flip" on a sink's chosen slot, "ok" elsewhere) and the
            # corruption flips that bit per delivered slot, so the set of
            # perceived flips is (chosen XOR corrupt) over live endpoints.
            if sink_idx.shape[0]:
                ports = table.randints(sink_idx, degrees[sink_idx], tag=round_no)
                chosen = offsets[:-1][sink_idx] + ports
                out[chosen] = True
            is_flip = np.zeros(m, dtype=bool)
            if sink_idx.shape[0]:
                is_flip[chosen] = True
            is_flip ^= corrupt
            mark = is_flip & ~crashed[owner] & ~crashed[dst_node]
            delivered = faults.delivered_out(round_no)
            if delivered is not None:
                mark &= delivered
            out[partner[np.flatnonzero(mark)]] = False
        elif sink_idx.shape[0]:
            ports = table.randints(sink_idx, degrees[sink_idx], tag=round_no)
            chosen = offsets[:-1][sink_idx] + ports
            out[chosen] = True
            # Receive phase: the paired port is marked inward.  A doubly
            # flipped edge has each chosen slot as the other's partner, so
            # both end False — exactly the reference outcome.  Under faults
            # the flip announcement must actually arrive: dropped messages
            # and crashed receivers leave the paired slot untouched.
            if faults is None:
                out[partner[chosen]] = False
            else:
                keep = ~crashed[dst_node[chosen]]
                delivered = faults.delivered_out(round_no)
                if delivered is not None:
                    keep &= delivered[chosen]
                out[partner[chosen[keep]]] = False
        rounds = round_no
        if trace:
            tracer.round(
                round_no,
                active=int(n - crashed.sum()),
                seconds=time.perf_counter() - phase_start,
            )
        # Probe: extract the orientation (lower-index endpoint's slot is
        # authoritative) and stop at the first round with no live sink.
        effective_out = np.where(low_view, out, ~out[partner])
        if not (constrained & ~crashed & ~_segment_or(effective_out, offsets)).any():
            return DenseResult(
                rounds, completed=True, rng_seconds=rng_seconds, out=out, crashed=crashed
            )
    if strict:
        raise RuntimeError(f"no sinkless orientation after {max_rounds} rounds")
    return DenseResult(
        rounds, completed=False, rng_seconds=rng_seconds, out=out, crashed=crashed
    )


def sinkless_trial_batched(
    engine: CSREngine,
    seeds: Sequence[int],
    min_degree: int = 1,
    coins="keyed",
    max_rounds: int = 200,
    faults=None,
    strict: bool = True,
) -> BatchedDenseResult:
    """Trial-and-fix sinkless orientation for a batch of seeds at once.

    Per trial this is exactly ``sinkless_trial_dense(engine, min_degree,
    seed=s, coins="keyed", ...)`` — same slot states, round counts and
    crash records — but the fix rounds run in lockstep over ``(trial,
    slot)`` grids: one 2D segment-mask pass finds every trial's sinks, one
    keyed-hash call draws every flip port, and one flat scatter applies the
    flips (scatter order preserves the doubly-flipped-edge-ends-inward
    reference quirk within each trial).  Trials finishing early freeze
    (their rows stop flipping and leave the probe); survivors iterate.

    ``faults`` is one shared :class:`~repro.scenarios.masks.DenseFaults`
    schedule broadcast across the trial axis.  ``strict=True`` raises if
    *any* trial fails to orient within ``max_rounds``, mirroring the
    sequential driver; ``strict=False`` returns the incomplete rows.
    """
    require(
        coins in ("keyed", "philox"),
        "trial-batched kernels draw keyed counter-based coins "
        "(replay streams are consumption-ordered and cannot be batched)",
    )
    require(min_degree >= 1, f"min_degree must be >= 1, got {min_degree}")
    require(
        not getattr(faults, "corrupting", False),
        "trial-batched kernels do not implement Byzantine corruption masks",
    )
    offsets, dst_node, dst_port = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    degrees = np.diff(offsets)
    owner = _slot_owner(offsets)
    m = dst_node.shape[0]
    k = len(seeds)

    pair_keys = owner * np.int64(n) + dst_node
    require(
        np.unique(pair_keys).shape[0] == m,
        "sinkless_trial_batched requires a simple graph (no multi-edges/self-loops)",
    )
    partner = offsets[:-1][dst_node] + dst_port

    sh = np.array([mix64(int(s)) for s in seeds], dtype=np.uint64)
    rounds = np.ones(k, dtype=np.int64)
    completed = np.zeros(k, dtype=bool)
    crashed = np.zeros((k, n), dtype=bool)
    if k == 0:
        return BatchedDenseResult(
            seeds, rounds, completed, out=np.zeros((0, m), dtype=bool), crashed=crashed
        )

    # Round 1: the sequential kernel keys its full-graph uniform_runs call
    # by position-within-call, which *is* the CSR slot index — so the
    # batched grid replays the identical coins per (trial, slot).
    slot_idx = np.arange(m, dtype=np.int64)
    coins1 = keyed_u01(np, sh[:, None], slot_idx, 1) < 0.5
    higher = uid[owner] > uid[dst_node]
    out = np.where(higher[None, :], coins1, ~coins1[:, partner])

    constrained = degrees >= min_degree
    low_view = owner < dst_node
    running = np.ones(k, dtype=bool)
    faults_expired = getattr(faults, "expired", None)
    outf = out.ravel()

    for round_no in range(2, max_rounds + 1):
        if faults is not None and faults_expired is not None and faults_expired(round_no):
            faults = None
        if faults is not None:
            crash = faults.crashed_at(round_no)
            if crash is not None:
                crashed[running] |= crash
        sinks_own = (
            running[:, None] & constrained[None, :] & ~crashed
            & ~_segment_or_2d(out, offsets)
        )
        t_idx, v_idx = np.nonzero(sinks_own)
        if t_idx.shape[0]:
            # Sequential randints keys each draw by the node index, so the
            # batched call hashes (seed_t, node, round) per flat sink.
            ports = (
                keyed_u01(np, sh[t_idx], v_idx, round_no) * degrees[v_idx]
            ).astype(np.int64)
            chosen = offsets[:-1][v_idx] + ports
            base = t_idx * m
            outf[base + chosen] = True
            if faults is None:
                outf[base + partner[chosen]] = False
            else:
                keep = ~crashed[t_idx, dst_node[chosen]]
                delivered = faults.delivered_out(round_no)
                if delivered is not None:
                    keep &= delivered[chosen]
                outf[(base + partner[chosen])[keep]] = False
        rounds[running] = round_no
        effective_out = np.where(low_view[None, :], out, ~out[:, partner])
        live = (
            constrained[None, :] & ~crashed & ~_segment_or_2d(effective_out, offsets)
        ).any(axis=1)
        completed[running & ~live] = True
        running &= live
        if not running.any():
            return BatchedDenseResult(seeds, rounds, completed, out=out, crashed=crashed)
    if strict:
        raise RuntimeError(f"no sinkless orientation after {max_rounds} rounds")
    return BatchedDenseResult(seeds, rounds, completed, out=out, crashed=crashed)


def dense_orientation(
    engine: CSREngine, out: np.ndarray
) -> Dict[Tuple[int, int], bool]:
    """Extract the ``{(u, v): True}`` orientation dict from slot states.

    Same rule as the simulator driver: for each edge the lower-index
    endpoint's slot decides the direction.
    """
    offsets, dst_node, _ = engine.dense_arrays()
    owner = _slot_owner(offsets)
    low = np.flatnonzero(owner < dst_node)
    srcs = np.where(out[low], owner[low], dst_node[low])
    dsts = np.where(out[low], dst_node[low], owner[low])
    return {(int(u), int(v)): True for u, v in zip(srcs, dsts)}


# ---------------------------------------------------------------------------
# Uniform (Section 4.1) 0-round splitting.
# ---------------------------------------------------------------------------


def uniform_splitting_dense(
    engine: CSREngine,
    spec,
    seed: int = 0,
    coins="philox",
    red: int = 0,
    blue: int = 1,
    faults=None,
    tracer=None,
) -> DenseResult:
    """One attempt of the 0-round splitting + 1-round verification, dense.

    Mirrors :class:`~repro.apps.splitting.ZeroRoundSplitting` for one run
    seed: every node draws one coin in ``init`` (index order) and colors
    itself red iff the coin is < 1/2; the verification round counts each
    node's red neighbors over its CSR segment and checks the spec bounds for
    constrained degrees.  The Las-Vegas retry loop lives in
    :func:`repro.apps.splitting.uniform_splitting` (``method="dense"``).

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`) mirrors the
    hooked engine on the single round: every node still draws its color in
    ``init`` (crashes land *after* init, so the replay draw count is
    unchanged), but crashed nodes neither broadcast nor verify, and dropped
    color messages are excluded from the red-neighbor counts — ``ok`` is
    then the surviving nodes' own (possibly fault-blinded) verdict, exactly
    what the distributed Las-Vegas loop would act on.

    Returns a :class:`DenseResult` with ``colors`` (int array), ``ok``
    (bool: every live constrained node inside ``[lo, hi]``) and ``crashed``
    (bool array); ``rounds`` is 1, the verification round, matching the
    engine's charge.
    """
    trace = tracer is not None and tracer.enabled
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    degrees = np.diff(offsets)
    rng_start = time.perf_counter()
    table = as_coin_table(coins, seed, engine.network.ids)
    rng_seconds = time.perf_counter() - rng_start

    if trace:
        phase_start = time.perf_counter()
    u = table.uniforms(np.arange(n, dtype=np.int64), tag=1)
    colors = np.where(u < 0.5, red, blue)
    crashed = np.zeros(n, dtype=bool)
    is_red = colors[dst_node] == red
    if faults is not None:
        corrupted_in = getattr(faults, "corrupted_in", None)
        if corrupted_in is not None:
            flip = corrupted_in(1)
            if flip is not None:
                # Byzantine color broadcast: a corrupted slot carries the
                # opposite color (RED <-> BLUE is the whole vocabulary).
                is_red = is_red ^ flip
    sent = is_red.astype(np.int64)
    if faults is not None:
        crash = faults.crashed_at(1)
        if crash is not None:
            crashed |= crash
            sent &= ~crashed[dst_node]
        heard = faults.delivered_in(1)
        if heard is not None:
            sent &= heard
    red_nbrs = _segment_sum(sent, offsets)
    # spec.lo / spec.hi / spec.constrains are affine in the degree, so they
    # vectorize directly over the degree array.
    constrained = spec.constrains(degrees) & ~crashed
    ok = bool(
        (~constrained | ((red_nbrs >= spec.lo(degrees)) & (red_nbrs <= spec.hi(degrees)))).all()
    )
    if trace:
        # Every node decides and halts in the single verification round
        # (crashed nodes are halted too), so the post-round active count is
        # 0 — matching the hook-traced executors; survivors ride alongside.
        tracer.round(
            1,
            active=0,
            survivors=int(n - crashed.sum()),
            ok=ok,
            seconds=time.perf_counter() - phase_start,
        )
    return DenseResult(
        1, completed=True, rng_seconds=rng_seconds, colors=colors, ok=ok, crashed=crashed
    )


def uniform_splitting_batched(
    engine: CSREngine,
    spec,
    seeds: Sequence[int],
    coins="keyed",
    max_attempts: int = 64,
    red: int = 0,
    blue: int = 1,
    faults=None,
) -> BatchedDenseResult:
    """The uniform-splitting Las-Vegas loop for a batch of master seeds.

    Per trial this is exactly the ``method="dense"`` loop of
    :func:`repro.apps.splitting.uniform_splitting` with ``coins="keyed"``:
    each master seed drives its own ``random.Random`` stream of per-attempt
    run seeds (bit-identical to the sequential loop's draws), and each
    attempt is one 0-round splitting + verification.  The batching is per
    attempt: all still-unresolved trials color and verify together on one
    ``(trial, node)`` coin grid and one 2D segment sum.  Resolved trials
    freeze; a trial that exhausts ``max_attempts`` keeps its last colors
    with ``ok=False`` (the wrapper decides whether that is fatal).

    ``faults`` masks are constant across attempts (every attempt replays
    the same single verification round), so they are built once and
    broadcast.  Returns a :class:`BatchedDenseResult` with per-trial
    ``colors``, ``ok``, ``attempts`` and ``crashed``; ``rounds`` counts the
    attempts consumed (the per-trial ledger charge is one verification
    round per attempt, applied by the wrapper).
    """
    require(
        coins in ("keyed", "philox"),
        "trial-batched kernels draw keyed counter-based coins "
        "(replay streams are consumption-ordered and cannot be batched)",
    )
    require(max_attempts >= 1, f"max_attempts must be >= 1, got {max_attempts}")
    require(
        not getattr(faults, "corrupting", False),
        "trial-batched kernels do not implement Byzantine corruption masks",
    )
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    degrees = np.diff(offsets)
    k = len(seeds)

    colors = np.full((k, n), blue, dtype=np.int64)
    ok = np.zeros(k, dtype=bool)
    attempts = np.zeros(k, dtype=np.int64)
    if k == 0:
        return BatchedDenseResult(
            seeds, attempts, ok.copy(), colors=colors, ok=ok,
            attempts=attempts, crashed=np.zeros((k, n), dtype=bool),
        )

    crashed_base = np.zeros(n, dtype=bool)
    heard = None
    if faults is not None:
        crash = faults.crashed_at(1)
        if crash is not None:
            crashed_base = crash.copy()
        heard = faults.delivered_in(1)
    constrained = spec.constrains(degrees) & ~crashed_base
    lo = spec.lo(degrees)
    hi = spec.hi(degrees)
    node_idx = np.arange(n, dtype=np.int64)

    rngs = [ensure_rng(int(s)) for s in seeds]
    pend = np.arange(k, dtype=np.int64)
    for attempt_no in range(1, max_attempts + 1):
        run_hashes = np.array(
            [mix64(rngs[t].randrange(2**31)) for t in pend], dtype=np.uint64
        )
        u = keyed_u01(np, run_hashes[:, None], node_idx, 1)
        cols = np.where(u < 0.5, red, blue)
        sent = (cols[:, dst_node] == red).astype(np.int64)
        if crashed_base.any():
            sent &= ~crashed_base[dst_node][None, :]
        if heard is not None:
            sent &= heard[None, :]
        red_nbrs = _segment_sum_2d(sent, offsets)
        ok_rows = (
            ~constrained[None, :] | ((red_nbrs >= lo) & (red_nbrs <= hi))
        ).all(axis=1)
        colors[pend] = cols
        attempts[pend] = attempt_no
        ok[pend[ok_rows]] = True
        pend = pend[~ok_rows]
        if pend.shape[0] == 0:
            break
    crashed = np.broadcast_to(crashed_base, (k, n)).copy()
    return BatchedDenseResult(
        seeds, attempts.copy(), ok.copy(),
        colors=colors, ok=ok, attempts=attempts, crashed=crashed,
    )
