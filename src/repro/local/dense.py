"""Vectorized dense round kernels: whole LOCAL rounds as numpy array ops.

:class:`~repro.local.engine.CSREngine` removed the reference simulator's
dict overhead, but its hot loop still makes O(active) Python hook calls
(``init``/``broadcast``/``send``/``receive``) per round and pays ~9 µs per
node of :func:`~repro.utils.rng.node_rng` setup.  For the paper's randomized
pipelines — Luby MIS, trial-and-fix sinkless orientation, 0-round uniform
splitting — the per-node logic is a few comparisons, so at n >= 10^5 the
interpreter *is* the cost.

The kernels here execute an entire round of one specific algorithm as
masked array arithmetic over the engine's CSR layout
(:meth:`CSREngine.dense_arrays`): candidate coin draws come from a
:class:`~repro.utils.rng.CoinTable`, neighborhood reductions are
``np.logical_or.reduceat`` / ``np.add.reduceat`` over the CSR segments, and
the per-slot owner array ``np.repeat(arange(n), degrees)`` turns "compare
me against each neighbor" into two gathers and a compare.

Coin contract (see :class:`~repro.utils.rng.CoinTable`):

* ``coins="replay"`` feeds the kernels the *exact* per-node ``node_rng``
  streams the engine consumes, in the same per-node draw order, so outputs
  and round counts are **bit-identical** to :class:`CSREngine` (and hence to
  :func:`~repro.local.network.run_local`).  O(n) setup — for tests and
  cross-checks.
* ``coins="philox"`` uses a counter-based numpy stream with O(1) setup —
  **distribution-identical** runs for performance work.

Each kernel documents exactly which hook-level draws it replays; any change
to the corresponding :class:`LocalAlgorithm` must be mirrored here (the
equivalence property tests in ``tests/local/test_dense.py`` enforce this).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.local.engine import CSREngine
from repro.utils.rng import CoinTable, as_coin_table
from repro.utils.validation import require

__all__ = [
    "DenseResult",
    "luby_round_dense",
    "luby_mis_dense",
    "sinkless_trial_dense",
    "dense_orientation",
    "uniform_splitting_dense",
]


class DenseResult:
    """Outcome of a dense kernel run: per-node arrays instead of NodeViews."""

    __slots__ = ("rounds", "completed", "data")

    def __init__(self, rounds: int, completed: bool, **data):
        self.rounds = rounds
        self.completed = completed
        self.data = data

    def __getattr__(self, name):
        try:
            return self.data[name]
        except KeyError:
            raise AttributeError(name) from None


# ---------------------------------------------------------------------------
# Segment (per-CSR-row) reductions.
# ---------------------------------------------------------------------------


def _segment_or(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment logical OR; empty segments reduce to False.

    ``reduceat`` has two sharp edges this wraps: an empty segment yields the
    element *at* its start index (garbage — masked out afterwards), and a
    *trailing* empty segment has a start index of ``len(values)`` (out of
    range — and clipping it would insert a bogus boundary that drops the
    last slot of the final non-empty segment).  Trailing empties are the
    suffix of starts equal to ``m``; we reduce only the prefix before them.
    """
    n = offsets.shape[0] - 1
    m = values.shape[0]
    out = np.zeros(n, dtype=bool)
    if m == 0:
        return out
    starts = offsets[:-1]
    k = int(np.searchsorted(starts, m))  # first trailing-empty segment
    out[:k] = np.logical_or.reduceat(values, starts[:k])
    out[starts == offsets[1:]] = False
    return out


def _segment_sum(values: np.ndarray, offsets: np.ndarray) -> np.ndarray:
    """Per-segment sum; empty segments reduce to 0 (see :func:`_segment_or`)."""
    n = offsets.shape[0] - 1
    m = values.shape[0]
    out = np.zeros(n, dtype=values.dtype)
    if m == 0:
        return out
    starts = offsets[:-1]
    k = int(np.searchsorted(starts, m))
    out[:k] = np.add.reduceat(values, starts[:k])
    out[starts == offsets[1:]] = 0
    return out


def _slot_owner(offsets: np.ndarray) -> np.ndarray:
    """``owner[k]`` = the node whose CSR row contains slot ``k``."""
    n = offsets.shape[0] - 1
    return np.repeat(np.arange(n, dtype=np.int64), np.diff(offsets))


def _uids(engine: CSREngine) -> np.ndarray:
    return np.asarray(engine.network.ids, dtype=np.int64)


# ---------------------------------------------------------------------------
# Luby MIS.
# ---------------------------------------------------------------------------


def luby_round_dense(
    active: np.ndarray,
    r: np.ndarray,
    uid: np.ndarray,
    offsets: np.ndarray,
    dst_node: np.ndarray,
    owner: np.ndarray,
    active2: "np.ndarray" = None,
    heard1: "np.ndarray" = None,
    heard2: "np.ndarray" = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """One Luby phase (priority exchange + announcement) as array ops.

    ``active`` is the per-node frontier mask, ``r`` the per-node priority
    coins (only entries of active nodes are read).  Returns
    ``(joining, killed)``: nodes that enter the MIS this phase, and nodes
    eliminated because a neighbor joined.  The priority order is the
    engine's tuple compare ``(r, uid)`` — ties on ``r`` (possible across
    independent replay streams) break on uid, exactly like
    :class:`~repro.mis.luby.LubyMIS`, so there is no float-tie hazard.

    The optional fault arguments mirror the hooked engine's semantics on a
    faulty environment (all default to the clean-run behaviour):

    * ``heard1`` — per-slot delivery mask for the priority round: a dropped
      priority does not suppress the receiver's join;
    * ``active2`` — frontier at the announcement round (nodes crashing
      between the two rounds decided to join but never announce — and never
      enter the MIS);
    * ``heard2`` — per-slot delivery mask for the announcement round: a
      dropped join announcement does not kill the receiver.
    """
    # Slot k: does the (active) neighbor at this slot beat the slot's owner?
    nbr = dst_node
    nbr_better = active[nbr] & (
        (r[nbr] > r[owner]) | ((r[nbr] == r[owner]) & (uid[nbr] > uid[owner]))
    )
    if heard1 is not None:
        nbr_better &= heard1
    joining = active & ~_segment_or(nbr_better, offsets)
    if active2 is None:
        active2 = active
    else:
        joining = joining & active2
    announced = joining[nbr]
    if heard2 is not None:
        announced = announced & heard2
    killed = active2 & ~joining & _segment_or(announced, offsets)
    return joining, killed


def luby_mis_dense(
    engine: CSREngine,
    seed: int = 0,
    coins="philox",
    max_rounds: int = 10_000,
    faults=None,
) -> DenseResult:
    """Luby's MIS as dense phases; same semantics as running
    :class:`~repro.mis.luby.LubyMIS` on the engine.

    Replayed draws per engine hook call: one ``random()`` per *active* node
    per odd (priority) round, nothing on even rounds; degree-0 nodes join
    the MIS in ``init`` and never draw.  With ``coins="replay"`` the
    returned ``in_mis`` mask and round count are bit-identical to the
    engine's outputs for the same seed.

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`, or any object
    with ``crashed_at``/``delivered_in``) is the masked-array equivalent of
    running the engine with scenario hooks: crashed nodes leave the frontier
    before drawing (and never join), dropped priority/announcement messages
    are excluded from the neighborhood reductions.  With ``coins="replay"``
    a faulty dense run is bit-identical to the engine under the same
    perturbation stack.

    Returns a :class:`DenseResult` with ``in_mis`` (bool array of length n)
    and ``crashed`` (bool array; all-False on a clean run).
    """
    require(max_rounds >= 0, f"max_rounds must be >= 0, got {max_rounds}")
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    table = as_coin_table(coins, seed, engine.network.ids)
    degrees = np.diff(offsets)

    in_mis = degrees == 0  # isolated nodes join immediately (init)
    active = ~in_mis
    crashed = np.zeros(n, dtype=bool)
    owner = _slot_owner(offsets)
    r = np.zeros(n, dtype=np.float64)

    # Past the stack's quiet horizon no fault can occur, so the loop drops
    # the faults object and the recovery tail runs at fault-free cost
    # (DenseFaults.expired; other mask providers may omit it).
    faults_expired = getattr(faults, "expired", None)

    rounds = 0
    while active.any():
        if rounds + 1 > max_rounds:
            break
        round1 = rounds + 1
        if faults is not None and faults_expired is not None and faults_expired(round1):
            faults = None
        if faults is not None:
            crash = faults.crashed_at(round1)
            if crash is not None:
                crashed |= active & crash
                active = active & ~crash
        # Odd round: active nodes draw priorities (index order, like the
        # engine's broadcast sweep — per-node replay streams make the
        # cross-node order immaterial, the per-node draw count exact).
        act_idx = np.flatnonzero(active)
        r[act_idx] = table.uniforms(act_idx)
        rounds += 1
        if rounds + 1 > max_rounds:
            break  # engine would stop after the odd round, mid-phase
        active2 = heard1 = heard2 = None
        if faults is not None:
            round2 = rounds + 1
            crash = faults.crashed_at(round2)
            if crash is not None:
                crashed |= active & crash
                active2 = active & ~crash
            heard1 = faults.delivered_in(round1)
            heard2 = faults.delivered_in(round2)
        joining, killed = luby_round_dense(
            active, r, uid, offsets, dst_node, owner,
            active2=active2, heard1=heard1, heard2=heard2,
        )
        in_mis |= joining
        active = (active if active2 is None else active2) & ~(joining | killed)
        rounds += 1
    return DenseResult(
        rounds, completed=not active.any(), in_mis=in_mis, crashed=crashed
    )


# ---------------------------------------------------------------------------
# Trial-and-fix sinkless orientation.
# ---------------------------------------------------------------------------


def sinkless_trial_dense(
    engine: CSREngine,
    min_degree: int = 1,
    seed: int = 0,
    coins="philox",
    max_rounds: int = 200,
    faults=None,
    strict: bool = True,
) -> DenseResult:
    """Trial-and-fix sinkless orientation as dense rounds.

    Mirrors :class:`~repro.orientation.sinkless.TrialAndFixSinkless` driven
    by :func:`~repro.orientation.sinkless.run_trial_and_fix`'s global probe:

    * round 1 — every node draws one coin per port (port order); for each
      edge the higher-uid endpoint's coin decides the direction;
    * rounds >= 2 — every *current sink* (own-view: degree >= ``min_degree``
      and no outward port) draws one ``randrange(degree)`` and flips that
      port outward; the neighbor marks the paired port inward.  Two sinks
      flipping the same edge in one round leave both sides inward — the
      reference's exact (quirky) semantics;
    * after each round >= 2 the harness-side probe checks the *extracted*
      orientation (lower endpoint's view wins) and stops when sink-free.

    Requires a simple graph (no multi-edges or self-loops): the probe's
    orientation dict collapses parallel edges, which has no faithful slot
    representation.  Returns a :class:`DenseResult` with ``out`` (bool per
    CSR slot, True = outward in the owner's own view) and ``crashed`` (bool
    per node).  Raises ``RuntimeError`` if no sink-free round occurs within
    ``max_rounds``, matching the driver; ``strict=False`` instead returns
    an incomplete result (the scenario runner's mode — under faults,
    non-recovery is data).

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`) mirrors the
    hooked engine from round 2 on: crashed nodes freeze their slot state
    (they neither flip nor process flips) and leave the sink probe; dropped
    flip announcements leave the receiving side outward, exactly like the
    reference's receive phase.  Round-1 faults are not supported here —
    scenario schedules for sinkless orientation leave the proposal round
    clean.
    """
    require(min_degree >= 1, f"min_degree must be >= 1, got {min_degree}")
    offsets, dst_node, dst_port = engine.dense_arrays()
    n = engine.n
    uid = _uids(engine)
    degrees = np.diff(offsets)
    owner = _slot_owner(offsets)
    m = dst_node.shape[0]

    pair_keys = owner * np.int64(n) + dst_node
    require(
        np.unique(pair_keys).shape[0] == m,
        "sinkless_trial_dense requires a simple graph (no multi-edges/self-loops)",
    )
    # partner[k]: the CSR slot on the other endpoint of slot k's edge.
    partner = offsets[:-1][dst_node] + dst_port

    table = as_coin_table(coins, seed, engine.network.ids)

    # Round 1: per-port proposals, higher-uid endpoint's coin wins; the
    # winner's coin True means "winner's side points outward".
    coins1 = table.uniform_runs(np.arange(n, dtype=np.int64), degrees) < 0.5
    higher = uid[owner] > uid[dst_node]
    out = np.where(higher, coins1, ~coins1[partner])
    rounds = 1

    constrained = degrees >= min_degree
    low_view = owner < dst_node  # extraction rule: lower *index* endpoint's view
    crashed = np.zeros(n, dtype=bool)
    faults_expired = getattr(faults, "expired", None)

    for round_no in range(2, max_rounds + 1):
        if faults is not None and faults_expired is not None and faults_expired(round_no):
            faults = None  # quiet horizon passed: fix rounds run fault-free
        if faults is not None:
            crash = faults.crashed_at(round_no)
            if crash is not None:
                crashed |= crash
        # Send phase: sinks by their own view flip one uniformly random port
        # (crashed nodes are frozen: no draws, no flips).
        sinks_own = constrained & ~crashed & ~_segment_or(out, offsets)
        sink_idx = np.flatnonzero(sinks_own)
        if sink_idx.shape[0]:
            ports = table.randints(sink_idx, degrees[sink_idx])
            chosen = offsets[:-1][sink_idx] + ports
            out[chosen] = True
            # Receive phase: the paired port is marked inward.  A doubly
            # flipped edge has each chosen slot as the other's partner, so
            # both end False — exactly the reference outcome.  Under faults
            # the flip announcement must actually arrive: dropped messages
            # and crashed receivers leave the paired slot untouched.
            if faults is None:
                out[partner[chosen]] = False
            else:
                keep = ~crashed[dst_node[chosen]]
                delivered = faults.delivered_out(round_no)
                if delivered is not None:
                    keep &= delivered[chosen]
                out[partner[chosen[keep]]] = False
        rounds = round_no
        # Probe: extract the orientation (lower-index endpoint's slot is
        # authoritative) and stop at the first round with no live sink.
        effective_out = np.where(low_view, out, ~out[partner])
        if not (constrained & ~crashed & ~_segment_or(effective_out, offsets)).any():
            return DenseResult(rounds, completed=True, out=out, crashed=crashed)
    if strict:
        raise RuntimeError(f"no sinkless orientation after {max_rounds} rounds")
    return DenseResult(rounds, completed=False, out=out, crashed=crashed)


def dense_orientation(
    engine: CSREngine, out: np.ndarray
) -> Dict[Tuple[int, int], bool]:
    """Extract the ``{(u, v): True}`` orientation dict from slot states.

    Same rule as the simulator driver: for each edge the lower-index
    endpoint's slot decides the direction.
    """
    offsets, dst_node, _ = engine.dense_arrays()
    owner = _slot_owner(offsets)
    low = np.flatnonzero(owner < dst_node)
    srcs = np.where(out[low], owner[low], dst_node[low])
    dsts = np.where(out[low], dst_node[low], owner[low])
    return {(int(u), int(v)): True for u, v in zip(srcs, dsts)}


# ---------------------------------------------------------------------------
# Uniform (Section 4.1) 0-round splitting.
# ---------------------------------------------------------------------------


def uniform_splitting_dense(
    engine: CSREngine,
    spec,
    seed: int = 0,
    coins="philox",
    red: int = 0,
    blue: int = 1,
    faults=None,
) -> DenseResult:
    """One attempt of the 0-round splitting + 1-round verification, dense.

    Mirrors :class:`~repro.apps.splitting.ZeroRoundSplitting` for one run
    seed: every node draws one coin in ``init`` (index order) and colors
    itself red iff the coin is < 1/2; the verification round counts each
    node's red neighbors over its CSR segment and checks the spec bounds for
    constrained degrees.  The Las-Vegas retry loop lives in
    :func:`repro.apps.splitting.uniform_splitting` (``method="dense"``).

    ``faults`` (a :class:`~repro.scenarios.masks.DenseFaults`) mirrors the
    hooked engine on the single round: every node still draws its color in
    ``init`` (crashes land *after* init, so the replay draw count is
    unchanged), but crashed nodes neither broadcast nor verify, and dropped
    color messages are excluded from the red-neighbor counts — ``ok`` is
    then the surviving nodes' own (possibly fault-blinded) verdict, exactly
    what the distributed Las-Vegas loop would act on.

    Returns a :class:`DenseResult` with ``colors`` (int array), ``ok``
    (bool: every live constrained node inside ``[lo, hi]``) and ``crashed``
    (bool array); ``rounds`` is 1, the verification round, matching the
    engine's charge.
    """
    offsets, dst_node, _ = engine.dense_arrays()
    n = engine.n
    degrees = np.diff(offsets)
    table = as_coin_table(coins, seed, engine.network.ids)

    u = table.uniforms(np.arange(n, dtype=np.int64))
    colors = np.where(u < 0.5, red, blue)
    crashed = np.zeros(n, dtype=bool)
    sent = (colors[dst_node] == red).astype(np.int64)
    if faults is not None:
        crash = faults.crashed_at(1)
        if crash is not None:
            crashed |= crash
            sent &= ~crashed[dst_node]
        heard = faults.delivered_in(1)
        if heard is not None:
            sent &= heard
    red_nbrs = _segment_sum(sent, offsets)
    # spec.lo / spec.hi / spec.constrains are affine in the degree, so they
    # vectorize directly over the degree array.
    constrained = spec.constrains(degrees) & ~crashed
    ok = bool(
        (~constrained | ((red_nbrs >= spec.lo(degrees)) & (red_nbrs <= spec.hi(degrees)))).all()
    )
    return DenseResult(1, completed=True, colors=colors, ok=ok, crashed=crashed)
