"""Identifier assignment schemes for LOCAL networks.

The LOCAL model equips nodes with unique O(log n)-bit identifiers.  Lower
bounds (and some reductions, like the Section 2.5 sinkless-orientation
construction, which compares neighbor IDs) are sensitive to how IDs are
assigned, so the library makes the scheme explicit and seedable.
"""

from __future__ import annotations

from typing import List

from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = ["sequential_ids", "shuffled_ids", "sparse_random_ids"]


def sequential_ids(n: int) -> List[int]:
    """IDs ``0 .. n-1`` in index order (the simulator default)."""
    require(n >= 0, f"n must be >= 0, got {n}")
    return list(range(n))


def shuffled_ids(n: int, seed: SeedLike = None) -> List[int]:
    """A uniformly random permutation of ``0 .. n-1``."""
    rng = ensure_rng(seed)
    ids = list(range(n))
    rng.shuffle(ids)
    return ids


def sparse_random_ids(n: int, seed: SeedLike = None, universe_factor: int = 1000) -> List[int]:
    """Distinct random IDs from the larger universe ``[0, n * universe_factor)``.

    Models the standard assumption that IDs come from a polynomially-sized
    namespace rather than being a compact permutation.
    """
    require(universe_factor >= 1, "universe_factor must be >= 1")
    rng = ensure_rng(seed)
    return rng.sample(range(n * universe_factor), n) if n else []
