"""LOCAL model: synchronous simulator, batched engine, dense kernels, ledger.

The dense (numpy) kernels are exported lazily: ``repro.local.luby_mis_dense``
etc. resolve on first access so importing the package never requires numpy
— the pure-Python reference and engine paths keep working without it.
"""

from repro.local.complexity import (
    degree_splitting_rounds,
    degree_splitting_rounds_simplified,
    log_star,
    power_graph_coloring_rounds,
    slocal_conversion_rounds,
)
from repro.local.engine import CSREngine, run_local_fast
from repro.local.ids import sequential_ids, shuffled_ids, sparse_random_ids
from repro.local.ledger import Charge, RoundLedger
from repro.local.network import (
    NO_BROADCAST,
    LocalAlgorithm,
    Network,
    NodeView,
    RoundHooks,
    SimulationResult,
    build_reverse_ports,
    run_local,
)

__all__ = [
    "LocalAlgorithm",
    "Network",
    "NodeView",
    "RoundHooks",
    "SimulationResult",
    "run_local",
    "run_local_fast",
    "CSREngine",
    "NO_BROADCAST",
    "build_reverse_ports",
    "Charge",
    "RoundLedger",
    "log_star",
    "degree_splitting_rounds",
    "degree_splitting_rounds_simplified",
    "slocal_conversion_rounds",
    "power_graph_coloring_rounds",
    "sequential_ids",
    "shuffled_ids",
    "sparse_random_ids",
    # lazy (numpy-backed) dense kernel exports, resolved in __getattr__:
    "DenseResult",
    "luby_round_dense",
    "luby_mis_dense",
    "sinkless_trial_dense",
    "dense_orientation",
    "uniform_splitting_dense",
    # lazy sharded-backend exports (numpy + multiprocessing):
    "ShardPlan",
    "plan_shards",
    "ShardedExecutor",
    "luby_mis_sharded",
    "luby_mis_sharded_batch",
    "sinkless_trial_sharded",
    "uniform_splitting_sharded",
]

_DENSE_NAMES = frozenset(
    {
        "DenseResult",
        "luby_round_dense",
        "luby_mis_dense",
        "sinkless_trial_dense",
        "dense_orientation",
        "uniform_splitting_dense",
    }
)

_SHARDED_NAMES = frozenset(
    {
        "ShardPlan",
        "plan_shards",
        "ShardedExecutor",
        "luby_mis_sharded",
        "luby_mis_sharded_batch",
        "sinkless_trial_sharded",
        "uniform_splitting_sharded",
    }
)


def __getattr__(name):  # PEP 562: defer the numpy import to first use
    if name in _DENSE_NAMES:
        from repro.local import dense

        return getattr(dense, name)
    if name in _SHARDED_NAMES:
        from repro.local import sharded

        return getattr(sharded, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
