"""LOCAL model: synchronous simulator, batched engine, ledger, complexity."""

from repro.local.complexity import (
    degree_splitting_rounds,
    degree_splitting_rounds_simplified,
    log_star,
    power_graph_coloring_rounds,
    slocal_conversion_rounds,
)
from repro.local.engine import CSREngine, run_local_fast
from repro.local.ids import sequential_ids, shuffled_ids, sparse_random_ids
from repro.local.ledger import Charge, RoundLedger
from repro.local.network import (
    NO_BROADCAST,
    LocalAlgorithm,
    Network,
    NodeView,
    SimulationResult,
    build_reverse_ports,
    run_local,
)

__all__ = [
    "LocalAlgorithm",
    "Network",
    "NodeView",
    "SimulationResult",
    "run_local",
    "run_local_fast",
    "CSREngine",
    "NO_BROADCAST",
    "build_reverse_ports",
    "Charge",
    "RoundLedger",
    "log_star",
    "degree_splitting_rounds",
    "degree_splitting_rounds_simplified",
    "slocal_conversion_rounds",
    "power_graph_coloring_rounds",
    "sequential_ids",
    "shuffled_ids",
    "sparse_random_ids",
]
