"""Seed fan-out, process-pool execution, aggregation, JSON results.

An :class:`ExperimentSpec` is one named cell of a sweep: a workload
function plus fixed parameters, to be run once per seed.  Workload
functions must be *picklable* (module-level, importable — see
:mod:`repro.exp.workloads`) and have the signature::

    fn(seed: int, **params) -> Dict[str, number]

returning a flat dict of metrics.  :func:`run_sweep` fans all (spec, seed)
trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``workers=0`` runs inline, which is what the tests and small sweeps use),
times each trial, and returns a :class:`SweepResult` that aggregates
per-seed metrics into mean/std/min/max and serializes to JSON.

Failures are data, not crashes: a trial that raises is recorded with its
error string and excluded from aggregation, so one bad cell cannot sink a
long sweep.  The *infrastructure* failure modes — a hung worker, a
segfaulted pool, a SIGINT mid-sweep — are handled by the fault-tolerant
execution layer in :mod:`repro.exp.resilient`: per-task ``timeout`` and
``retry`` policies live on :class:`ExperimentSpec`, every finished trial
can be checkpointed to a torn-write-safe ``trials.jsonl``
(``run_sweep(checkpoint=...)``), and a killed sweep restarts where it
died with ``run_sweep(resume=...)``.
"""

from __future__ import annotations

import json
import math
import os
import random
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.exp.resilient import (
    ResilientExecutor,
    RetryPolicy,
    Task,
    append_checkpoint,
    drain_on_signals,
    load_checkpoint,
)
from repro.utils.validation import require

__all__ = [
    "ExperimentSpec",
    "TrialResult",
    "SweepResult",
    "RetryPolicy",
    "run_sweep",
    "aggregate",
]

#: Workload signature: fn(seed, **params) -> metrics dict.
Workload = Callable[..., Dict[str, Any]]

#: JSON schema version of the sweep result format.  v2 added per-trial
#: ``attempts`` (retry accounting) and the top-level ``drained`` marker;
#: v3 splits the per-trial setup tax into ``pack_seconds`` (graph build +
#: CSR packing) and ``rng_seconds`` (per-run RNG construction) and adds the
#: top-level ``metrics`` snapshot (sweep counters/gauges/histograms).
#: Readers that ignore unknown keys load newer files unchanged.
RESULTS_SCHEMA = 3


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep cell: a workload, its parameters, and the seeds to run.

    With ``batch_fn`` set the cell is *trial-batched*: seeds are chunked
    into groups of up to ``trial_batch`` and each chunk becomes ONE task
    calling ``batch_fn(seeds=chunk, **params)``, which must return a list
    of per-seed metric dicts (same order as the chunk).  This is how the
    dense-batched kernels receive whole seed batches in one call instead
    of one pool task per seed; ``fn`` remains the per-seed fallback others
    (and documentation of the cell's semantics) use.

    ``timeout`` is a per-task wall-clock deadline in seconds (pooled
    execution only — an inline run cannot preempt itself): an overdue
    task's worker is killed, the pool rebuilt, and the trial recorded as
    ``error="Timeout: ..."`` data.  ``retry`` attaches a
    :class:`~repro.exp.resilient.RetryPolicy` for transient failures.
    """

    name: str
    fn: Workload
    params: Dict[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0, 1, 2)
    batch_fn: Optional[Workload] = None
    trial_batch: int = 32
    timeout: Optional[float] = None
    retry: Optional[RetryPolicy] = None

    def trials(self) -> List[Tuple[str, Workload, Dict[str, Any], Any]]:
        """The (name, fn, params, seed-or-seed-chunk) tuples to fan out.

        Per-seed cells yield one tuple per seed; batched cells yield one
        tuple per chunk with the seed slot holding a ``tuple`` of seeds
        (:func:`run_sweep` dispatches on that shape).
        """
        if self.batch_fn is None:
            return [(self.name, self.fn, dict(self.params), int(s)) for s in self.seeds]
        require(self.trial_batch >= 1, "trial_batch must be >= 1")
        seeds = [int(s) for s in self.seeds]
        chunks = [
            tuple(seeds[i : i + self.trial_batch])
            for i in range(0, len(seeds), self.trial_batch)
        ]
        return [(self.name, self.batch_fn, dict(self.params), c) for c in chunks]


@dataclass
class TrialResult:
    """Outcome of one (experiment, seed) execution."""

    experiment: str
    seed: int
    params: Dict[str, Any]
    metrics: Dict[str, Any]
    elapsed: float  #: wall-clock seconds for the workload call
    error: Optional[str] = None  #: exception repr if the trial failed
    setup_seconds: float = 0.0  #: one-off scenario setup (engine packing) paid by this trial
    attempts: int = 1  #: executions charged (retries + the recorded outcome)
    #: the setup tax split (schema v3): ``pack_seconds`` is the graph build
    #: + CSR packing share of ``setup_seconds``; ``rng_seconds`` the per-run
    #: RNG construction (node_rng views or coin-table build) — the O(n)
    #: setup tax the ROADMAP tracks, now measurable per trial.
    pack_seconds: float = 0.0
    rng_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "params": self.params,
            "metrics": self.metrics,
            "elapsed": self.elapsed,
            "setup_seconds": self.setup_seconds,
            "pack_seconds": self.pack_seconds,
            "rng_seconds": self.rng_seconds,
            "error": self.error,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, row: Dict[str, Any]) -> "TrialResult":
        """Rebuild a trial from its :meth:`to_dict` form (checkpoint rows).

        Tolerant of older rows: ``attempts`` defaults to 1, the v3 setup
        split to ``pack_seconds=setup_seconds`` / ``rng_seconds=0`` when
        absent.
        """
        setup = float(row.get("setup_seconds", 0.0))
        return cls(
            experiment=row["experiment"],
            seed=row["seed"],
            params=row.get("params") or {},
            metrics=row.get("metrics") or {},
            elapsed=float(row.get("elapsed", 0.0)),
            error=row.get("error"),
            setup_seconds=setup,
            attempts=int(row.get("attempts", 1)),
            pack_seconds=float(row.get("pack_seconds", setup)),
            rng_seconds=float(row.get("rng_seconds", 0.0)),
        )


def _run_trial(
    name: str, fn: Workload, params: Dict[str, Any], seed: int
) -> TrialResult:
    """Execute one trial; module-level so it pickles into pool workers.

    Every :class:`TrialResult` gets its own *copy* of ``params``: siblings
    sharing one mutable dict would let a params-mutating workload corrupt
    already-recorded rows.
    """
    start = time.perf_counter()
    try:
        metrics = fn(seed=seed, **params)
    except Exception as exc:  # noqa: BLE001 - failures are sweep data
        return TrialResult(
            experiment=name,
            seed=seed,
            params=dict(params),
            metrics={},
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    if not isinstance(metrics, dict):
        metrics = {"result": metrics}
    if "elapsed" in metrics:
        # "elapsed" is reserved for the runner's wall-clock measurement;
        # keep the workload's own value under an explicit name instead of
        # letting aggregation silently clobber one with the other.
        metrics["workload_elapsed"] = metrics.pop("elapsed")
    # "setup_seconds" is the reserved channel for one-off scenario setup
    # (CSR engine packing) amortized across a scenario's trials: the trial
    # that built the engine reports the build time, cache hits report 0, so
    # the JSON record separates build cost from per-trial solve cost.
    # "pack_seconds"/"rng_seconds" are the v3 split of that tax: graph
    # build + packing vs per-run RNG construction (defaults: the whole
    # setup is packing, no measured RNG cost).
    setup = metrics.pop("setup_seconds", 0.0)
    pack = metrics.pop("pack_seconds", setup)
    rng = metrics.pop("rng_seconds", 0.0)
    return TrialResult(
        experiment=name,
        seed=seed,
        params=dict(params),
        metrics=metrics,
        elapsed=time.perf_counter() - start,
        setup_seconds=float(setup),
        pack_seconds=float(pack),
        rng_seconds=float(rng),
    )


def _run_batch(
    name: str, fn: Workload, params: Dict[str, Any], seeds: Tuple[int, ...]
) -> List[TrialResult]:
    """Execute one seed-batch task; one :class:`TrialResult` per seed.

    The workload runs once for the whole chunk, so per-seed wall-clock is
    the batch total split evenly (the kernel advances all trials together;
    no finer attribution exists).  A batch that raises fails every seed in
    it — still data, not a crash, matching the per-seed contract.
    """
    start = time.perf_counter()
    try:
        per_seed = fn(seeds=seeds, **params)
        require(
            isinstance(per_seed, list) and len(per_seed) == len(seeds),
            "batch workloads must return one metrics dict per seed",
        )
    except Exception as exc:  # noqa: BLE001 - failures are sweep data
        elapsed = (time.perf_counter() - start) / max(len(seeds), 1)
        err = f"{type(exc).__name__}: {exc}"
        return [
            TrialResult(
                experiment=name, seed=s, params=dict(params), metrics={},
                elapsed=elapsed, error=err,
            )
            for s in seeds
        ]
    elapsed = (time.perf_counter() - start) / max(len(seeds), 1)
    results = []
    for s, metrics in zip(seeds, per_seed):
        if not isinstance(metrics, dict):
            metrics = {"result": metrics}
        if "elapsed" in metrics:
            metrics["workload_elapsed"] = metrics.pop("elapsed")
        setup = metrics.pop("setup_seconds", 0.0)
        pack = metrics.pop("pack_seconds", setup)
        rng = metrics.pop("rng_seconds", 0.0)
        results.append(
            TrialResult(
                experiment=name, seed=s, params=dict(params), metrics=metrics,
                elapsed=elapsed, setup_seconds=float(setup),
                pack_seconds=float(pack), rng_seconds=float(rng),
            )
        )
    return results


def aggregate(trials: Sequence[TrialResult]) -> Dict[str, Dict[str, Any]]:
    """Reduce trials to per-experiment summaries.

    For every numeric metric (plus ``elapsed`` and ``setup_seconds``)
    reports mean/std/min/max over the successful seeds; also reports seed
    counts and any errors.  The ``elapsed`` key always holds the runner's
    wall-clock trial timing — a workload metric of that name is stored as
    ``workload_elapsed`` — and ``setup_seconds`` the amortized one-off
    scenario setup cost (see :func:`_run_trial`).
    """
    by_experiment: Dict[str, List[TrialResult]] = {}
    for t in trials:
        by_experiment.setdefault(t.experiment, []).append(t)
    summary: Dict[str, Dict[str, Any]] = {}
    for name, group in by_experiment.items():
        good = [t for t in group if t.ok]
        metrics: Dict[str, Dict[str, float]] = {}
        keys: List[str] = []
        for t in good:
            for k in t.metrics:
                if k not in keys:
                    keys.append(k)
        for k in keys:
            values = [
                t.metrics[k]
                for t in good
                if isinstance(t.metrics.get(k), (int, float))
                and not isinstance(t.metrics.get(k), bool)
            ]
            if values:
                metrics[k] = _stats(values)
        metrics["elapsed"] = _stats([t.elapsed for t in good]) if good else {}
        metrics["setup_seconds"] = _stats([t.setup_seconds for t in good]) if good else {}
        metrics["pack_seconds"] = _stats([t.pack_seconds for t in good]) if good else {}
        metrics["rng_seconds"] = _stats([t.rng_seconds for t in good]) if good else {}
        summary[name] = {
            "params": group[0].params,
            "seeds": [t.seed for t in group],
            "ok": len(good),
            "failed": len(group) - len(good),
            "errors": [t.error for t in group if not t.ok],
            "metrics": metrics,
        }
    return summary


def _stats(values: Sequence[float]) -> Dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "mean": mean,
        "std": math.sqrt(var),
        "min": min(values),
        "max": max(values),
        "n": n,
    }


@dataclass
class SweepResult:
    """All trials of a sweep plus derived aggregates and JSON export."""

    trials: List[TrialResult]
    workers: int
    elapsed: float  #: wall-clock seconds for the whole sweep
    drained: Optional[str] = None  #: signal name if the sweep was drained early
    #: snapshot of the sweep's :class:`~repro.obs.metrics.MetricsRegistry`
    #: (executor lifecycle counters, per-cell timing histograms); None for
    #: results rebuilt from pre-v3 JSON.
    metrics: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, Dict[str, Any]]:
        return aggregate(self.trials)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESULTS_SCHEMA,
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "workers": self.workers,
            "elapsed": self.elapsed,
            "drained": self.drained,
            "metrics": self.metrics,
            "experiments": self.summary(),
            "trials": [t.to_dict() for t in self.trials],
        }

    def write_json(self, path: str) -> None:
        """Atomic dump: a kill mid-write can never leave a torn JSON file.

        The document is written to ``path + ".tmp"``, flushed and fsynced,
        then moved into place with ``os.replace`` — readers (CI's
        ``check_regression.py``) see either the old complete file or the
        new complete file, never a prefix.
        """
        tmp = f"{path}.tmp"
        try:
            with open(tmp, "w") as fh:
                json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
                fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, path)
        finally:
            if os.path.exists(tmp):
                os.unlink(tmp)


#: Jitter source for inline retries (pool retries use the executor's own).
_INLINE_RNG = random.Random(0xD1CE)


def _run_task_inline(spec: ExperimentSpec, task, collect) -> None:
    """Execute one task in-process, honoring the spec's retry policy.

    Timeouts are pooled-only (an inline run cannot preempt itself); retry
    backoff sleeps apply as configured.  Results carry the attempt count.
    """
    name, fn, params, seed = task
    runner = _run_batch if isinstance(seed, tuple) else _run_trial
    attempts = 0
    while True:
        attempts += 1
        outcome = runner(name, fn, params, seed)
        results = outcome if isinstance(outcome, list) else [outcome]
        error = next((r.error for r in results if r.error), None)
        policy = spec.retry
        if (
            error is not None
            and policy is not None
            and attempts < policy.max_attempts
            and policy.is_retryable(error)
        ):
            delay = policy.delay(attempts, _INLINE_RNG)
            if delay > 0:
                time.sleep(delay)
            continue
        for result in results:
            result.attempts = attempts
            collect(result)
        return


def _apply_resume(spec_tasks, resume):
    """Split tasks into (still-to-run, reused checkpoint results).

    Per-seed tasks whose ``(experiment, seed)`` key is already in the
    checkpoint are skipped outright; batched tasks are *narrowed* to their
    missing seeds (an empty remainder drops the task).  Only checkpoint
    rows matching a key of the current sweep are reused — a checkpoint may
    hold unrelated experiments.
    """
    prior = {(t.experiment, t.seed): t for t in load_checkpoint(resume)}
    remaining = []
    reused: List[TrialResult] = []
    for spec, (name, fn, params, seed) in spec_tasks:
        if isinstance(seed, tuple):
            missing = tuple(s for s in seed if (name, s) not in prior)
            reused.extend(prior[(name, s)] for s in seed if (name, s) in prior)
            if missing:
                remaining.append((spec, (name, fn, params, missing)))
        elif (name, seed) in prior:
            reused.append(prior[(name, seed)])
        else:
            remaining.append((spec, (name, fn, params, seed)))
    return remaining, reused


def _write_manifest(path, sweep: SweepResult, unfinished) -> None:
    """Failure manifest of a drained sweep: what was *not* completed.

    Carries the sweep's metrics snapshot so the infrastructure state at the
    drain (timeouts, rebuilds, retries) is preserved with the casualty list.
    """
    doc = {
        "drained": sweep.drained,
        "completed": len(sweep.trials),
        "unfinished": [
            {"experiment": task.name, "seed": s}
            for task in unfinished
            for s in task.seeds()
        ],
        "metrics": sweep.metrics,
        "written_at": time.time(),
    }
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def run_sweep(
    specs: Sequence[ExperimentSpec],
    workers: Optional[int] = None,
    json_path: Optional[str] = None,
    progress: Optional[Callable[[TrialResult], None]] = None,
    checkpoint: Optional[str] = None,
    resume: Optional[str] = None,
    drain_signals: bool = True,
    drain_grace: float = 5.0,
) -> SweepResult:
    """Fan every (spec, seed) trial out and collect results.

    ``workers=None`` uses ``os.cpu_count()`` pool processes; ``workers=0``
    (or a single trial with no timeout) runs inline in this process —
    deterministic ordering, no pickling requirements, the right mode for
    tests.  ``progress`` is invoked once per finished trial (completion
    order).  Trial results are always returned sorted by (experiment,
    seed) so the output is reproducible regardless of scheduling.

    Fault tolerance (see :mod:`repro.exp.resilient`):

    * ``checkpoint`` — append every finished trial to this torn-write-safe
      ``trials.jsonl`` as it completes, so a killed sweep loses nothing
      already done;
    * ``resume`` — load this checkpoint first and skip its completed
      ``(experiment, seed)`` keys (batched cells are narrowed to their
      missing seeds); the reused rows appear in the returned
      :class:`SweepResult` alongside the fresh ones.  Pass the same path
      as ``checkpoint`` to restart a killed sweep where it died.
    * Pooled runs honor each spec's ``timeout``/``retry`` and survive
      worker crashes (``BrokenProcessPool`` heals the pool and attributes
      the crash); on SIGINT/SIGTERM (``drain_signals``, main thread only)
      the sweep stops dispatching, collects in-flight trials for up to
      ``drain_grace`` seconds, writes the partial results plus a
      ``<checkpoint or json_path>.manifest.json`` failure manifest, and
      returns with ``SweepResult.drained`` set.
    """
    require(all(isinstance(s, ExperimentSpec) for s in specs), "specs must be ExperimentSpec")
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    spec_tasks = [(spec, t) for spec in specs for t in spec.trials()]
    reused: List[TrialResult] = []
    if resume:
        spec_tasks, reused = _apply_resume(spec_tasks, resume)
        registry.counter("sweep.resume_skips").inc(len(reused))
    if workers is None:
        workers = os.cpu_count() or 1
    start = time.perf_counter()
    results: List[TrialResult] = list(reused)
    if (
        checkpoint
        and reused
        and (not resume or Path(checkpoint).resolve() != Path(resume).resolve())
    ):
        # Resuming into a *different* checkpoint: carry the reused rows
        # over so the new checkpoint is self-contained.
        append_checkpoint(checkpoint, reused)

    def collect(result: TrialResult) -> None:
        results.append(result)
        registry.counter(
            "sweep.trials_completed" if result.ok else "sweep.trials_failed"
        ).inc()
        # Per-cell timing histograms: setup (pack + rng) vs solve seconds,
        # so a sweep's recorded result answers "where did the time go" per
        # experiment without re-reading every trial row.
        registry.histogram(f"cell.{result.experiment}.solve_seconds").observe(
            result.elapsed
        )
        registry.histogram(f"cell.{result.experiment}.setup_seconds").observe(
            result.setup_seconds + result.rng_seconds
        )
        if checkpoint:
            append_checkpoint(checkpoint, [result])
        if progress is not None:
            progress(result)

    drained: Optional[str] = None
    unfinished: List[Task] = []
    has_timeout = any(spec.timeout for spec, _ in spec_tasks)
    if workers <= 0 or (len(spec_tasks) <= 1 and not has_timeout):
        workers = 0
        for spec, task in spec_tasks:
            _run_task_inline(spec, task, collect)
    else:
        tasks = [
            Task(name, fn, params, seed, timeout=spec.timeout, retry=spec.retry)
            for spec, (name, fn, params, seed) in spec_tasks
        ]
        executor = ResilientExecutor(
            tasks, workers, collect, drain_grace=drain_grace, metrics=registry
        )
        with drain_on_signals(executor, enabled=drain_signals):
            unfinished, drained = executor.run()
    results.sort(key=lambda t: (t.experiment, t.seed))
    sweep = SweepResult(
        trials=results,
        workers=workers,
        elapsed=time.perf_counter() - start,
        drained=drained,
        metrics=registry.snapshot(),
    )
    if json_path is not None:
        sweep.write_json(json_path)
    if drained is not None:
        manifest_base = checkpoint or json_path
        if manifest_base:
            _write_manifest(f"{manifest_base}.manifest.json", sweep, unfinished)
    return sweep
