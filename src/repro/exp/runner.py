"""Seed fan-out, process-pool execution, aggregation, JSON results.

An :class:`ExperimentSpec` is one named cell of a sweep: a workload
function plus fixed parameters, to be run once per seed.  Workload
functions must be *picklable* (module-level, importable — see
:mod:`repro.exp.workloads`) and have the signature::

    fn(seed: int, **params) -> Dict[str, number]

returning a flat dict of metrics.  :func:`run_sweep` fans all (spec, seed)
trials out over a :class:`~concurrent.futures.ProcessPoolExecutor`
(``workers=0`` runs inline, which is what the tests and small sweeps use),
times each trial, and returns a :class:`SweepResult` that aggregates
per-seed metrics into mean/std/min/max and serializes to JSON.

Failures are data, not crashes: a trial that raises is recorded with its
error string and excluded from aggregation, so one bad cell cannot sink a
long sweep.
"""

from __future__ import annotations

import json
import math
import os
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.utils.validation import require

__all__ = ["ExperimentSpec", "TrialResult", "SweepResult", "run_sweep", "aggregate"]

#: Workload signature: fn(seed, **params) -> metrics dict.
Workload = Callable[..., Dict[str, Any]]

#: JSON schema version of the sweep result format.
RESULTS_SCHEMA = 1


@dataclass(frozen=True)
class ExperimentSpec:
    """One sweep cell: a workload, its parameters, and the seeds to run.

    With ``batch_fn`` set the cell is *trial-batched*: seeds are chunked
    into groups of up to ``trial_batch`` and each chunk becomes ONE task
    calling ``batch_fn(seeds=chunk, **params)``, which must return a list
    of per-seed metric dicts (same order as the chunk).  This is how the
    dense-batched kernels receive whole seed batches in one call instead
    of one pool task per seed; ``fn`` remains the per-seed fallback others
    (and documentation of the cell's semantics) use.
    """

    name: str
    fn: Workload
    params: Dict[str, Any] = field(default_factory=dict)
    seeds: Sequence[int] = (0, 1, 2)
    batch_fn: Optional[Workload] = None
    trial_batch: int = 32

    def trials(self) -> List[Tuple[str, Workload, Dict[str, Any], Any]]:
        """The (name, fn, params, seed-or-seed-chunk) tuples to fan out.

        Per-seed cells yield one tuple per seed; batched cells yield one
        tuple per chunk with the seed slot holding a ``tuple`` of seeds
        (:func:`run_sweep` dispatches on that shape).
        """
        if self.batch_fn is None:
            return [(self.name, self.fn, dict(self.params), int(s)) for s in self.seeds]
        require(self.trial_batch >= 1, "trial_batch must be >= 1")
        seeds = [int(s) for s in self.seeds]
        chunks = [
            tuple(seeds[i : i + self.trial_batch])
            for i in range(0, len(seeds), self.trial_batch)
        ]
        return [(self.name, self.batch_fn, dict(self.params), c) for c in chunks]


@dataclass
class TrialResult:
    """Outcome of one (experiment, seed) execution."""

    experiment: str
    seed: int
    params: Dict[str, Any]
    metrics: Dict[str, Any]
    elapsed: float  #: wall-clock seconds for the workload call
    error: Optional[str] = None  #: exception repr if the trial failed
    setup_seconds: float = 0.0  #: one-off scenario setup (engine packing) paid by this trial

    @property
    def ok(self) -> bool:
        return self.error is None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "experiment": self.experiment,
            "seed": self.seed,
            "params": self.params,
            "metrics": self.metrics,
            "elapsed": self.elapsed,
            "setup_seconds": self.setup_seconds,
            "error": self.error,
        }


def _run_trial(
    name: str, fn: Workload, params: Dict[str, Any], seed: int
) -> TrialResult:
    """Execute one trial; module-level so it pickles into pool workers."""
    start = time.perf_counter()
    try:
        metrics = fn(seed=seed, **params)
    except Exception as exc:  # noqa: BLE001 - failures are sweep data
        return TrialResult(
            experiment=name,
            seed=seed,
            params=params,
            metrics={},
            elapsed=time.perf_counter() - start,
            error=f"{type(exc).__name__}: {exc}",
        )
    if not isinstance(metrics, dict):
        metrics = {"result": metrics}
    if "elapsed" in metrics:
        # "elapsed" is reserved for the runner's wall-clock measurement;
        # keep the workload's own value under an explicit name instead of
        # letting aggregation silently clobber one with the other.
        metrics["workload_elapsed"] = metrics.pop("elapsed")
    # "setup_seconds" is the reserved channel for one-off scenario setup
    # (CSR engine packing) amortized across a scenario's trials: the trial
    # that built the engine reports the build time, cache hits report 0, so
    # the JSON record separates build cost from per-trial solve cost.
    setup = metrics.pop("setup_seconds", 0.0)
    return TrialResult(
        experiment=name,
        seed=seed,
        params=params,
        metrics=metrics,
        elapsed=time.perf_counter() - start,
        setup_seconds=float(setup),
    )


def _run_batch(
    name: str, fn: Workload, params: Dict[str, Any], seeds: Tuple[int, ...]
) -> List[TrialResult]:
    """Execute one seed-batch task; one :class:`TrialResult` per seed.

    The workload runs once for the whole chunk, so per-seed wall-clock is
    the batch total split evenly (the kernel advances all trials together;
    no finer attribution exists).  A batch that raises fails every seed in
    it — still data, not a crash, matching the per-seed contract.
    """
    start = time.perf_counter()
    try:
        per_seed = fn(seeds=seeds, **params)
        require(
            isinstance(per_seed, list) and len(per_seed) == len(seeds),
            "batch workloads must return one metrics dict per seed",
        )
    except Exception as exc:  # noqa: BLE001 - failures are sweep data
        elapsed = (time.perf_counter() - start) / max(len(seeds), 1)
        err = f"{type(exc).__name__}: {exc}"
        return [
            TrialResult(
                experiment=name, seed=s, params=params, metrics={},
                elapsed=elapsed, error=err,
            )
            for s in seeds
        ]
    elapsed = (time.perf_counter() - start) / max(len(seeds), 1)
    results = []
    for s, metrics in zip(seeds, per_seed):
        if not isinstance(metrics, dict):
            metrics = {"result": metrics}
        if "elapsed" in metrics:
            metrics["workload_elapsed"] = metrics.pop("elapsed")
        setup = metrics.pop("setup_seconds", 0.0)
        results.append(
            TrialResult(
                experiment=name, seed=s, params=params, metrics=metrics,
                elapsed=elapsed, setup_seconds=float(setup),
            )
        )
    return results


def aggregate(trials: Sequence[TrialResult]) -> Dict[str, Dict[str, Any]]:
    """Reduce trials to per-experiment summaries.

    For every numeric metric (plus ``elapsed`` and ``setup_seconds``)
    reports mean/std/min/max over the successful seeds; also reports seed
    counts and any errors.  The ``elapsed`` key always holds the runner's
    wall-clock trial timing — a workload metric of that name is stored as
    ``workload_elapsed`` — and ``setup_seconds`` the amortized one-off
    scenario setup cost (see :func:`_run_trial`).
    """
    by_experiment: Dict[str, List[TrialResult]] = {}
    for t in trials:
        by_experiment.setdefault(t.experiment, []).append(t)
    summary: Dict[str, Dict[str, Any]] = {}
    for name, group in by_experiment.items():
        good = [t for t in group if t.ok]
        metrics: Dict[str, Dict[str, float]] = {}
        keys: List[str] = []
        for t in good:
            for k in t.metrics:
                if k not in keys:
                    keys.append(k)
        for k in keys:
            values = [
                t.metrics[k]
                for t in good
                if isinstance(t.metrics.get(k), (int, float))
                and not isinstance(t.metrics.get(k), bool)
            ]
            if values:
                metrics[k] = _stats(values)
        metrics["elapsed"] = _stats([t.elapsed for t in good]) if good else {}
        metrics["setup_seconds"] = _stats([t.setup_seconds for t in good]) if good else {}
        summary[name] = {
            "params": group[0].params,
            "seeds": [t.seed for t in group],
            "ok": len(good),
            "failed": len(group) - len(good),
            "errors": [t.error for t in group if not t.ok],
            "metrics": metrics,
        }
    return summary


def _stats(values: Sequence[float]) -> Dict[str, float]:
    n = len(values)
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / n
    return {
        "mean": mean,
        "std": math.sqrt(var),
        "min": min(values),
        "max": max(values),
        "n": n,
    }


@dataclass
class SweepResult:
    """All trials of a sweep plus derived aggregates and JSON export."""

    trials: List[TrialResult]
    workers: int
    elapsed: float  #: wall-clock seconds for the whole sweep

    def summary(self) -> Dict[str, Dict[str, Any]]:
        return aggregate(self.trials)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema": RESULTS_SCHEMA,
            "python": sys.version.split()[0],
            "platform": sys.platform,
            "workers": self.workers,
            "elapsed": self.elapsed,
            "experiments": self.summary(),
            "trials": [t.to_dict() for t in self.trials],
        }

    def write_json(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")


def run_sweep(
    specs: Sequence[ExperimentSpec],
    workers: Optional[int] = None,
    json_path: Optional[str] = None,
    progress: Optional[Callable[[TrialResult], None]] = None,
) -> SweepResult:
    """Fan every (spec, seed) trial out and collect results.

    ``workers=None`` uses ``os.cpu_count()`` pool processes; ``workers=0``
    (or a single trial) runs inline in this process — deterministic
    ordering, no pickling requirements, the right mode for tests.
    ``progress`` is invoked once per finished trial (completion order).
    Trial results are always returned sorted by (experiment, seed) so the
    output is reproducible regardless of scheduling.
    """
    require(all(isinstance(s, ExperimentSpec) for s in specs), "specs must be ExperimentSpec")
    tasks = [t for spec in specs for t in spec.trials()]
    if workers is None:
        workers = os.cpu_count() or 1
    start = time.perf_counter()
    results: List[TrialResult] = []

    def collect(outcome) -> None:
        # A task yields one TrialResult (per-seed) or a list (seed batch).
        for result in outcome if isinstance(outcome, list) else (outcome,):
            results.append(result)
            if progress is not None:
                progress(result)

    def runner_for(task):
        return _run_batch if isinstance(task[3], tuple) else _run_trial

    if workers <= 0 or len(tasks) <= 1:
        workers = 0
        for task in tasks:
            collect(runner_for(task)(*task))
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            pending = {pool.submit(runner_for(task), *task) for task in tasks}
            while pending:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    collect(future.result())
    results.sort(key=lambda t: (t.experiment, t.seed))
    sweep = SweepResult(
        trials=results, workers=workers, elapsed=time.perf_counter() - start
    )
    if json_path is not None:
        sweep.write_json(json_path)
    return sweep
