"""Picklable workload functions for the sweep runner.

Every function here is a module-level callable with signature
``fn(seed, **params) -> Dict[str, number]`` so it can cross a process-pool
boundary.  Each runs one algorithm against a *scenario* graph and returns
flat numeric metrics; validity is asserted inside the workload so a sweep
cannot silently record garbage.

Scenario engines are amortized: the packed :class:`CSREngine` for a
``(topology, n, degree, graph_seed)`` cell is built once per worker process
(:func:`scenario_engine`) and reused by every trial of that cell — the
trial seeds drive the algorithms' coins, not the topology.  The trial that
pays the packing reports it through the runner's reserved
``setup_seconds`` metric; cache hits report 0, so the sweep JSON separates
one-off build cost from per-trial solve cost.

Algorithm workloads take a ``backend`` axis (``"reference"`` — the dict
simulator, ``"engine"`` — the batched CSR engine, ``"dense"`` — the
vectorized numpy kernels with counter-based coins) so one sweep JSON can
record all three side by side.

These are the workloads ``benchmarks/run_experiments.py`` fans out; tests
run them inline through the same entry points.
"""

from __future__ import annotations

import os
import time
from pathlib import Path
from typing import Any, Dict, List, Tuple

from repro.apps.splitting import uniform_splitting
from repro.bipartite.generators import (
    configuration_model_regular,
    grid_graph,
    powerlaw_bipartite,
    random_sparse_graph,
)
from repro.bipartite.instance import BipartiteInstance
from repro.core.problems import UniformSplittingSpec
from repro.core.verifiers import uniform_splitting_violations
from repro.local.engine import CSREngine
from repro.local.network import Network, run_local
from repro.mis.luby import LubyMIS, is_mis, luby_mis
from repro.orientation.sinkless import is_sinkless, run_trial_and_fix
from repro.utils.validation import require

__all__ = [
    "build_topology",
    "scenario_engine",
    "sharded_executor",
    "luby_mis_workload",
    "luby_mis_batch_workload",
    "sinkless_workload",
    "sinkless_batch_workload",
    "splitting_workload",
    "splitting_batch_workload",
    "engine_throughput_workload",
    "scenario_workload",
    "chaos_crash",
    "chaos_exit",
    "chaos_hang",
    "chaos_flaky",
    "chaos_attempts",
]

TOPOLOGIES = ("sparse", "regular", "torus", "grid", "powerlaw")

BACKENDS = ("reference", "engine", "dense", "dense-batched", "dense-sharded")


def build_topology(
    topology: str, n: int, degree: int, seed: int
) -> List[List[int]]:
    """Scenario graph by name; all run in O(m).

    ``sparse``  — Erdős–Rényi G(n, m) with average degree ``degree``;
    ``regular`` — configuration-model ``degree``-regular simple graph;
    ``torus``   — periodic 2-D grid on ~n nodes (4-regular; ``degree`` ignored);
    ``grid``    — open 2-D grid on ~n nodes (``degree`` ignored);
    ``powerlaw``— communication graph of a power-law bipartite instance
    with left degrees in ``[2, degree]``.
    """
    require(topology in TOPOLOGIES, f"unknown topology {topology!r}")
    if topology == "sparse":
        return random_sparse_graph(n, float(degree), seed=seed)
    if topology == "regular":
        if n * degree % 2:
            n += 1
        return configuration_model_regular(n, degree, seed=seed)
    if topology in ("torus", "grid"):
        side = max(3, int(round(n ** 0.5)))
        return grid_graph(side, side, periodic=(topology == "torus"))
    inst = powerlaw_bipartite(
        n_left=n // 2, n_right=n - n // 2, dmin=2, dmax=max(2, degree), seed=seed
    )
    return _bipartite_adjacency(inst)


def _bipartite_adjacency(inst: BipartiteInstance) -> List[List[int]]:
    """The communication graph of a bipartite instance (both sides)."""
    return [list(nbrs) for nbrs in Network.from_bipartite(inst).adjacency]


# Packed engines per scenario, per worker process.  A sweep touches a
# handful of scenario cells; the cap only guards against unbounded growth
# in long-lived interactive sessions.
_ENGINE_CACHE: Dict[Tuple[str, int, int, int], Tuple[CSREngine, float]] = {}
_ENGINE_CACHE_MAX = 8


def scenario_engine(
    topology: str, n: int, degree: int, graph_seed: int
) -> Tuple[CSREngine, float]:
    """The packed CSR engine for one scenario cell, built once per process.

    Returns ``(engine, setup_seconds)`` where ``setup_seconds`` is the
    topology-generation + CSR-packing time paid by *this* call — 0.0 on a
    cache hit, so callers can forward it straight to the runner's reserved
    ``setup_seconds`` metric.
    """
    key = (topology, int(n), int(degree), int(graph_seed))
    cached = _ENGINE_CACHE.get(key)
    if cached is not None:
        return cached[0], 0.0
    start = time.perf_counter()
    adj = build_topology(topology, n, degree, seed=graph_seed)
    engine = CSREngine(Network(adj))
    setup = time.perf_counter() - start
    if len(_ENGINE_CACHE) >= _ENGINE_CACHE_MAX:
        _ENGINE_CACHE.pop(next(iter(_ENGINE_CACHE)))
    _ENGINE_CACHE[key] = (engine, setup)
    return engine, setup


# Live sharded executors per (scenario cell, shard count), per worker
# process.  Each entry pins one process per shard, so the cap is tight;
# evicted executors are closed (pools shut down, shared memory unlinked).
_SHARDED_CACHE: Dict[Tuple[str, int, int, int, int], Tuple[Any, float]] = {}
_SHARDED_CACHE_MAX = 2


def sharded_executor(
    topology: str, n: int, degree: int, graph_seed: int, shards: int = 2
) -> Tuple[Any, float]:
    """A live :class:`~repro.local.sharded.ShardedExecutor` for one cell.

    Built once per worker process (on top of :func:`scenario_engine`'s
    cached packing) and reused by every trial of the cell, so shard workers
    stay hot across a sweep's seeds.  Returns ``(executor, setup_seconds)``
    with the same pay-once accounting as :func:`scenario_engine` —
    ``setup_seconds`` covers topology + packing + partitioning + pool
    spin-up on the call that pays them, 0.0 on cache hits.
    """
    from repro.local.sharded import ShardedExecutor

    key = (topology, int(n), int(degree), int(graph_seed), int(shards))
    cached = _SHARDED_CACHE.get(key)
    if cached is not None:
        return cached[0], 0.0
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    start = time.perf_counter()
    executor = ShardedExecutor(engine, shards)
    setup += time.perf_counter() - start
    if len(_SHARDED_CACHE) >= _SHARDED_CACHE_MAX:
        _, (old, _) = _SHARDED_CACHE.popitem()
        old.close()
    _SHARDED_CACHE[key] = (executor, setup)
    return executor, setup


def luby_mis_workload(
    seed: int,
    topology: str = "sparse",
    n: int = 1000,
    degree: int = 8,
    backend: str = "engine",
    graph_seed: int = 1,
    shards: int = 2,
) -> Dict[str, Any]:
    """Luby MIS on the chosen backend; verifies the MIS before reporting.

    ``backend="dense-sharded"`` runs across a per-process cached
    :class:`~repro.local.sharded.ShardedExecutor` (``shards`` node-range
    shards, one pooled worker each) and reports ``partition_seconds`` /
    ``halo_seconds`` as their own metric columns.
    """
    require(
        backend in ("reference", "engine", "dense", "dense-sharded"),
        f"unknown per-seed backend {backend!r} (dense-batched cells use "
        "luby_mis_batch_workload)",
    )
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    rng_seconds = 0.0
    extras: Dict[str, Any] = {}
    if backend == "dense-sharded":
        ex, shard_setup = sharded_executor(topology, n, degree, graph_seed, shards)
        setup += shard_setup
        halo0 = ex.halo_seconds
        start = time.perf_counter()
        mis, rounds = luby_mis(adj, seed=seed, method="dense-sharded", executor=ex)
        solve = time.perf_counter() - start
        extras = {
            "shards": len(ex.plan),
            "partition_seconds": ex.plan.partition_seconds,
            "halo_seconds": ex.halo_seconds - halo0,
        }
    else:
        start = time.perf_counter()
        if backend == "reference":
            result = run_local(engine.network, LubyMIS(), seed=seed)
            require(
                result.completed, "Luby MIS did not terminate within the round cap"
            )
            mis = {i for i, v in enumerate(result.views) if v.state.get("in_mis")}
            rounds = result.rounds
            rng_seconds = result.rng_seconds
        else:
            mis, rounds = luby_mis(
                adj,
                seed=seed,
                method="dense" if backend == "dense" else "engine",
                engine=engine,
            )
        solve = time.perf_counter() - start
    require(is_mis(adj, mis), "luby produced an invalid MIS")
    m = sum(len(a) for a in adj) // 2
    return {
        "n": len(adj),
        "m": m,
        "rounds": rounds,
        "mis_size": len(mis),
        "solve_seconds": solve,
        "nodes_per_second": len(adj) / solve if solve > 0 else 0.0,
        "setup_seconds": setup,
        "pack_seconds": setup,
        "rng_seconds": rng_seconds,
        **extras,
    }


def luby_mis_batch_workload(
    seeds,
    topology: str = "sparse",
    n: int = 1000,
    degree: int = 8,
    graph_seed: int = 1,
) -> List[Dict[str, Any]]:
    """Luby MIS for a whole seed batch in one dense-batched kernel call.

    The ``backend="dense-batched"`` cell of a sweep: the runner hands the
    whole chunk here (:class:`~repro.exp.runner.ExperimentSpec.batch_fn`)
    and one :func:`~repro.local.dense.luby_mis_batched` call advances every
    seed together.  Metrics mirror :func:`luby_mis_workload` per seed, with
    ``solve_seconds`` the batch total split evenly and the one-off setup
    charged to the first seed; ``trial_batch`` records the chunk size.
    """
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    start = time.perf_counter()
    results = luby_mis(adj, seed=list(seeds), method="dense-batched", engine=engine)
    solve = (time.perf_counter() - start) / max(len(results), 1)
    m = sum(len(a) for a in adj) // 2
    out = []
    for i, (mis, rounds) in enumerate(results):
        require(is_mis(adj, mis), "luby produced an invalid MIS")
        out.append({
            "n": len(adj),
            "m": m,
            "rounds": rounds,
            "mis_size": len(mis),
            "solve_seconds": solve,
            "nodes_per_second": len(adj) / solve if solve > 0 else 0.0,
            "trial_batch": len(results),
            "setup_seconds": setup if i == 0 else 0.0,
        })
    return out


def sinkless_workload(
    seed: int,
    topology: str = "regular",
    n: int = 1000,
    degree: int = 4,
    backend: str = "engine",
    graph_seed: int = 2,
    shards: int = 2,
) -> Dict[str, Any]:
    """Trial-and-fix sinkless orientation (probe-driven) on engine, dense,
    or the sharded process pool (``backend="dense-sharded"``)."""
    require(
        backend in ("engine", "dense", "dense-sharded"),
        f"unknown backend {backend!r}",
    )
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    extras: Dict[str, Any] = {}
    if backend == "dense-sharded":
        ex, shard_setup = sharded_executor(topology, n, degree, graph_seed, shards)
        setup += shard_setup
        halo0 = ex.halo_seconds
        start = time.perf_counter()
        orientation, rounds = run_trial_and_fix(
            adj, min_degree=2, seed=seed, method=backend, engine=engine,
            executor=ex,
        )
        solve = time.perf_counter() - start
        extras = {
            "shards": len(ex.plan),
            "partition_seconds": ex.plan.partition_seconds,
            "halo_seconds": ex.halo_seconds - halo0,
        }
    else:
        start = time.perf_counter()
        orientation, rounds = run_trial_and_fix(
            adj, min_degree=2, seed=seed, method=backend, engine=engine
        )
        solve = time.perf_counter() - start
    require(is_sinkless(adj, orientation, min_degree=2), "orientation has a sink")
    return {
        "n": len(adj),
        "m": len(orientation),
        "rounds": rounds,
        "solve_seconds": solve,
        "setup_seconds": setup,
        **extras,
    }


def sinkless_batch_workload(
    seeds,
    topology: str = "regular",
    n: int = 1000,
    degree: int = 4,
    graph_seed: int = 2,
) -> List[Dict[str, Any]]:
    """Trial-and-fix sinkless orientation for a whole seed batch at once.

    The ``backend="dense-batched"`` counterpart of :func:`sinkless_workload`:
    one :func:`~repro.local.dense.sinkless_trial_batched` call runs every
    seed's fix rounds in lockstep (finished trials freeze).
    """
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    start = time.perf_counter()
    results = run_trial_and_fix(
        adj, min_degree=2, seed=list(seeds), method="dense-batched", engine=engine
    )
    solve = (time.perf_counter() - start) / max(len(results), 1)
    out = []
    for i, (orientation, rounds) in enumerate(results):
        require(is_sinkless(adj, orientation, min_degree=2), "orientation has a sink")
        out.append({
            "n": len(adj),
            "m": len(orientation),
            "rounds": rounds,
            "solve_seconds": solve,
            "trial_batch": len(results),
            "setup_seconds": setup if i == 0 else 0.0,
        })
    return out


def splitting_workload(
    seed: int,
    topology: str = "sparse",
    n: int = 500,
    degree: int = 40,
    eps: float = 0.25,
    method: str = "local",
    graph_seed: int = 3,
    shards: int = 2,
) -> Dict[str, Any]:
    """Uniform splitting (Section 4.1) via the requested method.

    ``method`` doubles as the backend axis here: ``"local"`` runs on the
    batched engine, ``"dense"`` on the numpy kernel (counter-based coins),
    ``"dense-sharded"`` on the sharded process pool,
    ``"random"``/``"derandomized"`` are the centralized baselines.
    """
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    spec = UniformSplittingSpec(eps=eps, min_constrained_degree=max(2, degree // 2))
    executor = None
    if method == "dense-sharded":
        executor, shard_setup = sharded_executor(
            topology, n, degree, graph_seed, shards
        )
        setup += shard_setup
    start = time.perf_counter()
    partition = uniform_splitting(
        adj,
        spec,
        method=method,
        seed=seed,
        engine=engine,
        coins="philox" if method in ("dense", "dense-sharded") else "replay",
        executor=executor,
    )
    solve = time.perf_counter() - start
    violations = uniform_splitting_violations(adj, partition, spec)
    require(not violations, f"splitting left {len(violations)} violated nodes")
    return {
        "n": len(adj),
        "constrained": sum(1 for a in adj if spec.constrains(len(a))),
        "violations": len(violations),
        "solve_seconds": solve,
        "setup_seconds": setup,
    }


def splitting_batch_workload(
    seeds,
    topology: str = "sparse",
    n: int = 500,
    degree: int = 40,
    eps: float = 0.25,
    method: str = "dense-batched",
    graph_seed: int = 3,
) -> List[Dict[str, Any]]:
    """Uniform splitting Las-Vegas loops for a whole seed batch at once.

    The ``method="dense-batched"`` counterpart of :func:`splitting_workload`:
    one :func:`~repro.local.dense.uniform_splitting_batched` call drives
    every master seed's retry loop attempt-by-attempt (resolved trials
    freeze).  ``method`` only labels the cell's backend axis in the sweep
    records (the splitting cells have no ``@backend`` name suffix).
    """
    require(method == "dense-batched", f"unknown batched method {method!r}")
    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    adj = engine.network.adjacency
    spec = UniformSplittingSpec(eps=eps, min_constrained_degree=max(2, degree // 2))
    start = time.perf_counter()
    partitions = uniform_splitting(
        adj, spec, method="dense-batched", seed=list(seeds), engine=engine
    )
    solve = (time.perf_counter() - start) / max(len(partitions), 1)
    constrained = sum(1 for a in adj if spec.constrains(len(a)))
    out = []
    for i, partition in enumerate(partitions):
        violations = uniform_splitting_violations(adj, partition, spec)
        require(not violations, f"splitting left {len(violations)} violated nodes")
        out.append({
            "n": len(adj),
            "constrained": constrained,
            "violations": len(violations),
            "solve_seconds": solve,
            "trial_batch": len(partitions),
            "setup_seconds": setup if i == 0 else 0.0,
        })
    return out


def scenario_workload(
    seed: int,
    scenario: str = "luby/crash",
    n: int = 600,
    degree: int = None,
    backend: str = "engine",
    graph_seed: int = 5,
    fault_mode: str = "replay",
    recover: bool = False,
    trace_out: str = None,
) -> Dict[str, Any]:
    """One registered fault/adversary scenario trial (see
    :mod:`repro.scenarios`): the ``scenario=`` axis of a sweep.

    ``recover=True`` appends the self-stabilizing repair tail
    (:mod:`repro.scenarios.recovery`) after the base run, adding the
    ``recovered`` / ``repair_rounds`` / ``violations_before_recovery``
    channels — the plain-vs-recovering comparison the resilience tables
    curate.

    The trial seed drives both the algorithm's coins and the deterministic
    fault schedule; ``fault_mode`` picks the fault-coin kernel
    (``"replay"`` — the historical bit-identity schedule, ``"mask"`` — the
    vectorized counter-based kernel for large-n dense sweeps).  The
    returned metrics are the scenario runner's resilience channels
    (``violations``, ``survivors``, ``rounds_to_recover``, ...) which land
    in the BENCH json next to the throughput numbers.  Scenario graphs are
    rewritten per scenario (relabelings, multi-edge lifts), so these cells
    use the scenario runner's own per-cell cache instead of
    :func:`scenario_engine`'s.

    ``trace_out``, when set, records round-level trace records for this
    trial (tagged with the trial seed, backend and scenario) and appends
    them to that JSONL path — torn-write-safe, so concurrent pool workers
    appending to one file cannot corrupt earlier records.
    """
    from repro.scenarios import run_scenario

    tracer = None
    if trace_out:
        from repro.obs import Tracer

        tracer = Tracer(trial=seed, backend=backend, scenario=scenario)
    metrics = run_scenario(
        scenario, n=n, degree=degree, seed=seed, graph_seed=graph_seed,
        backend=backend, fault_mode=fault_mode, recover=recover,
        tracer=tracer,
    )
    if tracer is not None:
        tracer.flush(trace_out)
    return metrics


def engine_throughput_workload(
    seed: int,
    topology: str = "sparse",
    n: int = 10_000,
    degree: int = 20,
    graph_seed: int = 4,
) -> Dict[str, Any]:
    """Reference vs engine vs dense on Luby MIS over one fixed graph.

    This is the perf-trajectory metric CI tracks across PRs: all three
    backends execute the same scenario, the reference and engine runs are
    asserted bit-identical (as is a dense run fed replayed coins), and the
    recorded speedups are their wall-clock ratios — ``speedup`` is
    reference/engine (the PR-1 trajectory metric), ``dense_speedup`` is
    engine/dense with the dense kernel on its counter-based coins (its
    performance mode).
    """
    from repro.local.dense import luby_mis_dense

    engine, setup = scenario_engine(topology, n, degree, graph_seed)
    net = engine.network

    start = time.perf_counter()
    reference = run_local(net, LubyMIS(), seed=seed)
    t_reference = time.perf_counter() - start

    start = time.perf_counter()
    fast = engine.run(LubyMIS(), seed=seed)
    t_engine = time.perf_counter() - start

    start = time.perf_counter()
    dense = luby_mis_dense(engine, seed=seed, coins="philox")
    t_dense = time.perf_counter() - start

    require(
        reference.outputs() == fast.outputs() and reference.rounds == fast.rounds,
        "engine diverged from reference",
    )
    replay = luby_mis_dense(engine, seed=seed, coins="replay")
    require(
        replay.rounds == fast.rounds
        and [bool(x) for x in replay.in_mis]
        == [bool(v.state.get("in_mis")) for v in fast.views],
        "dense kernel (replayed coins) diverged from engine",
    )
    require(
        dense.completed
        and is_mis(net.adjacency, {int(i) for i in dense.in_mis.nonzero()[0]}),
        "dense kernel (philox coins) produced an invalid MIS",
    )
    return {
        "n": net.n,
        "m": sum(len(a) for a in net.adjacency) // 2,
        "rounds": fast.rounds,
        "reference_seconds": t_reference,
        "engine_seconds": t_engine,
        "dense_seconds": t_dense,
        "speedup": t_reference / t_engine if t_engine > 0 else 0.0,
        "dense_speedup": t_engine / t_dense if t_dense > 0 else 0.0,
        "setup_seconds": setup,
    }


# ---------------------------------------------------------------------------
# Chaos workloads: the proof harness for repro.exp.resilient.
#
# Each one injects a specific *infrastructure* failure — a raised
# exception, a hard worker death, a hang, a transient flake — so the
# fault-tolerant executor's timeout / retry / self-healing / resume paths
# can be exercised against real process-pool workers.  All are
# module-level and picklable like every other workload.  The shared
# attempt counter is a file (one appended byte per execution) because
# retries cross process and pool-rebuild boundaries: no in-memory state
# survives the failures these workloads simulate.
# ---------------------------------------------------------------------------


def _chaos_mark(state_dir: str, label: str, seed: int) -> int:
    """Record one execution; return the total count so far (1-based).

    The mark is a single ``O_APPEND`` write flushed and fsynced *before*
    the workload proceeds, so even ``os._exit`` and SIGKILL cannot lose
    it — the counters are the ground truth resume tests audit.
    """
    path = Path(state_dir) / f"chaos_{label}_{seed}.attempts"
    with path.open("a") as fh:
        fh.write("x\n")
        fh.flush()
        os.fsync(fh.fileno())
    with path.open() as fh:
        return sum(1 for _ in fh)


def chaos_attempts(state_dir: str, label: str, seed: int) -> int:
    """How many times the (label, seed) chaos workload actually executed."""
    path = Path(state_dir) / f"chaos_{label}_{seed}.attempts"
    if not path.exists():
        return 0
    with path.open() as fh:
        return sum(1 for _ in fh)


def chaos_crash(seed: int, message: str = "chaos crash", state_dir: str = None,
                label: str = "crash") -> Dict[str, Any]:
    """Always raises — the ordinary failures-are-data path, made loud."""
    if state_dir:
        _chaos_mark(state_dir, label, seed)
    raise RuntimeError(f"{message} (seed={seed})")


def chaos_exit(seed: int, code: int = 13, state_dir: str = None,
               label: str = "exit") -> Dict[str, Any]:
    """Kills the worker process outright (``os._exit`` skips all cleanup).

    The parent sees ``BrokenProcessPool`` — the same signature as a
    segfault or the OOM killer — and must heal the pool and attribute the
    death to this task.
    """
    if state_dir:
        _chaos_mark(state_dir, label, seed)
    os._exit(code)


def chaos_hang(seed: int, hang_seconds: float = 60.0, state_dir: str = None,
               label: str = "hang") -> Dict[str, Any]:
    """Sleeps far past any reasonable deadline (bounded, so an escaped
    worker cannot leak forever if the timeout machinery is broken)."""
    if state_dir:
        _chaos_mark(state_dir, label, seed)
    time.sleep(hang_seconds)
    return {"hung_seconds": hang_seconds}


def chaos_flaky(seed: int, succeed_after: int = 2, state_dir: str = None,
                label: str = "flaky") -> Dict[str, Any]:
    """Fails until execution number ``succeed_after``, then succeeds.

    The transient-failure model for RetryPolicy tests; with
    ``succeed_after=1`` it is a healthy workload whose executions are
    still counted — exactly what resume round-trips audit to prove
    completed trials are never re-run.
    """
    require(state_dir, "chaos_flaky needs a state_dir to count attempts across processes")
    count = _chaos_mark(state_dir, label, seed)
    if count < succeed_after:
        raise RuntimeError(f"flaky failure {count}/{succeed_after} (seed={seed})")
    return {"attempts_used": count, "value": seed}
