"""Picklable workload functions for the sweep runner.

Every function here is a module-level callable with signature
``fn(seed, **params) -> Dict[str, number]`` so it can cross a process-pool
boundary.  Each builds a scenario graph (see :func:`build_topology`), runs
one algorithm, and returns flat numeric metrics; validity is asserted
inside the workload so a sweep cannot silently record garbage.

These are the workloads ``benchmarks/run_experiments.py`` fans out; tests
run them inline through the same entry points.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List

from repro.apps.splitting import uniform_splitting
from repro.bipartite.generators import (
    configuration_model_regular,
    grid_graph,
    powerlaw_bipartite,
    random_sparse_graph,
)
from repro.bipartite.instance import BipartiteInstance
from repro.core.problems import UniformSplittingSpec
from repro.core.verifiers import uniform_splitting_violations
from repro.local.engine import CSREngine
from repro.local.network import Network, run_local
from repro.mis.luby import LubyMIS, is_mis, luby_mis
from repro.orientation.sinkless import is_sinkless, run_trial_and_fix
from repro.utils.validation import require

__all__ = [
    "build_topology",
    "luby_mis_workload",
    "sinkless_workload",
    "splitting_workload",
    "engine_throughput_workload",
]

TOPOLOGIES = ("sparse", "regular", "torus", "grid", "powerlaw")


def build_topology(
    topology: str, n: int, degree: int, seed: int
) -> List[List[int]]:
    """Scenario graph by name; all run in O(m).

    ``sparse``  — Erdős–Rényi G(n, m) with average degree ``degree``;
    ``regular`` — configuration-model ``degree``-regular simple graph;
    ``torus``   — periodic 2-D grid on ~n nodes (4-regular; ``degree`` ignored);
    ``grid``    — open 2-D grid on ~n nodes (``degree`` ignored);
    ``powerlaw``— communication graph of a power-law bipartite instance
    with left degrees in ``[2, degree]``.
    """
    require(topology in TOPOLOGIES, f"unknown topology {topology!r}")
    if topology == "sparse":
        return random_sparse_graph(n, float(degree), seed=seed)
    if topology == "regular":
        if n * degree % 2:
            n += 1
        return configuration_model_regular(n, degree, seed=seed)
    if topology in ("torus", "grid"):
        side = max(3, int(round(n ** 0.5)))
        return grid_graph(side, side, periodic=(topology == "torus"))
    inst = powerlaw_bipartite(
        n_left=n // 2, n_right=n - n // 2, dmin=2, dmax=max(2, degree), seed=seed
    )
    return _bipartite_adjacency(inst)


def _bipartite_adjacency(inst: BipartiteInstance) -> List[List[int]]:
    """The communication graph of a bipartite instance (both sides)."""
    return [list(nbrs) for nbrs in Network.from_bipartite(inst).adjacency]


def luby_mis_workload(
    seed: int, topology: str = "sparse", n: int = 1000, degree: int = 8
) -> Dict[str, Any]:
    """Luby MIS on the batched engine; verifies the MIS before reporting."""
    adj = build_topology(topology, n, degree, seed=seed * 7919 + 1)
    start = time.perf_counter()
    mis, rounds = luby_mis(adj, seed=seed)
    solve = time.perf_counter() - start
    require(is_mis(adj, mis), "luby produced an invalid MIS")
    m = sum(len(a) for a in adj) // 2
    return {
        "n": len(adj),
        "m": m,
        "rounds": rounds,
        "mis_size": len(mis),
        "solve_seconds": solve,
        "nodes_per_second": len(adj) / solve if solve > 0 else 0.0,
    }


def sinkless_workload(
    seed: int, topology: str = "regular", n: int = 1000, degree: int = 4
) -> Dict[str, Any]:
    """Trial-and-fix sinkless orientation on the engine (probe-driven)."""
    adj = build_topology(topology, n, degree, seed=seed * 7919 + 2)
    start = time.perf_counter()
    orientation, rounds = run_trial_and_fix(adj, min_degree=2, seed=seed)
    solve = time.perf_counter() - start
    require(is_sinkless(adj, orientation, min_degree=2), "orientation has a sink")
    return {
        "n": len(adj),
        "m": len(orientation),
        "rounds": rounds,
        "solve_seconds": solve,
    }


def splitting_workload(
    seed: int,
    topology: str = "sparse",
    n: int = 500,
    degree: int = 40,
    eps: float = 0.25,
    method: str = "local",
) -> Dict[str, Any]:
    """Uniform splitting (Section 4.1) via the requested method."""
    adj = build_topology(topology, n, degree, seed=seed * 7919 + 3)
    spec = UniformSplittingSpec(eps=eps, min_constrained_degree=max(2, degree // 2))
    start = time.perf_counter()
    partition = uniform_splitting(adj, spec, method=method, seed=seed)
    solve = time.perf_counter() - start
    violations = uniform_splitting_violations(adj, partition, spec)
    require(not violations, f"splitting left {len(violations)} violated nodes")
    return {
        "n": len(adj),
        "constrained": sum(1 for a in adj if spec.constrains(len(a))),
        "violations": len(violations),
        "solve_seconds": solve,
    }


def engine_throughput_workload(
    seed: int, topology: str = "sparse", n: int = 10_000, degree: int = 20
) -> Dict[str, Any]:
    """Reference vs batched engine on Luby MIS over one fixed graph.

    This is the perf-trajectory metric CI tracks across PRs: both runners
    execute the identical simulation (outputs are asserted equal) and the
    speedup is their wall-clock ratio.
    """
    adj = build_topology(topology, n, degree, seed=seed * 7919 + 4)
    net = Network(adj)
    engine = CSREngine(net)

    start = time.perf_counter()
    reference = run_local(net, LubyMIS(), seed=seed)
    t_reference = time.perf_counter() - start

    start = time.perf_counter()
    fast = engine.run(LubyMIS(), seed=seed)
    t_engine = time.perf_counter() - start

    require(
        reference.outputs() == fast.outputs() and reference.rounds == fast.rounds,
        "engine diverged from reference",
    )
    return {
        "n": len(adj),
        "m": sum(len(a) for a in adj) // 2,
        "rounds": fast.rounds,
        "reference_seconds": t_reference,
        "engine_seconds": t_engine,
        "speedup": t_reference / t_engine if t_engine > 0 else 0.0,
    }
