"""Fault-tolerant sweep execution: timeouts, retries, self-healing, checkpoints.

The plain process-pool loop in :mod:`repro.exp.runner` treats a workload
*exception* as data, but the infrastructure itself had the same failure
modes the scenario registry injects into the simulated network:

* a **hung** trial (deadlock, pathological input) stalled ``run_sweep``
  forever — there was no per-task deadline;
* a worker **segfault / OOM-kill / os._exit** raised ``BrokenProcessPool``
  out of ``future.result()`` and lost every completed trial;
* **SIGINT** discarded the whole sweep because JSON was only written at
  the end.

This module is the trial-and-fix layer for the executor (the same
shape as the paper's sinkless-orientation pipeline: run, detect the
violated tasks, re-run only those):

* :class:`RetryPolicy` — bounded retry with exponential backoff plus
  jitter, attached per :class:`~repro.exp.runner.ExperimentSpec`; a task
  that exhausts its budget is *quarantined* (its final error is recorded
  as trial data) so one poison cell cannot loop forever.
* :class:`ResilientExecutor` — a throttled dispatcher over
  ``ProcessPoolExecutor`` (at most ``workers`` tasks in flight, so every
  pending future is actually running) with

  - **per-task deadlines**: an overdue task's pool is killed and rebuilt,
    the task is charged with ``error="Timeout: ..."``, and the collateral
    in-flight tasks are re-enqueued uncharged;
  - **pool self-healing**: on ``BrokenProcessPool`` the in-flight tasks
    become *suspects* and are re-run one at a time on a fresh pool
    (``solo`` mode), so the crash is attributed to exactly the task that
    kills the pool again — innocent co-scheduled tasks are exonerated
    without burning retry budget;
  - **graceful drain**: :meth:`ResilientExecutor.request_drain` (wired to
    SIGINT/SIGTERM by :func:`drain_on_signals`) stops dispatching, waits
    a bounded grace for in-flight tasks, and reports the unfinished
    remainder so the caller can write a failure manifest.

* torn-write-safe **checkpoint** helpers (:func:`append_checkpoint` /
  :func:`load_checkpoint`): every finished trial is one JSON line,
  a torn tail from a kill is sealed on the next append and skipped on
  load — the same sealing discipline as ``benchmarks/store.py``'s
  ``bench_history.jsonl``.

``run_sweep(checkpoint=..., resume=...)`` in :mod:`repro.exp.runner` is
the front door; :mod:`repro.exp.workloads`' ``chaos_*`` functions are the
proof harness (crash / hang / exit / flaky workloads the tests and the CI
chaos-smoke step throw at real pool workers).
"""

from __future__ import annotations

import json
import math
import os
import random
import signal
import sys
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.utils.validation import require

__all__ = [
    "RetryPolicy",
    "Task",
    "ResilientExecutor",
    "drain_on_signals",
    "append_checkpoint",
    "load_checkpoint",
    "CRASH_ERROR",
    "TIMEOUT_ERROR_PREFIX",
]

#: Error string recorded for a task whose worker died mid-execution.
CRASH_ERROR = "BrokenProcessPool: worker died mid-task"

#: Every timeout error starts with this (``retryable`` predicates match on it).
TIMEOUT_ERROR_PREFIX = "Timeout"


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff + jitter for transient failures.

    ``max_attempts`` counts *executions* (1 = no retry).  The delay before
    attempt ``k+1`` is ``min(base_delay * 2**(k-1), max_delay)`` plus a
    uniform jitter of up to ``jitter`` times that delay, so retry storms
    across concurrent tasks decorrelate.  ``retryable`` is a predicate on
    the error string (``None`` retries everything — including ``Timeout``
    and ``BrokenProcessPool`` failures, which arrive as ordinary error
    strings).  A task that fails ``max_attempts`` times is quarantined:
    its last error is recorded as trial data and it is never re-enqueued.
    """

    max_attempts: int = 3
    base_delay: float = 0.1
    max_delay: float = 30.0
    jitter: float = 0.25
    retryable: Optional[Callable[[str], bool]] = None

    def __post_init__(self) -> None:
        require(self.max_attempts >= 1, "max_attempts must be >= 1")
        require(self.base_delay >= 0, "base_delay must be >= 0")
        require(self.max_delay >= 0, "max_delay must be >= 0")
        require(self.jitter >= 0, "jitter must be >= 0")

    def is_retryable(self, error: str) -> bool:
        return True if self.retryable is None else bool(self.retryable(error))

    def delay(self, attempt: int, rng: random.Random) -> float:
        """Backoff before the next execution, given ``attempt`` failures so far."""
        base = min(self.base_delay * (2 ** max(attempt - 1, 0)), self.max_delay)
        if base <= 0:
            return 0.0
        return base + rng.uniform(0.0, base * self.jitter)


@dataclass
class Task:
    """One schedulable unit: a (spec, seed) trial or a (spec, seed-chunk) batch.

    ``seed`` holds an ``int`` for per-seed cells and a ``tuple`` of seeds
    for batched cells (the same dispatch convention as
    :meth:`repro.exp.runner.ExperimentSpec.trials`).
    """

    name: str
    fn: Callable[..., Any]
    params: Dict[str, Any]
    seed: Any
    timeout: Optional[float] = None
    retry: Optional[RetryPolicy] = None
    #: executions charged to this task (failures + the final outcome)
    attempts: int = 0
    #: monotonic time before which the task must not be dispatched (backoff)
    not_before: float = 0.0
    #: crash suspect: must run alone on a fresh pool for exact attribution
    solo: bool = False
    #: monotonic dispatch time of the current execution
    dispatched_at: float = field(default=0.0, repr=False)
    #: monotonic deadline of the current execution (inf when no timeout)
    deadline: float = field(default=math.inf, repr=False)

    def seeds(self) -> Tuple[int, ...]:
        return self.seed if isinstance(self.seed, tuple) else (self.seed,)


def _synth_failures(task: Task, error: str, elapsed: float) -> List[Any]:
    """Error :class:`TrialResult` rows for a task that never returned.

    Timeout and crash victims produce no worker-side result, so the parent
    synthesizes one failed row per seed (batch wall-clock split evenly,
    matching ``_run_batch``), each carrying a *copy* of the params dict.
    """
    from repro.exp.runner import TrialResult

    seeds = task.seeds()
    share = elapsed / max(len(seeds), 1)
    return [
        TrialResult(
            experiment=task.name,
            seed=s,
            params=dict(task.params),
            metrics={},
            elapsed=share,
            error=error,
            attempts=task.attempts,
        )
        for s in seeds
    ]


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Hard-stop a pool: SIGKILL the workers, then shut the plumbing down.

    ``shutdown()`` alone cannot reclaim a hung or wedged worker — the
    worker never returns to the call queue — so the processes are killed
    first and the executor's management thread then observes the death and
    winds itself down.  Safe to call on an already-broken pool.
    """
    procs = list((getattr(pool, "_processes", None) or {}).values())
    for proc in procs:
        try:
            proc.kill()
        except Exception:  # noqa: BLE001 - already-dead workers are fine
            pass
    try:
        pool.shutdown(wait=False, cancel_futures=True)
    except Exception:  # noqa: BLE001 - a broken pool may refuse politely
        pass
    for proc in procs:
        try:
            proc.join(timeout=2.0)
        except Exception:  # noqa: BLE001
            pass


class ResilientExecutor:
    """Throttled, self-healing process-pool scheduler for sweep tasks.

    ``on_result`` is invoked in the parent, in completion order, once per
    finalized :class:`~repro.exp.runner.TrialResult` — the caller uses it
    for progress reporting and incremental checkpointing.  :meth:`run`
    returns ``(unfinished_tasks, drain_reason)``; ``unfinished_tasks`` is
    empty unless a drain was requested.

    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`, optional)
    receives the executor's lifecycle counters under the ``executor.``
    prefix — dispatches, timeouts, pool rebuilds, crashes, retries,
    quarantines, drain requests — so a sweep's infrastructure behaviour is
    part of its recorded result, not just its logs.
    """

    #: upper bound on one ``wait()`` so drain requests are noticed promptly
    _POLL_SECONDS = 0.5

    def __init__(
        self,
        tasks: List[Task],
        workers: int,
        on_result: Callable[[Any], None],
        drain_grace: float = 5.0,
        metrics=None,
    ) -> None:
        require(workers >= 1, "pooled execution needs workers >= 1")
        self.queue: deque = deque(tasks)
        self.workers = int(workers)
        self.on_result = on_result
        self.drain_grace = float(drain_grace)
        self.in_flight: Dict[Any, Task] = {}
        self.drain_reason: Optional[str] = None
        self.metrics = metrics
        self._draining = False
        self._pool_rebuilds = 0
        self._rng = random.Random(0x5EED_F00D)

    def _count(self, name: str, amount: int = 1) -> None:
        if self.metrics is not None:
            self.metrics.counter(name).inc(amount)

    # -- public control ----------------------------------------------------

    def request_drain(self, reason: str) -> None:
        """Stop dispatching; collect what finishes within the grace period."""
        if self.drain_reason is None:
            self.drain_reason = reason
            self._count("executor.drains")

    @property
    def pool_rebuilds(self) -> int:
        """How many times the pool was killed and respawned (observability)."""
        return self._pool_rebuilds

    # -- scheduling --------------------------------------------------------

    def _new_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.workers)

    def _rebuild(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        _kill_pool(pool)
        self._pool_rebuilds += 1
        self._count("executor.pool_rebuilds")
        return self._new_pool()

    def _submit(self, pool: ProcessPoolExecutor, task: Task) -> None:
        from repro.exp.runner import _run_batch, _run_trial

        runner = _run_batch if isinstance(task.seed, tuple) else _run_trial
        task.dispatched_at = time.monotonic()
        task.deadline = (
            task.dispatched_at + task.timeout if task.timeout else math.inf
        )
        future = pool.submit(runner, task.name, task.fn, task.params, task.seed)
        self.in_flight[future] = task
        self._count("executor.dispatches")

    def _dispatch(self, pool: ProcessPoolExecutor) -> None:
        if self.drain_reason is not None:
            return
        now = time.monotonic()
        if any(t.solo for t in self.in_flight.values()):
            return  # a suspect owns the pool until its verdict is in
        if any(t.solo and t.not_before <= now for t in self.queue):
            if self.in_flight:
                return  # let the pool empty, then run the suspect alone
            task = next(t for t in self.queue if t.solo and t.not_before <= now)
            self.queue.remove(task)
            self._submit(pool, task)
            return
        while len(self.in_flight) < self.workers:
            task = next(
                (t for t in self.queue if not t.solo and t.not_before <= now), None
            )
            if task is None:
                break
            self.queue.remove(task)
            self._submit(pool, task)

    def _wait_timeout(self) -> float:
        """Sleep bound: next deadline, next backoff expiry, or the poll cap."""
        now = time.monotonic()
        bound = self._POLL_SECONDS
        for task in self.in_flight.values():
            if task.deadline < math.inf:
                bound = min(bound, task.deadline - now)
        for task in self.queue:
            if task.not_before > now:
                bound = min(bound, task.not_before - now)
        return max(bound, 0.01)

    # -- outcome handling --------------------------------------------------

    def _finalize(self, task: Task, results: List[Any]) -> None:
        for result in results:
            result.attempts = task.attempts
            self.on_result(result)

    def _requeue(self, task: Task, delay: float = 0.0) -> None:
        task.not_before = time.monotonic() + delay
        self.queue.append(task)

    def _failed(self, task: Task, error: str, results: Optional[List[Any]] = None) -> None:
        """Charge one failed execution; retry within budget or quarantine."""
        task.attempts += 1
        policy = task.retry
        if (
            policy is not None
            and not self._draining
            and task.attempts < policy.max_attempts
            and policy.is_retryable(error)
        ):
            self._count("executor.retries")
            self._requeue(task, policy.delay(task.attempts, self._rng))
            return
        if policy is not None and task.attempts >= policy.max_attempts:
            self._count("executor.quarantines")
        elapsed = time.monotonic() - task.dispatched_at if task.dispatched_at else 0.0
        if results is None:
            results = _synth_failures(task, error, elapsed)
        self._finalize(task, results)

    def _completed(self, task: Task, outcome: Any) -> None:
        """A future returned normally; the workload may still have failed."""
        results = outcome if isinstance(outcome, list) else [outcome]
        error = next((r.error for r in results if r.error), None)
        if error is not None:
            self._failed(task, error, results)
            return
        task.attempts += 1
        task.solo = False
        self._finalize(task, results)

    def _heal(self, pool: ProcessPoolExecutor, suspects: List[Task]) -> ProcessPoolExecutor:
        """The pool broke: attribute the crash, or isolate the suspects.

        A lone suspect (single in-flight task, or a task already running
        solo) is definitively guilty and is charged.  With several
        co-scheduled suspects nobody is charged yet: each is re-enqueued in
        ``solo`` mode, to be re-run alone on a fresh pool — whichever kills
        the pool again is the poison task; the others complete and are
        exonerated.
        """
        suspects.extend(self.in_flight.values())
        self.in_flight.clear()
        if len(suspects) == 1 or any(t.solo for t in suspects):
            for task in suspects:
                self._count("executor.crashes")
                self._failed(task, CRASH_ERROR)
        else:
            for task in suspects:
                task.solo = True
                self._requeue(task)
        return self._rebuild(pool)

    def _check_deadlines(self, pool: ProcessPoolExecutor) -> ProcessPoolExecutor:
        now = time.monotonic()
        overdue = [f for f, t in self.in_flight.items() if now >= t.deadline]
        if not overdue:
            return pool
        for future in overdue:
            task = self.in_flight.pop(future)
            self._count("executor.timeouts")
            self._failed(
                task,
                f"{TIMEOUT_ERROR_PREFIX}: exceeded {task.timeout:.6g}s deadline",
            )
        # Collateral in-flight tasks die with the pool but are innocent:
        # re-enqueue them uncharged (solo flags survive).
        for task in self.in_flight.values():
            self._requeue(task)
        self.in_flight.clear()
        return self._rebuild(pool)

    # -- main loop ---------------------------------------------------------

    def run(self) -> Tuple[List[Task], Optional[str]]:
        pool = self._new_pool()
        broken_at_exit = False
        try:
            while (self.queue or self.in_flight) and self.drain_reason is None:
                self._dispatch(pool)
                if not self.in_flight:
                    # Everything runnable is backing off; sleep to the
                    # nearest expiry (interruptible by signals).
                    time.sleep(min(self._wait_timeout(), 0.25))
                    continue
                done, _ = wait(
                    set(self.in_flight),
                    timeout=self._wait_timeout(),
                    return_when=FIRST_COMPLETED,
                )
                suspects: List[Task] = []
                for future in done:
                    task = self.in_flight.pop(future)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        suspects.append(task)
                        continue
                    except Exception as exc:  # noqa: BLE001 - e.g. unpicklable return
                        self._failed(task, f"{type(exc).__name__}: {exc}")
                        continue
                    self._completed(task, outcome)
                if suspects:
                    pool = self._heal(pool, suspects)
                    continue
                pool = self._check_deadlines(pool)

            if self.drain_reason is not None and self.in_flight:
                self._draining = True
                broken_at_exit = not self._drain_grace_wait()
        finally:
            unfinished = list(self.in_flight.values()) + list(self.queue)
            self.in_flight.clear()
            self.queue.clear()
            if unfinished or broken_at_exit:
                _kill_pool(pool)
            else:
                pool.shutdown(wait=True)
        return unfinished, self.drain_reason

    def _drain_grace_wait(self) -> bool:
        """Collect in-flight finishers for up to ``drain_grace`` seconds.

        Returns False if the pool broke during the drain (caller must kill
        it); tasks still in flight afterwards stay in ``self.in_flight``
        and are reported as unfinished.
        """
        deadline = time.monotonic() + self.drain_grace
        while self.in_flight:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return True
            done, _ = wait(
                set(self.in_flight),
                timeout=min(remaining, self._POLL_SECONDS),
                return_when=FIRST_COMPLETED,
            )
            for future in done:
                task = self.in_flight.pop(future)
                try:
                    outcome = future.result()
                except BrokenProcessPool:
                    return False
                except Exception as exc:  # noqa: BLE001
                    self._failed(task, f"{type(exc).__name__}: {exc}")
                    continue
                self._completed(task, outcome)
        return True


@contextmanager
def drain_on_signals(executor: ResilientExecutor, enabled: bool = True):
    """Route SIGINT/SIGTERM to a graceful drain while the executor runs.

    First signal: request a drain (stop dispatching, collect what's done).
    Second signal: raise ``KeyboardInterrupt`` immediately.  Handlers are
    only installed from the main thread (Python forbids otherwise) and are
    always restored on exit.
    """
    if not enabled or threading.current_thread() is not threading.main_thread():
        yield
        return
    seen = {"count": 0}

    def handler(signum, frame):  # noqa: ARG001 - signal handler signature
        seen["count"] += 1
        if seen["count"] > 1:
            raise KeyboardInterrupt
        executor.request_drain(signal.Signals(signum).name)

    previous = {}
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic platforms
            pass
    try:
        yield
    finally:
        for sig, old in previous.items():
            signal.signal(sig, old)


# -- checkpoint I/O --------------------------------------------------------


def append_checkpoint(path, results: List[Any]) -> None:
    """Append finished trials to a ``trials.jsonl`` checkpoint, torn-write safe.

    Same discipline as ``benchmarks/store.py``: if a previous kill left a
    truncated trailing line, seal it with a newline first (the fragment is
    skipped, with a warning, at load time), then write one JSON line per
    trial and fsync — a SIGKILL mid-append loses at most the row being
    written, never an earlier one.
    """
    path = Path(path)
    needs_newline = False
    if path.exists() and path.stat().st_size:
        with path.open("rb") as fh:
            fh.seek(-1, 2)
            needs_newline = fh.read(1) != b"\n"
    with path.open("a") as fh:
        if needs_newline:
            fh.write("\n")
        for result in results:
            fh.write(json.dumps(result.to_dict(), sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def load_checkpoint(path) -> List[Any]:
    """All :class:`TrialResult` rows of a checkpoint (empty for no file).

    Corrupt lines (the torn tail of a killed run) are skipped with a
    warning; when the same ``(experiment, seed)`` appears more than once —
    a checkpoint that accumulated across resumes — the *last* row wins.
    """
    from repro.exp.runner import TrialResult

    path = Path(path)
    if not path.exists():
        return []
    by_key: Dict[Tuple[str, Any], Any] = {}
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
                result = TrialResult.from_dict(row)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                print(
                    f"resilient: skipping corrupt checkpoint line {lineno} of {path}",
                    file=sys.stderr,
                )
                continue
            by_key[(result.experiment, result.seed)] = result
    return list(by_key.values())
