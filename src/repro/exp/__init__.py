"""Multi-seed experiment sweeps: specs, process-pool runner, aggregation.

The paper's measured claims are all statements about *distributions* —
round counts w.h.p., validity rates, decay trajectories — so every serious
experiment is a sweep over seeds (and usually over scenario parameters
too).  This package factors that pattern out of the ad-hoc benchmark
scripts:

* :class:`~repro.exp.runner.ExperimentSpec` names a workload function and
  the parameter/seed grid to fan out;
* :func:`~repro.exp.runner.run_sweep` executes the fan-out on a process
  pool (or inline), timing every trial and collecting metrics;
* :func:`~repro.exp.runner.aggregate` reduces per-seed metrics to
  mean/std/min/max summaries;
* :mod:`~repro.exp.workloads` holds the picklable workload functions
  (Luby MIS, sinkless orientation, uniform splitting, engine-vs-reference
  throughput) over the scenario topologies in
  :mod:`repro.bipartite.generators` — plus the ``chaos_*`` fault workloads
  that crash, hang, exit, or flake on purpose;
* :mod:`~repro.exp.resilient` is the fault-tolerant execution layer:
  :class:`~repro.exp.resilient.RetryPolicy` backoff, per-task timeouts,
  pool self-healing on worker death, torn-write-safe ``trials.jsonl``
  checkpoints, and graceful SIGINT/SIGTERM drain.

``benchmarks/run_experiments.py`` is the command-line face of this
package and writes the machine-readable ``BENCH_<date>.json`` consumed by
CI.
"""

from repro.exp.resilient import (
    RetryPolicy,
    append_checkpoint,
    load_checkpoint,
)
from repro.exp.runner import (
    ExperimentSpec,
    SweepResult,
    TrialResult,
    aggregate,
    run_sweep,
)

__all__ = [
    "ExperimentSpec",
    "TrialResult",
    "SweepResult",
    "RetryPolicy",
    "run_sweep",
    "aggregate",
    "append_checkpoint",
    "load_checkpoint",
]
