"""Degree–Rank Reductions I and II (Sections 2.2 and 2.3).

Both reductions iterate the directed degree splitting substrate
(Theorem 2.3) to shrink the instance while keeping enough left-side degree
for the basic algorithm to finish the job:

* **Reduction I** orients all edges of the bipartite graph itself and keeps
  only edges directed from ``U`` toward ``V``.  One iteration roughly halves
  both the left degrees and the rank; Lemma 2.4 gives the trajectories
  ``δ_k > ((1−ε)/2)^k δ − 2`` and ``r_k < ((1+ε)/2)^k r + 3``.

* **Reduction II** never lets a variable node lose more than half of its
  edges (so the rank reaches exactly 1 after ``⌈log r⌉`` iterations, Lemma
  2.6): every variable ``v`` pairs up its neighbors; each pair becomes an
  edge of an auxiliary multigraph ``G`` on ``U``; a directed degree
  splitting of ``G`` decides, per pair, which of the two constraint nodes
  keeps its edge to ``v`` (the tail keeps, the head loses).  A variable of
  degree ``d`` keeps exactly ``⌈d/2⌉`` edges.

Both functions return the reduced instance, a map from its edges back to the
original instance's edge ids, and a :class:`ReductionTrace` recording the
per-iteration parameters — the raw material for experiment E3/E5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.bipartite.instance import BipartiteInstance
from repro.local.ledger import RoundLedger
from repro.orientation.degree_splitting import directed_degree_splitting
from repro.orientation.multigraph import Multigraph
from repro.utils.validation import require, require_positive

__all__ = [
    "ReductionTrace",
    "degree_rank_reduction_one",
    "degree_rank_reduction_two",
    "lemma_24_delta_lower_bound",
    "lemma_24_rank_upper_bound",
]


@dataclass
class ReductionTrace:
    """Per-iteration parameter trajectory of a degree–rank reduction.

    ``deltas[i]``/``ranks[i]``/``Deltas[i]``/``edge_counts[i]`` describe the
    instance *after* ``i`` iterations (index 0 = the input instance).
    """

    deltas: List[int] = field(default_factory=list)
    Deltas: List[int] = field(default_factory=list)
    ranks: List[int] = field(default_factory=list)
    edge_counts: List[int] = field(default_factory=list)

    def record(self, inst: BipartiteInstance) -> None:
        """Append the current instance's parameters."""
        s = inst.stats()
        self.deltas.append(s.delta)
        self.Deltas.append(s.Delta)
        self.ranks.append(s.rank)
        self.edge_counts.append(s.n_edges)

    @property
    def iterations(self) -> int:
        """Number of completed iterations."""
        return len(self.deltas) - 1


def lemma_24_delta_lower_bound(delta: int, eps: float, k: int) -> float:
    """Lemma 2.4: ``δ_k > ((1 − ε)/2)^k · δ − 2``."""
    return ((1.0 - eps) / 2.0) ** k * delta - 2.0


def lemma_24_rank_upper_bound(rank: int, eps: float, k: int) -> float:
    """Lemma 2.4: ``r_k < ((1 + ε)/2)^k · r + 3`` (for ε < 1/3)."""
    return ((1.0 + eps) / 2.0) ** k * rank + 3.0


def degree_rank_reduction_one(
    inst: BipartiteInstance,
    eps: float,
    iterations: int,
    ledger: Optional[RoundLedger] = None,
    randomized: bool = False,
    engine: str = "eulerian",
    seed: int = 0,
) -> Tuple[BipartiteInstance, List[int], ReductionTrace]:
    """Run ``iterations`` rounds of Degree–Rank Reduction I.

    Each iteration computes a directed degree splitting of the current
    bipartite (multi)graph — viewing each bipartite edge as a multigraph edge
    between its two endpoints — with discrepancy ``ε·d(v) + 2`` at *every*
    node of ``U ∪ V``, then keeps exactly the edges oriented from ``U``
    toward ``V``.

    Returns ``(reduced, edge_map, trace)`` where ``edge_map[j]`` is the
    original edge id of the reduced instance's edge ``j``.
    """
    require_positive(eps, "eps")
    require(iterations >= 0, f"iterations must be >= 0, got {iterations}")
    n = max(2, inst.n)
    current = inst
    # Map from current-instance edge ids to original-instance edge ids.
    edge_map = list(range(inst.n_edges))
    trace = ReductionTrace()
    trace.record(current)
    for it in range(iterations):
        mg = Multigraph(
            current.n_left + current.n_right,
            [(u, current.n_left + v) for (u, v) in current.edges],
        )
        split = directed_degree_splitting(
            mg,
            eps,
            n,
            ledger=ledger,
            randomized=randomized,
            engine=engine,
            seed=(seed, it).__hash__(),
            label=f"reduction-I/iter-{it}",
        )
        # Multigraph edge e points U -> V iff its head is the V-side node.
        keep = [
            e
            for e in range(current.n_edges)
            if split.orientation.head(e) >= current.n_left
        ]
        current, kept_ids = current.subgraph(keep)
        edge_map = [edge_map[e] for e in kept_ids]
        trace.record(current)
    return current, edge_map, trace


def degree_rank_reduction_two(
    inst: BipartiteInstance,
    eps: float,
    iterations: int,
    ledger: Optional[RoundLedger] = None,
    randomized: bool = False,
    engine: str = "eulerian",
    seed: int = 0,
) -> Tuple[BipartiteInstance, List[int], ReductionTrace]:
    """Run ``iterations`` rounds of Degree–Rank Reduction II.

    Per iteration, each variable ``v`` groups its neighbors
    ``u_1, …, u_d`` into pairs ``(u_1, u_2), (u_3, u_4), …`` (an odd
    leftover neighbor is untouched and keeps its edge).  The auxiliary
    multigraph ``G`` on ``U`` has one edge per pair, whose *corresponding
    node* is ``v``; after a directed degree splitting of ``G``, for a pair
    edge directed ``u → ū`` the bipartite edge ``{ū, v}`` is deleted (the
    head loses).  Consequently every variable keeps ``⌈d/2⌉`` of its ``d``
    edges — the rank can never drop below 1 (Lemma 2.6) — and every
    constraint loses only its in-degree in ``G``, i.e. at most
    ``(deg_G(u) + ε·deg_G(u) + 2)/2`` edges.
    """
    require_positive(eps, "eps")
    require(iterations >= 0, f"iterations must be >= 0, got {iterations}")
    n = max(2, inst.n)
    current = inst
    edge_map = list(range(inst.n_edges))
    trace = ReductionTrace()
    trace.record(current)
    for it in range(iterations):
        # Build the auxiliary multigraph: one node per U-node, one edge per
        # neighbor pair of each variable.  For pair edge g we remember which
        # bipartite edge each endpoint would lose if it were the head.
        pair_edges: List[Tuple[int, int]] = []
        loss_at: List[Tuple[int, int]] = []  # (edge lost if tail-side head, if other head)
        for v in range(current.n_right):
            inc = current.right_inc[v]
            for i in range(0, len(inc) - 1, 2):
                e1, e2 = inc[i], inc[i + 1]
                u1 = current.edges[e1][0]
                u2 = current.edges[e2][0]
                pair_edges.append((u1, u2))
                loss_at.append((e1, e2))
        mg = Multigraph(current.n_left, pair_edges)
        split = directed_degree_splitting(
            mg,
            eps,
            n,
            ledger=ledger,
            randomized=randomized,
            engine=engine,
            seed=(seed, it, "II").__hash__(),
            label=f"reduction-II/iter-{it}",
        )
        drop = set()
        for g in range(len(pair_edges)):
            u1, u2 = pair_edges[g]
            e1, e2 = loss_at[g]
            if u1 == u2:
                # A self-pair (v has the same constraint twice, possible in
                # auxiliary multi-instances): drop one copy arbitrarily —
                # u keeps the other, matching the head-loses rule.
                drop.add(e2)
                continue
            head = split.orientation.head(g)
            drop.add(e2 if head == u2 else e1)
        current, kept_ids = current.without_edges(drop)
        edge_map = [edge_map[e] for e in kept_ids]
        trace.record(current)
    return current, edge_map, trace
