"""Section 5 — weak splitting in girth >= 10 bipartite graphs.

Lemma 5.1: on a girth >= 10 instance with δ >= c√(ln n) and ∆ >= c' ln r,
one execution of the shattering algorithm leaves a residual instance ``H``
with ``δ_H >= 6 · r_H`` w.h.p.  The girth enters through independence: two
neighbors ``u, ū`` of a variable ``v`` have disjoint 3-hop neighborhoods
apart from ``v`` itself (a shared node would close a cycle of length <= 8),
so the events "u is satisfied" are independent conditioned on ``v`` staying
uncolored, and a Chernoff-style tail bounds the number of unsatisfied
neighbors of ``v`` — i.e. ``r_H`` — by δ/24, while δ_H >= δ/4 as always.

Theorem 5.2 (deterministic, O(∆²r² + poly log n) rounds): derandomize the
1-round shattering into an SLOCAL(4) algorithm ([GHK16, Thm III.1]) executed
via a coloring of ``B⁴`` ([GHK17a, Prop. 3.2], O(∆²r²) colors/rounds), then
run Theorem 2.7 on ``H``.  Our implementation realizes the schedule with
actual randomness plus verification-and-retry (Las Vegas) — the [GHK16]
derandomization of the 4-radius checkable event family has no closed-form
estimator, and the substitution preserves both the output guarantee (a
residual with δ_H >= 6 r_H) and the round accounting, which we charge
explicitly as the ``B⁴``-coloring + conversion cost.  See DESIGN.md §2.3.

Theorem 5.3 (randomized, O(∆²r² + poly log(∆ r log n)) rounds): shattering,
then Theorem 2.7 on each residual *component* (size poly(∆, r, log n)
w.h.p.) in parallel.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.core.low_rank import low_rank_weak_splitting
from repro.core.shattering import ShatteringOutcome, shatter
from repro.core.verifiers import is_weak_splitting
from repro.local.complexity import power_graph_coloring_rounds, slocal_conversion_rounds
from repro.local.ledger import RoundLedger
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "high_girth_weak_splitting",
    "shatter_until_low_rank",
]


def shatter_until_low_rank(
    inst: BipartiteInstance,
    seed: SeedLike = None,
    ledger: Optional[RoundLedger] = None,
    max_attempts: int = 32,
    rank_factor: int = 6,
) -> ShatteringOutcome:
    """Shatter until the residual satisfies δ_H >= ``rank_factor`` · r_H.

    Lemma 5.1 guarantees one attempt suffices w.h.p. in the theorem's
    parameter regime; the retry loop makes the guarantee Las-Vegas exact.
    Constraints isolated in the residual (degree 0 — they are unsatisfied
    but kept no uncolored neighbor, impossible per the uncoloring rule
    unless their degree was 0 to begin with) fail the attempt.
    """
    rng = ensure_rng(seed)
    last: Optional[ShatteringOutcome] = None
    for _ in range(max_attempts):
        outcome = shatter(inst, seed=rng.getrandbits(62), ledger=ledger)
        res = outcome.residual
        if res.n_left == 0:
            return outcome
        delta_h = min(res.left_degree(u) for u in range(res.n_left))
        # Accept when Theorem 2.7 applies to the residual: either the full
        # δ_H >= 6 r_H regime, or the already-reduced r_H <= 1 end state
        # (where δ_H >= 2 suffices; see low_rank_weak_splitting).
        if res.rank <= 1 and delta_h >= 2:
            return outcome
        if res.rank and delta_h >= rank_factor * res.rank:
            return outcome
        last = outcome
    raise RuntimeError(
        f"shattering never reached delta_H >= {rank_factor} r_H in "
        f"{max_attempts} attempts (last residual: {last.residual if last else None}); "
        "the instance is outside the Lemma 5.1 regime"
    )


def high_girth_weak_splitting(
    inst: BipartiteInstance,
    seed: SeedLike = None,
    ledger: Optional[RoundLedger] = None,
    deterministic: bool = True,
    verify_girth: bool = False,
) -> Coloring:
    """Weak splitting for girth >= 10 instances (Theorems 5.2 / 5.3).

    Parameters
    ----------
    deterministic:
        True runs the Theorem 5.2 pipeline: global residual, Theorem 2.7
        with deterministic substrate charges, plus the derandomization's
        ``B⁴``-coloring round charge ``O(∆²r²)``.  False runs Theorem 5.3:
        per-component Theorem 2.7 with randomized substrate charges,
        parallel (max) component accounting.
    verify_girth:
        Optionally assert the girth >= 10 precondition (O(n·m), off by
        default for large instances).

    The result is a verified weak splitting of ``inst``.
    """
    if verify_girth:
        from repro.bipartite.girth import bipartite_girth

        g = bipartite_girth(inst)
        require(g is None or g >= 10, f"girth {g} < 10")

    rng = ensure_rng(seed)
    if ledger is not None and deterministic:
        # Theorem 5.2's derandomization schedule: color B^4 (degree <= ∆²r²)
        # and run the SLOCAL(4) shattering color class by color class.
        power_degree = (inst.Delta * inst.rank) ** 2
        ledger.charge(
            power_graph_coloring_rounds(power_degree, inst.n), "B^4-coloring"
        )
        ledger.charge(
            slocal_conversion_rounds(max(1, power_degree), radius=4),
            "slocal(4)-shattering",
        )

    outcome = shatter_until_low_rank(inst, seed=rng.getrandbits(62), ledger=ledger)
    coloring: Coloring = list(outcome.partial)
    res = outcome.residual

    if deterministic:
        if res.n_right:
            sub_coloring = low_rank_weak_splitting(
                res, ledger=ledger, randomized=False, n_override=max(2, inst.n)
            )
            for i, c in enumerate(sub_coloring):
                coloring[outcome.residual_right_ids[i]] = c
    else:
        component_ledgers: List[RoundLedger] = []
        for lefts, rights, eids in res.connected_components():
            comp, _lmap, rmap = res.induced_component(lefts, rights, eids)
            comp_ledger = RoundLedger()
            if comp.n_right:
                sub_coloring = low_rank_weak_splitting(
                    comp,
                    ledger=comp_ledger,
                    randomized=True,
                    seed=rng.getrandbits(62),
                    n_override=max(2, comp.n),
                )
                inv_rmap = {i: v for v, i in rmap.items()}
                for i, c in enumerate(sub_coloring):
                    coloring[outcome.residual_right_ids[inv_rmap[i]]] = c
            component_ledgers.append(comp_ledger)
        if ledger is not None:
            ledger.charge_parallel(component_ledgers, "residual-components")

    coloring = [c if c is not None else RED for c in coloring]
    require(is_weak_splitting(inst, coloring), "high-girth pipeline produced an invalid splitting")
    return coloring
