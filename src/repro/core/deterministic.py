"""Theorem 2.5 (= Theorem 1.1) — the main deterministic weak splitting result.

Given an instance with δ >= 2 log n, compute a weak splitting in

    O( r/δ · log² n  +  log³ n · (log log n)^1.1 )   rounds.

Algorithm (following the proof verbatim):

* If δ <= 48 log n, run Lemma 2.2 directly — O(r · log n) = O(r/δ · log² n).
* Otherwise set ``k = ⌊log(δ / (12 log n))⌋`` and ``ε = min(1/k, 1/3)``, run
  ``k`` iterations of Degree–Rank Reduction I to obtain ``B̄`` with
  ``r_B̄ <= 24e · (r/δ) log n + 3`` and ``δ_B̄ >= 12 log n − 2 >= 2 log n``,
  then finish with Lemma 2.2 on ``B̄`` (whose coloring is a weak splitting of
  ``B``, since reduction only deletes edges of ``U``-nodes and the property
  survives adding them back).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.core.problems import (
    theorem_25_iterations,
    theorem_25_trim_threshold,
    weak_splitting_min_degree,
)
from repro.core.reduction import degree_rank_reduction_one
from repro.core.trim import trimmed_weak_splitting
from repro.derand.conditional import DerandomizationError
from repro.local.ledger import RoundLedger

__all__ = ["deterministic_weak_splitting"]


def deterministic_weak_splitting(
    inst: BipartiteInstance,
    ledger: Optional[RoundLedger] = None,
    strict: bool = True,
    n_override: Optional[int] = None,
    engine: str = "eulerian",
    randomized_substrate: bool = False,
) -> Coloring:
    """Compute a weak splitting via Theorem 2.5.

    Parameters
    ----------
    inst:
        The instance; requires δ >= 2 log n under ``strict`` (the theorem's
        precondition).
    ledger:
        Round ledger receiving the reduction iterations' Theorem 2.3 charges
        and the final Lemma 2.2 cost.
    n_override:
        The ambient network size when ``inst`` is a component of a larger
        graph (Theorem 1.2 applies this theorem to residual components whose
        ``n_H`` is much smaller than ``n``; thresholds then use ``n_H``, the
        component size, which is exactly this parameter's default).
    engine / randomized_substrate:
        Forwarded to the degree-splitting substrate (ablation hooks); the
        randomized substrate variant is what Theorem 2.7's randomized branch
        uses.

    Returns a complete coloring of ``V`` that weakly splits ``inst``.
    """
    n = max(2, n_override if n_override is not None else inst.n)
    delta = inst.delta
    if strict and inst.n_left and delta < weak_splitting_min_degree(n):
        raise DerandomizationError(
            f"Theorem 2.5 precondition violated: delta={delta} < "
            f"2 log n = {weak_splitting_min_degree(n):.2f}"
        )
    if not inst.n_left or not inst.n_right:
        return [0] * inst.n_right

    if delta <= theorem_25_trim_threshold(n):
        return trimmed_weak_splitting(inst, ledger=ledger, strict=strict, n_override=n)

    k = theorem_25_iterations(delta, n)
    eps = min(1.0 / k, 1.0 / 3.0) if k >= 1 else 1.0 / 3.0
    reduced, _edge_map, _trace = degree_rank_reduction_one(
        inst,
        eps=eps,
        iterations=k,
        ledger=ledger,
        randomized=randomized_substrate,
        engine=engine,
    )
    # Lemma 2.4 with these parameters guarantees delta_k >= 12 log n - 2 >=
    # 2 log n (for n >= 4); the strict call below re-checks it concretely.
    return trimmed_weak_splitting(reduced, ledger=ledger, strict=strict, n_override=n)
