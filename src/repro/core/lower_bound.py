"""Section 2.5 — the lower bound via reduction from sinkless orientation.

Theorem 2.10 / Figure 1: given a graph ``G`` with minimum degree >= 5, build
a weak splitting instance ``B`` whose left nodes are the nodes of ``G`` and
whose right nodes are the edges of ``G``:

* if at least half of ``u``'s neighbors have larger IDs, connect ``u`` to
  (the right node of) every incident edge toward a larger-ID neighbor;
* otherwise connect ``u`` to every incident edge toward a smaller-ID
  neighbor.

``B`` has rank <= 2 and left degree >= ⌈δ_G/2⌉ >= 3.  Any weak splitting of
``B`` yields a sinkless orientation of ``G``: orient red edges from the
smaller toward the larger ID, blue edges the other way.  A "larger-side"
node then has a red edge to a larger neighbor — outgoing — and a
"smaller-side" node has a blue edge to a smaller neighbor — also outgoing.
So an ``o(log_∆ log n)``-round weak splitting algorithm would contradict the
[BFH+16] sinkless-orientation lower bound; [CKP16]'s speedup lifts it to
``Ω(log_∆ n)`` deterministic (Corollary 2.11).

This module builds the reduction, converts colorings to orientations, and
exposes the lower-bound round formulas used by experiment E9.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.orientation.sinkless import GraphOrientation
from repro.utils.validation import require

__all__ = [
    "weak_splitting_instance_from_graph",
    "orientation_from_weak_splitting",
    "randomized_lower_bound_rounds",
    "deterministic_lower_bound_rounds",
]


def weak_splitting_instance_from_graph(
    adj: Sequence[Sequence[int]],
    ids: Optional[Sequence[int]] = None,
) -> Tuple[BipartiteInstance, List[Tuple[int, int]]]:
    """Build the Figure 1 reduction instance.

    Parameters
    ----------
    adj:
        Adjacency lists of ``G``; the reduction is meaningful for minimum
        degree >= 5 (left degree then >= 3), but the construction itself
        works whenever every node has at least one eligible edge.
    ids:
        Node identifiers used for the larger/smaller comparison; defaults to
        the node indices (the LOCAL model's IDs).

    Returns ``(instance, edge_list)`` where ``edge_list[j]`` is the
    ``(a, b)``-pair (with ``a < b``) of ``G`` represented by right node
    ``j``.
    """
    n = len(adj)
    if ids is None:
        ids = list(range(n))
    require(len(set(ids)) == n, "ids must be unique")

    edge_index: Dict[Tuple[int, int], int] = {}
    edge_list: List[Tuple[int, int]] = []
    for u in range(n):
        for v in adj[u]:
            key = (min(u, v), max(u, v))
            if key not in edge_index:
                edge_index[key] = len(edge_list)
                edge_list.append(key)

    bip_edges: List[Tuple[int, int]] = []
    for u in range(n):
        larger = [v for v in adj[u] if ids[v] > ids[u]]
        chosen = larger if 2 * len(larger) >= len(adj[u]) else [
            v for v in adj[u] if ids[v] < ids[u]
        ]
        for v in chosen:
            bip_edges.append((u, edge_index[(min(u, v), max(u, v))]))
    inst = BipartiteInstance(n, len(edge_list), bip_edges)
    return inst, edge_list


def orientation_from_weak_splitting(
    edge_list: Sequence[Tuple[int, int]],
    coloring: Coloring,
    ids: Optional[Sequence[int]] = None,
) -> GraphOrientation:
    """Convert a weak splitting of the reduction instance to an orientation.

    Red edge -> from the smaller-ID endpoint to the larger; blue edge -> the
    reverse; an uncolored right node (impossible for a complete weak
    splitting) raises.
    """
    orientation: GraphOrientation = {}
    for j, (a, b) in enumerate(edge_list):
        c = coloring[j]
        require(c in (RED, BLUE), f"edge node {j} has invalid color {c!r}")
        ida = ids[a] if ids is not None else a
        idb = ids[b] if ids is not None else b
        lo, hi = (a, b) if ida < idb else (b, a)
        if c == RED:
            orientation[(lo, hi)] = True
        else:
            orientation[(hi, lo)] = True
    return orientation


def randomized_lower_bound_rounds(Delta: int, n: int) -> float:
    """Theorem 2.10: ``Ω(log_∆ log n)`` rounds randomized (constant 1)."""
    require(Delta >= 2 and n >= 4, "need Delta >= 2 and n >= 4")
    return math.log(math.log(n, 2), Delta)


def deterministic_lower_bound_rounds(Delta: int, n: int) -> float:
    """Corollary 2.11: ``Ω(log_∆ n)`` rounds deterministic (constant 1)."""
    require(Delta >= 2 and n >= 2, "need Delta >= 2 and n >= 2")
    return math.log(n, Delta)
