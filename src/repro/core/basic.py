"""Lemma 2.1 — the basic deterministic weak splitting algorithm.

Pipeline (exactly the lemma's proof):

1. The randomized 0-round algorithm (uniform red/blue per variable) fails at
   constraint ``u`` with probability ``2 · 2^{-deg(u)} <= 2/n²`` when
   δ >= 2 log n; the union bound over ``|U| < n`` constraints leaves success
   probability > 0, so the [GHK16, Thm III.1] derandomization applies: the
   method of conditional expectations with the exact failure estimator
   (:class:`~repro.derand.estimators.WeakSplittingEstimator`) yields an
   SLOCAL(2) algorithm that never fails.
2. [GHK17a, Prop. 3.2] converts the SLOCAL(2) algorithm to LOCAL given a
   coloring of ``B²``; since ``Δ(B²) <= ∆·r``, the [BEK14a] coloring uses
   ``O(∆·r)`` colors and ``O(∆·r + log* n)`` rounds, for a total runtime of
   ``O(∆·r)`` (as ``∆ >= δ >= 2 log n`` dominates ``log* n``).

The implementation performs both steps concretely: it colors the actual
power graph ``B²``, processes variables color class by color class, and
charges the corresponding rounds on the ledger.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.coloring.distance import distance_coloring
from repro.core.problems import weak_splitting_min_degree
from repro.derand.conditional import DerandomizationError, greedy_minimize
from repro.derand.estimators import WeakSplittingEstimator
from repro.local.complexity import slocal_conversion_rounds
from repro.local.ledger import RoundLedger

__all__ = ["basic_weak_splitting"]


def _bipartite_adjacency(inst: BipartiteInstance) -> List[List[int]]:
    """Adjacency of B as one graph: left u -> u, right v -> n_left + v."""
    adj: List[List[int]] = [[] for _ in range(inst.n_left + inst.n_right)]
    for u, v in inst.edges:
        adj[u].append(inst.n_left + v)
        adj[inst.n_left + v].append(u)
    return adj


def processing_order(
    inst: BipartiteInstance, ledger: Optional[RoundLedger] = None
) -> Tuple[List[int], int]:
    """The LOCAL-legal processing order for SLOCAL(2) algorithms on ``B``.

    Colors ``B²`` (charging the [BEK14a] rounds) and returns the variable
    nodes sorted by (power-graph color, id) together with the number of
    colors used.  Variables in the same class are pairwise at distance > 2,
    so they share no constraint node and may decide simultaneously — this is
    the [GHK17a, Prop. 3.2] schedule.
    """
    adj = _bipartite_adjacency(inst)
    colors, num_colors = distance_coloring(adj, 2, ledger=ledger, label="B^2-coloring")
    right_offset = inst.n_left
    order = sorted(
        range(inst.n_right), key=lambda v: (colors[right_offset + v], v)
    )
    return order, num_colors


def basic_weak_splitting(
    inst: BipartiteInstance,
    ledger: Optional[RoundLedger] = None,
    strict: bool = True,
    order: Optional[Sequence[int]] = None,
    n_override: Optional[int] = None,
) -> Coloring:
    """Compute a weak splitting via Lemma 2.1.

    Parameters
    ----------
    inst:
        The instance; with ``strict=True`` (default) requires δ >= 2 log n —
        the Lemma 2.1 precondition — and raises
        :class:`~repro.derand.conditional.DerandomizationError` otherwise.
    ledger:
        Optional round ledger; receives the ``B²``-coloring charge and the
        SLOCAL-conversion charge (``O(∆·r)`` in total).
    order:
        Override the processing order (used by reductions that already own a
        power-graph coloring, e.g. the Theorem 3.2 hardness direction).
    n_override:
        The ambient network size when ``inst`` is a trimmed/reduced subgraph
        of a larger network — the Lemma 2.1 threshold ``2 log n`` then uses
        this ``n``.  Note the estimator's own certificate (its initial value
        being < 1) is checked against the *actual* instance either way, so
        correctness never rests on the override.

    Returns a complete red/blue coloring that satisfies *every* constraint
    of positive degree... more precisely every constraint the estimator
    certifies, which under the precondition is all of them.
    """
    if strict:
        needed = weak_splitting_min_degree(max(2, n_override if n_override is not None else inst.n))
        if inst.n_left and inst.delta < needed:
            raise DerandomizationError(
                f"Lemma 2.1 precondition violated: delta={inst.delta} < "
                f"2 log n = {needed:.2f}"
            )
    if order is None:
        order, num_colors = processing_order(inst, ledger=ledger)
        if ledger is not None:
            ledger.charge(
                slocal_conversion_rounds(num_colors, radius=2), "slocal-conversion"
            )
    estimator = WeakSplittingEstimator(inst)
    return greedy_minimize(estimator, order, strict=strict)
