"""Lemma 2.2 — weak splitting in O(r · log n) via degree trimming.

If δ > 2 log n, every constraint node deletes arbitrary incident edges until
exactly ``δ' = ⌈2 log n⌉`` remain.  Lemma 2.1 on the trimmed graph ``H``
costs ``O(δ' · r) = O(r log n)`` rounds, and the computed coloring is a weak
splitting of the original graph because the weak splitting property is
preserved under adding edges back.
"""

from __future__ import annotations

import math
from typing import Optional

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.bipartite.transforms import trim_left_degrees
from repro.core.basic import basic_weak_splitting
from repro.core.problems import weak_splitting_min_degree
from repro.derand.conditional import DerandomizationError
from repro.local.ledger import RoundLedger
from repro.utils.mathx import log2

__all__ = ["trimmed_weak_splitting"]


def trimmed_weak_splitting(
    inst: BipartiteInstance,
    ledger: Optional[RoundLedger] = None,
    strict: bool = True,
    n_override: Optional[int] = None,
) -> Coloring:
    """Compute a weak splitting via Lemma 2.2.

    ``n_override`` lets callers that run this on a *subgraph* of a larger
    network (e.g. Theorem 2.5 after the degree–rank reduction, or Theorem 1.2
    on residual components) keep the trim target tied to the relevant ``n``.
    The returned coloring is valid for ``inst`` itself (trimming only removes
    constraints' edges, and the coloring covers all of ``V``).
    """
    n = n_override if n_override is not None else inst.n
    n = max(2, n)
    target = math.ceil(weak_splitting_min_degree(n))
    if strict and inst.n_left and inst.delta < target:
        raise DerandomizationError(
            f"Lemma 2.2 precondition violated: delta={inst.delta} < "
            f"ceil(2 log n) = {target}"
        )
    trimmed, _edge_map = trim_left_degrees(inst, target)
    # Trimming is a purely local zero-round operation; only Lemma 2.1 on the
    # trimmed graph costs rounds (its Δ·r is now δ'·r = O(r log n)).
    return basic_weak_splitting(trimmed, ledger=ledger, strict=strict, n_override=n)
