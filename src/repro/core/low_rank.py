"""Theorem 2.7 — weak splitting when δ >= 6r.

In the low-rank regime the problem is solvable in poly log n rounds
deterministically (and poly log log n randomized) *without* any requirement
that δ = Ω(log n):

* If δ >= 2 log n, Theorem 2.5 (deterministic) or the 0-round random
  coloring (randomized) already applies.
* Otherwise run ``⌈log r⌉`` iterations of Degree–Rank Reduction II with
  accuracy ``ε = 1/(10·∆)``: the auxiliary discrepancy then satisfies
  ``ε·deg_G(u) < 1``, so every constraint loses at most
  ``deg/2 + 1`` edges per iteration while the rank halves exactly
  (``r_{k+1} = ⌈r_k / 2⌉``).  After ``⌈log r⌉`` iterations the rank is 1 and
  — thanks to δ >= 6r — every constraint still has degree >= 2.  Rank 1
  means no two constraints share a variable, so each constraint simply
  colors one of its private variables red and another blue.

The randomized variant differs only in which degree-splitting round formula
is charged (Theorem 2.3's randomized ``log log n`` tail) and in using the
0-round algorithm / Theorem 1.2 for the high-degree regimes, mirroring the
proof's case analysis.
"""

from __future__ import annotations

import math
from typing import List, Optional

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.core.deterministic import deterministic_weak_splitting
from repro.core.problems import weak_splitting_min_degree
from repro.core.reduction import degree_rank_reduction_two
from repro.local.ledger import RoundLedger
from repro.utils.mathx import ceil_log2
from repro.utils.validation import require

__all__ = ["low_rank_weak_splitting", "rank_one_weak_splitting"]


def rank_one_weak_splitting(inst: BipartiteInstance) -> Coloring:
    """Solve a rank <= 1 instance whose constraints all have degree >= 2.

    With rank 1 every variable has at most one constraint neighbor, so the
    constraints' neighborhoods are disjoint: each constraint colors its
    first remaining variable red, its second blue, the rest alternately.
    Unconstrained variables default to red.
    """
    require(inst.rank <= 1, f"rank_one solver needs rank <= 1, got {inst.rank}")
    coloring: List[Optional[int]] = [None] * inst.n_right
    for u in range(inst.n_left):
        neighbors = inst.left_neighbors(u)
        require(
            len(neighbors) >= 2 or not neighbors,
            f"constraint {u} has degree 1 at rank 1 — instance unsolvable",
        )
        for i, v in enumerate(neighbors):
            coloring[v] = RED if i % 2 == 0 else BLUE
    return [c if c is not None else RED for c in coloring]


def low_rank_weak_splitting(
    inst: BipartiteInstance,
    ledger: Optional[RoundLedger] = None,
    randomized: bool = False,
    seed: int = 0,
    n_override: Optional[int] = None,
    engine: str = "eulerian",
) -> Coloring:
    """Compute a weak splitting via Theorem 2.7 (requires δ >= 6r).

    ``randomized`` selects the poly log log n branch of the theorem: the
    degree-splitting substrate is charged its randomized runtime and the
    δ >= 2 log n case is handled by the 0-round random coloring (Las Vegas:
    verified, retried — failure probability <= 2/n per attempt).
    """
    n = max(2, n_override if n_override is not None else inst.n)
    delta, r = inst.delta, inst.rank
    if not inst.n_left or not inst.n_right:
        return [RED] * inst.n_right
    if r <= 1:
        # Rank <= 1 is the reduction's own end state: constraints have
        # pairwise-disjoint neighborhoods and δ >= 2 suffices outright
        # (Theorem 2.7's δ >= 6r is only needed to survive ⌈log r⌉ halvings).
        return rank_one_weak_splitting(inst)
    require(delta >= 6 * r, f"Theorem 2.7 needs delta >= 6r, got delta={delta}, r={r}")

    if delta >= weak_splitting_min_degree(n):
        if not randomized:
            return deterministic_weak_splitting(
                inst, ledger=ledger, n_override=n, engine=engine
            )
        return _zero_round_random(inst, ledger=ledger, seed=seed)

    # delta < 2 log n: pure degree–rank reduction II down to rank 1.
    eps = 1.0 / (10.0 * max(1, inst.Delta))
    k = ceil_log2(max(2, r)) if r > 1 else 1
    reduced, _edge_map, trace = degree_rank_reduction_two(
        inst,
        eps=eps,
        iterations=k,
        ledger=ledger,
        randomized=randomized,
        engine=engine,
        seed=seed,
    )
    require(
        reduced.rank <= 1,
        f"reduction II left rank {reduced.rank} > 1 after {k} iterations",
    )
    require(
        reduced.delta >= 2,
        f"reduction II left delta {reduced.delta} < 2 — theorem invariant broken",
    )
    return rank_one_weak_splitting(reduced)


def _zero_round_random(
    inst: BipartiteInstance,
    ledger: Optional[RoundLedger],
    seed: int,
    max_attempts: int = 64,
) -> Coloring:
    """The 0-round uniform red/blue coloring, Las-Vegas wrapped.

    Each attempt fails with probability <= 2/n when δ >= 2 log n (the union
    bound at the start of Section 2.1); verification is one round.  The
    expected number of attempts is 1 + o(1).
    """
    from repro.core.verifiers import is_weak_splitting
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed)
    for attempt in range(max_attempts):
        coloring: Coloring = [RED if rng.random() < 0.5 else BLUE for _ in range(inst.n_right)]
        if ledger is not None:
            ledger.charge_simulated(1, "zero-round-coloring+check")
        if is_weak_splitting(inst, coloring):
            return coloring
    raise RuntimeError(
        f"0-round random coloring failed {max_attempts} times; "
        "instance degree is far below the w.h.p. regime"
    )
