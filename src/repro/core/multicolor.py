"""Section 3 — the multicolor splitting variants and their completeness.

Two relaxations of weak splitting (Definitions 1.2 and 1.3) are shown to be
P-RLOCAL-complete.  Completeness has two directions, and both are
implemented:

* **Membership** (the problems are efficiently solvable): Theorems 3.2/3.3
  exhibit randomized 0-round processes whose failure probability union-bounds
  below 1, hence derandomize ([GHK16]) into SLOCAL(2) algorithms and run in
  LOCAL via a ``B²`` coloring.  :func:`weak_multicolor_splitting` and
  :func:`multicolor_splitting` perform exactly that (with randomized
  variants for comparison).

* **Hardness** (solving them lets you solve weak splitting): given a C-weak
  multicolor splitting, each constraint selects ``⌈2 log n⌉`` neighbors with
  pairwise distinct colors; keeping only those edges yields ``B'`` on which
  the given coloring is a proper partial coloring of ``B'²`` — precisely the
  fuel the SLOCAL→LOCAL conversion needs — so weak splitting on ``B'``
  (hence on ``B``) runs in ``O(C)`` more rounds
  (:func:`weak_splitting_from_multicolor`).  And a (C, λ)-multicolor
  splitting oracle boosts itself to per-color fraction ``1/(2 log n)`` in
  ``⌈log_{1/λ}(2 log n)⌉`` iterations via virtual constraint nodes
  (:func:`boost_multicolor_splitting`), at which point every sufficiently
  large constraint must see at least ``2 log n`` distinct colors — a weak
  multicolor splitting (Theorem 3.3's reduction).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.core.basic import basic_weak_splitting
from repro.core.problems import (
    multicolor_threshold,
    weak_multicolor_required_colors,
)
from repro.derand.conditional import DerandomizationError, greedy_minimize
from repro.derand.estimators import MissingColorEstimator, OverloadEstimator
from repro.local.complexity import slocal_conversion_rounds
from repro.local.ledger import RoundLedger
from repro.utils.mathx import log2
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require, require_positive

__all__ = [
    "weak_multicolor_splitting",
    "multicolor_splitting",
    "weak_splitting_from_multicolor",
    "boost_multicolor_splitting",
    "select_rainbow_neighbors",
]


def weak_multicolor_splitting(
    inst: BipartiteInstance,
    n: Optional[int] = None,
    palette: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
    strict: bool = True,
    seed: SeedLike = None,
    randomized: bool = False,
) -> Coloring:
    """Solve C-weak multicolor splitting (Theorem 3.2's membership half).

    Variables choose among ``palette = ⌈2 log n⌉`` colors; the derandomized
    run (default) certifies every constraint sees *all* palette colors —
    which implies the Definition 1.3 requirement of >= 2 log n distinct
    colors.  ``randomized=True`` instead samples the 0-round process
    verbatim (no certificate; used by the experiments to measure its
    empirical failure rate).
    """
    if n is None:
        n = inst.n
    n = max(2, n)
    if palette is None:
        palette = weak_multicolor_required_colors(n)
    require(palette >= 2, f"palette must have >= 2 colors, got {palette}")

    if randomized:
        rng = ensure_rng(seed)
        if ledger is not None:
            ledger.charge_simulated(1, "0-round-multicolor")
        return [rng.randrange(palette) for _ in range(inst.n_right)]

    from repro.core.basic import processing_order

    order, num_colors = processing_order(inst, ledger=ledger)
    if ledger is not None:
        ledger.charge(slocal_conversion_rounds(num_colors, radius=2), "slocal-conversion")
    estimator = MissingColorEstimator(inst, palette)
    return greedy_minimize(estimator, order, strict=strict)


def multicolor_splitting(
    inst: BipartiteInstance,
    num_colors: int,
    lam: float,
    ledger: Optional[RoundLedger] = None,
    strict: bool = True,
    seed: SeedLike = None,
    randomized: bool = False,
) -> Coloring:
    """Solve (C, λ)-multicolor splitting (Theorem 3.3's membership half).

    Following the proof, the variables actually use
    ``C' = 3`` colors if λ >= 2/3 and ``C' = ⌈3/λ⌉ <= C`` otherwise; a
    coloring with fewer colors trivially also uses at most ``C`` colors.
    The derandomized run uses the Chernoff pessimistic estimator of
    Equation (2) and certifies no constraint exceeds ``⌈λ·deg(u)⌉``
    neighbors of any color.
    """
    require(num_colors >= 2, f"need C >= 2, got {num_colors}")
    require_positive(lam, "lam")
    require(lam >= 2.0 / num_colors, f"Definition 1.2 needs lam >= 2/C, got {lam}")
    c_prime = 3 if lam >= 2.0 / 3.0 else math.ceil(3.0 / lam)
    c_prime = min(c_prime, num_colors)

    if randomized:
        rng = ensure_rng(seed)
        if ledger is not None:
            ledger.charge_simulated(1, "0-round-(C,lam)")
        return [rng.randrange(c_prime) for _ in range(inst.n_right)]

    from repro.core.basic import processing_order

    order, pg_colors = processing_order(inst, ledger=ledger)
    if ledger is not None:
        ledger.charge(slocal_conversion_rounds(pg_colors, radius=2), "slocal-conversion")
    estimator = OverloadEstimator(inst, c_prime, lam)
    return greedy_minimize(estimator, order, strict=strict)


def select_rainbow_neighbors(
    inst: BipartiteInstance, coloring: Coloring, count: int
) -> Tuple[BipartiteInstance, List[int]]:
    """Per-constraint rainbow selection ``S(u)`` of the Theorem 3.2 reduction.

    Each constraint keeps ``count`` incident edges to neighbors with
    pairwise distinct colors (raises if some constraint cannot — i.e. the
    multicolor solution it was given is invalid).  Returns the kept-edge
    subgraph ``B'`` and its edge map.
    """
    keep: List[int] = []
    for u in range(inst.n_left):
        chosen_colors: Set[int] = set()
        chosen_edges: List[int] = []
        for e in inst.left_inc[u]:
            v = inst.edges[e][1]
            c = coloring[v]
            if c is not None and c not in chosen_colors:
                chosen_colors.add(c)
                chosen_edges.append(e)
                if len(chosen_edges) == count:
                    break
        require(
            len(chosen_edges) >= count,
            f"constraint {u} sees only {len(chosen_edges)} distinct colors "
            f"< required {count} — the multicolor splitting input is invalid",
        )
        keep.extend(chosen_edges)
    return inst.subgraph(keep)


def weak_splitting_from_multicolor(
    inst: BipartiteInstance,
    multicolor: Coloring,
    n: Optional[int] = None,
    ledger: Optional[RoundLedger] = None,
) -> Coloring:
    """Theorem 3.2's hardness direction: weak splitting from a C-weak
    multicolor splitting, in ``O(C)`` additional rounds.

    Builds ``B'`` by rainbow selection, checks that the given coloring is a
    proper partial coloring of ``B'²`` restricted to the variables (any two
    variables sharing a constraint in ``B'`` have distinct colors — true by
    construction), then runs the SLOCAL(2) weak splitting of Lemma 3.1 in
    color-class order.  The result weakly splits ``B'`` and therefore ``B``.
    """
    if n is None:
        n = inst.n
    n = max(2, n)
    count = weak_multicolor_required_colors(n)
    b_prime, _edge_map = select_rainbow_neighbors(inst, multicolor, count)

    # The multicolor classes are proper on B'^2 (variable side): verify.
    for u in range(b_prime.n_left):
        seen: Set[int] = set()
        for v in b_prime.left_neighbors(u):
            c = multicolor[v]
            require(c not in seen, "rainbow selection produced a color clash")
            seen.add(c)

    order = sorted(range(b_prime.n_right), key=lambda v: (multicolor[v], v))
    num_classes = len({multicolor[v] for v in range(b_prime.n_right)}) or 1
    if ledger is not None:
        ledger.charge(
            slocal_conversion_rounds(num_classes, radius=2),
            "weak-splitting-via-multicolor-classes",
        )
    # B' has delta = count = ceil(2 log n) >= 2 log n: Lemma 3.1 applies.
    return basic_weak_splitting(b_prime, ledger=None, strict=True, order=order)


def boost_multicolor_splitting(
    inst: BipartiteInstance,
    num_colors: int,
    lam: float,
    solver: Optional[Callable[[BipartiteInstance], Coloring]] = None,
    n: Optional[int] = None,
    alpha: float = 2.0,
    ledger: Optional[RoundLedger] = None,
    max_iterations: Optional[int] = None,
) -> Tuple[Coloring, int, int]:
    """Theorem 3.3's hardness direction: iterate a (C, λ) oracle until the
    per-color fraction drops to ``1/(2 log n)``.

    At iteration ``i``, every constraint ``u`` spawns one *virtual
    constraint* per color class of its neighborhood under the current
    combined coloring; virtual constraints of degree below ``α·λ·ln n`` are
    dropped (their class is already small enough and, by the floor, stays
    so).  The oracle — by default the Theorem 3.3 membership algorithm —
    splits each class into ``C`` sub-classes with per-color cap
    ``⌈λ·(class size)⌉``; combining old and new colors multiplies the
    palette by at most ``C`` and shrinks every large class by factor λ.

    Returns ``(coloring, palette_size, iterations)`` with every constraint
    guaranteed at most ``max(λ^i·deg(u), ~α·λ·ln n · (1+λ))`` neighbors per
    color, which for the theorem's degree regime means at least ``2 log n``
    distinct colors per constraint.
    """
    require(0 < lam < 1, f"boosting needs 0 < lam < 1, got {lam}")
    if n is None:
        n = inst.n
    n = max(2, n)
    if solver is None:
        def solver(sub: BipartiteInstance) -> Coloring:
            return multicolor_splitting(sub, num_colors, lam, ledger=ledger, strict=False)

    target_fraction = 1.0 / (2.0 * log2(n))
    iterations = max_iterations
    if iterations is None:
        iterations = math.ceil(math.log(2.0 * log2(n)) / math.log(1.0 / lam))
    min_virtual_degree = alpha * lam * math.log(n)

    combined: List[Tuple[int, ...]] = [(0,) for _ in range(inst.n_right)]
    for _it in range(iterations):
        # Group each constraint's edges by current combined color.
        virtual_edges: List[Tuple[int, int]] = []
        n_virtual = 0
        for u in range(inst.n_left):
            classes: Dict[Tuple[int, ...], List[int]] = {}
            for v in inst.left_neighbors(u):
                classes.setdefault(combined[v], []).append(v)
            for _color, members in sorted(classes.items()):
                if len(members) < min_virtual_degree:
                    continue
                vid = n_virtual
                n_virtual += 1
                for v in members:
                    virtual_edges.append((vid, v))
        if n_virtual == 0:
            break
        sub = BipartiteInstance(n_virtual, inst.n_right, virtual_edges, allow_multi=True)
        new_colors = solver(sub)
        combined = [
            combined[v] + (new_colors[v] if new_colors[v] is not None else 0,)
            for v in range(inst.n_right)
        ]

    palette: Dict[Tuple[int, ...], int] = {}
    flat: Coloring = []
    for v in range(inst.n_right):
        flat.append(palette.setdefault(combined[v], len(palette)))
    return flat, len(palette), iterations
