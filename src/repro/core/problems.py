"""Problem definitions and the paper's parameter thresholds.

Centralizes, in executable form, every numeric precondition the paper
attaches to its problems and theorems, so that algorithms, verifiers, tests
and instance generators all agree on the constants:

* Definition 1.1 (weak splitting) — solvability needs every constraint degree
  >= 2; the derandomized algorithms need δ >= 2 log n (Lemma 2.1).
* Definition 1.3 (C-weak multicolor splitting) — a constraint is *bound* by
  the problem only if ``deg(u) >= 2 (log n + 1) ln n``; bound constraints
  must see at least ``2 log n`` distinct colors, and the coloring may use
  ``C >= 2 log n`` colors.
* Definition 1.2 ((C, λ)-multicolor splitting) — every constraint must have
  at most ``⌈λ · deg(u)⌉`` neighbors of each color; requires ``λ >= 2/C``
  for solvability in general.
* Theorem 2.5's regime split at ``48 log n`` and its iteration count
  ``k = ⌊log(δ / (12 log n))⌋``.
* Section 4.1's uniform splitting — a red/blue partition where each node of
  degree ``d >= ∆/2`` has between ``(1/2 − ε) d`` and ``(1/2 + ε) d``
  neighbors on each side.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.utils.mathx import log2, ln
from repro.utils.validation import require, require_positive

__all__ = [
    "weak_splitting_min_degree",
    "theorem_25_trim_threshold",
    "theorem_25_iterations",
    "weak_multicolor_bound_degree",
    "weak_multicolor_required_colors",
    "multicolor_threshold",
    "randomized_min_degree",
    "high_girth_min_degree",
    "UniformSplittingSpec",
]


def weak_splitting_min_degree(n: int) -> float:
    """Lemma 2.1 / Lemma 3.1 precondition: δ >= 2 log n."""
    require(n >= 2, f"n must be >= 2, got {n}")
    return 2.0 * log2(n)


def theorem_25_trim_threshold(n: int) -> float:
    """Theorem 2.5's case split: δ <= 48 log n uses Lemma 2.2 directly."""
    require(n >= 2, f"n must be >= 2, got {n}")
    return 48.0 * log2(n)


def theorem_25_iterations(delta: int, n: int) -> int:
    """Theorem 2.5's reduction count ``k = ⌊log(δ / (12 log n))⌋``."""
    require(n >= 2, f"n must be >= 2, got {n}")
    require_positive(delta, "delta")
    ratio = delta / (12.0 * log2(n))
    require(ratio > 1, f"Theorem 2.5 needs δ > 12 log n for k >= 1, got ratio {ratio:.3f}")
    return int(math.floor(log2(ratio)))


def weak_multicolor_bound_degree(n: int) -> float:
    """Definition 1.3: constraints with deg >= 2 (log n + 1) ln n are bound."""
    require(n >= 2, f"n must be >= 2, got {n}")
    return 2.0 * (log2(n) + 1.0) * ln(n)


def weak_multicolor_required_colors(n: int) -> int:
    """Definition 1.3: bound constraints must see >= 2 log n distinct colors."""
    require(n >= 2, f"n must be >= 2, got {n}")
    return math.ceil(2.0 * log2(n))


def multicolor_threshold(degree: int, lam: float) -> int:
    """Definition 1.2: per-color cap ``⌈λ · deg(u)⌉``."""
    require(degree >= 0, "degree must be >= 0")
    require_positive(lam, "lam")
    return math.ceil(lam * degree)


def randomized_min_degree(r: int, n: int, c: float = 1.0) -> float:
    """Theorem 1.2 precondition: δ >= c · log(r log n)."""
    require(n >= 2 and r >= 1, "need n >= 2 and r >= 1")
    return c * log2(max(2.0, r * log2(n)))


def high_girth_min_degree(n: int, c: float = 2.0) -> float:
    """Theorem 5.2 precondition: δ >= c · √(ln n)."""
    require(n >= 2, f"n must be >= 2, got {n}")
    return c * math.sqrt(ln(n))


@dataclass(frozen=True)
class UniformSplittingSpec:
    """Parameters of the Section 4.1 uniform splitting problem.

    A node of degree ``d >= min_constrained_degree`` must end with between
    ``(1/2 − eps) d`` and ``(1/2 + eps) d`` neighbors in each color class;
    lower-degree nodes are unconstrained (the Remark in Section 4.1 shows
    the two formulations reduce to one another via clique gadgets).
    """

    eps: float
    min_constrained_degree: int

    def __post_init__(self) -> None:
        require(0 < self.eps < 0.5, f"eps must lie in (0, 1/2), got {self.eps}")
        require(self.min_constrained_degree >= 1, "min_constrained_degree must be >= 1")

    def lo(self, degree: int) -> float:
        """Minimum allowed same-class neighbor count for ``degree``."""
        return (0.5 - self.eps) * degree

    def hi(self, degree: int) -> float:
        """Maximum allowed same-class neighbor count for ``degree``."""
        return (0.5 + self.eps) * degree

    def constrains(self, degree: int) -> bool:
        """Whether a node of this degree is constrained at all."""
        return degree >= self.min_constrained_degree
