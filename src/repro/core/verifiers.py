"""Verifiers for every splitting problem in the paper.

All of the paper's problems are locally checkable (that is what makes them
amenable to the [GHK16] derandomization and the P-RLOCAL completeness
framework), so each verifier below is a direct transcription of the
corresponding definition.  Verifiers return the *list of violating
constraints* (empty = valid) so tests and experiments can report exactly
where a solution fails; boolean wrappers are provided for convenience.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.core.problems import (
    UniformSplittingSpec,
    multicolor_threshold,
    weak_multicolor_bound_degree,
    weak_multicolor_required_colors,
)
from repro.utils.validation import require

__all__ = [
    "weak_splitting_violations",
    "is_weak_splitting",
    "weak_multicolor_violations",
    "is_weak_multicolor_splitting",
    "multicolor_violations",
    "is_multicolor_splitting",
    "uniform_splitting_violations",
    "is_uniform_splitting",
]


def _colors_seen(inst: BipartiteInstance, coloring: Coloring, u: int) -> Set[int]:
    seen: Set[int] = set()
    for v in inst.left_neighbors(u):
        c = coloring[v]
        if c is not None:
            seen.add(c)
    return seen


def weak_splitting_violations(
    inst: BipartiteInstance,
    coloring: Coloring,
    min_degree: int = 1,
) -> List[int]:
    """Constraints violating Definition 1.1.

    A constraint ``u`` with ``deg(u) >= min_degree`` must have at least one
    red and one blue neighbor.  ``min_degree`` defaults to 1 (every non-
    isolated constraint is checked); pass the paper's degree bound to verify
    only the constraints an algorithm is accountable for (e.g. the
    "sufficiently large degree" form used in the completeness results).
    Uncolored neighbors never satisfy a constraint.
    """
    require(len(coloring) == inst.n_right, "coloring must cover all variable nodes")
    bad: List[int] = []
    for u in range(inst.n_left):
        if inst.left_degree(u) < min_degree:
            continue
        seen = _colors_seen(inst, coloring, u)
        if RED not in seen or BLUE not in seen:
            bad.append(u)
    return bad


def is_weak_splitting(
    inst: BipartiteInstance, coloring: Coloring, min_degree: int = 1
) -> bool:
    """Boolean form of :func:`weak_splitting_violations`."""
    return not weak_splitting_violations(inst, coloring, min_degree=min_degree)


def weak_multicolor_violations(
    inst: BipartiteInstance,
    coloring: Coloring,
    n: Optional[int] = None,
    required_colors: Optional[int] = None,
    bound_degree: Optional[float] = None,
) -> List[int]:
    """Constraints violating Definition 1.3 (C-weak multicolor splitting).

    A constraint with ``deg(u) >= 2 (log n + 1) ln n`` must see at least
    ``2 log n`` distinct colors.  ``n`` defaults to the instance size; the
    thresholds may be overridden for experiments probing the boundary.
    """
    require(len(coloring) == inst.n_right, "coloring must cover all variable nodes")
    if n is None:
        n = inst.n
    if bound_degree is None:
        bound_degree = weak_multicolor_bound_degree(n)
    if required_colors is None:
        required_colors = weak_multicolor_required_colors(n)
    bad: List[int] = []
    for u in range(inst.n_left):
        if inst.left_degree(u) < bound_degree:
            continue
        if len(_colors_seen(inst, coloring, u)) < required_colors:
            bad.append(u)
    return bad


def is_weak_multicolor_splitting(
    inst: BipartiteInstance,
    coloring: Coloring,
    n: Optional[int] = None,
    required_colors: Optional[int] = None,
    bound_degree: Optional[float] = None,
) -> bool:
    """Boolean form of :func:`weak_multicolor_violations`."""
    return not weak_multicolor_violations(
        inst, coloring, n=n, required_colors=required_colors, bound_degree=bound_degree
    )


def multicolor_violations(
    inst: BipartiteInstance,
    coloring: Coloring,
    num_colors: int,
    lam: float,
    min_degree: int = 1,
) -> List[int]:
    """Constraints violating Definition 1.2 ((C, λ)-multicolor splitting).

    Every constraint ``u`` with ``deg(u) >= min_degree`` may have at most
    ``⌈λ · deg(u)⌉`` neighbors of each color; all variables must be colored
    with a color in ``range(num_colors)``.
    """
    require(len(coloring) == inst.n_right, "coloring must cover all variable nodes")
    for v, c in enumerate(coloring):
        require(c is not None, f"variable {v} is uncolored")
        require(0 <= c < num_colors, f"variable {v} has out-of-palette color {c}")
    bad: List[int] = []
    for u in range(inst.n_left):
        d = inst.left_degree(u)
        if d < min_degree:
            continue
        cap = multicolor_threshold(d, lam)
        counts: dict = {}
        for v in inst.left_neighbors(u):
            counts[coloring[v]] = counts.get(coloring[v], 0) + 1
        if counts and max(counts.values()) > cap:
            bad.append(u)
    return bad


def is_multicolor_splitting(
    inst: BipartiteInstance,
    coloring: Coloring,
    num_colors: int,
    lam: float,
    min_degree: int = 1,
) -> bool:
    """Boolean form of :func:`multicolor_violations`."""
    return not multicolor_violations(
        inst, coloring, num_colors, lam, min_degree=min_degree
    )


def uniform_splitting_violations(
    adjacency: Sequence[Sequence[int]],
    partition: Sequence[Optional[int]],
    spec: UniformSplittingSpec,
) -> List[int]:
    """Nodes violating the Section 4.1 uniform splitting requirement.

    ``partition[v]`` is RED/BLUE.  A node ``v`` with
    ``spec.constrains(deg(v))`` must have its red neighbor count within
    ``[spec.lo(d), spec.hi(d)]`` (and hence its blue count too).
    """
    n = len(adjacency)
    require(len(partition) == n, "partition must cover all nodes")
    bad: List[int] = []
    for v in range(n):
        d = len(adjacency[v])
        if not spec.constrains(d):
            continue
        red = sum(1 for w in adjacency[v] if partition[w] == RED)
        if not (spec.lo(d) <= red <= spec.hi(d)):
            bad.append(v)
    return bad


def is_uniform_splitting(
    adjacency: Sequence[Sequence[int]],
    partition: Sequence[Optional[int]],
    spec: UniformSplittingSpec,
) -> bool:
    """Boolean form of :func:`uniform_splitting_violations`."""
    return not uniform_splitting_violations(adjacency, partition, spec)
