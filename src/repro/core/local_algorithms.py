"""The paper's constant-round randomized phases as genuine LOCAL algorithms.

Most of this library computes the randomized constant-round phases
(0-round coloring, shattering) centrally with per-node private coins — an
exactly output-equivalent shortcut, since those phases use no communication
beyond announcing choices.  This module implements the same phases as
*bona fide* :class:`~repro.local.network.LocalAlgorithm` subclasses that
run inside the synchronous message simulator, and the test suite asserts
output equivalence with the central implementations.  They also serve as
reference material for how the paper's algorithms map onto the model:

* :class:`ZeroRoundColoring` — Section 2.1's 0-round algorithm plus the
  1-round validity check (each constraint reports whether it sees both
  colors), 2 simulated rounds total.
* :class:`ShatteringLocal` — the Section 2.4 shattering: round 1 announces
  tentative colors, round 2 broadcasts uncolor commands, round 3 lets
  constraints evaluate satisfaction.  3 simulated rounds.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.local.network import (
    NO_BROADCAST,
    LocalAlgorithm,
    Network,
    NodeView,
    RoundHooks,
    run_local,
)

__all__ = [
    "ZeroRoundColoring",
    "ShatteringLocal",
    "run_zero_round_coloring",
    "run_shattering_local",
]


def _is_left(view: NodeView, n_left: int) -> bool:
    """Simulator node indices 0..n_left-1 are constraint (U) nodes."""
    return view.index < n_left


class ZeroRoundColoring(LocalAlgorithm):
    """Uniform red/blue per variable + a one-round satisfaction check.

    Round 1: every variable announces its coin to its constraints.
    Round 2: every constraint tells the simulator (via its output) whether
    it saw both colors.  Variables output their color after round 1.
    """

    def __init__(self, n_left: int) -> None:
        self.n_left = n_left

    def init(self, view: NodeView) -> None:
        if not _is_left(view, self.n_left):
            view.state["color"] = RED if view.rng.random() < 0.5 else BLUE

    def broadcast(self, view: NodeView, round_no: int) -> Any:
        if round_no == 1 and not _is_left(view, self.n_left):
            return view.state["color"]
        return NO_BROADCAST

    def send(self, view: NodeView, round_no: int) -> Dict[int, Any]:
        if round_no == 1 and not _is_left(view, self.n_left):
            return {p: view.state["color"] for p in range(view.degree)}
        return {}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, Any]) -> None:
        if round_no != 1:
            return
        if _is_left(view, self.n_left):
            seen = set(inbox.values())
            view.output = ("satisfied", RED in seen and BLUE in seen)
        else:
            view.output = ("color", view.state["color"])
        view.halted = True


class ShatteringLocal(LocalAlgorithm):
    """The two-phase shattering algorithm, message by message.

    Round 1: variables draw red (1/4) / blue (1/4) / uncolored (1/2) and
    announce the choice.  Round 2: every constraint with > 3/4 colored
    neighbors sends ``uncolor`` to all of them; variables receiving any
    ``uncolor`` drop their color and announce the retraction.  Round 3:
    constraints re-evaluate and output satisfaction.
    """

    def __init__(self, n_left: int) -> None:
        self.n_left = n_left

    def init(self, view: NodeView) -> None:
        if not _is_left(view, self.n_left):
            coin = view.rng.random()
            if coin < 0.25:
                view.state["color"] = RED
            elif coin < 0.5:
                view.state["color"] = BLUE
            else:
                view.state["color"] = None

    def broadcast(self, view: NodeView, round_no: int) -> Any:
        # Every round of the protocol is a (conditional) broadcast; nodes
        # with nothing to say fall back to ``send``'s empty dict.
        left = _is_left(view, self.n_left)
        if round_no == 1 and not left:
            return ("tentative", view.state["color"])
        if round_no == 2 and left and view.state.get("fire"):
            return ("uncolor",)
        if round_no == 3 and not left:
            return ("final", view.state["color"])
        return NO_BROADCAST

    def send(self, view: NodeView, round_no: int) -> Dict[int, Any]:
        left = _is_left(view, self.n_left)
        if round_no == 1 and not left:
            return {p: ("tentative", view.state["color"]) for p in range(view.degree)}
        if round_no == 2 and left and view.state.get("fire"):
            return {p: ("uncolor",) for p in range(view.degree)}
        if round_no == 3 and not left:
            return {p: ("final", view.state["color"]) for p in range(view.degree)}
        return {}

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, Any]) -> None:
        left = _is_left(view, self.n_left)
        if round_no == 1 and left:
            colored = sum(1 for m in inbox.values() if m[1] is not None)
            view.state["fire"] = view.degree > 0 and colored > 0.75 * view.degree
            return
        if round_no == 2 and not left:
            if any(m == ("uncolor",) for m in inbox.values()):
                view.state["color"] = None
            return
        if round_no == 3:
            if left:
                seen = {m[1] for m in inbox.values()} - {None}
                view.output = ("satisfied", RED in seen and BLUE in seen)
            else:
                view.output = ("color", view.state["color"])
            view.halted = True


def run_zero_round_coloring(
    inst: BipartiteInstance, seed: int = 0, hooks: Optional[RoundHooks] = None
) -> Tuple[Coloring, List[bool], int]:
    """Run :class:`ZeroRoundColoring` in the simulator.

    ``hooks`` passes through to :func:`run_local` — e.g. a
    :class:`~repro.obs.hooks.TracingHooks` to record round-level trace
    records, or a scenario perturbation stack.

    Returns ``(coloring, satisfied flags per constraint, simulated rounds)``.
    """
    net = Network.from_bipartite(inst)
    result = run_local(
        net, ZeroRoundColoring(inst.n_left), max_rounds=5, seed=seed, hooks=hooks
    )
    coloring: Coloring = [
        result.views[inst.n_left + v].output[1] for v in range(inst.n_right)
    ]
    satisfied = [result.views[u].output[1] for u in range(inst.n_left)]
    return coloring, satisfied, result.rounds


def run_shattering_local(
    inst: BipartiteInstance, seed: int = 0, hooks: Optional[RoundHooks] = None
) -> Tuple[Coloring, List[bool], int]:
    """Run :class:`ShatteringLocal` in the simulator.

    ``hooks`` passes through to :func:`run_local` (tracing or perturbation
    stacks; see :func:`run_zero_round_coloring`).

    Returns ``(partial coloring, satisfied flags, simulated rounds)``.  A
    constraint's flag is True iff it sees both colors after the uncoloring
    phase — the complement of Section 2.4's "unsatisfied".
    """
    net = Network.from_bipartite(inst)
    result = run_local(
        net, ShatteringLocal(inst.n_left), max_rounds=6, seed=seed, hooks=hooks
    )
    coloring: Coloring = [
        result.views[inst.n_left + v].output[1] for v in range(inst.n_right)
    ]
    satisfied = [result.views[u].output[1] for u in range(inst.n_left)]
    return coloring, satisfied, result.rounds
