"""A façade that picks the right weak splitting algorithm per instance.

The paper's algorithms cover different parameter regimes; downstream users
(and the Section 4 applications) just want "solve this instance".  The
solver inspects (δ, ∆, r, n) and dispatches:

1. ``δ >= 6r``             → Theorem 2.7 (works for any δ).
2. ``δ >= 2 log n``        → Theorem 2.5 deterministic (or the 0-round
                             randomized shortcut when asked for speed).
3. ``δ >= c log(r log n)`` → Theorem 1.2 randomized.
4. otherwise               → no known poly log n algorithm exists — this is
                             exactly the open regime the paper's hardness
                             results live in; the solver raises
                             :class:`NoKnownAlgorithmError` (or brute-forces
                             tiny instances when ``allow_bruteforce``).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.core.deterministic import deterministic_weak_splitting
from repro.core.low_rank import low_rank_weak_splitting
from repro.core.problems import randomized_min_degree, weak_splitting_min_degree
from repro.core.randomized import randomized_weak_splitting
from repro.core.verifiers import is_weak_splitting
from repro.local.ledger import RoundLedger
from repro.utils.rng import SeedLike
from repro.utils.validation import require

__all__ = ["solve_weak_splitting", "NoKnownAlgorithmError"]


class NoKnownAlgorithmError(RuntimeError):
    """The instance falls outside every regime the paper covers.

    Whether such instances admit efficient deterministic algorithms is the
    open problem the paper orbits (weak splitting is P-RLOCAL-complete).
    """


def solve_weak_splitting(
    inst: BipartiteInstance,
    method: str = "auto",
    seed: SeedLike = 0,
    ledger: Optional[RoundLedger] = None,
    allow_bruteforce: bool = True,
    verify: bool = True,
) -> Coloring:
    """Solve weak splitting with the best applicable algorithm.

    ``method`` may be ``"auto"``, ``"low-rank"``, ``"deterministic"``,
    ``"randomized"``, ``"heuristic"`` or ``"bruteforce"`` to force a specific
    path (forcing a path whose precondition fails raises that algorithm's
    error).  ``"heuristic"`` runs the estimator greedy without a certificate
    over several shuffled orders and verifies — the pragmatic tool for
    instances in the paper's *hard* regime, such as the Section 2.5
    lower-bound constructions (rank 2, δ ≈ 3), where no efficient LOCAL
    algorithm is known (that being the theorem).  With ``verify`` (default)
    the returned coloring is checked against Definition 1.1 before being
    handed back.
    """
    require(
        all(inst.left_degree(u) >= 2 for u in range(inst.n_left)),
        "weak splitting is unsolvable: some constraint has degree < 2",
    )
    n = max(2, inst.n)
    delta, r = inst.delta, inst.rank

    if method == "auto":
        if inst.n_left == 0 or inst.n_right == 0:
            coloring: Coloring = [RED] * inst.n_right
        elif r and delta >= 6 * r:
            coloring = low_rank_weak_splitting(inst, ledger=ledger, seed=_as_int(seed))
        elif delta >= weak_splitting_min_degree(n):
            coloring = deterministic_weak_splitting(inst, ledger=ledger)
        elif delta >= randomized_min_degree(max(1, r), n):
            coloring = randomized_weak_splitting(inst, seed=seed, ledger=ledger)
        elif allow_bruteforce and inst.n_right <= 20:
            coloring = _bruteforce(inst, ledger=ledger)
        else:
            raise NoKnownAlgorithmError(
                f"no covered regime applies: delta={delta}, r={r}, n={n} "
                f"(need delta >= 6r, >= 2 log n = {weak_splitting_min_degree(n):.1f}, "
                f"or >= c log(r log n) = {randomized_min_degree(max(1, r), n):.1f})"
            )
    elif method == "low-rank":
        coloring = low_rank_weak_splitting(inst, ledger=ledger, seed=_as_int(seed))
    elif method == "deterministic":
        coloring = deterministic_weak_splitting(inst, ledger=ledger)
    elif method == "randomized":
        coloring = randomized_weak_splitting(inst, seed=seed, ledger=ledger)
    elif method == "heuristic":
        coloring = _heuristic(inst, seed=seed, ledger=ledger)
    elif method == "bruteforce":
        coloring = _bruteforce(inst, ledger=ledger)
    else:
        raise ValueError(f"unknown method {method!r}")

    if verify:
        require(is_weak_splitting(inst, coloring), "solver produced an invalid splitting")
    return coloring


def _heuristic(
    inst: BipartiteInstance,
    seed: SeedLike,
    ledger: Optional[RoundLedger],
    attempts: int = 32,
) -> Coloring:
    """Uncertified estimator greedy over shuffled orders, verified.

    The exact-martingale estimator makes greedy extremely effective even
    when its initial value exceeds 1 (no success certificate); we simply
    retry with fresh orders until the verifier accepts.  Used for instances
    in the open/hard regime — correctness is still guaranteed (by
    verification), only the round complexity isn't.
    """
    from repro.core.basic import basic_weak_splitting
    from repro.utils.rng import ensure_rng

    rng = ensure_rng(seed)
    order = list(range(inst.n_right))
    for _ in range(attempts):
        coloring = basic_weak_splitting(inst, ledger=ledger, strict=False, order=order)
        if is_weak_splitting(inst, coloring):
            return coloring
        rng.shuffle(order)
    if inst.n_right <= 20:
        return _bruteforce(inst, ledger=ledger)
    raise NoKnownAlgorithmError(
        f"heuristic greedy failed {attempts} times on a hard-regime instance "
        f"(delta={inst.delta}, r={inst.rank})"
    )


def _bruteforce(inst: BipartiteInstance, ledger: Optional[RoundLedger]) -> Coloring:
    """Exhaustive search (tiny instances only; exponential)."""
    require(inst.n_right <= 24, "bruteforce limited to 24 variables")
    for bits in itertools.product((RED, BLUE), repeat=inst.n_right):
        candidate = list(bits)
        if is_weak_splitting(inst, candidate):
            if ledger is not None:
                ledger.charge(inst.n, "bruteforce")
            return candidate
    raise NoKnownAlgorithmError("instance admits no weak splitting at all")


def _as_int(seed: SeedLike) -> int:
    if seed is None:
        return 0
    if isinstance(seed, int):
        return seed
    return seed.randrange(2**31)
