"""The shattering algorithm of Sections 2.4 and 5 (Lemma 2.9).

Coloring phase: every variable independently turns red with probability 1/4,
blue with probability 1/4, and stays uncolored otherwise.  Uncoloring phase:
every constraint with strictly more than 3/4 of its neighbors colored
uncolors *all* of its neighbors.  After these O(1) rounds a constraint is
*satisfied* if it already sees both a red and a blue neighbor; Lemma 2.9
shows the probability of being unsatisfied is at most ``e^{-η∆}`` (and at
most ``(e∆r)^{-8}``) once ∆ >= c log r, and the general shattering machinery
([GHK16, Thm V.1], restated as Theorem 2.8) then bounds the residual
components by ``O(∆⁴ r⁴ log n)`` constraint nodes w.h.p.

Two key structural facts the downstream algorithms rely on, both produced by
this module and asserted in tests:

* every constraint keeps at least 1/4 of its neighbors uncolored
  (δ_H >= δ/4) — an uncoloring-phase constraint fires only when > 3/4 of its
  neighbors are colored, in which case it uncolors everything, and a
  non-firing constraint has >= 1/4 uncolored neighbors by definition;
* the residual instance consists of the unsatisfied constraints and the
  uncolored variables, with the induced edges.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.local.ledger import RoundLedger
from repro.utils.rng import SeedLike, ensure_rng, node_rng

__all__ = ["ShatteringOutcome", "shatter", "unsatisfied_probability_estimate"]


@dataclass
class ShatteringOutcome:
    """Everything the shattering phase produces.

    ``partial`` holds RED/BLUE for variables that kept their color and None
    for uncolored ones.  ``unsatisfied`` lists constraint nodes that do not
    see both colors.  ``residual`` is the induced instance on unsatisfied
    constraints × uncolored variables, with maps back to original ids.
    """

    partial: Coloring
    unsatisfied: List[int]
    uncolored: List[int]
    residual: BipartiteInstance
    residual_left_ids: List[int]  #: residual left index -> original left id
    residual_right_ids: List[int]  #: residual right index -> original right id

    def residual_component_sizes(self) -> List[int]:
        """Total node count (left + right) of each residual component."""
        return [
            len(lefts) + len(rights)
            for lefts, rights, _ in self.residual.connected_components()
        ]


def shatter(
    inst: BipartiteInstance,
    seed: SeedLike = None,
    ledger: Optional[RoundLedger] = None,
) -> ShatteringOutcome:
    """Run the two-phase shattering algorithm once.

    Charges O(1) simulated rounds: one for the coloring announcement and one
    for the uncoloring broadcast (the paper counts this as "O(1) rounds
    including the uncoloring").
    """
    rng = ensure_rng(seed)
    master = rng.getrandbits(63)

    # Coloring phase — private coins per variable.
    tentative: List[Optional[int]] = []
    for v in range(inst.n_right):
        coin = node_rng(master, v, "shatter").random()
        if coin < 0.25:
            tentative.append(RED)
        elif coin < 0.5:
            tentative.append(BLUE)
        else:
            tentative.append(None)

    # Uncoloring phase — constraints with > 3/4 colored neighbors fire.
    uncolor: Set[int] = set()
    for u in range(inst.n_left):
        neighbors = inst.left_neighbors(u)
        if not neighbors:
            continue
        colored = sum(1 for v in neighbors if tentative[v] is not None)
        if colored > 0.75 * len(neighbors):
            uncolor.update(neighbors)
    partial: Coloring = [
        None if v in uncolor else tentative[v] for v in range(inst.n_right)
    ]

    if ledger is not None:
        ledger.charge_simulated(2, "shattering")

    unsatisfied: List[int] = []
    for u in range(inst.n_left):
        seen = {partial[v] for v in inst.left_neighbors(u)} - {None}
        if not (RED in seen and BLUE in seen):
            unsatisfied.append(u)
    uncolored = [v for v in range(inst.n_right) if partial[v] is None]

    un_set = set(unsatisfied)
    unc_set = set(uncolored)
    keep_edges = [
        e
        for e, (u, v) in enumerate(inst.edges)
        if u in un_set and v in unc_set
    ]
    left_map = {u: i for i, u in enumerate(unsatisfied)}
    right_map = {v: i for i, v in enumerate(uncolored)}
    residual = BipartiteInstance(
        len(unsatisfied),
        len(uncolored),
        [(left_map[inst.edges[e][0]], right_map[inst.edges[e][1]]) for e in keep_edges],
        allow_multi=True,
    )
    return ShatteringOutcome(
        partial=partial,
        unsatisfied=unsatisfied,
        uncolored=uncolored,
        residual=residual,
        residual_left_ids=unsatisfied,
        residual_right_ids=uncolored,
    )


def unsatisfied_probability_estimate(
    inst: BipartiteInstance,
    trials: int,
    seed: SeedLike = None,
) -> Tuple[float, List[int]]:
    """Monte-Carlo estimate of Pr[a constraint is unsatisfied] (Lemma 2.9).

    Returns ``(pooled estimate, per-trial unsatisfied counts)``; the pooled
    estimate averages the unsatisfied fraction over all trials, which is the
    quantity Lemma 2.9 bounds by ``e^{-η∆}``.
    """
    rng = ensure_rng(seed)
    counts: List[int] = []
    for _ in range(trials):
        outcome = shatter(inst, seed=rng.getrandbits(62))
        counts.append(len(outcome.unsatisfied))
    denom = trials * max(1, inst.n_left)
    return sum(counts) / denom, counts
