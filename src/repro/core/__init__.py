"""The paper's contribution: weak splitting algorithms, variants, reductions."""

from repro.core.basic import basic_weak_splitting
from repro.core.deterministic import deterministic_weak_splitting
from repro.core.high_girth import high_girth_weak_splitting, shatter_until_low_rank
from repro.core.local_algorithms import (
    ShatteringLocal,
    ZeroRoundColoring,
    run_shattering_local,
    run_zero_round_coloring,
)
from repro.core.low_rank import low_rank_weak_splitting, rank_one_weak_splitting
from repro.core.lower_bound import (
    deterministic_lower_bound_rounds,
    orientation_from_weak_splitting,
    randomized_lower_bound_rounds,
    weak_splitting_instance_from_graph,
)
from repro.core.multicolor import (
    boost_multicolor_splitting,
    multicolor_splitting,
    select_rainbow_neighbors,
    weak_multicolor_splitting,
    weak_splitting_from_multicolor,
)
from repro.core.problems import (
    UniformSplittingSpec,
    multicolor_threshold,
    randomized_min_degree,
    theorem_25_iterations,
    theorem_25_trim_threshold,
    weak_multicolor_bound_degree,
    weak_multicolor_required_colors,
    weak_splitting_min_degree,
)
from repro.core.randomized import randomized_weak_splitting, solve_component
from repro.core.reduction import (
    ReductionTrace,
    degree_rank_reduction_one,
    degree_rank_reduction_two,
    lemma_24_delta_lower_bound,
    lemma_24_rank_upper_bound,
)
from repro.core.shattering import (
    ShatteringOutcome,
    shatter,
    unsatisfied_probability_estimate,
)
from repro.core.solver import NoKnownAlgorithmError, solve_weak_splitting
from repro.core.trim import trimmed_weak_splitting
from repro.core.verifiers import (
    is_multicolor_splitting,
    is_uniform_splitting,
    is_weak_multicolor_splitting,
    is_weak_splitting,
    multicolor_violations,
    uniform_splitting_violations,
    weak_multicolor_violations,
    weak_splitting_violations,
)

__all__ = [
    "basic_weak_splitting",
    "trimmed_weak_splitting",
    "deterministic_weak_splitting",
    "low_rank_weak_splitting",
    "rank_one_weak_splitting",
    "randomized_weak_splitting",
    "solve_component",
    "high_girth_weak_splitting",
    "shatter_until_low_rank",
    "solve_weak_splitting",
    "NoKnownAlgorithmError",
    "ReductionTrace",
    "degree_rank_reduction_one",
    "degree_rank_reduction_two",
    "lemma_24_delta_lower_bound",
    "lemma_24_rank_upper_bound",
    "ShatteringOutcome",
    "shatter",
    "unsatisfied_probability_estimate",
    "ShatteringLocal",
    "ZeroRoundColoring",
    "run_shattering_local",
    "run_zero_round_coloring",
    "weak_multicolor_splitting",
    "multicolor_splitting",
    "weak_splitting_from_multicolor",
    "boost_multicolor_splitting",
    "select_rainbow_neighbors",
    "weak_splitting_instance_from_graph",
    "orientation_from_weak_splitting",
    "randomized_lower_bound_rounds",
    "deterministic_lower_bound_rounds",
    "is_weak_splitting",
    "weak_splitting_violations",
    "is_weak_multicolor_splitting",
    "weak_multicolor_violations",
    "is_multicolor_splitting",
    "multicolor_violations",
    "is_uniform_splitting",
    "uniform_splitting_violations",
    "UniformSplittingSpec",
    "weak_splitting_min_degree",
    "theorem_25_trim_threshold",
    "theorem_25_iterations",
    "weak_multicolor_bound_degree",
    "weak_multicolor_required_colors",
    "multicolor_threshold",
    "randomized_min_degree",
]
