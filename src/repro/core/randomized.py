"""Theorem 1.2 — the randomized weak splitting algorithm.

For δ >= c·log(r log n), compute a weak splitting w.h.p. in
``O(r/δ · poly log(r log n))`` rounds:

1. **Degree normalization** (Section 2.4's opening remark): split every
   constraint of degree > 2δ into virtual constraints of degree in
   [δ, 2δ), so that δ > ∆/2 — a weak splitting of the virtual instance
   induces one of the original.
2. **High-degree shortcut**: if δ > 2 log n, the 0-round uniform coloring
   succeeds w.h.p. (failure probability < 2/n); we Las-Vegas wrap it.
3. **Shattering** (Lemma 2.9): O(1) rounds; residual components have
   ``n_H = O(r⁴ log⁶ n)`` nodes w.h.p. and δ_H >= δ/4 >= 2 log n_H for a
   suitable constant ``c``.
4. **Deterministic finish**: Theorem 2.5 on every residual component in
   parallel, costing the max component cost
   ``O(r/δ·log²(r log n) + log³(r log n)·(log log(r log n))^1.1)``.

Components whose parameters fall below the deterministic precondition
(possible for adversarially small inputs outside the theorem's asymptotic
regime) are finished by a verified fallback: non-strict estimator greedy,
then exhaustive search for tiny components — the result is still always a
*correct* weak splitting or an explicit error, never a silent failure.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Tuple

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring
from repro.bipartite.transforms import split_high_degree_left
from repro.core.basic import basic_weak_splitting
from repro.core.deterministic import deterministic_weak_splitting
from repro.core.problems import weak_splitting_min_degree
from repro.core.shattering import ShatteringOutcome, shatter
from repro.core.verifiers import is_weak_splitting, weak_splitting_violations
from repro.derand.conditional import DerandomizationError
from repro.derand.estimators import WeakSplittingEstimator
from repro.derand.conditional import greedy_minimize
from repro.local.ledger import RoundLedger
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = ["randomized_weak_splitting", "solve_component"]


def randomized_weak_splitting(
    inst: BipartiteInstance,
    seed: SeedLike = None,
    ledger: Optional[RoundLedger] = None,
    max_attempts: int = 32,
) -> Coloring:
    """Compute a weak splitting via Theorem 1.2 (Las-Vegas overall).

    The returned coloring is always verified; an attempt whose shattering
    produced an unsolvable residual triggers a fresh attempt with new
    randomness (w.h.p. the first attempt succeeds in the theorem's regime).
    """
    require(
        all(inst.left_degree(u) >= 2 for u in range(inst.n_left)),
        "every constraint needs degree >= 2 for weak splitting to be solvable",
    )
    rng = ensure_rng(seed)
    n = max(2, inst.n)

    # Normalize degrees: after splitting, delta > Delta / 2.
    delta = inst.delta
    virtual, owner = split_high_degree_left(inst, delta=max(2, delta))

    if virtual.delta > weak_splitting_min_degree(n):
        return _zero_round(virtual_to_original=inst, virtual=virtual, rng=rng, ledger=ledger)

    last_error: Optional[Exception] = None
    for _attempt in range(max_attempts):
        outcome = shatter(virtual, seed=rng.getrandbits(62), ledger=ledger)
        try:
            coloring = _finish_residual(virtual, outcome, ledger=ledger, rng=rng)
        except (DerandomizationError, RuntimeError) as exc:  # retry with new coins
            last_error = exc
            continue
        if is_weak_splitting(inst, coloring):
            return coloring
        last_error = RuntimeError("composed coloring failed verification")
    raise RuntimeError(
        f"randomized weak splitting failed after {max_attempts} attempts; "
        f"last error: {last_error}"
    )


def _zero_round(
    virtual_to_original: BipartiteInstance,
    virtual: BipartiteInstance,
    rng,
    ledger: Optional[RoundLedger],
    max_attempts: int = 64,
) -> Coloring:
    """The δ > 2 log n shortcut: uniform coins, verified (Las Vegas)."""
    for _ in range(max_attempts):
        coloring: Coloring = [
            RED if rng.random() < 0.5 else BLUE for _ in range(virtual.n_right)
        ]
        if ledger is not None:
            ledger.charge_simulated(1, "zero-round-coloring+check")
        if is_weak_splitting(virtual_to_original, coloring):
            return coloring
    raise RuntimeError("0-round coloring kept failing far beyond its 2/n bound")


def _finish_residual(
    virtual: BipartiteInstance,
    outcome: ShatteringOutcome,
    ledger: Optional[RoundLedger],
    rng,
) -> Coloring:
    """Solve every residual component deterministically and compose."""
    coloring: Coloring = list(outcome.partial)
    component_ledgers: List[RoundLedger] = []
    for lefts, rights, eids in outcome.residual.connected_components():
        comp, _lmap, rmap = outcome.residual.induced_component(lefts, rights, eids)
        comp_ledger = RoundLedger()
        comp_coloring = solve_component(comp, ledger=comp_ledger, rng=rng)
        component_ledgers.append(comp_ledger)
        inv_rmap = {i: v for v, i in rmap.items()}
        for i, c in enumerate(comp_coloring):
            original_right = outcome.residual_right_ids[inv_rmap[i]]
            coloring[original_right] = c
    if ledger is not None:
        ledger.charge_parallel(component_ledgers, "residual-components")
    # Any variable still uncolored is adjacent to satisfied constraints only.
    return [c if c is not None else RED for c in coloring]


def solve_component(
    comp: BipartiteInstance,
    ledger: Optional[RoundLedger] = None,
    rng=None,
) -> Coloring:
    """Solve one residual component.

    Preference order: Theorem 2.5 with the component's own ``n_H`` (the
    theorem's intended use — δ_H >= 2 log n_H holds in the asymptotic
    regime); then the non-strict estimator greedy with verification; then
    exhaustive search for tiny components.  Raises if all fail — the caller
    re-shatters.
    """
    if comp.n_right == 0:
        return []
    if comp.n_left == 0:
        return [RED] * comp.n_right
    n_h = max(2, comp.n)
    if comp.delta >= weak_splitting_min_degree(n_h):
        return deterministic_weak_splitting(comp, ledger=ledger, n_override=n_h)
    # Fallback 1: estimator greedy without the certificate.
    try:
        coloring = basic_weak_splitting(comp, ledger=ledger, strict=False)
        if not weak_splitting_violations(comp, coloring):
            return coloring
    except DerandomizationError:  # pragma: no cover - strict=False avoids this
        pass
    # Fallback 2: exhaustive search for tiny components.
    if comp.n_right <= 16:
        for bits in itertools.product((RED, BLUE), repeat=comp.n_right):
            candidate = list(bits)
            if not weak_splitting_violations(comp, candidate):
                if ledger is not None:
                    ledger.charge(comp.n, "component-bruteforce")
                return candidate
        raise RuntimeError("residual component is unsolvable (a constraint has degree < 2)")
    raise DerandomizationError(
        f"residual component (|U|={comp.n_left}, |V|={comp.n_right}, "
        f"delta={comp.delta}) is below every solvable regime"
    )
