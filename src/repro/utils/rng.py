"""Deterministic random-number plumbing.

Every randomized algorithm in this library takes either a seed or a
:class:`random.Random` instance.  In the LOCAL model each node flips private
coins; we model this by deriving one child generator per node from a master
seed, which keeps runs reproducible while preserving the independence
structure the analyses rely on (a node's bits are a pure function of the
master seed and its identifier, untouched by other nodes' consumption).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

__all__ = ["ensure_rng", "spawn", "node_rng", "CoinTable", "as_coin_table"]

SeedLike = Union[None, int, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random`.

    ``None`` yields a fresh nondeterministically seeded generator, an ``int``
    a deterministically seeded one, and an existing generator is passed
    through unchanged.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator keyed by ``label``."""
    return random.Random(f"{rng.getrandbits(64)}/{label}")


def node_rng(master_seed: int, node_id: int, salt: str = "") -> random.Random:
    """Private coin source for one node, a pure function of seed and id."""
    return random.Random(f"{master_seed}/{node_id}/{salt}")


class CoinTable:
    """Per-node coin supply for the dense (vectorized) execution backend.

    The dense round kernels in :mod:`repro.local.dense` consume randomness
    in bulk — one array of uniforms per phase instead of ``n`` individual
    ``random.Random`` calls.  A :class:`CoinTable` abstracts where those
    arrays come from, with two contracts:

    ``kind="philox"`` (default)
        Coins are drawn from one numpy counter-based Philox stream keyed by
        the master seed.  Setup is O(1) — no per-node generator objects —
        which is the whole point at n >= 10^5, where building ``n``
        sha512-seeded :func:`node_rng` instances (~9 µs each) would dominate
        the run.  Runs are deterministic per seed and *distribution-identical*
        to the engine (same independent-uniform law), but **not bit-identical**
        to it: the values drawn depend on how many nodes are active each
        phase, not on node identity.  Use for performance runs; validity is
        covered by the statistical tests.

    ``kind="replay"``
        Coins are replayed from the exact per-node :func:`node_rng` streams
        the reference simulator and :class:`~repro.local.engine.CSREngine`
        consume, one stream per node keyed by the node's uid.  A dense
        kernel that draws the same number of coins per node per phase as the
        engine's hook calls therefore produces **bit-identical** outputs.
        Setup is O(n) — this mode exists for equivalence testing and exact
        cross-checks, not speed.

    Kernels must route *every* random decision through this table (uniform
    coins via :meth:`uniforms`/:meth:`uniform_runs`, port choices via
    :meth:`randints`) so the replay contract stays exact.
    """

    KINDS = ("philox", "replay")

    def __init__(self, seed: int, ids: Sequence[int], kind: str = "philox"):
        import numpy as np  # lazy: the pure-Python paths never need numpy

        if kind not in self.KINDS:
            raise ValueError(f"unknown coin table kind {kind!r}; expected one of {self.KINDS}")
        self._np = np
        self.kind = kind
        self.seed = seed
        if kind == "philox":
            # Counter-based bit generator: O(1) setup regardless of n.
            self._gen = np.random.Generator(np.random.Philox(key=seed & (2**64 - 1)))
            self._streams = None
        else:
            self._gen = None
            self._streams = [node_rng(seed, uid) for uid in ids]

    def uniforms(self, idx) -> "object":
        """One uniform in [0, 1) per node index in ``idx`` (float64 array).

        In replay mode the value for node ``i`` is the next ``random()`` of
        that node's own stream; in philox mode values come off the shared
        counter stream in order.
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        if self._gen is not None:
            return self._gen.random(idx.shape[0])
        streams = self._streams
        return np.array([streams[i].random() for i in idx], dtype=np.float64)

    def uniform_runs(self, idx, counts) -> "object":
        """``counts[k]`` consecutive uniforms for node ``idx[k]``, concatenated.

        Matches a per-node loop that draws ``counts[k]`` values in a row from
        node ``idx[k]``'s stream (e.g. one coin per port in port order).
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if self._gen is not None:
            return self._gen.random(total)
        out = np.empty(total, dtype=np.float64)
        k = 0
        streams = self._streams
        for i, c in zip(idx, counts):
            s = streams[i]
            for _ in range(c):
                out[k] = s.random()
                k += 1
        return out

    def randints(self, idx, bounds) -> "object":
        """One integer in ``[0, bounds[k])`` per node index in ``idx``.

        Replay mode calls each node's ``randrange`` (bit-identical to the
        engine's port choice); philox mode maps uniforms through ``floor``
        (the float rounding bias at these bound sizes is < 2^-40 — far below
        anything the statistical tests can see).
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        bounds = np.asarray(bounds, dtype=np.int64)
        if self._gen is not None:
            return (self._gen.random(idx.shape[0]) * bounds).astype(np.int64)
        streams = self._streams
        return np.array(
            [streams[i].randrange(b) for i, b in zip(idx, bounds)], dtype=np.int64
        )


def as_coin_table(coins, seed: int, ids: Sequence[int]) -> CoinTable:
    """Coerce ``coins`` (a kind string or an existing table) to a CoinTable."""
    if isinstance(coins, CoinTable):
        return coins
    return CoinTable(seed, ids, kind=coins)
