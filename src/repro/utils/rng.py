"""Deterministic random-number plumbing.

Every randomized algorithm in this library takes either a seed or a
:class:`random.Random` instance.  In the LOCAL model each node flips private
coins; we model this by deriving one child generator per node from a master
seed, which keeps runs reproducible while preserving the independence
structure the analyses rely on (a node's bits are a pure function of the
master seed and its identifier, untouched by other nodes' consumption).
"""

from __future__ import annotations

import random
from typing import Optional, Union

__all__ = ["ensure_rng", "spawn", "node_rng"]

SeedLike = Union[None, int, random.Random]


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random`.

    ``None`` yields a fresh nondeterministically seeded generator, an ``int``
    a deterministically seeded one, and an existing generator is passed
    through unchanged.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator keyed by ``label``."""
    return random.Random(f"{rng.getrandbits(64)}/{label}")


def node_rng(master_seed: int, node_id: int, salt: str = "") -> random.Random:
    """Private coin source for one node, a pure function of seed and id."""
    return random.Random(f"{master_seed}/{node_id}/{salt}")
