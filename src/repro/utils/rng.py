"""Deterministic random-number plumbing.

Every randomized algorithm in this library takes either a seed or a
:class:`random.Random` instance.  In the LOCAL model each node flips private
coins; we model this by deriving one child generator per node from a master
seed, which keeps runs reproducible while preserving the independence
structure the analyses rely on (a node's bits are a pure function of the
master seed and its identifier, untouched by other nodes' consumption).
"""

from __future__ import annotations

import random
from typing import Optional, Sequence, Union

__all__ = [
    "ensure_rng",
    "spawn",
    "node_rng",
    "CoinTable",
    "as_coin_table",
    "mix64",
    "keyed_hash53",
    "keyed_u01",
]

SeedLike = Union[None, int, random.Random]

# SplitMix64 mixing chain (same constants as the fault-coin kernels in
# repro.scenarios.base — the repo-wide counter-based hash idiom).
_MASK64 = (1 << 64) - 1
_SM_GAMMA = 0x9E3779B97F4A7C15
_SM_M1 = 0xBF58476D1CE4E5B9
_SM_M2 = 0x94D049BB133111EB
_TO_U01 = 2.0**-53


def mix64(z: int) -> int:
    """Pure-python SplitMix64 finalizer (used to pre-hash master seeds)."""
    z &= _MASK64
    z = ((z ^ (z >> 30)) * _SM_M1) & _MASK64
    z = ((z ^ (z >> 27)) * _SM_M2) & _MASK64
    return (z ^ (z >> 31)) & _MASK64


def _mix64_np(np, z):
    """Vectorized SplitMix64 finalizer over a uint64 *array*.

    Array-only on purpose: numpy uint64 *scalar* arithmetic raises overflow
    warnings on wrap-around, array arithmetic wraps silently.
    """
    z = (z ^ (z >> np.uint64(30))) * np.uint64(_SM_M1)
    z = (z ^ (z >> np.uint64(27))) * np.uint64(_SM_M2)
    return z ^ (z >> np.uint64(31))


def keyed_hash53(np, seed_hash, counters, tag: int):
    """53-bit counter-based hash of ``(seed, counter, tag)`` as uint64 array.

    ``seed_hash`` is :func:`mix64` of the master seed — either one python
    int broadcast over every counter (a single trial), or a uint64 array
    aligned with ``counters`` carrying per-element seeds (the trial-batched
    kernels' pooled phases, where one flat array mixes nodes of many
    trials).  ``counters`` is the per-draw key (node index, slot index, or
    call position) and ``tag`` the round number, so every value is a pure
    function of ``(seed, counter, tag)`` — no consumption order anywhere.

    The top 53 bits are returned so that comparing hashes is *order- and
    tie-isomorphic* to comparing the ``(h >> 11) * 2**-53`` uniforms built
    from them: kernels may rank raw hashes and skip the float convert.
    """
    u64 = np.uint64
    c = np.asarray(counters)
    if c.dtype != np.uint64:
        c = c.astype(np.uint64)
    if isinstance(seed_hash, int):
        base = u64((seed_hash + _SM_GAMMA) & _MASK64) ^ c
    else:
        base = (seed_hash + u64(_SM_GAMMA)) ^ c
    h = _mix64_np(np, base)
    h = _mix64_np(np, (h + u64(_SM_GAMMA)) ^ u64(tag))
    return h >> u64(11)


def keyed_u01(np, seed_hash, counters, tag: int):
    """Uniforms in [0, 1) keyed by ``(seed, counter, tag)`` (float64 array)."""
    return keyed_hash53(np, seed_hash, counters, tag) * _TO_U01


def ensure_rng(seed: SeedLike = None) -> random.Random:
    """Coerce ``seed`` into a :class:`random.Random`.

    ``None`` yields a fresh nondeterministically seeded generator, an ``int``
    a deterministically seeded one, and an existing generator is passed
    through unchanged.
    """
    if isinstance(seed, random.Random):
        return seed
    return random.Random(seed)


def spawn(rng: random.Random, label: str) -> random.Random:
    """Derive an independent child generator keyed by ``label``."""
    return random.Random(f"{rng.getrandbits(64)}/{label}")


def node_rng(master_seed: int, node_id: int, salt: str = "") -> random.Random:
    """Private coin source for one node, a pure function of seed and id."""
    return random.Random(f"{master_seed}/{node_id}/{salt}")


class CoinTable:
    """Per-node coin supply for the dense (vectorized) execution backend.

    The dense round kernels in :mod:`repro.local.dense` consume randomness
    in bulk — one array of uniforms per phase instead of ``n`` individual
    ``random.Random`` calls.  A :class:`CoinTable` abstracts where those
    arrays come from, with two contracts:

    ``kind="philox"`` (default)
        Coins are drawn from one numpy counter-based Philox stream keyed by
        the master seed.  Setup is O(1) — no per-node generator objects —
        which is the whole point at n >= 10^5, where building ``n``
        sha512-seeded :func:`node_rng` instances (~9 µs each) would dominate
        the run.  Runs are deterministic per seed and *distribution-identical*
        to the engine (same independent-uniform law), but **not bit-identical**
        to it: the values drawn depend on how many nodes are active each
        phase, not on node identity.  Use for performance runs; validity is
        covered by the statistical tests.

    ``kind="replay"``
        Coins are replayed from the exact per-node :func:`node_rng` streams
        the reference simulator and :class:`~repro.local.engine.CSREngine`
        consume, one stream per node keyed by the node's uid.  A dense
        kernel that draws the same number of coins per node per phase as the
        engine's hook calls therefore produces **bit-identical** outputs.
        Setup is O(n) — this mode exists for equivalence testing and exact
        cross-checks, not speed.

    ``kind="keyed"``
        Every value is a pure function of ``(master seed, counter, tag)``
        via the SplitMix64 chain of :func:`keyed_u01` — no stream, no
        consumption order, O(1) setup.  The ``tag`` argument the dense
        kernels pass (the round number) becomes part of the key, so the
        *same* value is produced no matter which call draws it, or whether
        it is drawn at all.  This is the contract that makes a trial-batched
        kernel run **bit-identical** to k independent sequential ``keyed``
        runs: the batched kernels recompute exactly these hashes at
        whatever (trial, node, round) triples are still active.
        Distribution-identical to the other kinds, bit-identical to neither.

    Kernels must route *every* random decision through this table (uniform
    coins via :meth:`uniforms`/:meth:`uniform_runs`, port choices via
    :meth:`randints`) so the replay contract stays exact, and must pass
    their round number as ``tag`` so the keyed contract stays pure (philox
    and replay ignore the tag).
    """

    KINDS = ("philox", "replay", "keyed")

    def __init__(self, seed: int, ids: Sequence[int], kind: str = "philox"):
        import numpy as np  # lazy: the pure-Python paths never need numpy

        if kind not in self.KINDS:
            raise ValueError(f"unknown coin table kind {kind!r}; expected one of {self.KINDS}")
        self._np = np
        self.kind = kind
        self.seed = seed
        self._gen = None
        self._streams = None
        self._seed_hash = None
        if kind == "philox":
            # Counter-based bit generator: O(1) setup regardless of n.
            self._gen = np.random.Generator(np.random.Philox(key=seed & (2**64 - 1)))
        elif kind == "replay":
            self._streams = [node_rng(seed, uid) for uid in ids]
        else:
            self._seed_hash = mix64(seed)

    def uniforms(self, idx, tag: int = 0) -> "object":
        """One uniform in [0, 1) per node index in ``idx`` (float64 array).

        In replay mode the value for node ``i`` is the next ``random()`` of
        that node's own stream; in philox mode values come off the shared
        counter stream in order; in keyed mode the value is the pure hash
        of ``(seed, i, tag)``.
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        if self._seed_hash is not None:
            return keyed_u01(np, self._seed_hash, idx, tag)
        if self._gen is not None:
            return self._gen.random(idx.shape[0])
        streams = self._streams
        return np.array([streams[i].random() for i in idx], dtype=np.float64)

    def uniform_runs(self, idx, counts, tag: int = 0) -> "object":
        """``counts[k]`` consecutive uniforms for node ``idx[k]``, concatenated.

        Matches a per-node loop that draws ``counts[k]`` values in a row from
        node ``idx[k]``'s stream (e.g. one coin per port in port order).  In
        keyed mode the counter is the *position within the call* — a kernel
        drawing one coin per CSR slot over all nodes therefore keys each
        value by its slot index, which is what the batched kernels replay.
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        counts = np.asarray(counts, dtype=np.int64)
        total = int(counts.sum())
        if self._seed_hash is not None:
            return keyed_u01(np, self._seed_hash, np.arange(total, dtype=np.int64), tag)
        if self._gen is not None:
            return self._gen.random(total)
        out = np.empty(total, dtype=np.float64)
        k = 0
        streams = self._streams
        for i, c in zip(idx, counts):
            s = streams[i]
            for _ in range(c):
                out[k] = s.random()
                k += 1
        return out

    def randints(self, idx, bounds, tag: int = 0) -> "object":
        """One integer in ``[0, bounds[k])`` per node index in ``idx``.

        Replay mode calls each node's ``randrange`` (bit-identical to the
        engine's port choice); philox and keyed modes map uniforms through
        ``floor`` (the float rounding bias at these bound sizes is < 2^-40 —
        far below anything the statistical tests can see).
        """
        np = self._np
        idx = np.asarray(idx, dtype=np.int64)
        bounds = np.asarray(bounds, dtype=np.int64)
        if self._seed_hash is not None:
            return (keyed_u01(np, self._seed_hash, idx, tag) * bounds).astype(np.int64)
        if self._gen is not None:
            return (self._gen.random(idx.shape[0]) * bounds).astype(np.int64)
        streams = self._streams
        return np.array(
            [streams[i].randrange(b) for i, b in zip(idx, bounds)], dtype=np.int64
        )


def as_coin_table(coins, seed: int, ids: Sequence[int]) -> CoinTable:
    """Coerce ``coins`` (a kind string or an existing table) to a CoinTable."""
    if isinstance(coins, CoinTable):
        return coins
    return CoinTable(seed, ids, kind=coins)
