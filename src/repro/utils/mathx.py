"""Small mathematical helpers shared across the library.

The paper (Section 1.2) fixes the convention that ``log x`` denotes the binary
logarithm and ``ln x`` the natural logarithm.  All algorithm implementations in
this package follow that convention through the helpers below, so that the
thresholds appearing in the paper (``2 log n``, ``48 log n``, ``(2 log n + 1) ln n``
and so on) can be written verbatim.
"""

from __future__ import annotations

import math

__all__ = [
    "log2",
    "ln",
    "ceil_log2",
    "floor_log2",
    "ilog2_ceil",
    "clamp",
    "is_power_of_two",
    "binomial_tail_upper",
    "chernoff_below",
    "chernoff_above",
]


def log2(x: float) -> float:
    """Binary logarithm, the paper's ``log``.

    Raises ``ValueError`` for non-positive input, mirroring :func:`math.log2`.
    """
    return math.log2(x)


def ln(x: float) -> float:
    """Natural logarithm, the paper's ``ln``."""
    return math.log(x)


def ceil_log2(x: float) -> int:
    """``ceil(log2(x))`` as an exact integer for positive ``x``.

    For integer powers of two the exact value is returned even when floating
    point rounding of ``math.log2`` would be ambiguous.
    """
    if x <= 0:
        raise ValueError(f"ceil_log2 requires x > 0, got {x!r}")
    if isinstance(x, int) or (isinstance(x, float) and x.is_integer()):
        n = int(x)
        return max(0, (n - 1).bit_length())
    return int(math.ceil(math.log2(x)))


def floor_log2(x: float) -> int:
    """``floor(log2(x))`` as an exact integer for positive ``x``."""
    if x <= 0:
        raise ValueError(f"floor_log2 requires x > 0, got {x!r}")
    if isinstance(x, int) or (isinstance(x, float) and x.is_integer()):
        return int(x).bit_length() - 1
    return int(math.floor(math.log2(x)))


def ilog2_ceil(n: int) -> int:
    """Alias of :func:`ceil_log2` restricted to integers (kept for clarity)."""
    return ceil_log2(n)


def clamp(x: float, lo: float, hi: float) -> float:
    """Clamp ``x`` into the closed interval ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty interval [{lo}, {hi}]")
    return max(lo, min(hi, x))


def is_power_of_two(n: int) -> bool:
    """Return True iff ``n`` is a positive integral power of two."""
    return n > 0 and (n & (n - 1)) == 0


def binomial_tail_upper(d: int, k: int, p: float) -> float:
    """Upper bound ``(e*d*p/k)^k`` on ``Pr[Bin(d, p) >= k]``.

    This is the bound used in the proof of Theorem 3.3 (Equation (2) of the
    paper): ``C(d, k) p^k <= (e d / k)^k p^k``.  Returns 1.0 whenever the bound
    is vacuous (``k <= 0`` or the expression exceeds 1).
    """
    if k <= 0:
        return 1.0
    bound = (math.e * d * p / k) ** k
    return min(1.0, bound)


def chernoff_below(mu: float, delta: float) -> float:
    """Chernoff bound ``Pr[X <= (1 - delta) mu] <= exp(-delta^2 mu / 2)``."""
    if not 0 <= delta <= 1:
        raise ValueError(f"delta must lie in [0, 1], got {delta}")
    return math.exp(-(delta**2) * mu / 2.0)


def chernoff_above(mu: float, delta: float) -> float:
    """Chernoff bound ``Pr[X >= (1 + delta) mu] <= exp(-delta^2 mu / 3)`` for delta <= 1."""
    if delta < 0:
        raise ValueError(f"delta must be non-negative, got {delta}")
    if delta <= 1:
        return math.exp(-(delta**2) * mu / 3.0)
    return math.exp(-delta * mu / 3.0)
