"""Argument validation helpers with consistent error messages."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

__all__ = [
    "require",
    "require_positive",
    "require_nonnegative",
    "require_in_range",
    "require_probability",
]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str) -> None:
    """Raise unless ``value > 0``."""
    if value <= 0:
        raise ValueError(f"{name} must be positive, got {value!r}")


def require_nonnegative(value: float, name: str) -> None:
    """Raise unless ``value >= 0``."""
    if value < 0:
        raise ValueError(f"{name} must be non-negative, got {value!r}")


def require_in_range(value: float, lo: float, hi: float, name: str) -> None:
    """Raise unless ``lo <= value <= hi``."""
    if not lo <= value <= hi:
        raise ValueError(f"{name} must lie in [{lo}, {hi}], got {value!r}")


def require_probability(value: float, name: str) -> None:
    """Raise unless ``value`` is a probability in [0, 1]."""
    require_in_range(value, 0.0, 1.0, name)
