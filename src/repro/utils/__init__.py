"""Shared helpers: math conventions, RNG plumbing, validation."""

from repro.utils import mathx, rng, validation

__all__ = ["mathx", "rng", "validation"]
