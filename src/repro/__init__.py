"""repro — a reproduction of "On the Complexity of Distributed Splitting
Problems" (Bamberger, Ghaffari, Kuhn, Maus, Uitto; PODC 2019).

The package implements the paper's weak splitting algorithms and every
substrate they stand on — a LOCAL-model round simulator, the SLOCAL model
and its conversion, conditional-expectation derandomization, the directed
degree-splitting substrate, and the Section 4 applications (coloring, MIS).

Quickstart::

    from repro import random_left_regular, solve_weak_splitting, is_weak_splitting
    inst = random_left_regular(n_left=500, n_right=500, d=24, seed=0)
    coloring = solve_weak_splitting(inst)
    assert is_weak_splitting(inst, coloring)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
per-theorem reproduction results.
"""

from repro.bipartite import (
    BLUE,
    RED,
    BipartiteInstance,
    bipartite_girth,
    double_cover,
    high_girth_instance,
    incidence_instance,
    random_left_regular,
    random_near_regular,
    random_regular_graph,
    random_simple_graph,
    random_skewed,
    regular_bipartite,
    split_high_degree_left,
    trim_left_degrees,
)
from repro.core import (
    NoKnownAlgorithmError,
    basic_weak_splitting,
    boost_multicolor_splitting,
    degree_rank_reduction_one,
    degree_rank_reduction_two,
    deterministic_weak_splitting,
    high_girth_weak_splitting,
    is_multicolor_splitting,
    is_uniform_splitting,
    is_weak_multicolor_splitting,
    is_weak_splitting,
    low_rank_weak_splitting,
    multicolor_splitting,
    orientation_from_weak_splitting,
    randomized_weak_splitting,
    shatter,
    solve_weak_splitting,
    trimmed_weak_splitting,
    weak_multicolor_splitting,
    weak_splitting_from_multicolor,
    weak_splitting_instance_from_graph,
    weak_splitting_violations,
    UniformSplittingSpec,
)
from repro.apps import (
    attach_clique_gadgets,
    coloring_via_splitting,
    mis_via_splitting,
    uniform_splitting,
)
from repro.local import RoundLedger

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # instances
    "RED",
    "BLUE",
    "BipartiteInstance",
    "regular_bipartite",
    "random_left_regular",
    "random_near_regular",
    "random_skewed",
    "random_simple_graph",
    "random_regular_graph",
    "double_cover",
    "split_high_degree_left",
    "trim_left_degrees",
    "incidence_instance",
    "high_girth_instance",
    "bipartite_girth",
    # core algorithms
    "solve_weak_splitting",
    "basic_weak_splitting",
    "trimmed_weak_splitting",
    "deterministic_weak_splitting",
    "low_rank_weak_splitting",
    "randomized_weak_splitting",
    "high_girth_weak_splitting",
    "shatter",
    "degree_rank_reduction_one",
    "degree_rank_reduction_two",
    "NoKnownAlgorithmError",
    # verifiers
    "is_weak_splitting",
    "weak_splitting_violations",
    "is_weak_multicolor_splitting",
    "is_multicolor_splitting",
    "is_uniform_splitting",
    "UniformSplittingSpec",
    # multicolor
    "weak_multicolor_splitting",
    "multicolor_splitting",
    "weak_splitting_from_multicolor",
    "boost_multicolor_splitting",
    # lower bound
    "weak_splitting_instance_from_graph",
    "orientation_from_weak_splitting",
    # applications
    "uniform_splitting",
    "coloring_via_splitting",
    "mis_via_splitting",
    "attach_clique_gadgets",
    # accounting
    "RoundLedger",
]
