"""Generators for splitting instances.

The paper's algorithms are parameterized by three quantities of the bipartite
instance ``B = (U ∪ V, E)``: the minimum left degree δ, the maximum left
degree ∆ and the rank r (maximum right degree).  The generators below produce
instances with controlled values of these parameters:

* :func:`regular_bipartite` — deterministic, exactly ``d``-regular on the left
  with right degrees balanced to within one; the workhorse of reproducible
  benchmarks.
* :func:`random_left_regular` — each left node samples ``d`` distinct
  neighbors uniformly; rank concentrates around ``n_left * d / n_right``.
* :func:`random_near_regular` — left degrees drawn uniformly from
  ``[dmin, dmax]``; models the "nearly regular" graphs of Theorem 1.1
  (``∆/δ`` small).
* :func:`random_skewed` — a deliberately irregular instance (power-law-ish
  left degrees) used to exercise trimming (Lemma 2.2) and the virtual-node
  splitting of Section 2.4.
* :func:`random_graph_instance` — Erdős–Rényi / random-regular *general*
  graphs converted through the paper's doubling construction live in
  :mod:`repro.bipartite.transforms`; here we only provide the raw samplers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import BipartiteInstance
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "regular_bipartite",
    "random_left_regular",
    "random_near_regular",
    "random_skewed",
    "powerlaw_bipartite",
    "random_simple_graph",
    "random_sparse_graph",
    "random_regular_graph",
    "configuration_model_regular",
    "grid_graph",
]


def regular_bipartite(n_left: int, n_right: int, d: int) -> BipartiteInstance:
    """Deterministic left-``d``-regular instance with balanced right degrees.

    Left node ``u`` is joined to right nodes ``(u * d + i) mod n_right`` for
    ``i = 0 .. d-1``.  Requires ``d <= n_right`` so the instance is simple.
    The right degrees differ by at most ``ceil(n_left * d / n_right)`` from
    each other only through rounding; for ``n_right | n_left * d`` the right
    side is exactly regular, so ``rank = n_left * d / n_right``.
    """
    require(0 <= d <= n_right, f"need 0 <= d <= n_right, got d={d}, n_right={n_right}")
    edges = [(u, (u * d + i) % n_right) for u in range(n_left) for i in range(d)]
    return BipartiteInstance(n_left, n_right, edges)


def random_left_regular(
    n_left: int, n_right: int, d: int, seed: SeedLike = None
) -> BipartiteInstance:
    """Each left node independently picks ``d`` distinct right neighbors."""
    require(0 <= d <= n_right, f"need 0 <= d <= n_right, got d={d}, n_right={n_right}")
    rng = ensure_rng(seed)
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


def random_near_regular(
    n_left: int,
    n_right: int,
    dmin: int,
    dmax: int,
    seed: SeedLike = None,
) -> BipartiteInstance:
    """Left degrees drawn uniformly from ``[dmin, dmax]``, neighbors uniform.

    Produces instances in the "nearly regular" regime of Theorem 1.1 when
    ``dmax / dmin`` is small.  The construction guarantees δ >= dmin exactly.
    """
    require(0 <= dmin <= dmax <= n_right, f"need 0 <= dmin <= dmax <= n_right")
    rng = ensure_rng(seed)
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        d = rng.randint(dmin, dmax)
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


def random_skewed(
    n_left: int,
    n_right: int,
    dmin: int,
    dmax: int,
    exponent: float = 2.0,
    seed: SeedLike = None,
) -> BipartiteInstance:
    """Heavily irregular instance: left degrees follow a truncated power law.

    Degree ``d`` is sampled with weight ``d**-exponent`` on ``[dmin, dmax]``.
    This produces a few very high-degree constraint nodes among many
    low-degree ones — the situation where Lemma 2.2's trimming and the
    Section 2.4 virtual-node splitting actually matter.
    """
    require(0 < dmin <= dmax <= n_right, "need 0 < dmin <= dmax <= n_right")
    rng = ensure_rng(seed)
    degrees = list(range(dmin, dmax + 1))
    weights = [d ** (-exponent) for d in degrees]
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        d = rng.choices(degrees, weights=weights, k=1)[0]
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


def powerlaw_bipartite(
    n_left: int,
    n_right: int,
    dmin: int,
    dmax: int,
    exponent: float = 2.5,
    seed: SeedLike = None,
) -> BipartiteInstance:
    """Power-law degrees on *both* sides of the instance.

    Left degrees follow a truncated power law (weight ``d**-exponent`` on
    ``[dmin, dmax]``) as in :func:`random_skewed`; right endpoints are drawn
    by preferential attachment (weight ``1 + current degree``), so the right
    side develops a heavy-tailed degree profile as well — high-rank hubs
    among many low-rank nodes.  This is the stress case for the paper's
    rank-sensitive machinery (trimming, virtual-node splitting) and for the
    sweep runner's scenario coverage: δ, ∆ *and* r all vary within a single
    instance.
    """
    require(0 < dmin <= dmax <= n_right, "need 0 < dmin <= dmax <= n_right")
    rng = ensure_rng(seed)
    degrees = list(range(dmin, dmax + 1))
    degree_weights = [d ** (-exponent) for d in degrees]
    right_weight = [1.0] * n_right
    right_nodes = list(range(n_right))
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        d = rng.choices(degrees, weights=degree_weights, k=1)[0]
        chosen: Set[int] = set()
        # Weighted sampling without replacement; over-draw and dedupe, with
        # a uniform fallback so termination never depends on the weights.
        for _ in range(20):
            if len(chosen) >= d:
                break
            for v in rng.choices(right_nodes, weights=right_weight, k=d - len(chosen)):
                chosen.add(v)
        while len(chosen) < d:
            chosen.add(rng.randrange(n_right))
        for v in sorted(chosen):
            right_weight[v] += 1.0
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


# --------------------------------------------------------------------------
# General-graph samplers (inputs to the Section 1.1 / Section 4 reductions).
# Represented as adjacency lists: ``adj[v]`` is the sorted list of neighbors.
# --------------------------------------------------------------------------


def random_simple_graph(n: int, p: float, seed: SeedLike = None) -> List[List[int]]:
    """Erdős–Rényi ``G(n, p)`` as an adjacency list."""
    require(0 <= p <= 1, f"p must be a probability, got {p}")
    rng = ensure_rng(seed)
    adj: List[List[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adj[u].append(v)
                adj[v].append(u)
    return adj


def random_sparse_graph(n: int, avg_degree: float, seed: SeedLike = None) -> List[List[int]]:
    """``G(n, m)``-style sparse graph in O(m) expected time.

    :func:`random_simple_graph` flips a coin per node *pair* — O(n²) — which
    is prohibitive at the scales the batched engine targets (n >= 10^4).
    Here we draw ``m = round(n * avg_degree / 2)`` edges by uniform endpoint
    sampling with rejection of loops and duplicates, giving the same sparse
    Erdős–Rényi regime at a cost linear in the number of edges.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require(avg_degree >= 0, f"avg_degree must be >= 0, got {avg_degree}")
    require(avg_degree < n or n == 0, "avg_degree must be < n")
    rng = ensure_rng(seed)
    m = int(round(n * avg_degree / 2.0))
    require(
        m <= n * (n - 1) // 2,
        f"requested {m} edges but only {n * (n - 1) // 2} simple edges exist",
    )
    adj: List[List[int]] = [[] for _ in range(n)]
    seen: Set[Tuple[int, int]] = set()
    attempts = 0
    max_attempts = 20 * m + 100
    while len(seen) < m and attempts < max_attempts:
        attempts += 1
        u = rng.randrange(n)
        v = rng.randrange(n)
        if u == v:
            continue
        key = (u, v) if u < v else (v, u)
        if key in seen:
            continue
        seen.add(key)
        adj[key[0]].append(key[1])
        adj[key[1]].append(key[0])
    require(len(seen) == m, "edge sampling failed; graph too dense for rejection")
    for lst in adj:
        lst.sort()
    return adj


def grid_graph(rows: int, cols: int, periodic: bool = False) -> List[List[int]]:
    """2-D grid (``periodic=False``) or torus (``periodic=True``) graph.

    Node ``(i, j)`` is index ``i * cols + j``.  The torus is 4-regular —
    the canonical bounded-degree, high-girth-free benchmark topology where
    frontier-tracking simulation shines (constant work per node).  Periodic
    wrap requires each dimension >= 3 so the graph stays simple.
    """
    require(rows >= 1 and cols >= 1, "grid dimensions must be >= 1")
    if periodic:
        require(rows >= 3 and cols >= 3, "torus needs rows, cols >= 3 to stay simple")
    adj: List[List[int]] = [[] for _ in range(rows * cols)]
    for i in range(rows):
        for j in range(cols):
            v = i * cols + j
            nbrs = []
            if periodic:
                nbrs = [
                    ((i - 1) % rows) * cols + j,
                    ((i + 1) % rows) * cols + j,
                    i * cols + (j - 1) % cols,
                    i * cols + (j + 1) % cols,
                ]
            else:
                if i > 0:
                    nbrs.append((i - 1) * cols + j)
                if i + 1 < rows:
                    nbrs.append((i + 1) * cols + j)
                if j > 0:
                    nbrs.append(i * cols + j - 1)
                if j + 1 < cols:
                    nbrs.append(i * cols + j + 1)
            adj[v] = sorted(set(nbrs))
    return adj


def configuration_model_regular(n: int, d: int, seed: SeedLike = None) -> List[List[int]]:
    """Random ``d``-regular simple graph via the configuration model.

    Pure-python pairing model: each node gets ``d`` stubs, the stub list is
    shuffled and paired consecutively; pairs forming a self-loop or parallel
    edge are thrown back and re-shuffled among themselves until every stub
    is matched (with a full restart if a re-shuffle makes no progress).
    Unlike :func:`random_regular_graph` this needs no networkx and runs in
    O(n·d) expected time, so it comfortably generates the n >= 10^4
    instances the engine benchmarks and sweeps use.
    """
    require(n * d % 2 == 0, f"n*d must be even, got n={n}, d={d}")
    require(
        0 <= d < n or (n == 0 and d == 0),
        f"need 0 <= d < n, got d={d}, n={n}",
    )
    if n == 0:
        return []
    rng = ensure_rng(seed)
    for _ in range(100):
        edges: Set[Tuple[int, int]] = set()
        stubs = [v for v in range(n) for _ in range(d)]
        while stubs:
            rng.shuffle(stubs)
            leftover: List[int] = []
            progressed = False
            for k in range(0, len(stubs), 2):
                u, v = stubs[k], stubs[k + 1]
                key = (u, v) if u < v else (v, u)
                if u == v or key in edges:
                    leftover.append(u)
                    leftover.append(v)
                else:
                    edges.add(key)
                    progressed = True
            stubs = leftover
            if stubs and not progressed:
                break  # stuck (e.g. two stubs of the same node left): restart
        if not stubs:
            adj: List[List[int]] = [[] for _ in range(n)]
            for u, v in edges:
                adj[u].append(v)
                adj[v].append(u)
            for lst in adj:
                lst.sort()
            return adj
    raise RuntimeError(
        f"configuration model failed to produce a simple {d}-regular graph "
        f"on {n} nodes after 100 attempts; lower d or use random_regular_graph"
    )


def random_regular_graph(n: int, d: int, seed: SeedLike = None) -> List[List[int]]:
    """Random ``d``-regular simple graph via networkx's pairing model."""
    import networkx as nx

    require(n * d % 2 == 0, f"n*d must be even, got n={n}, d={d}")
    require(0 <= d < n, f"need 0 <= d < n, got d={d}, n={n}")
    rng = ensure_rng(seed)
    g = nx.random_regular_graph(d, n, seed=rng.randrange(2**31))
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in g.edges():
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    return adj
