"""Generators for splitting instances.

The paper's algorithms are parameterized by three quantities of the bipartite
instance ``B = (U ∪ V, E)``: the minimum left degree δ, the maximum left
degree ∆ and the rank r (maximum right degree).  The generators below produce
instances with controlled values of these parameters:

* :func:`regular_bipartite` — deterministic, exactly ``d``-regular on the left
  with right degrees balanced to within one; the workhorse of reproducible
  benchmarks.
* :func:`random_left_regular` — each left node samples ``d`` distinct
  neighbors uniformly; rank concentrates around ``n_left * d / n_right``.
* :func:`random_near_regular` — left degrees drawn uniformly from
  ``[dmin, dmax]``; models the "nearly regular" graphs of Theorem 1.1
  (``∆/δ`` small).
* :func:`random_skewed` — a deliberately irregular instance (power-law-ish
  left degrees) used to exercise trimming (Lemma 2.2) and the virtual-node
  splitting of Section 2.4.
* :func:`random_graph_instance` — Erdős–Rényi / random-regular *general*
  graphs converted through the paper's doubling construction live in
  :mod:`repro.bipartite.transforms`; here we only provide the raw samplers.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set, Tuple

from repro.bipartite.instance import BipartiteInstance
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "regular_bipartite",
    "random_left_regular",
    "random_near_regular",
    "random_skewed",
    "random_simple_graph",
    "random_regular_graph",
]


def regular_bipartite(n_left: int, n_right: int, d: int) -> BipartiteInstance:
    """Deterministic left-``d``-regular instance with balanced right degrees.

    Left node ``u`` is joined to right nodes ``(u * d + i) mod n_right`` for
    ``i = 0 .. d-1``.  Requires ``d <= n_right`` so the instance is simple.
    The right degrees differ by at most ``ceil(n_left * d / n_right)`` from
    each other only through rounding; for ``n_right | n_left * d`` the right
    side is exactly regular, so ``rank = n_left * d / n_right``.
    """
    require(0 <= d <= n_right, f"need 0 <= d <= n_right, got d={d}, n_right={n_right}")
    edges = [(u, (u * d + i) % n_right) for u in range(n_left) for i in range(d)]
    return BipartiteInstance(n_left, n_right, edges)


def random_left_regular(
    n_left: int, n_right: int, d: int, seed: SeedLike = None
) -> BipartiteInstance:
    """Each left node independently picks ``d`` distinct right neighbors."""
    require(0 <= d <= n_right, f"need 0 <= d <= n_right, got d={d}, n_right={n_right}")
    rng = ensure_rng(seed)
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


def random_near_regular(
    n_left: int,
    n_right: int,
    dmin: int,
    dmax: int,
    seed: SeedLike = None,
) -> BipartiteInstance:
    """Left degrees drawn uniformly from ``[dmin, dmax]``, neighbors uniform.

    Produces instances in the "nearly regular" regime of Theorem 1.1 when
    ``dmax / dmin`` is small.  The construction guarantees δ >= dmin exactly.
    """
    require(0 <= dmin <= dmax <= n_right, f"need 0 <= dmin <= dmax <= n_right")
    rng = ensure_rng(seed)
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        d = rng.randint(dmin, dmax)
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


def random_skewed(
    n_left: int,
    n_right: int,
    dmin: int,
    dmax: int,
    exponent: float = 2.0,
    seed: SeedLike = None,
) -> BipartiteInstance:
    """Heavily irregular instance: left degrees follow a truncated power law.

    Degree ``d`` is sampled with weight ``d**-exponent`` on ``[dmin, dmax]``.
    This produces a few very high-degree constraint nodes among many
    low-degree ones — the situation where Lemma 2.2's trimming and the
    Section 2.4 virtual-node splitting actually matter.
    """
    require(0 < dmin <= dmax <= n_right, "need 0 < dmin <= dmax <= n_right")
    rng = ensure_rng(seed)
    degrees = list(range(dmin, dmax + 1))
    weights = [d ** (-exponent) for d in degrees]
    population = range(n_right)
    edges: List[Tuple[int, int]] = []
    for u in range(n_left):
        d = rng.choices(degrees, weights=weights, k=1)[0]
        for v in rng.sample(population, d):
            edges.append((u, v))
    return BipartiteInstance(n_left, n_right, edges)


# --------------------------------------------------------------------------
# General-graph samplers (inputs to the Section 1.1 / Section 4 reductions).
# Represented as adjacency lists: ``adj[v]`` is the sorted list of neighbors.
# --------------------------------------------------------------------------


def random_simple_graph(n: int, p: float, seed: SeedLike = None) -> List[List[int]]:
    """Erdős–Rényi ``G(n, p)`` as an adjacency list."""
    require(0 <= p <= 1, f"p must be a probability, got {p}")
    rng = ensure_rng(seed)
    adj: List[List[int]] = [[] for _ in range(n)]
    for u in range(n):
        for v in range(u + 1, n):
            if rng.random() < p:
                adj[u].append(v)
                adj[v].append(u)
    return adj


def random_regular_graph(n: int, d: int, seed: SeedLike = None) -> List[List[int]]:
    """Random ``d``-regular simple graph via networkx's pairing model."""
    import networkx as nx

    require(n * d % 2 == 0, f"n*d must be even, got n={n}, d={d}")
    require(0 <= d < n, f"need 0 <= d < n, got d={d}, n={n}")
    rng = ensure_rng(seed)
    g = nx.random_regular_graph(d, n, seed=rng.randrange(2**31))
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in g.edges():
        adj[u].append(v)
        adj[v].append(u)
    for lst in adj:
        lst.sort()
    return adj
