"""The hypergraph view of splitting instances.

The paper (Section 1.2) reads ``B = (U ∪ V, E)`` equivalently as a
hypergraph: ``U`` is the vertex set and every right node ``v ∈ V`` is the
hyperedge containing its bipartite neighbors; the rank r of the hypergraph
is the maximum hyperedge size.  Weak splitting then says: 2-color the
*hyperedges* so every vertex lies in at least one hyperedge of each color.

This module provides that lens as a first-class API: a :class:`Hypergraph`
with lossless conversions to/from :class:`BipartiteInstance`, so users who
think in hypergraph terms (e.g. coming from the edge-coloring literature
the paper surveys) can build instances naturally.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Sequence, Tuple

from repro.bipartite.instance import BipartiteInstance
from repro.utils.validation import require

__all__ = ["Hypergraph"]


class Hypergraph:
    """A hypergraph on vertices ``0 .. n_vertices-1`` with listed hyperedges.

    ``edges[j]`` is the (ordered, possibly repeating across edges) vertex
    list of hyperedge ``j``.  Vertices may repeat *across* hyperedges
    freely; repetition *inside* one hyperedge is rejected (a hyperedge is a
    set).
    """

    __slots__ = ("n_vertices", "edges")

    def __init__(self, n_vertices: int, edges: Sequence[Iterable[int]]) -> None:
        require(n_vertices >= 0, f"n_vertices must be >= 0, got {n_vertices}")
        self.n_vertices = n_vertices
        normalized: List[Tuple[int, ...]] = []
        for j, edge in enumerate(edges):
            members = tuple(int(x) for x in edge)
            require(
                len(set(members)) == len(members),
                f"hyperedge {j} repeats a vertex",
            )
            for x in members:
                require(0 <= x < n_vertices, f"hyperedge {j} member {x} out of range")
            normalized.append(members)
        self.edges: Tuple[Tuple[int, ...], ...] = tuple(normalized)

    @property
    def n_edges(self) -> int:
        """Number of hyperedges."""
        return len(self.edges)

    @property
    def rank(self) -> int:
        """Maximum hyperedge size — the paper's r."""
        return max((len(e) for e in self.edges), default=0)

    def vertex_degree(self, v: int) -> int:
        """Number of hyperedges containing vertex ``v``."""
        return sum(1 for e in self.edges if v in e)

    def min_vertex_degree(self) -> int:
        """The paper's δ: minimum over vertices of the hyperedge count."""
        counts = [0] * self.n_vertices
        for e in self.edges:
            for v in e:
                counts[v] += 1
        return min(counts) if counts else 0

    # ------------------------------------------------------------ conversions
    def to_bipartite(self) -> BipartiteInstance:
        """The incidence bipartite instance: vertices left, hyperedges right."""
        bip_edges = [(v, j) for j, e in enumerate(self.edges) for v in e]
        return BipartiteInstance(self.n_vertices, self.n_edges, bip_edges)

    @classmethod
    def from_bipartite(cls, inst: BipartiteInstance) -> "Hypergraph":
        """Inverse of :meth:`to_bipartite` (constraints become vertices)."""
        edges = [tuple(inst.right_neighbor_set(v)) for v in range(inst.n_right)]
        return cls(inst.n_left, edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Hypergraph(vertices={self.n_vertices}, edges={self.n_edges}, "
            f"rank={self.rank})"
        )
