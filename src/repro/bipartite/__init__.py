"""Bipartite splitting instances, generators, transforms and girth tools."""

from repro.bipartite.instance import BLUE, RED, BipartiteInstance, Coloring, InstanceStats
from repro.bipartite.generators import (
    configuration_model_regular,
    grid_graph,
    powerlaw_bipartite,
    random_left_regular,
    random_near_regular,
    random_regular_graph,
    random_simple_graph,
    random_skewed,
    random_sparse_graph,
    regular_bipartite,
)
from repro.bipartite.transforms import (
    coloring_to_vertex_partition,
    double_cover,
    split_high_degree_left,
    trim_left_degrees,
)
from repro.bipartite.hypergraph import Hypergraph
from repro.bipartite.girth import (
    bipartite_girth,
    graph_girth,
    high_girth_instance,
    incidence_instance,
    tree_instance,
    peel_short_cycles,
)

__all__ = [
    "RED",
    "BLUE",
    "BipartiteInstance",
    "Coloring",
    "InstanceStats",
    "regular_bipartite",
    "random_left_regular",
    "random_near_regular",
    "random_skewed",
    "powerlaw_bipartite",
    "random_simple_graph",
    "random_sparse_graph",
    "random_regular_graph",
    "configuration_model_regular",
    "grid_graph",
    "double_cover",
    "coloring_to_vertex_partition",
    "split_high_degree_left",
    "trim_left_degrees",
    "bipartite_girth",
    "graph_girth",
    "incidence_instance",
    "peel_short_cycles",
    "high_girth_instance",
    "tree_instance",
    "Hypergraph",
]
