"""Instance transformations used by the paper's reductions.

Three constructions recur throughout the paper:

* **Doubling** (Section 1.1): the splitting problem on a general graph
  ``G = (V_G, E_G)`` is phrased bipartitely by making two copies of every
  node, ``vL ∈ U`` and ``vR ∈ V``, and joining ``vL — uR`` and ``vR — uL`` for
  every edge ``{u, v}``.  A 2-coloring of the right side is then exactly a
  red/blue partition of ``V_G``, and "``u`` sees both colors among its
  G-neighbors" becomes the weak splitting constraint at ``uL``.  The resulting
  instance always has ``δ <= r`` (both equal the degree sequence of G), which
  is why Theorem 2.7's ``δ >= 6r`` regime can never apply to doubled graphs —
  a point the paper makes explicitly after Theorem 1.1.

* **Virtual-node splitting** (Section 2.4): to assume almost-uniform left
  degrees (``δ > ∆/2``), every ``u`` with ``deg(u) > 2δ`` is split into
  ``⌊deg(u)/δ⌋`` virtual constraint nodes, each inheriting between ``δ`` and
  ``2δ - 1`` of ``u``'s edges.  A weak splitting of the virtual instance
  immediately induces one of the original instance, because each original
  constraint contains some virtual constraint's neighborhood.

* **Trimming** (Lemma 2.2): every left node of degree above a target keeps
  only ``target`` of its incident edges.  A weak splitting of the trimmed
  graph is one of the original graph, since the property is preserved under
  adding edges.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.bipartite.instance import BipartiteInstance, Coloring
from repro.utils.validation import require

__all__ = [
    "double_cover",
    "coloring_to_vertex_partition",
    "split_high_degree_left",
    "trim_left_degrees",
]


def double_cover(adj: Sequence[Sequence[int]]) -> BipartiteInstance:
    """The paper's Section 1.1 graph-to-bipartite doubling construction.

    ``adj`` is the adjacency list of a general graph ``G`` on nodes
    ``0 .. n-1``.  The result has left node ``u`` standing for ``uL`` and
    right node ``v`` standing for ``vR``; edge ``{u, v} ∈ E_G`` contributes
    the two bipartite edges ``uL — vR`` and ``vL — uR``.

    Weak splittings of the result correspond to red/blue partitions of
    ``V_G`` in which every node sees both colors in its G-neighborhood; use
    :func:`coloring_to_vertex_partition` to read the partition off.
    """
    n = len(adj)
    edges: List[Tuple[int, int]] = []
    for u in range(n):
        for v in adj[u]:
            edges.append((u, v))  # uL — vR  (and v's list contributes vL — uR)
    return BipartiteInstance(n, n, edges)


def coloring_to_vertex_partition(coloring: Coloring) -> List[Optional[int]]:
    """Interpret a right-side coloring of a doubled instance on ``V_G``.

    In the doubling construction right node ``v`` *is* graph node ``v``, so
    this is the identity; the function exists to make call sites
    self-documenting.
    """
    return list(coloring)


def split_high_degree_left(
    inst: BipartiteInstance, delta: Optional[int] = None
) -> Tuple[BipartiteInstance, List[int]]:
    """Section 2.4 virtual-node splitting of high-degree constraint nodes.

    Every left node ``u`` with ``deg(u) >= 2 * delta`` is replaced by
    ``⌊deg(u)/delta⌋`` virtual nodes; the first ones take ``delta`` edges each
    and the last takes the remainder (between ``delta`` and ``2*delta - 1``).
    Nodes with degree below ``2*delta`` are kept as a single virtual node.

    Parameters
    ----------
    inst:
        The instance to transform.  Every left node must have degree at least
        ``delta`` (isolated or low-degree constraint nodes have no meaningful
        weak splitting constraint and must be filtered by the caller).
    delta:
        The chunk size; defaults to ``inst.delta``.

    Returns
    -------
    (virtual, owner):
        ``virtual`` is the new instance (same right side); ``owner[j]`` is the
        original left node that virtual left node ``j`` came from.  The new
        instance satisfies ``delta <= deg(j) < 2 * delta`` for every virtual
        node ``j``, i.e. ``δ > ∆/2`` as required by Theorem 1.2's analysis.

    A weak splitting of ``virtual`` is a weak splitting of ``inst``: each
    original ``u`` contains some virtual node's edge set, and that virtual
    node already sees both colors.
    """
    if delta is None:
        delta = inst.delta
    require(delta >= 1, f"delta must be >= 1, got {delta}")
    for u in range(inst.n_left):
        require(
            inst.left_degree(u) >= delta,
            f"left node {u} has degree {inst.left_degree(u)} < delta={delta}",
        )
    new_edges: List[Tuple[int, int]] = []
    owner: List[int] = []
    for u in range(inst.n_left):
        inc = inst.left_inc[u]
        k = len(inc) // delta  # number of virtual nodes for u (>= 1)
        # First k-1 virtual nodes take exactly delta edges; the last takes the rest.
        for j in range(k):
            vid = len(owner)
            owner.append(u)
            start = j * delta
            stop = (j + 1) * delta if j < k - 1 else len(inc)
            for e in inc[start:stop]:
                new_edges.append((vid, inst.edges[e][1]))
    virtual = BipartiteInstance(len(owner), inst.n_right, new_edges, allow_multi=True)
    return virtual, owner


def trim_left_degrees(
    inst: BipartiteInstance, target: int
) -> Tuple[BipartiteInstance, List[int]]:
    """Lemma 2.2 trimming: each left node keeps (at most) ``target`` edges.

    Nodes with degree below ``target`` keep everything.  Returns the trimmed
    instance together with the kept original edge ids (the ``edge_map`` of
    :meth:`BipartiteInstance.subgraph`).
    """
    require(target >= 1, f"target must be >= 1, got {target}")
    keep: List[int] = []
    for u in range(inst.n_left):
        keep.extend(inst.left_inc[u][:target])
    return inst.subgraph(keep)
