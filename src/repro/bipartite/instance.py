"""Bipartite splitting instances.

The paper phrases every splitting problem on a bipartite graph
``B = (U ∪ V, E)`` (Definition 1.1): the *left* side ``U`` holds constraint
nodes, the *right* side ``V`` holds variable nodes.  Equivalently, ``U`` is the
vertex set of a hypergraph whose hyperedges are the right-side nodes.  The
paper's parameters are

* ``delta``  — minimum degree of the nodes in ``U`` (written δ),
* ``Delta``  — maximum degree of the nodes in ``U`` (written ∆), and
* ``rank``   — maximum degree of the nodes in ``V`` (written r), i.e. the rank
  of the corresponding hypergraph.

:class:`BipartiteInstance` stores the graph as an explicit edge list together
with incidence lists on both sides.  Storing edge identities (rather than mere
adjacency) is essential for the degree–rank reductions of Section 2, which
repeatedly *orient and delete individual edges*; it also lets us keep parallel
edges apart in the auxiliary multigraphs of Degree–Rank Reduction II.

Instances are immutable once constructed.  All reductions produce fresh
instances via :meth:`BipartiteInstance.subgraph` and carry edge-id maps back to
their parent, so a coloring computed on a reduced graph can always be
interpreted on the original one (the weak splitting property is preserved
under adding edges back, Lemma 2.2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.utils.validation import require

__all__ = [
    "RED",
    "BLUE",
    "Coloring",
    "BipartiteInstance",
    "InstanceStats",
]

#: Color constants for 2-colorings of the right-hand side.
RED = 0
BLUE = 1

#: A (partial) coloring assigns an int color (or None) to every right node.
Coloring = List[Optional[int]]


@dataclass(frozen=True)
class InstanceStats:
    """Summary statistics of an instance, in the paper's notation."""

    n: int  #: total number of nodes |U| + |V|
    n_left: int  #: |U|
    n_right: int  #: |V|
    n_edges: int  #: |E|
    delta: int  #: minimum degree in U (0 if U empty)
    Delta: int  #: maximum degree in U (0 if U empty)
    rank: int  #: maximum degree in V (0 if V empty)
    min_rank: int  #: minimum degree in V (0 if V empty)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"InstanceStats(n={self.n}, |U|={self.n_left}, |V|={self.n_right}, "
            f"|E|={self.n_edges}, delta={self.delta}, Delta={self.Delta}, r={self.rank})"
        )


class BipartiteInstance:
    """An immutable bipartite graph ``B = (U ∪ V, E)`` with edge identities.

    Parameters
    ----------
    n_left:
        Number of constraint nodes ``|U|``.  Left nodes are ``0 .. n_left-1``.
    n_right:
        Number of variable nodes ``|V|``.  Right nodes are ``0 .. n_right-1``.
    edges:
        Sequence of ``(u, v)`` pairs with ``u`` a left node and ``v`` a right
        node.  Edge ``i`` of the instance is ``edges[i]``; algorithms refer to
        edges by these indices.
    allow_multi:
        Whether parallel edges are permitted.  Splitting instances produced by
        the generators are simple; set this for auxiliary constructions.
    """

    __slots__ = ("n_left", "n_right", "edges", "left_inc", "right_inc", "_stats")

    def __init__(
        self,
        n_left: int,
        n_right: int,
        edges: Sequence[Tuple[int, int]],
        allow_multi: bool = False,
    ) -> None:
        require(n_left >= 0, f"n_left must be >= 0, got {n_left}")
        require(n_right >= 0, f"n_right must be >= 0, got {n_right}")
        self.n_left = n_left
        self.n_right = n_right
        self.edges: Tuple[Tuple[int, int], ...] = tuple((int(u), int(v)) for u, v in edges)
        left_inc: List[List[int]] = [[] for _ in range(n_left)]
        right_inc: List[List[int]] = [[] for _ in range(n_right)]
        seen: Set[Tuple[int, int]] = set()
        for eid, (u, v) in enumerate(self.edges):
            require(0 <= u < n_left, f"edge {eid}: left endpoint {u} out of range")
            require(0 <= v < n_right, f"edge {eid}: right endpoint {v} out of range")
            if not allow_multi:
                require((u, v) not in seen, f"parallel edge ({u}, {v}) in simple instance")
                seen.add((u, v))
            left_inc[u].append(eid)
            right_inc[v].append(eid)
        self.left_inc: Tuple[Tuple[int, ...], ...] = tuple(tuple(x) for x in left_inc)
        self.right_inc: Tuple[Tuple[int, ...], ...] = tuple(tuple(x) for x in right_inc)
        self._stats: Optional[InstanceStats] = None

    # ------------------------------------------------------------------ sizes
    @property
    def n(self) -> int:
        """Total node count ``|U| + |V|`` — the paper's ``n``."""
        return self.n_left + self.n_right

    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return len(self.edges)

    # ---------------------------------------------------------------- degrees
    def left_degree(self, u: int) -> int:
        """Degree of constraint node ``u ∈ U``."""
        return len(self.left_inc[u])

    def right_degree(self, v: int) -> int:
        """Degree of variable node ``v ∈ V``."""
        return len(self.right_inc[v])

    @property
    def delta(self) -> int:
        """Minimum degree δ over ``U`` (0 for empty ``U``)."""
        return self.stats().delta

    @property
    def Delta(self) -> int:
        """Maximum degree ∆ over ``U`` (0 for empty ``U``)."""
        return self.stats().Delta

    @property
    def rank(self) -> int:
        """Maximum degree r over ``V`` — the hypergraph rank (0 for empty V)."""
        return self.stats().rank

    def stats(self) -> InstanceStats:
        """Compute (and cache) the instance summary statistics."""
        if self._stats is None:
            left_degs = [len(x) for x in self.left_inc]
            right_degs = [len(x) for x in self.right_inc]
            self._stats = InstanceStats(
                n=self.n,
                n_left=self.n_left,
                n_right=self.n_right,
                n_edges=self.n_edges,
                delta=min(left_degs) if left_degs else 0,
                Delta=max(left_degs) if left_degs else 0,
                rank=max(right_degs) if right_degs else 0,
                min_rank=min(right_degs) if right_degs else 0,
            )
        return self._stats

    # ------------------------------------------------------------- neighbors
    def left_neighbors(self, u: int) -> List[int]:
        """Right-side neighbors of ``u`` (with multiplicity, in edge order)."""
        return [self.edges[e][1] for e in self.left_inc[u]]

    def right_neighbors(self, v: int) -> List[int]:
        """Left-side neighbors of ``v`` (with multiplicity, in edge order)."""
        return [self.edges[e][0] for e in self.right_inc[v]]

    def left_neighbor_set(self, u: int) -> Set[int]:
        """Distinct right-side neighbors of ``u``."""
        return {self.edges[e][1] for e in self.left_inc[u]}

    def right_neighbor_set(self, v: int) -> Set[int]:
        """Distinct left-side neighbors of ``v``."""
        return {self.edges[e][0] for e in self.right_inc[v]}

    # ------------------------------------------------------------- subgraphs
    def subgraph(self, keep_edges: Iterable[int]) -> Tuple["BipartiteInstance", List[int]]:
        """Edge-induced subgraph on the same node sets.

        Returns the new instance together with ``edge_map`` mapping each new
        edge id to the original edge id, so colorings and orientations can be
        pulled back.  Node identities are preserved; nodes that lose all their
        edges remain as isolated nodes (the degree–rank reduction analyses
        reason about exactly this graph).
        """
        keep = sorted(set(keep_edges))
        for e in keep:
            require(0 <= e < self.n_edges, f"edge id {e} out of range")
        new_edges = [self.edges[e] for e in keep]
        sub = BipartiteInstance(self.n_left, self.n_right, new_edges, allow_multi=True)
        return sub, keep

    def without_edges(self, drop_edges: Iterable[int]) -> Tuple["BipartiteInstance", List[int]]:
        """Complement form of :meth:`subgraph`: delete ``drop_edges``."""
        drop = set(drop_edges)
        return self.subgraph(e for e in range(self.n_edges) if e not in drop)

    # ------------------------------------------------------------ components
    def connected_components(self) -> List[Tuple[List[int], List[int], List[int]]]:
        """Connected components as ``(left_nodes, right_nodes, edge_ids)`` triples.

        Isolated nodes (on either side) each form their own singleton
        component with no edges.  Used by the shattering algorithms, which
        solve each residual component independently (Theorem 1.2).
        """
        left_comp = [-1] * self.n_left
        right_comp = [-1] * self.n_right
        comps: List[Tuple[List[int], List[int], List[int]]] = []
        for start in range(self.n_left):
            if left_comp[start] != -1:
                continue
            cid = len(comps)
            lefts: List[int] = []
            rights: List[int] = []
            eids: List[int] = []
            stack: List[Tuple[str, int]] = [("L", start)]
            left_comp[start] = cid
            while stack:
                side, x = stack.pop()
                if side == "L":
                    lefts.append(x)
                    for e in self.left_inc[x]:
                        eids.append(e)
                        v = self.edges[e][1]
                        if right_comp[v] == -1:
                            right_comp[v] = cid
                            stack.append(("R", v))
                else:
                    rights.append(x)
                    for e in self.right_inc[x]:
                        u = self.edges[e][0]
                        if left_comp[u] == -1:
                            left_comp[u] = cid
                            stack.append(("L", u))
            comps.append((sorted(lefts), sorted(rights), sorted(set(eids))))
        for v in range(self.n_right):
            if right_comp[v] == -1:
                right_comp[v] = len(comps)
                comps.append(([], [v], []))
        return comps

    def induced_component(
        self, lefts: Sequence[int], rights: Sequence[int], eids: Sequence[int]
    ) -> Tuple["BipartiteInstance", Dict[int, int], Dict[int, int]]:
        """Relabelled instance for a single component.

        Returns ``(sub, left_map, right_map)`` where the maps send *original*
        ids to ids in ``sub``.
        """
        left_map = {u: i for i, u in enumerate(lefts)}
        right_map = {v: i for i, v in enumerate(rights)}
        new_edges = [(left_map[self.edges[e][0]], right_map[self.edges[e][1]]) for e in eids]
        sub = BipartiteInstance(len(lefts), len(rights), new_edges, allow_multi=True)
        return sub, left_map, right_map

    # --------------------------------------------------------------- exports
    def to_networkx(self):
        """Export to a :mod:`networkx` graph (left nodes ``("L", u)``, right ``("R", v)``)."""
        import networkx as nx

        g = nx.MultiGraph()
        g.add_nodes_from(("L", u) for u in range(self.n_left))
        g.add_nodes_from(("R", v) for v in range(self.n_right))
        for eid, (u, v) in enumerate(self.edges):
            g.add_edge(("L", u), ("R", v), key=eid)
        return g

    def degree_histogram_left(self) -> Dict[int, int]:
        """Histogram ``degree -> count`` over ``U``."""
        hist: Dict[int, int] = {}
        for inc in self.left_inc:
            hist[len(inc)] = hist.get(len(inc), 0) + 1
        return hist

    def degree_histogram_right(self) -> Dict[int, int]:
        """Histogram ``degree -> count`` over ``V``."""
        hist: Dict[int, int] = {}
        for inc in self.right_inc:
            hist[len(inc)] = hist.get(len(inc), 0) + 1
        return hist

    def is_simple(self) -> bool:
        """True iff the instance has no parallel edges."""
        return len(set(self.edges)) == len(self.edges)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        s = self.stats()
        return (
            f"BipartiteInstance(|U|={s.n_left}, |V|={s.n_right}, |E|={s.n_edges}, "
            f"delta={s.delta}, Delta={s.Delta}, r={s.rank})"
        )
