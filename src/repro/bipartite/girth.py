"""Girth computation and high-girth instance construction (Section 5).

Theorems 5.2 and 5.3 require bipartite instances of girth at least 10.  The
cleanest scalable source of such instances is the *incidence construction*:
given a general graph ``G`` of girth ``g``, the bipartite incidence graph
between the vertices of ``G`` (left) and the edges of ``G`` (right) has girth
exactly ``2g``.  Thus any graph with girth >= 5 yields a rank-2 splitting
instance with girth >= 10, and left degrees equal to the degrees of ``G``.

To obtain graphs of girth >= 5 with controllable degree we sample random
``d``-regular graphs and *peel* edges lying on cycles shorter than 5.  Random
regular graphs contain only ``O(1)`` short cycles in expectation, so peeling
removes a vanishing fraction of edges and the minimum degree stays ``d - O(1)``
with high probability; the constructor verifies the resulting δ and girth
explicitly and retries/raises rather than returning a non-conforming instance.
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional, Sequence, Tuple

from repro.bipartite.instance import BipartiteInstance
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "bipartite_girth",
    "graph_girth",
    "incidence_instance",
    "peel_short_cycles",
    "high_girth_instance",
    "tree_instance",
]


def _adjacency(inst: BipartiteInstance) -> List[List[int]]:
    """Unified adjacency list: left node u -> u, right node v -> n_left + v."""
    n = inst.n_left + inst.n_right
    adj: List[List[int]] = [[] for _ in range(n)]
    for u, v in inst.edges:
        adj[u].append(inst.n_left + v)
        adj[inst.n_left + v].append(u)
    return adj


def _girth_of_adjacency(adj: Sequence[Sequence[int]]) -> Optional[int]:
    """Girth of a simple graph given as adjacency lists; None if acyclic.

    Standard BFS-from-every-vertex bound: for each root, the first non-tree
    edge closing two BFS branches gives a cycle of length
    ``dist[a] + dist[b] + 1``; the minimum over all roots is exact.
    """
    n = len(adj)
    best: Optional[int] = None
    for root in range(n):
        dist = [-1] * n
        parent = [-1] * n
        dist[root] = 0
        q = deque([root])
        while q:
            x = q.popleft()
            if best is not None and dist[x] * 2 >= best:
                continue
            for y in adj[x]:
                if dist[y] == -1:
                    dist[y] = dist[x] + 1
                    parent[y] = x
                    q.append(y)
                elif parent[x] != y and parent[y] != x:
                    cycle = dist[x] + dist[y] + 1
                    if best is None or cycle < best:
                        best = cycle
    return best


def bipartite_girth(inst: BipartiteInstance) -> Optional[int]:
    """Girth of a (simple) bipartite instance; None if it is a forest."""
    require(inst.is_simple(), "girth is only defined for simple instances")
    return _girth_of_adjacency(_adjacency(inst))


def graph_girth(adj: Sequence[Sequence[int]]) -> Optional[int]:
    """Girth of a general simple graph given as adjacency lists."""
    return _girth_of_adjacency(adj)


def incidence_instance(adj: Sequence[Sequence[int]]) -> BipartiteInstance:
    """Vertex–edge incidence instance of a general graph.

    Left node ``u`` = vertex ``u`` of ``G``; right nodes enumerate the edges of
    ``G``; each edge is incident to its two endpoints, so the rank is exactly 2
    and ``girth(B) = 2 * girth(G)``.
    """
    n = len(adj)
    edge_ids = {}
    bip_edges: List[Tuple[int, int]] = []
    for u in range(n):
        for v in adj[u]:
            if u < v:
                eid = edge_ids.setdefault((u, v), len(edge_ids))
                bip_edges.append((u, eid))
                bip_edges.append((v, eid))
    return BipartiteInstance(n, len(edge_ids), bip_edges)


def peel_short_cycles(
    adj: Sequence[Sequence[int]], min_girth: int, seed: SeedLike = None
) -> List[List[int]]:
    """Remove one edge from every cycle shorter than ``min_girth``.

    Repeatedly finds a shortest cycle (BFS) and deletes one of its edges until
    the girth is at least ``min_girth``.  Returns a fresh adjacency list.
    """
    rng = ensure_rng(seed)
    work = [sorted(nbrs) for nbrs in adj]
    while True:
        cycle_edge = _find_short_cycle_edge(work, min_girth)
        if cycle_edge is None:
            return work
        a, b = cycle_edge
        work[a].remove(b)
        work[b].remove(a)


def _find_short_cycle_edge(
    adj: Sequence[Sequence[int]], min_girth: int
) -> Optional[Tuple[int, int]]:
    """Return an edge on some cycle of length < ``min_girth``, or None."""
    n = len(adj)
    for root in range(n):
        dist = [-1] * n
        parent = [-1] * n
        dist[root] = 0
        q = deque([root])
        while q:
            x = q.popleft()
            if (dist[x] + 1) * 2 >= min_girth + 1:
                continue
            for y in adj[x]:
                if dist[y] == -1:
                    dist[y] = dist[x] + 1
                    parent[y] = x
                    q.append(y)
                elif parent[x] != y and parent[y] != x:
                    if dist[x] + dist[y] + 1 < min_girth:
                        return (x, y)
    return None


def tree_instance(roots: int, d: int, r: int) -> BipartiteInstance:
    """Acyclic (girth ∞ >= 10) instance with δ = ``d`` and rank = ``r``.

    A two-level hierarchical construction:

    * ``roots`` root constraints, each with ``d`` private *inner* variables;
    * every inner variable acquires ``r − 1`` child constraints (so its
      degree — the rank — is exactly ``r``);
    * every child constraint gets ``d − 1`` fresh leaf variables (so its
      degree is exactly ``d``; leaves have degree 1).

    Being a forest, the instance trivially has girth >= 10, which makes it
    the scalable workhorse for the Section 5 experiments: the Lemma 5.1
    independence argument (neighbors of a variable have disjoint 3-hop
    neighborhoods) holds exactly.  Sizes: ``roots·(1 + d·r)`` constraints
    roughly, ``roots·d·(1 + (r−1)(d−1))`` variables.
    """
    require(roots >= 1 and d >= 2 and r >= 1, "need roots >= 1, d >= 2, r >= 1")
    edges: List[Tuple[int, int]] = []
    n_left = roots
    n_right = 0
    for root in range(roots):
        for _ in range(d):
            v = n_right
            n_right += 1
            edges.append((root, v))
            for _ in range(r - 1):
                c = n_left
                n_left += 1
                edges.append((c, v))
                for _ in range(d - 1):
                    leaf = n_right
                    n_right += 1
                    edges.append((c, leaf))
    return BipartiteInstance(n_left, n_right, edges)


def high_girth_instance(
    n: int,
    d: int,
    seed: SeedLike = None,
    min_girth: int = 10,
    min_delta: Optional[int] = None,
    max_attempts: int = 20,
) -> BipartiteInstance:
    """Rank-2 splitting instance of girth >= ``min_girth`` and δ close to ``d``.

    Samples a random ``d``-regular graph, peels cycles shorter than
    ``min_girth / 2``, and returns its incidence instance.  Verifies girth and
    the requested minimum left degree (default ``d - 2``); retries with fresh
    randomness up to ``max_attempts`` times and raises ``RuntimeError`` if no
    attempt succeeds (which for ``n >> d`` is vanishingly unlikely).
    """
    from repro.bipartite.generators import random_regular_graph

    require(min_girth % 2 == 0, "bipartite girth is even; min_girth must be even")
    if min_delta is None:
        min_delta = max(1, d - 2)
    rng = ensure_rng(seed)
    for _ in range(max_attempts):
        adj = random_regular_graph(n, d, seed=rng.randrange(2**31))
        peeled = peel_short_cycles(adj, min_girth // 2, seed=rng.randrange(2**31))
        if min(len(nbrs) for nbrs in peeled) < min_delta:
            continue
        inst = incidence_instance(peeled)
        g = bipartite_girth(inst)
        if g is None or g >= min_girth:
            return inst
    raise RuntimeError(
        f"could not build a girth-{min_girth} instance with n={n}, d={d} "
        f"after {max_attempts} attempts"
    )
