"""Sinkless orientation: problem definition, verifier, and baselines.

A *sinkless orientation* of a graph orients every edge such that no node (of
degree at least the problem's minimum-degree bound) is a sink, i.e. every
such node has at least one outgoing edge.  The problem is the source of the
paper's lower bound (Section 2.5): [BFH+16] showed an Ω(log_∆ log n)
randomized lower bound, lifted to Ω(log_∆ n) deterministic by [CKP16], and
Theorem 2.10 transfers both to weak splitting via the Figure 1 reduction
(implemented in :mod:`repro.core.lower_bound`).

Besides the verifier this module ships two constructive baselines:

* :func:`greedy_sinkless_orientation` — a centralized Las-Vegas peeling
  procedure used as ground truth in tests;
* :class:`TrialAndFixSinkless` — a simple randomized LOCAL algorithm run in
  the synchronous simulator (orient uniformly at random, then sinks re-flip
  a random incident edge each round until no sinks remain).  On graphs of
  minimum degree ``d`` a node stays a sink with probability ``2^{-d}`` per
  retry, so the simulation terminates in ``O(log_{2^d} n)`` rounds w.h.p. —
  a qualitative stand-in for the [GS17] ``O(log log n)`` routine.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.local.engine import CSREngine
from repro.local.network import NO_BROADCAST, LocalAlgorithm, Network, NodeView
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require

__all__ = [
    "is_sinkless",
    "sinks",
    "greedy_sinkless_orientation",
    "TrialAndFixSinkless",
    "run_trial_and_fix",
]

# An orientation of a general graph is a dict {(u, v): True} meaning u -> v,
# with exactly one of (u, v), (v, u) present per edge.
GraphOrientation = Dict[Tuple[int, int], bool]


def _edge_set(adj: Sequence[Sequence[int]]) -> Set[Tuple[int, int]]:
    return {(u, v) for u in range(len(adj)) for v in adj[u] if u < v}


def sinks(
    adj: Sequence[Sequence[int]], orientation: GraphOrientation, min_degree: int = 1
) -> List[int]:
    """Nodes of degree >= ``min_degree`` with no outgoing edge."""
    n = len(adj)
    out_deg = [0] * n
    for (u, v) in orientation:
        out_deg[u] += 1
    return [v for v in range(n) if len(adj[v]) >= min_degree and out_deg[v] == 0]


def is_sinkless(
    adj: Sequence[Sequence[int]], orientation: GraphOrientation, min_degree: int = 1
) -> bool:
    """Verify a sinkless orientation.

    Checks (a) every edge is oriented exactly once, and (b) every node of
    degree >= ``min_degree`` has an outgoing edge.
    """
    edges = _edge_set(adj)
    covered: Set[Tuple[int, int]] = set()
    for (u, v) in orientation:
        key = (min(u, v), max(u, v))
        require(key in edges, f"orientation mentions non-edge {u, v}")
        require(key not in covered, f"edge {key} oriented twice")
        covered.add(key)
    if covered != edges:
        return False
    return not sinks(adj, orientation, min_degree)


def greedy_sinkless_orientation(
    adj: Sequence[Sequence[int]], seed: SeedLike = None
) -> GraphOrientation:
    """Centralized Las-Vegas construction (test baseline).

    Start from a uniformly random orientation, then repeatedly pick a sink
    and flip one of its incident edges outward, preferring flips whose other
    endpoint keeps an outgoing edge.  On min-degree >= 2 graphs with a cycle
    in every component this terminates; we cap iterations defensively.
    """
    rng = ensure_rng(seed)
    n = len(adj)
    orientation: GraphOrientation = {}
    out_deg = [0] * n
    for u in range(n):
        for v in adj[u]:
            if u < v:
                if rng.random() < 0.5:
                    orientation[(u, v)] = True
                    out_deg[u] += 1
                else:
                    orientation[(v, u)] = True
                    out_deg[v] += 1
    for _ in range(10 * n * n + 10):
        sink_nodes = [v for v in range(n) if adj[v] and out_deg[v] == 0]
        if not sink_nodes:
            return orientation
        s = rng.choice(sink_nodes)
        # Flip an incoming edge whose tail has out-degree >= 2 if possible.
        candidates = sorted(set(adj[s]))
        good = [w for w in candidates if out_deg[w] >= 2]
        w = rng.choice(good if good else candidates)
        del orientation[(w, s)]
        orientation[(s, w)] = True
        out_deg[w] -= 1
        out_deg[s] += 1
    raise RuntimeError("greedy sinkless orientation did not converge")


class TrialAndFixSinkless(LocalAlgorithm):
    """Randomized LOCAL algorithm: random orientation + per-round sink fixes.

    Each edge is owned by its lower-index endpoint for bookkeeping; per round
    every sink re-flips one uniformly chosen incident edge outward.  Flips
    are announced to neighbors so both endpoints agree on the direction.
    Terminates when a node and all its neighbors have been sink-free for one
    full round (checked via a final confirmation message).
    """

    def __init__(self, min_degree: int = 1):
        self.min_degree = min_degree

    def init(self, view: NodeView) -> None:
        # ``out[port]`` = True if the edge at that port is oriented outward.
        view.state["out"] = {}
        view.state["phase"] = "init"

    def _is_sink(self, view: NodeView) -> bool:
        if view.degree < self.min_degree:
            return False
        return not any(view.state["out"].values())

    def broadcast(self, view: NodeView, round_no: int) -> object:
        # Steady state: a non-sink node sends the same reassurance on every
        # port, which the batched engine delivers on its CSR fast path.
        # Round 1 (per-port proposals) and sink rounds (one port flips) fall
        # back to the general ``send``.
        if round_no == 1 or (view.degree > 0 and self._is_sink(view)):
            return NO_BROADCAST
        return ("ok", view.uid)

    def send(self, view: NodeView, round_no: int) -> Dict[int, object]:
        if round_no == 1:
            # Propose a random direction for every port; ties broken by uid.
            props = {p: view.rng.random() < 0.5 for p in range(view.degree)}
            view.state["proposal"] = props
            return {p: ("prop", props[p], view.uid) for p in range(view.degree)}
        msgs: Dict[int, object] = {}
        if self._is_sink(view) and view.degree > 0:
            p = view.rng.randrange(view.degree)
            view.state["out"][p] = True
            msgs[p] = ("flip", view.uid)
        for p in range(view.degree):
            msgs.setdefault(p, ("ok", view.uid))
        return msgs

    def receive(self, view: NodeView, round_no: int, inbox: Dict[int, object]) -> None:
        if round_no == 1:
            for p in range(view.degree):
                mine = view.state["proposal"][p]
                msg = inbox.get(p)
                if msg is None:
                    # Faulty environment (scenario hooks): the neighbor's
                    # proposal was lost or the neighbor crashed.  Fall back
                    # to our own coin for our side of the edge; a resulting
                    # disagreement is resolved at extraction time (the lower
                    # endpoint's view is authoritative).
                    view.state["out"][p] = mine
                    continue
                kind, theirs, their_uid = msg
                # Deterministic symmetric tie-break: higher uid's coin wins.
                winner = mine if view.uid > their_uid else theirs
                # The winner's coin True = "winner's side points outward".
                outward = winner if view.uid > their_uid else not winner
                view.state["out"][p] = outward
            return
        for p, msg in inbox.items():
            if isinstance(msg, tuple) and msg[0] == "flip":
                view.state["out"][p] = False  # neighbor took the edge outward
        if not self._is_sink(view):
            view.output = dict(view.state["out"])
            # Halt only after a quiet round: a neighbor's future flip could
            # only *give* us an outgoing edge... but it can also *steal* one,
            # so we keep participating until the global simulator stops us.
            view.state["phase"] = "stable"


def run_trial_and_fix(
    adj: Sequence[Sequence[int]],
    min_degree: int = 1,
    seed: int = 0,
    max_rounds: int = 200,
    method: str = "engine",
    coins="philox",
    engine=None,
    hooks=None,
    faults=None,
    shards: Optional[int] = None,
    executor=None,
    recover: bool = False,
) -> Tuple[GraphOrientation, int]:
    """Run :class:`TrialAndFixSinkless` until globally sink-free.

    ``method="engine"`` (default) uses the batched engine with a global
    stopping probe (the harness may observe the configuration; the nodes
    themselves never use global information).  The probe checks for sinks
    after each round — one O(R) pass, where the reference simulator's
    rerun-under-growing-caps emulation cost O(R²) — and fires from round 2
    onward, matching the historical "at least one proposal round plus one
    fix round" accounting.

    ``method="dense"`` runs the vectorized numpy kernel
    (:func:`repro.local.dense.sinkless_trial_dense`): bit-identical
    orientation and round count with ``coins="replay"``,
    distribution-identical with the default O(1)-setup ``coins="philox"``.
    Pass a prebuilt ``engine`` over the same adjacency to amortize CSR
    packing across calls.  Returns the orientation and the round count.

    ``hooks`` (engine method) / ``faults`` (dense method) inject a faulty
    environment, see :mod:`repro.scenarios` — note the default probe here
    still demands a globally sink-free configuration; the scenario runner
    uses its own survivor-aware stopping rule under crash faults.
    ``recover=True`` (engine and dense methods) switches to that
    survivor-aware rule and appends the self-stabilizing detect-and-repair
    tail (:func:`~repro.scenarios.recovery.sinkless_repair`): reconcile
    disagreeing edge views, then fix sinks over *alive* ports only, under
    the same fault schedule.  The fault schedule must leave round 1 (the
    proposal exchange) clean.

    ``method="dense-batched"`` solves a whole batch of seeds in one kernel
    call: pass a sequence of seeds as ``seed`` and get back a list of
    ``(orientation, rounds)`` pairs, one per seed, each bit-identical to a
    ``method="dense", coins="keyed"`` run of that seed
    (:func:`repro.local.dense.sinkless_trial_batched`).

    ``method="dense-sharded"`` runs the same trial across node-range CSR
    shards on a persistent process pool with one halo exchange per fix
    round (:func:`repro.local.sharded.sinkless_trial_sharded`) —
    bit-identical per trial to ``method="dense", coins="keyed"``.  Pass
    ``executor`` (a live :class:`~repro.local.sharded.ShardedExecutor`) to
    keep shard workers hot across calls; ``shards`` sizes a throwaway one.
    """
    require(
        method in ("engine", "dense", "dense-batched", "dense-sharded"),
        f"unknown method {method!r}",
    )
    require(
        not recover or method in ("engine", "dense"),
        "recover=True requires method 'engine' or 'dense'",
    )
    if method == "dense-sharded":
        from repro.local.dense import dense_orientation
        from repro.local.sharded import sinkless_trial_sharded

        require(
            coins in ("philox", "keyed"),
            f"dense-sharded runs keyed coins only, got coins={coins!r}",
        )
        if engine is None:
            engine = CSREngine(Network(adj))
        sharded = sinkless_trial_sharded(
            engine, min_degree=min_degree, seed=seed, shards=shards,
            max_rounds=max_rounds, faults=faults, executor=executor,
        )
        return dense_orientation(engine, sharded.out), sharded.rounds
    if method == "dense-batched":
        from repro.local.dense import dense_orientation, sinkless_trial_batched

        if engine is None:
            engine = CSREngine(Network(adj))
        batch = sinkless_trial_batched(
            engine, list(seed), min_degree=min_degree, coins=coins,
            max_rounds=max_rounds, faults=faults,
        )
        return [
            (dense_orientation(engine, batch.out[t]), int(batch.rounds[t]))
            for t in range(len(batch))
        ]
    if method == "dense":
        from repro.local.dense import dense_orientation, sinkless_trial_dense

        if engine is None:
            engine = CSREngine(Network(adj))
        dense = sinkless_trial_dense(
            engine, min_degree=min_degree, seed=seed, coins=coins,
            max_rounds=max_rounds, faults=faults, strict=not recover,
        )
        if recover:
            return _repair_orientation(
                engine, faults, seed, dense.out.copy(), dense.crashed.copy(),
                min_degree, dense.rounds, max_rounds,
            )
        return dense_orientation(engine, dense.out), dense.rounds

    net = engine.network if engine is not None else Network(adj)
    algo = TrialAndFixSinkless(min_degree=min_degree)

    def probe(round_no: int, views) -> bool:
        if round_no < 2:
            return False
        orientation = _views_to_orientation(adj, _Views(views))
        remaining = sinks(adj, orientation, min_degree)
        if not recover:
            return not remaining
        # Survivor-aware stopping (the scenario runner's rule): crashes
        # are silent, so the algorithm can do no better than this; the
        # repair tail owns whatever defects remain.
        return not any(not views[v].state.get("crashed") for v in remaining)

    if engine is None:
        engine = CSREngine(net)
    result = engine.run(algo, max_rounds=max_rounds, seed=seed, probe=probe, hooks=hooks)
    if recover:
        import numpy as np

        from repro.scenarios.masks import DenseFaults
        from repro.scenarios.recovery import bound_stack

        offsets, _, _ = engine.dense_arrays()
        out = np.zeros(int(offsets[-1]), dtype=bool)
        crashed = np.zeros(net.n, dtype=bool)
        for i, view in enumerate(result.views):
            base = int(offsets[i])
            for p, is_out in view.state.get("out", {}).items():
                out[base + p] = bool(is_out)
            crashed[i] = bool(view.state.get("crashed"))
        bound = bound_stack(hooks=hooks)
        repair_faults = DenseFaults(engine, bound) if bound else None
        return _repair_orientation(
            engine, repair_faults, seed, out, crashed, min_degree,
            result.rounds, max_rounds,
        )
    orientation = _views_to_orientation(adj, result)
    if result.rounds >= 2 and not sinks(adj, orientation, min_degree):
        return orientation, result.rounds
    raise RuntimeError(f"no sinkless orientation after {max_rounds} rounds")


def _repair_orientation(engine, faults, seed, out, crashed, min_degree, rounds,
                        max_rounds):
    """Shared ``recover=True`` tail: repair in place, extract orientation."""
    from repro.local.dense import dense_orientation
    from repro.scenarios.recovery import sinkless_repair

    rep = sinkless_repair(
        engine, faults, seed, out, crashed, min_degree,
        start_round=rounds + 1, max_rounds=max_rounds,
    )
    return dense_orientation(engine, out), rep.last_round


class _Views:
    """Minimal result-shaped wrapper so the probe can reuse the extractor."""

    def __init__(self, views):
        self.views = views


def _views_to_orientation(adj: Sequence[Sequence[int]], result) -> GraphOrientation:
    """Extract an orientation from node states (lower endpoint's view wins)."""
    orientation: GraphOrientation = {}
    for i, view in enumerate(result.views):
        out = view.state.get("out", {})
        for p, is_out in out.items():
            j = adj[i][p]
            if i < j:
                if is_out:
                    orientation[(i, j)] = True
                else:
                    orientation[(j, i)] = True
    return orientation
