"""Directed degree splitting — the Theorem 2.3 substrate.

Definition 2.1: a *directed degree splitting* of a multigraph ``G`` with
discrepancy ``κ`` is an orientation in which every node ``v`` satisfies
``|in(v) − out(v)| ≤ κ(deg(v))``.  Theorem 2.3 ([GHK+17b, Thm 1]) provides,
for every ``ε > 0``, a deterministic distributed algorithm achieving
``κ(d) = ε·d + 2`` in ``O(ε⁻¹ · log ε⁻¹ · (log log ε⁻¹)^1.71 · log n)``
rounds, and a randomized variant with ``log n`` replaced by ``log log n``.

This module exposes that *interface* with two engines:

* ``engine="eulerian"`` (default) — the Eulerian-partition orientation of
  :mod:`repro.orientation.eulerian`, which achieves discrepancy ≤ 1 ≤ ε·d+2
  for every ε, i.e. at least the black-box guarantee.  Rounds are charged
  analytically per the theorem's formula (DESIGN.md §2.3).
* ``engine="random"`` — every edge flips an independent fair coin; a genuine
  0-round LOCAL algorithm whose discrepancy concentrates around
  ``Θ(√(d log n))`` and therefore does *not* meet ε·d+2 for small ε.  Kept
  for the ablation experiment E15, which demonstrates why the reductions of
  Section 2 need the strong substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.local.complexity import degree_splitting_rounds
from repro.local.ledger import RoundLedger
from repro.orientation.eulerian import eulerian_orientation
from repro.orientation.multigraph import Multigraph, Orientation
from repro.utils.rng import SeedLike, ensure_rng
from repro.utils.validation import require, require_positive

__all__ = ["DegreeSplitting", "directed_degree_splitting"]


@dataclass(frozen=True)
class DegreeSplitting:
    """Result of a directed degree splitting run."""

    orientation: Orientation  #: the computed orientation
    eps: float  #: the accuracy parameter it was requested with
    rounds: float  #: LOCAL rounds charged for this invocation
    engine: str  #: which engine produced it

    def violations(self) -> List[int]:
        """Nodes violating the ``ε·d(v) + 2`` discrepancy guarantee."""
        g = self.orientation.graph
        return [
            v
            for v in range(g.n)
            if self.orientation.discrepancy(v) > self.eps * g.degree(v) + 2
        ]

    def satisfies_guarantee(self) -> bool:
        """True iff every node meets Definition 2.1 with κ(d) = ε·d + 2."""
        return not self.violations()


def directed_degree_splitting(
    graph: Multigraph,
    eps: float,
    n: int,
    ledger: Optional[RoundLedger] = None,
    randomized: bool = False,
    engine: str = "eulerian",
    seed: SeedLike = None,
    label: str = "degree-splitting",
) -> DegreeSplitting:
    """Compute a directed degree splitting with discrepancy ``ε·d(v) + 2``.

    Parameters
    ----------
    graph:
        The multigraph to orient.
    eps:
        Accuracy parameter of Theorem 2.3 (smaller = more balanced = more
        expensive).
    n:
        The ``n`` entering the round formula — the node count of the
        *original* LOCAL network, which may exceed ``graph.n`` when the
        multigraph is an auxiliary construction (Degree–Rank Reduction II).
    ledger:
        Optional round ledger; charged the Theorem 2.3 formula for the
        ``eulerian`` engine and 0 rounds for the 0-round ``random`` engine.
    randomized:
        Selects the randomized round formula (``log log n`` tail) — the
        variant the paper derives by plugging in the [GS17] sinkless
        orientation routine.
    engine:
        ``"eulerian"`` or ``"random"`` (ablation only; see module docstring).

    Returns a :class:`DegreeSplitting`; for the eulerian engine,
    ``result.satisfies_guarantee()`` always holds.
    """
    require_positive(eps, "eps")
    require(n >= 2, f"n must be >= 2, got {n}")
    if engine == "eulerian":
        orientation = eulerian_orientation(graph)
        rounds = degree_splitting_rounds(eps, n, randomized=randomized)
    elif engine == "random":
        rng = ensure_rng(seed)
        direction = tuple(1 if rng.random() < 0.5 else -1 for _ in graph.edges)
        orientation = Orientation(graph=graph, direction=direction)
        rounds = 0.0
    else:
        raise ValueError(f"unknown engine {engine!r}; expected 'eulerian' or 'random'")
    if ledger is not None:
        ledger.charge(rounds, label)
    return DegreeSplitting(orientation=orientation, eps=eps, rounds=rounds, engine=engine)
