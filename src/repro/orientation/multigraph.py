"""Undirected multigraphs with edge identities, and orientations of them.

The directed degree splitting of Definition 2.1 operates on multigraphs: the
auxiliary graph ``G`` built by Degree–Rank Reduction II explicitly "can have
multiple edges between two nodes with distinct corresponding nodes", and the
bipartite graph itself is treated as a (bipartite) multigraph by Reduction I.

An :class:`Orientation` assigns each edge a direction; for edge
``e = (a, b)`` the value ``+1`` means ``a → b`` and ``-1`` means ``b → a``.
Self-loops are permitted (they contribute one incoming and one outgoing edge
regardless of orientation, hence never affect discrepancy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.utils.validation import require

__all__ = ["Multigraph", "Orientation"]


class Multigraph:
    """An undirected multigraph on nodes ``0 .. n-1`` with an edge list."""

    __slots__ = ("n", "edges", "incidence")

    def __init__(self, n: int, edges: Sequence[Tuple[int, int]]) -> None:
        require(n >= 0, f"n must be >= 0, got {n}")
        self.n = n
        self.edges: Tuple[Tuple[int, int], ...] = tuple((int(a), int(b)) for a, b in edges)
        incidence: List[List[int]] = [[] for _ in range(n)]
        for eid, (a, b) in enumerate(self.edges):
            require(0 <= a < n and 0 <= b < n, f"edge {eid} endpoint out of range")
            incidence[a].append(eid)
            if b != a:
                incidence[b].append(eid)
        self.incidence: Tuple[Tuple[int, ...], ...] = tuple(tuple(x) for x in incidence)

    @property
    def n_edges(self) -> int:
        """Number of edges (with multiplicity)."""
        return len(self.edges)

    def degree(self, v: int) -> int:
        """Degree of ``v`` (self-loops count twice)."""
        deg = len(self.incidence[v])
        deg += sum(1 for e in self.incidence[v] if self.edges[e] == (v, v))
        return deg

    def max_degree(self) -> int:
        """Maximum degree over all nodes (0 for the empty graph)."""
        return max((self.degree(v) for v in range(self.n)), default=0)


@dataclass(frozen=True)
class Orientation:
    """An orientation of a :class:`Multigraph`.

    ``direction[e]`` is ``+1`` for "from ``edges[e][0]`` to ``edges[e][1]``"
    and ``-1`` for the reverse.
    """

    graph: Multigraph
    direction: Tuple[int, ...]

    def __post_init__(self) -> None:
        require(
            len(self.direction) == self.graph.n_edges,
            "orientation must cover every edge",
        )
        for d in self.direction:
            require(d in (1, -1), f"direction entries must be +/-1, got {d}")

    def head(self, e: int) -> int:
        """The node the edge points *to*."""
        a, b = self.graph.edges[e]
        return b if self.direction[e] == 1 else a

    def tail(self, e: int) -> int:
        """The node the edge points *from*."""
        a, b = self.graph.edges[e]
        return a if self.direction[e] == 1 else b

    def out_degree(self, v: int) -> int:
        """Number of edges directed away from ``v`` (self-loops count once)."""
        return sum(1 for e in self.graph.incidence[v] if self.tail(e) == v)

    def in_degree(self, v: int) -> int:
        """Number of edges directed into ``v`` (self-loops count once)."""
        return sum(1 for e in self.graph.incidence[v] if self.head(e) == v)

    def discrepancy(self, v: int) -> int:
        """``|in(v) − out(v)|`` — Definition 2.1's per-node discrepancy.

        Self-loops contribute one in and one out, cancelling exactly, which
        matches the convention that a self-loop is both incoming and
        outgoing.
        """
        balance = 0
        for e in self.graph.incidence[v]:
            a, b = self.graph.edges[e]
            if a == b:
                continue  # one in + one out: net zero
            balance += 1 if self.head(e) == v else -1
        return abs(balance)

    def max_discrepancy(self) -> int:
        """Maximum discrepancy over all nodes."""
        return max((self.discrepancy(v) for v in range(self.graph.n)), default=0)
