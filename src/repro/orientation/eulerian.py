"""Eulerian orientations: discrepancy ≤ 1 at every node.

Classic fact: augment the multigraph with a virtual node joined to every
odd-degree node (their number is even per component and globally), so all
degrees become even; each connected component then carries an Euler circuit
(Hierholzer's algorithm); orienting every edge along its circuit gives
in-degree = out-degree at every node; removing the virtual edges changes the
balance of each odd-degree node by exactly one.  Hence the returned
orientation has discrepancy 0 at even-degree nodes and 1 at odd-degree nodes
— at least as strong as the ``ε·d(v) + 2`` guarantee of Theorem 2.3 for any
``ε ≥ 0``.  (See DESIGN.md §2.3 for why this engine stands in for the
[GHK+17b] distributed routine and how its rounds are charged.)
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.orientation.multigraph import Multigraph, Orientation

__all__ = ["eulerian_orientation"]


def eulerian_orientation(graph: Multigraph) -> Orientation:
    """Orient ``graph`` with per-node discrepancy at most 1.

    Runs in O(|V| + |E|) time.  Self-loops are oriented arbitrarily (they
    never contribute to discrepancy).
    """
    n = graph.n
    odd = [v for v in range(n) if graph.degree(v) % 2 == 1]
    # Build the augmented edge list: original edges keep their ids; virtual
    # edges (virtual node = index n) are appended after them.
    aug_edges: List[Tuple[int, int]] = list(graph.edges)
    for v in odd:
        aug_edges.append((n, v))
    n_aug = n + 1 if odd else n

    # Incidence of the augmented graph as (edge id, other endpoint) pairs;
    # self-loops appear twice so the circuit enters and leaves.
    incidence: List[List[Tuple[int, int]]] = [[] for _ in range(n_aug)]
    for eid, (a, b) in enumerate(aug_edges):
        incidence[a].append((eid, b))
        incidence[b].append((eid, a))

    direction: List[int] = [0] * len(aug_edges)
    used = [False] * len(aug_edges)
    cursor = [0] * n_aug  # per-node pointer into its incidence list

    for start in range(n_aug):
        # Hierholzer: extend a closed walk from `start`, splicing sub-circuits.
        stack: List[Tuple[int, Optional[int]]] = [(start, None)]  # (node, incoming edge)
        path: List[Tuple[int, int]] = []  # (edge id, tail node) in traversal order
        while stack:
            v, _ = stack[-1]
            advanced = False
            while cursor[v] < len(incidence[v]):
                eid, w = incidence[v][cursor[v]]
                cursor[v] += 1
                if used[eid]:
                    continue
                used[eid] = True
                path.append((eid, v))
                stack.append((w, eid))
                advanced = True
                break
            if not advanced:
                stack.pop()
        for eid, tail in path:
            a, b = aug_edges[eid]
            direction[eid] = 1 if tail == a else -1

    return Orientation(graph=graph, direction=tuple(direction[: graph.n_edges]))
