"""Degree splitting substrate (Theorem 2.3) and sinkless orientation."""

from repro.orientation.multigraph import Multigraph, Orientation
from repro.orientation.eulerian import eulerian_orientation
from repro.orientation.degree_splitting import DegreeSplitting, directed_degree_splitting
from repro.orientation.sinkless import (
    TrialAndFixSinkless,
    greedy_sinkless_orientation,
    is_sinkless,
    run_trial_and_fix,
    sinks,
)

__all__ = [
    "Multigraph",
    "Orientation",
    "eulerian_orientation",
    "DegreeSplitting",
    "directed_degree_splitting",
    "TrialAndFixSinkless",
    "greedy_sinkless_orientation",
    "is_sinkless",
    "run_trial_and_fix",
    "sinks",
]
