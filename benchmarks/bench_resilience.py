"""E23: resilience under recovery — plain vs self-stabilizing runs.

For each curated fault scenario the table compares the base pipeline
(faults land, contract violations recorded) against the same run with the
recovery layer's repair tail (:mod:`repro.scenarios.recovery`): violations
before vs after repair, the fraction of trials that certifiably recovered,
and the repair tail's round cost.  The paper-shaped claim: local
detect-and-repair drives every settling fault schedule back to a
zero-violation state within a bounded number of extra rounds.
"""

from _harness import attach_rows

from repro.scenarios import run_scenario

RESILIENCE_N = 400
RESILIENCE_SEEDS = range(5)

#: (scenario, backend) cells curated into the E23 table: one per fault
#: family (crash, correlated crash, shard loss, edge deletion, Byzantine
#: corruption) spanning all three pipelines.
RESILIENCE_CELLS = (
    ("luby/crash", "dense"),
    ("luby/crash-correlated", "dense"),
    ("luby/crash-shard", "dense"),
    ("luby/edge-deletion", "dense"),
    ("luby/byzantine", "dense"),
    ("sinkless/byzantine", "engine"),
    ("splitting/byzantine", "engine"),
)


def _mean(values):
    values = list(values)
    return sum(values) / len(values)


def test_e23_recovery_restores_contracts(benchmark):
    rows = []
    for name, backend in RESILIENCE_CELLS:
        plain = [
            run_scenario(name, n=RESILIENCE_N, seed=s, backend=backend,
                         coins="replay")
            for s in RESILIENCE_SEEDS
        ]
        recovering = [
            run_scenario(name, n=RESILIENCE_N, seed=s, backend=backend,
                         coins="replay", recover=True)
            for s in RESILIENCE_SEEDS
        ]
        recovered_fraction = _mean(m["recovered"] for m in recovering)
        after = _mean(m["violations"] for m in recovering)
        rows.append(
            (
                name,
                backend,
                f"{_mean(m['violations'] for m in plain):.2f}",
                f"{after:.2f}",
                f"{recovered_fraction:.2f}",
                f"{_mean(m['repair_rounds'] for m in recovering):.1f}",
                f"{_mean(m.get('rounds_to_recover', 0) for m in recovering):.1f}",
            )
        )
        # The headline property: every settling schedule certifiably
        # recovers to zero violations on every trial.
        assert recovered_fraction == 1.0, (name, backend)
        assert after == 0.0, (name, backend)
        # Sanity: the recovery layer actually had damage to repair
        # somewhere in this family sweep (guards against a scenario that
        # silently stopped injecting faults).
        assert all(
            m["violations_before_recovery"] == p["violations"]
            for m, p in zip(recovering, plain)
        ), (name, backend)

    assert any(float(r[2]) > 0 for r in rows), "no scenario produced damage"

    benchmark(
        lambda: run_scenario("luby/byzantine", n=RESILIENCE_N, seed=0,
                             backend="dense", coins="replay", recover=True)
    )
    attach_rows(
        benchmark,
        "E23: self-stabilizing recovery vs plain runs (violations, repair cost)",
        ["scenario", "backend", "viol before", "viol after", "recovered",
         "repair rounds", "rounds to recover"],
        rows,
    )
