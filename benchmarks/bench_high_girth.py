"""E14 — Section 5 (girth >= 10 instances).

Paper claims (Lemma 5.1, Theorems 5.2/5.3): on girth >= 10 instances with
δ = Ω(√log n), one shattering round leaves a residual with δ_H >= 6·r_H
(here: residual rank collapses to <= 1 with δ_H >= δ/4 >= 2), after which
the Theorem 2.7 machinery finishes in poly log rounds.  We run the
scalable acyclic family (exact independence; see DESIGN.md/EXPERIMENTS.md
on why genuinely cyclic girth-10 instances with large δ exceed laptop
scale) and validate the cyclic incidence construction separately.
"""

import math

import pytest

from repro.bipartite import bipartite_girth, high_girth_instance, tree_instance
from repro.core import (
    high_girth_weak_splitting,
    is_weak_splitting,
    shatter_until_low_rank,
)
from repro.local import RoundLedger

from _harness import attach_rows


def test_e14_residual_regime_on_forest_family(benchmark):
    rows = []
    for d in (16, 20, 24):
        inst = tree_instance(roots=25, d=d, r=2)
        out = shatter_until_low_rank(inst, seed=d)
        res = out.residual
        delta_h = (
            min(res.left_degree(u) for u in range(res.n_left)) if res.n_left else None
        )
        rows.append((d, inst.n, len(out.unsatisfied), res.rank, delta_h))
        if res.n_left:
            assert (res.rank <= 1 and delta_h >= 2) or delta_h >= 6 * res.rank

    inst = tree_instance(roots=25, d=20, r=2)
    benchmark(lambda: shatter_until_low_rank(inst, seed=5))
    attach_rows(
        benchmark,
        "E14 (Lemma 5.1): residual after shattering on girth-inf instances",
        ["delta", "n", "#unsatisfied", "r_H", "delta_H"],
        rows,
    )


def test_e14_full_pipelines(benchmark):
    inst = tree_instance(roots=20, d=20, r=2)
    rows = []
    for det in (True, False):
        led = RoundLedger()
        coloring = high_girth_weak_splitting(inst, seed=6, ledger=led, deterministic=det)
        assert is_weak_splitting(inst, coloring)
        rows.append(("Thm 5.2 (det)" if det else "Thm 5.3 (rand)", led.total))

    benchmark(lambda: high_girth_weak_splitting(inst, seed=7, deterministic=False))
    attach_rows(
        benchmark,
        "E14 (Theorems 5.2/5.3): high-girth pipelines, rounds",
        ["pipeline", "rounds"],
        rows,
    )


def test_e14_cyclic_incidence_construction(benchmark):
    rows = []
    for n, d in ((120, 4), (200, 4)):
        inst = high_girth_instance(n, d, seed=n, min_delta=2)
        g = bipartite_girth(inst)
        rows.append((n, d, inst.delta, inst.rank, g if g is not None else "acyclic"))
        assert g is None or g >= 10
        assert inst.rank == 2

    benchmark(lambda: high_girth_instance(120, 4, seed=1, min_delta=2))
    attach_rows(
        benchmark,
        "E14: genuinely cyclic girth >= 10 incidence instances",
        ["n_G", "d", "delta_B", "rank_B", "girth"],
        rows,
    )
