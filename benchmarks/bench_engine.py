"""E17 — batched CSR engine vs reference simulator (Luby MIS throughput).

The claim under test: :class:`repro.local.engine.CSREngine` executes the
same simulation as :func:`repro.local.network.run_local` — bit-identical
outputs and round counts for a fixed seed — at >= 3x the throughput on
MIS-scale inputs (n >= 10,000).  Equivalence is asserted on every run;
the speedup assertion uses best-of-3 wall times with GC paused to damp
scheduler noise.
"""

import gc
import time

from repro.bipartite.generators import random_sparse_graph
from repro.local import CSREngine, Network, run_local
from repro.mis.luby import LubyMIS

from _harness import attach_rows

N = 10_000
AVG_DEGREE = 24


def _best_of(fn, repeat=3):
    best = float("inf")
    for _ in range(repeat):
        was_enabled = gc.isenabled()
        gc.disable()
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if was_enabled:
            gc.enable()
        best = min(best, elapsed)
    return best


def test_e17_engine_mis_equivalence_and_speedup(benchmark):
    adj = random_sparse_graph(N, AVG_DEGREE, seed=17)
    net = Network(adj)
    engine = CSREngine(net)

    reference = run_local(net, LubyMIS(), seed=1)
    fast = engine.run(LubyMIS(), seed=1)
    assert reference.outputs() == fast.outputs()
    assert reference.rounds == fast.rounds
    assert reference.completed and fast.completed

    t_reference = _best_of(lambda: run_local(net, LubyMIS(), seed=1))
    t_engine = _best_of(lambda: engine.run(LubyMIS(), seed=1))
    speedup = t_reference / t_engine
    if speedup < 3.0:
        # One remeasure before failing: on shared CI runners a single noisy
        # window can depress the ratio; a genuine regression will reproduce.
        t_reference = min(t_reference, _best_of(lambda: run_local(net, LubyMIS(), seed=1)))
        t_engine = min(t_engine, _best_of(lambda: engine.run(LubyMIS(), seed=1)))
        speedup = t_reference / t_engine

    benchmark(lambda: engine.run(LubyMIS(), seed=1))
    attach_rows(
        benchmark,
        "E17: batched engine vs reference simulator (Luby MIS)",
        ["n", "avg deg", "rounds", "reference s", "engine s", "speedup"],
        [
            (
                N,
                AVG_DEGREE,
                reference.rounds,
                f"{t_reference:.3f}",
                f"{t_engine:.3f}",
                f"{speedup:.2f}x",
            )
        ],
    )
    assert speedup >= 3.0, f"engine only {speedup:.2f}x faster than reference"


def test_e17_engine_mis_large_sweep_scales(benchmark):
    """Frontier tracking: per-node cost must not grow with n (torus family)."""
    from repro.bipartite.generators import grid_graph
    from repro.mis.luby import luby_mis, is_mis

    rows = []
    for side in (40, 80, 120):
        adj = grid_graph(side, side, periodic=True)
        start = time.perf_counter()
        mis, rounds = luby_mis(adj, seed=side)
        elapsed = time.perf_counter() - start
        assert is_mis(adj, mis)
        rows.append(
            (side * side, rounds, len(mis), f"{1e6 * elapsed / (side * side):.2f}")
        )

    adj = grid_graph(100, 100, periodic=True)
    benchmark(lambda: luby_mis(adj, seed=7))
    attach_rows(
        benchmark,
        "E17: engine scaling on torus (Luby MIS)",
        ["n", "rounds", "|MIS|", "us per node"],
        rows,
    )
