"""E17/E18/E19 — execution-backend ladder on Luby MIS throughput.

Three claims under test, all with equivalence asserted on every run and
wall-clock ratios taken best-of-N with the GC paused (:func:`_harness.best_of`
— the 1-CPU container jitters too much for single-shot gates):

* **E17**: :class:`repro.local.engine.CSREngine` executes the same
  simulation as :func:`repro.local.network.run_local` — bit-identical
  outputs and round counts for a fixed seed — at >= 3x the throughput on
  MIS-scale inputs (n >= 10,000).
* **E18**: the dense numpy backend
  (:func:`repro.local.dense.luby_mis_dense`) executes whole rounds as array
  kernels with counter-based coins at >= 10x the engine's throughput at
  n = 100,000 on a ``random_sparse_graph`` of average degree ~20, while a
  replayed-coin run stays bit-identical to the engine.
* **E19**: faulty dense runs keep the dense speedup — the counter-based
  mask kernel (``fault_mode="mask"``) builds the per-round delivery mask
  of an ``IIDMessageDrop(p=0.05)`` scenario at n = 100,000, deg ~20 at
  >= 8x the per-slot-loop (replay) baseline, and a full faulty mask-mode
  Luby run completes; both timings land in the BENCH json rows.
* **E20**: trial batching — solving many seeds in one batched kernel call
  beats the per-trial dense loop >= 4x.
* **E21**: observability is free when off — a dense Luby run at
  n = 100,000 with the default :class:`repro.obs.NullTracer` stays within
  2% of the untraced run, and a live :class:`repro.obs.Tracer` emits
  exactly one round record per executed round with matching active-set
  trajectories on all three backends.
* **E22**: sharded execution — Luby across a 4-shard process pool with
  per-round halo exchange (:func:`repro.local.sharded.luby_mis_sharded`)
  beats the single-process dense kernel >= 2x at n = 1,000,000, deg ~20,
  while staying bit-identical to ``coins="keyed"`` dense runs; partition
  and halo-exchange seconds land as their own table columns and as
  :mod:`repro.obs` span records.  Needs >= 4 cores (skips otherwise;
  ``REPRO_E22_FORCE=1`` overrides), so CI runs it on main pushes only.
"""

import os
import time

import pytest

from repro.bipartite.generators import random_sparse_graph
from repro.local import CSREngine, Network, run_local
from repro.mis.luby import LubyMIS

from _harness import attach_rows, best_of

N = 10_000
AVG_DEGREE = 24

DENSE_N = 100_000
DENSE_AVG_DEGREE = 20


def test_e17_engine_mis_equivalence_and_speedup(benchmark):
    adj = random_sparse_graph(N, AVG_DEGREE, seed=17)
    net = Network(adj)
    engine = CSREngine(net)

    reference = run_local(net, LubyMIS(), seed=1)
    fast = engine.run(LubyMIS(), seed=1)
    assert reference.outputs() == fast.outputs()
    assert reference.rounds == fast.rounds
    assert reference.completed and fast.completed

    t_reference = best_of(lambda: run_local(net, LubyMIS(), seed=1))
    t_engine = best_of(lambda: engine.run(LubyMIS(), seed=1))
    speedup = t_reference / t_engine
    if speedup < 3.0:
        # One remeasure before failing: on shared CI runners a single noisy
        # window can depress the ratio; a genuine regression will reproduce.
        t_reference = min(t_reference, best_of(lambda: run_local(net, LubyMIS(), seed=1)))
        t_engine = min(t_engine, best_of(lambda: engine.run(LubyMIS(), seed=1)))
        speedup = t_reference / t_engine

    benchmark(lambda: engine.run(LubyMIS(), seed=1))
    attach_rows(
        benchmark,
        "E17: batched engine vs reference simulator (Luby MIS)",
        ["n", "avg deg", "rounds", "reference s", "engine s", "speedup"],
        [
            (
                N,
                AVG_DEGREE,
                reference.rounds,
                f"{t_reference:.3f}",
                f"{t_engine:.3f}",
                f"{speedup:.2f}x",
            )
        ],
    )
    assert speedup >= 3.0, f"engine only {speedup:.2f}x faster than reference"


def test_e18_dense_backend_mis_speedup(benchmark):
    """Dense numpy kernels >= 10x over the CSR engine at n = 100k."""
    from repro.local.dense import luby_mis_dense

    adj = random_sparse_graph(DENSE_N, DENSE_AVG_DEGREE, seed=18)
    engine = CSREngine(Network(adj))
    engine.dense_arrays()  # pay the numpy mirror once, like the engine's packing

    # Correctness before speed: a replayed-coin dense run must be
    # bit-identical to the engine; the philox run must be a valid MIS.
    fast = engine.run(LubyMIS(), seed=1)
    replay = luby_mis_dense(engine, seed=1, coins="replay")
    assert replay.rounds == fast.rounds
    assert [bool(x) for x in replay.in_mis] == [
        bool(v.state.get("in_mis")) for v in fast.views
    ]
    dense = luby_mis_dense(engine, seed=1, coins="philox")
    assert dense.completed
    from repro.mis.luby import is_mis

    assert is_mis(adj, {int(i) for i in dense.in_mis.nonzero()[0]})

    t_engine = best_of(lambda: engine.run(LubyMIS(), seed=1), repeat=2)
    t_dense = best_of(lambda: luby_mis_dense(engine, seed=1, coins="philox"), repeat=5)
    speedup = t_engine / t_dense
    if speedup < 10.0:
        t_engine = min(t_engine, best_of(lambda: engine.run(LubyMIS(), seed=1), repeat=2))
        t_dense = min(
            t_dense, best_of(lambda: luby_mis_dense(engine, seed=1, coins="philox"), repeat=5)
        )
        speedup = t_engine / t_dense

    benchmark(lambda: luby_mis_dense(engine, seed=1, coins="philox"))
    attach_rows(
        benchmark,
        "E18: dense numpy backend vs batched engine (Luby MIS)",
        ["n", "avg deg", "rounds", "engine s", "dense s", "speedup"],
        [
            (
                DENSE_N,
                DENSE_AVG_DEGREE,
                dense.rounds,
                f"{t_engine:.3f}",
                f"{t_dense:.4f}",
                f"{speedup:.1f}x",
            )
        ],
    )
    assert speedup >= 10.0, f"dense backend only {speedup:.2f}x faster than engine"


def test_e19_fault_mask_dense_mis_speedup(benchmark):
    """Mask-mode fault kernels >= 8x over the per-slot loop at n = 100k.

    The baseline is the replay-mode mask build — exactly the per-slot
    python sweep over scalar ``fault_u01`` coins that ``DenseFaults`` ran
    before the vectorized path existed (sha512-seeded ``random.Random``
    per slot, O(m) interpreter work per round).  The contender is one
    counter-based hash-kernel call per round.  Both are one-round costs on
    the same engine and stack, so the ratio is the per-round fault-mask
    overhead a faulty dense sweep pays.
    """
    import time

    import numpy as np

    from repro.local.dense import luby_mis_dense
    from repro.scenarios import IIDMessageDrop, bind_all
    from repro.scenarios.masks import DenseFaults, SlotLayout

    adj = random_sparse_graph(DENSE_N, DENSE_AVG_DEGREE, seed=19)
    engine = CSREngine(Network(adj))
    engine.dense_arrays()
    net = engine.network
    layout = SlotLayout(engine)
    perts = (IIDMessageDrop(p=0.05),)
    bound_mask = bind_all(perts, net, fault_seed=1, fault_mode="mask")
    bound_loop = bind_all(perts, net, fault_seed=1, fault_mode="replay")

    # Correctness before speed: delivered_in must be the partner-gather of
    # delivered_out, and the mask drop rate must sit at p.
    faults = DenseFaults(engine, bound_mask, layout=layout)
    out1 = faults.delivered_out(1)
    assert np.array_equal(faults.delivered_in(1), out1[layout.partner])
    drop_rate = 1.0 - out1.mean()
    assert abs(drop_rate - 0.05) < 0.005, f"mask drop rate {drop_rate:.4f}"

    # A full faulty mask-mode run completes (under pure drops nobody
    # crashes and every node still decides).
    start = time.perf_counter()
    dense = luby_mis_dense(
        engine, seed=1, coins="philox",
        faults=DenseFaults(engine, bound_mask, layout=layout),
    )
    t_faulty_run = time.perf_counter() - start
    assert dense.completed and not dense.crashed.any()

    # Per-round mask build: per-slot loop baseline vs counter-based kernel.
    # A fresh DenseFaults per call defeats its round cache; repeat=1 for
    # the baseline (a single sweep is ~seconds of sha512 work, and noise
    # only helps the gate), with one remeasure before failing.
    t_loop = best_of(
        lambda: DenseFaults(engine, bound_loop, layout=layout).delivered_out(1),
        repeat=1,
    )
    t_mask = best_of(
        lambda: DenseFaults(engine, bound_mask, layout=layout).delivered_out(1),
        repeat=5,
    )
    speedup = t_loop / t_mask
    if speedup < 8.0:
        t_loop = min(t_loop, best_of(
            lambda: DenseFaults(engine, bound_loop, layout=layout).delivered_out(1),
            repeat=1,
        ))
        t_mask = min(t_mask, best_of(
            lambda: DenseFaults(engine, bound_mask, layout=layout).delivered_out(1),
            repeat=5,
        ))
        speedup = t_loop / t_mask

    benchmark(lambda: DenseFaults(engine, bound_mask, layout=layout).delivered_out(1))
    attach_rows(
        benchmark,
        "E19: counter-based fault masks vs per-slot loop (faulty dense Luby)",
        ["n", "avg deg", "rounds", "loop mask s", "kernel mask s", "speedup",
         "faulty run s"],
        [
            (
                DENSE_N,
                DENSE_AVG_DEGREE,
                dense.rounds,
                f"{t_loop:.3f}",
                f"{t_mask:.4f}",
                f"{speedup:.1f}x",
                f"{t_faulty_run:.3f}",
            )
        ],
    )
    assert speedup >= 8.0, f"mask kernel only {speedup:.2f}x over the slot loop"


BATCH_N = 10_000
BATCH_AVG_DEGREE = 20
BATCH_TRIALS = 64


def test_e20_trial_batched_dense_mis_speedup(benchmark):
    """Trial-batched dense Luby >= 4x over the per-trial dense loop.

    One :func:`~repro.local.dense.luby_mis_batched` call advances all 64
    seeds of a sweep cell (per-trial cache-hot phase 1, communal pooled
    tail once frontiers are small) against the baseline every sweep ran
    before: 64 sequential ``luby_mis_dense`` calls.  Correctness first:
    spot-check trials of the batch must be bit-identical to sequential
    ``coins="keyed"`` runs, and the per-trial round counts must be ragged
    (trials genuinely finish at different rounds and freeze).
    """
    from repro.local.dense import luby_mis_batched, luby_mis_dense

    adj = random_sparse_graph(BATCH_N, BATCH_AVG_DEGREE, seed=20)
    engine = CSREngine(Network(adj))
    engine.dense_arrays()
    seeds = list(range(BATCH_TRIALS))

    batch = luby_mis_batched(engine, seeds)
    assert bool(batch.completed.all())
    for s in (0, 17, 63):
        seq = luby_mis_dense(engine, seed=s, coins="keyed")
        assert (batch.in_mis[s] == seq.in_mis).all()
        assert int(batch.rounds[s]) == seq.rounds
    import numpy as np

    assert np.unique(batch.rounds).shape[0] >= 2, "expected ragged round counts"

    def per_trial_loop():
        for s in seeds:
            luby_mis_dense(engine, seed=s, coins="philox")

    t_loop = best_of(per_trial_loop, repeat=2)
    t_batch = best_of(lambda: luby_mis_batched(engine, seeds), repeat=3)
    speedup = t_loop / t_batch
    if speedup < 4.0:
        t_loop = min(t_loop, best_of(per_trial_loop, repeat=2))
        t_batch = min(t_batch, best_of(lambda: luby_mis_batched(engine, seeds), repeat=3))
        speedup = t_loop / t_batch

    benchmark(lambda: luby_mis_batched(engine, seeds))
    attach_rows(
        benchmark,
        "E20: trial-batched dense kernel vs per-trial dense loop (Luby MIS)",
        ["n", "avg deg", "trials", "loop s", "batched s", "speedup"],
        [
            (
                BATCH_N,
                BATCH_AVG_DEGREE,
                BATCH_TRIALS,
                f"{t_loop:.3f}",
                f"{t_batch:.3f}",
                f"{speedup:.2f}x",
            )
        ],
    )
    assert speedup >= 4.0, f"batched kernel only {speedup:.2f}x over the per-trial loop"


def test_e17_engine_mis_large_sweep_scales(benchmark):
    """Frontier tracking: per-node cost must not grow with n (torus family)."""
    from repro.bipartite.generators import grid_graph
    from repro.mis.luby import luby_mis, is_mis

    rows = []
    for side in (40, 80, 120):
        adj = grid_graph(side, side, periodic=True)
        start = time.perf_counter()
        mis, rounds = luby_mis(adj, seed=side)
        elapsed = time.perf_counter() - start
        assert is_mis(adj, mis)
        rows.append(
            (side * side, rounds, len(mis), f"{1e6 * elapsed / (side * side):.2f}")
        )

    adj = grid_graph(100, 100, periodic=True)
    benchmark(lambda: luby_mis(adj, seed=7))
    attach_rows(
        benchmark,
        "E17: engine scaling on torus (Luby MIS)",
        ["n", "rounds", "|MIS|", "us per node"],
        rows,
    )


def test_e21_noop_tracer_overhead(benchmark):
    """Tracing must be free when off: no-op tracer within 2% at n = 100k.

    Correctness first, on a small shared (graph, seed) with replayed
    coins: a live Tracer attached to each backend — hooks on the
    reference simulator and the CSR engine, explicit trace points in the
    dense kernel — emits exactly one round record per executed round, and
    the three traced active-set trajectories are identical (the runs are
    bit-identical, so their traces must be too).  Then the gate: the
    dense kernel's hoisted ``tracer is not None and tracer.enabled``
    guard means a NullTracer run does no per-round tracing work, and the
    best-of wall time must stay within 2% of the untraced run.
    """
    from repro.local.dense import luby_mis_dense
    from repro.obs import NullTracer, Tracer, TracingHooks

    small = random_sparse_graph(2_000, 12, seed=21)
    net = Network(small)
    engine = CSREngine(net)
    engine.dense_arrays()

    tracers = {
        "reference": Tracer(backend="reference"),
        "engine": Tracer(backend="engine"),
        "dense": Tracer(backend="dense"),
    }
    results = {
        "reference": run_local(net, LubyMIS(), seed=1,
                               hooks=TracingHooks(tracers["reference"])),
        "engine": engine.run(LubyMIS(), seed=1,
                             hooks=TracingHooks(tracers["engine"])),
        "dense": luby_mis_dense(engine, seed=1, coins="replay",
                                tracer=tracers["dense"]),
    }
    rounds = {k: r.rounds for k, r in results.items()}
    assert rounds["reference"] == rounds["engine"] == rounds["dense"]
    for backend, tracer in tracers.items():
        records = tracer.round_records()
        assert len(records) == rounds[backend], (
            f"{backend}: {len(records)} round records for "
            f"{rounds[backend]} rounds"
        )
    actives = {
        backend: [rec["active"] for rec in tracer.round_records()]
        for backend, tracer in tracers.items()
    }
    assert actives["reference"] == actives["engine"] == actives["dense"]

    adj = random_sparse_graph(DENSE_N, DENSE_AVG_DEGREE, seed=21)
    big = CSREngine(Network(adj))
    big.dense_arrays()
    null = NullTracer()

    def untraced():
        return luby_mis_dense(big, seed=1, coins="philox")

    def traced():
        return luby_mis_dense(big, seed=1, coins="philox", tracer=null)

    t_plain = best_of(untraced, repeat=5)
    t_traced = best_of(traced, repeat=5)
    overhead = t_traced / t_plain - 1.0
    if overhead > 0.02:
        t_plain = min(t_plain, best_of(untraced, repeat=5))
        t_traced = min(t_traced, best_of(traced, repeat=5))
        overhead = t_traced / t_plain - 1.0

    benchmark(traced)
    attach_rows(
        benchmark,
        "E21: no-op tracer overhead (dense Luby)",
        ["n", "avg deg", "untraced s", "null-traced s", "overhead"],
        [
            (
                DENSE_N,
                DENSE_AVG_DEGREE,
                f"{t_plain:.4f}",
                f"{t_traced:.4f}",
                f"{overhead:+.2%}",
            )
        ],
    )
    assert overhead <= 0.02, (
        f"NullTracer run {overhead:+.2%} slower than untraced (gate: 2%)"
    )


SHARDED_N = 1_000_000
SHARDED_AVG_DEGREE = 20
SHARDED_WORKERS = 4


def test_e22_sharded_luby_speedup(benchmark):
    """4-shard sharded Luby >= 2x over single-process dense at n = 1M.

    Correctness first, at a size where the pool tax is visible: a 4-shard
    run over real worker processes must be bit-identical to the
    single-process ``coins="keyed"`` dense kernel (membership, crash
    records, round count), and the attached tracer must carry one
    ``sharded.partition`` and one ``sharded.halo_exchange`` span per
    trial.  Then the gate: at n = 1,000,000, deg ~20, the hot 4-shard
    executor must solve a trial >= 2x faster than ``luby_mis_dense``,
    with partitioning and halo-exchange seconds reported as their own
    columns (the overheads the speedup already absorbs).
    """
    from repro.local.dense import luby_mis_dense
    from repro.local.sharded import ShardedExecutor, luby_mis_sharded
    from repro.obs import Tracer

    if (os.cpu_count() or 1) < SHARDED_WORKERS and not os.environ.get(
        "REPRO_E22_FORCE"
    ):
        pytest.skip(
            f"sharded speedup gate needs >= {SHARDED_WORKERS} cores "
            f"(found {os.cpu_count()}); set REPRO_E22_FORCE=1 to override"
        )

    small = CSREngine(Network(random_sparse_graph(20_000, SHARDED_AVG_DEGREE,
                                                  seed=22)))
    small.dense_arrays()
    seq = luby_mis_dense(small, seed=1, coins="keyed")
    tracer = Tracer(backend="dense-sharded")
    with ShardedExecutor(small, SHARDED_WORKERS, tracer=tracer) as ex:
        shard = luby_mis_sharded(small, seed=1, executor=ex)
    assert shard.rounds == seq.rounds
    assert (shard.in_mis == seq.in_mis).all()
    assert (shard.crashed == seq.crashed).all()
    spans = [r for r in tracer.records if r.get("kind") == "span"]
    assert {s["name"] for s in spans} == {
        "sharded.partition", "sharded.halo_exchange"
    }

    adj = random_sparse_graph(SHARDED_N, SHARDED_AVG_DEGREE, seed=22)
    engine = CSREngine(Network(adj))
    engine.dense_arrays()

    t_dense = best_of(lambda: luby_mis_dense(engine, seed=1, coins="keyed"),
                      repeat=2)
    with ShardedExecutor(engine, SHARDED_WORKERS) as ex:
        result = luby_mis_sharded(engine, seed=1, executor=ex)  # warm the pool
        t_sharded = best_of(
            lambda: luby_mis_sharded(engine, seed=1, executor=ex), repeat=2
        )
        speedup = t_dense / t_sharded
        if speedup < 2.0:
            t_dense = min(t_dense, best_of(
                lambda: luby_mis_dense(engine, seed=1, coins="keyed"), repeat=2
            ))
            t_sharded = min(t_sharded, best_of(
                lambda: luby_mis_sharded(engine, seed=1, executor=ex), repeat=2
            ))
            speedup = t_dense / t_sharded
        halo_before = ex.halo_seconds
        timed = luby_mis_sharded(engine, seed=1, executor=ex)
        t_halo = ex.halo_seconds - halo_before
        t_partition = ex.plan.partition_seconds
        assert timed.rounds == result.rounds

        benchmark(lambda: luby_mis_sharded(engine, seed=1, executor=ex))
    attach_rows(
        benchmark,
        "E22: sharded CSR execution vs single-process dense (Luby MIS)",
        ["n", "avg deg", "shards", "rounds", "dense s", "sharded s",
         "partition s", "halo s", "speedup"],
        [
            (
                SHARDED_N,
                SHARDED_AVG_DEGREE,
                SHARDED_WORKERS,
                result.rounds,
                f"{t_dense:.3f}",
                f"{t_sharded:.3f}",
                f"{t_partition:.3f}",
                f"{t_halo:.4f}",
                f"{speedup:.2f}x",
            )
        ],
    )
    assert speedup >= 2.0, f"sharded backend only {speedup:.2f}x over dense"
