"""Shared helpers for the experiment benchmarks.

Every experiment Ei from DESIGN.md §3 has a module ``bench_*.py`` here.
Each benchmark (a) times the algorithm under pytest-benchmark, (b) computes
the *rows* the corresponding paper claim is about (round counts, validity
rates, component sizes, trajectories, ...), (c) asserts the paper's
predicted shape, and (d) records the rows both into
``benchmark.extra_info`` and onto stdout via :func:`emit_table`, so

    pytest benchmarks/ --benchmark-only -s

prints every reproduced table/series.  EXPERIMENTS.md is the curated
paper-vs-measured record of these outputs.
"""

from __future__ import annotations

import gc
import time
from typing import Dict, List, Sequence

__all__ = ["emit_table", "attach_rows", "best_of"]


def best_of(fn, repeat: int = 3) -> float:
    """Best-of-``repeat`` wall time of ``fn()`` with the GC paused.

    The standard timing discipline for this repo's perf *assertions*: on the
    1-CPU CI/container a single noisy scheduler window can distort one
    measurement, and a GC cycle landing mid-run distorts short ones, so
    ratio gates compare minima over several runs with collection disabled.
    """
    best = float("inf")
    for _ in range(repeat):
        was_enabled = gc.isenabled()
        gc.disable()
        try:
            start = time.perf_counter()
            fn()
            elapsed = time.perf_counter() - start
        finally:
            if was_enabled:
                gc.enable()
        best = min(best, elapsed)
    return best


def emit_table(title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Print an aligned experiment table (visible under ``-s``)."""
    cols = len(header)
    str_rows = [[_fmt(x) for x in row] for row in rows]
    widths = [
        max(len(header[i]), max((len(r[i]) for r in str_rows), default=0))
        for i in range(cols)
    ]
    line = "  ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in str_rows:
        print("  ".join(x.ljust(w) for x, w in zip(r, widths)))


def _fmt(x) -> str:
    if isinstance(x, float):
        return f"{x:.4g}"
    return str(x)


def attach_rows(benchmark, title: str, header: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Record experiment rows in the pytest-benchmark report and print them."""
    benchmark.extra_info["experiment"] = title
    benchmark.extra_info["header"] = list(header)
    benchmark.extra_info["rows"] = [[_fmt(x) for x in row] for row in rows]
    emit_table(title, header, rows)
