"""E1 + E2 — Lemmas 2.1 and 2.2.

Paper claims:
* (E1, Lemma 2.1) the derandomized basic algorithm is always valid when
  δ >= 2 log n, and costs O(∆·r) rounds — the charge should scale with ∆·r.
* (E2, Lemma 2.2) trimming reduces the charge to O(r · log n): for large ∆
  the trimmed algorithm is strictly cheaper, and stays valid on the
  untrimmed instance.
"""

import pytest

from repro.bipartite import random_left_regular
from repro.core import basic_weak_splitting, is_weak_splitting, trimmed_weak_splitting
from repro.local import RoundLedger

from _harness import attach_rows


def test_e1_basic_rounds_scale_with_delta_r(benchmark):
    rows = []
    for d in (20, 40, 80):
        # Keep the rank near a constant 8 so Delta*r varies through Delta.
        inst = random_left_regular(200, 200 * d // 8, d, seed=d)
        led = RoundLedger()
        coloring = basic_weak_splitting(inst, ledger=led)
        assert is_weak_splitting(inst, coloring)
        rows.append((d, inst.rank, d * inst.rank, led.total, led.total / (d * inst.rank)))
    # Shape: rounds / (∆·r) stays within a constant band.
    ratios = [r[4] for r in rows]
    assert max(ratios) / min(ratios) < 6

    inst = random_left_regular(200, 200, 40, seed=40)
    benchmark(lambda: basic_weak_splitting(inst))
    attach_rows(
        benchmark,
        "E1 (Lemma 2.1): basic weak splitting rounds vs Delta*r",
        ["Delta", "r", "Delta*r", "rounds", "rounds/(Delta*r)"],
        rows,
    )


def test_e2_trimming_beats_basic_for_large_delta(benchmark):
    rows = []
    for d in (40, 80, 160):
        inst = random_left_regular(250, 500, d, seed=d)
        led_basic, led_trim = RoundLedger(), RoundLedger()
        col_b = basic_weak_splitting(inst, ledger=led_basic)
        col_t = trimmed_weak_splitting(inst, ledger=led_trim)
        assert is_weak_splitting(inst, col_b)
        assert is_weak_splitting(inst, col_t)  # valid on the UNTRIMMED graph
        rows.append((d, led_basic.total, led_trim.total, led_basic.total / led_trim.total))
    # Shape: the advantage grows with ∆ (trim cost is ∆-independent).
    assert rows[-1][3] > rows[0][3]
    assert all(r[2] < r[1] for r in rows)

    inst = random_left_regular(250, 500, 80, seed=80)
    benchmark(lambda: trimmed_weak_splitting(inst))
    attach_rows(
        benchmark,
        "E2 (Lemma 2.2): trimmed vs basic round charge",
        ["Delta", "basic rounds", "trimmed rounds", "speedup"],
        rows,
    )
