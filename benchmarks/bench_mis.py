"""E13 — Lemma 4.2 (MIS via splitting-driven heavy-node elimination).

Paper claims: the pipeline produces a valid MIS; each elimination phase
covers a polylog fraction of the heavy nodes (Lemma 4.4), so the heavy-node
count decays phase over phase; Luby on the reduced G* runs on degrees
O(log n).
"""

import pytest

from repro.apps import mis_via_splitting
from repro.bipartite import random_simple_graph
from repro.mis import is_mis, luby_mis, mis_lower_bound

from _harness import attach_rows


def test_e13_pipeline_validity_and_progress(benchmark):
    rows = []
    for n, p in ((300, 0.5), (400, 0.5), (500, 0.6)):
        adj = random_simple_graph(n, p, seed=n)
        res = mis_via_splitting(adj, seed=n + 1, eps=0.2)
        assert is_mis(adj, res.mis)
        Delta = max(len(x) for x in adj)
        assert len(res.mis) >= mis_lower_bound(n, Delta)
        rows.append((n, Delta, res.phases, res.splits, res.heavy_history, len(res.mis)))
    # Shape: the splitting machinery engages on dense inputs.
    assert any(r[3] >= 1 for r in rows)

    adj = random_simple_graph(400, 0.5, seed=7)
    benchmark(lambda: mis_via_splitting(adj, seed=8, eps=0.2))
    attach_rows(
        benchmark,
        "E13 (Lemma 4.2): MIS via splitting — phases, splits, heavy decay",
        ["n", "Delta", "phases", "splits", "heavy per phase", "|MIS|"],
        rows,
    )


def test_e13_comparison_against_plain_luby(benchmark):
    """Baseline comparison: both produce valid MIS; the pipeline's value is
    the round structure (splitting + low-degree Luby), not the MIS size."""
    adj = random_simple_graph(400, 0.4, seed=9)
    res = mis_via_splitting(adj, seed=10, eps=0.2)
    luby_set, luby_rounds = luby_mis(adj, seed=11)
    assert is_mis(adj, res.mis) and is_mis(adj, luby_set)
    rows = [(len(res.mis), res.luby_rounds, len(luby_set), luby_rounds)]

    benchmark(lambda: luby_mis(adj, seed=12))
    attach_rows(
        benchmark,
        "E13: splitting-pipeline MIS vs plain Luby",
        ["pipeline |MIS|", "pipeline Luby rounds", "plain |MIS|", "plain rounds"],
        rows,
    )
