"""E7 — Lemma 2.9 (shattering failure probability).

Paper claim: after the shattering algorithm, the probability that a
constraint is unsatisfied is at most ``e^{-η∆}`` for some η > 0 — i.e. the
log of the empirical unsatisfied rate should fall roughly linearly in ∆.
"""

import math

import pytest

from repro.bipartite import random_left_regular
from repro.core import shatter, unsatisfied_probability_estimate

from _harness import attach_rows

TRIALS = 30


def test_e7_unsatisfied_probability_decays_exponentially(benchmark):
    rows = []
    estimates = {}
    for d in (8, 12, 16, 24, 32):
        inst = random_left_regular(300, 600, d, seed=d)
        p, _ = unsatisfied_probability_estimate(inst, trials=TRIALS, seed=d)
        estimates[d] = p
        log_p = math.log(p) if p > 0 else float("-inf")
        rows.append((d, p, log_p, (-log_p / d) if p > 0 else float("nan")))

    # Shape: monotone decay, and at least exponential-ish: p(32) should be
    # far below p(8) (factor >= 20 rather than the 4x a polynomial would give).
    assert estimates[32] < estimates[16] < estimates[8]
    if estimates[32] > 0:
        assert estimates[8] / estimates[32] > 20

    inst = random_left_regular(300, 600, 16, seed=0)
    benchmark(lambda: shatter(inst, seed=1))
    attach_rows(
        benchmark,
        "E7 (Lemma 2.9): Pr[constraint unsatisfied] vs Delta (30 trials each)",
        ["Delta", "p_unsat", "ln p", "eta = -ln(p)/Delta"],
        rows,
    )


def test_e7_quarter_uncolored_structural_invariant(benchmark):
    """The deterministic half of the lemma's machinery: every constraint
    keeps >= 1/4 of its neighbors uncolored, on every run."""
    inst = random_left_regular(400, 800, 20, seed=3)
    worst = 1.0
    for trial in range(10):
        out = shatter(inst, seed=trial)
        for u in range(inst.n_left):
            neighbors = inst.left_neighbors(u)
            frac = sum(1 for v in neighbors if out.partial[v] is None) / len(neighbors)
            worst = min(worst, frac)
    assert worst >= 0.25

    benchmark(lambda: shatter(inst, seed=99))
    attach_rows(
        benchmark,
        "E7 (shattering): minimum uncolored fraction over 10 runs",
        ["min uncolored fraction", "bound"],
        [(worst, 0.25)],
    )
