#!/usr/bin/env python3
"""CI perf-regression gate over the bench history.

``bench_history.jsonl`` records every sweep trial across commits; this
script makes CI actually *read* it: the current run's ``BENCH_ci*.json``
artifacts are compared, per ``(experiment, backend)`` cell, against the
most recent other commit's rows in the history (the cached main-branch
baseline), and the check fails when a cell's median ``solve_seconds`` or
``setup_seconds`` regressed by more than the threshold::

    python benchmarks/check_regression.py                      # defaults
    python benchmarks/check_regression.py --current 'BENCH_ci*.json' \
        --history bench_history.jsonl --threshold 0.30

The baseline queries go through the sqlite index in ``history.py``
(built in memory from the jsonl store) rather than re-scanning raw
lines, and the same index powers two additions on top of the step gate:

* **trajectory alerts** — per-cell least-squares slope of the per-commit
  ``solve_seconds`` medians over the last ``--slope-k`` commits; a cell
  creeping upward faster than ``--slope-threshold`` per commit gets a
  warning even though no single step tripped the threshold;
* **GitHub annotations** — regressions and trajectory warnings are also
  emitted as ``::error`` / ``::warning`` workflow commands when running
  under Actions (or with ``--annotate``), so they land on the PR diff.

Exit codes: 0 — no regression (including "no baseline yet": the first run
on a fresh cache must pass so the gate can bootstrap; trajectory warnings
never fail the check); 1 — at least one cell regressed.  CI runs this
warn-only on pull requests (``continue-on-error``) and hard-fails on
main, where the freshly appended rows then become the next baseline via
``actions/cache``.

Cells whose baseline median sits below the noise floor (``--min-seconds``)
are reported but never failed: on 1-CPU shared runners a 2 ms cell can
"regress" 3x on scheduler jitter alone.
"""

from __future__ import annotations

import argparse
import glob
import importlib.util
import json
import os
import sys
from pathlib import Path
from typing import Any, Dict, List, Tuple


def _load_sibling(name: str, stem: str):
    """A sibling module by file (benchmarks/ is not a package)."""
    path = Path(__file__).resolve().parent / f"{stem}.py"
    spec = importlib.util.spec_from_file_location(name, path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _load_store():
    return _load_sibling("bench_store", "store")


def _load_history_mod():
    return _load_sibling("bench_history_index", "history")


def _backend_of(experiment: str, params: Dict[str, Any]) -> str:
    """Backend axis of one trial row (mirrors ``store._backend_of``)."""
    if "@" in experiment:
        return experiment.rsplit("@", 1)[1]
    params = params or {}
    return str(params.get("backend") or params.get("method") or "")


def current_cells(paths: List[str]) -> Dict[Tuple[str, str], Dict[str, List[float]]]:
    """Per-(experiment, backend) timing samples from the current BENCH jsons."""
    cells: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for path in paths:
        with open(path) as fh:
            data = json.load(fh)
        for trial in data.get("trials", []):
            if trial.get("error") is not None:
                continue
            key = (trial["experiment"], _backend_of(trial["experiment"], trial.get("params")))
            cell = cells.setdefault(key, {"solve_seconds": [], "setup_seconds": []})
            solve = (trial.get("metrics") or {}).get("solve_seconds")
            if isinstance(solve, (int, float)):
                cell["solve_seconds"].append(float(solve))
            setup = trial.get("setup_seconds")
            if isinstance(setup, (int, float)):
                cell["setup_seconds"].append(float(setup))
    return cells


def check(args) -> int:
    store = _load_store()
    hist = _load_history_mod()
    paths = sorted(p for pattern in args.current for p in glob.glob(pattern))
    if not paths:
        print(f"no current BENCH files match {args.current!r}; nothing to check")
        return 0
    conn = hist.build_index(args.history)
    if not conn.execute("SELECT 1 FROM trials LIMIT 1").fetchone():
        print(f"no history at {args.history}; baseline will seed from this run")
        return 0
    commit = store.current_commit()
    cells = current_cells(paths)

    # New knobs default via getattr so a bare SimpleNamespace(history,
    # current, threshold, min_seconds) — the pre-index call shape — keeps
    # working unchanged.
    slope_k = getattr(args, "slope_k", 5)
    slope_threshold = getattr(args, "slope_threshold", 0.05)
    annotations = getattr(args, "annotate", None)
    if annotations is None:
        annotations = os.environ.get("GITHUB_ACTIONS") == "true"

    regressions, lines = hist.find_regressions(
        conn, commit, cells,
        threshold=args.threshold, min_seconds=args.min_seconds,
    )
    for line in lines:
        print(line)

    alerts = hist.slope_alerts(
        conn, sorted(cells), k=slope_k,
        threshold=slope_threshold, min_seconds=args.min_seconds,
    )
    for alert in alerts:
        msg = (
            f"{alert['experiment']} [{alert['backend']}] {alert['metric']} "
            f"median creeping {alert['relative_slope']:+.1%}/commit over the "
            f"last {len(alert['commits'])} commits: "
            + " -> ".join(f"{m:.4f}s" for m in alert["medians"])
        )
        print(f"TRAJECTORY WARNING: {msg}")
        if annotations:
            hist.annotate("warning", "perf trajectory", msg)

    if regressions:
        print(
            f"\n{len(regressions)} cell metric(s) regressed more than "
            f"{args.threshold:.0%} vs the latest baseline commit:",
            file=sys.stderr,
        )
        for experiment, backend, metric, ref, cur, delta in regressions:
            detail = (
                f"{experiment} [{backend}] {metric}: "
                f"{ref:.4f}s -> {cur:.4f}s ({delta:+.0%})"
            )
            print(f"  {detail}", file=sys.stderr)
            if annotations:
                hist.annotate("error", "perf regression", detail)
        return 1
    print("\nno perf regressions vs the latest baseline commit")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--history", default="bench_history.jsonl",
                        help="jsonl results store holding the baseline rows")
    parser.add_argument("--current", nargs="*", default=["BENCH_ci*.json"],
                        metavar="GLOB",
                        help="glob(s) of the current run's BENCH json artifacts")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed median slowdown (0.30 = +30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore cells whose baseline median is below "
                        "this noise floor (1-CPU runner jitter)")
    parser.add_argument("--slope-k", type=int, default=5,
                        help="trajectory window in commits")
    parser.add_argument("--slope-threshold", type=float, default=0.05,
                        help="relative per-commit creep that triggers a "
                        "trajectory warning (never fails the check)")
    parser.add_argument("--annotate", action="store_true", default=None,
                        help="emit GitHub ::warning/::error annotations "
                        "(auto-detected under Actions)")
    return check(parser.parse_args())


if __name__ == "__main__":
    raise SystemExit(main())
