#!/usr/bin/env python3
"""CI perf-regression gate over the bench history.

``bench_history.jsonl`` records every sweep trial across commits; this
script makes CI actually *read* it: the current run's ``BENCH_ci*.json``
artifacts are compared, per ``(experiment, backend)`` cell, against the
most recent other commit's rows in the history (the cached main-branch
baseline), and the check fails when a cell's median ``solve_seconds`` or
``setup_seconds`` regressed by more than the threshold::

    python benchmarks/check_regression.py                      # defaults
    python benchmarks/check_regression.py --current 'BENCH_ci*.json' \
        --history bench_history.jsonl --threshold 0.30

Exit codes: 0 — no regression (including "no baseline yet": the first run
on a fresh cache must pass so the gate can bootstrap); 1 — at least one
cell regressed.  CI runs this warn-only on pull requests
(``continue-on-error``) and hard-fails on main, where the freshly
appended rows then become the next baseline via ``actions/cache``.

Cells whose baseline median sits below the noise floor (``--min-seconds``)
are reported but never failed: on 1-CPU shared runners a 2 ms cell can
"regress" 3x on scheduler jitter alone.
"""

from __future__ import annotations

import argparse
import glob
import importlib.util
import json
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple


def _load_store():
    """The sibling ``store.py`` module (benchmarks/ is not a package)."""
    path = Path(__file__).resolve().parent / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _backend_of(experiment: str, params: Dict[str, Any]) -> str:
    """Backend axis of one trial row (mirrors ``store._backend_of``)."""
    if "@" in experiment:
        return experiment.rsplit("@", 1)[1]
    params = params or {}
    return str(params.get("backend") or params.get("method") or "")


def current_cells(paths: List[str]) -> Dict[Tuple[str, str], Dict[str, List[float]]]:
    """Per-(experiment, backend) timing samples from the current BENCH jsons."""
    cells: Dict[Tuple[str, str], Dict[str, List[float]]] = {}
    for path in paths:
        with open(path) as fh:
            data = json.load(fh)
        for trial in data.get("trials", []):
            if trial.get("error") is not None:
                continue
            key = (trial["experiment"], _backend_of(trial["experiment"], trial.get("params")))
            cell = cells.setdefault(key, {"solve_seconds": [], "setup_seconds": []})
            solve = (trial.get("metrics") or {}).get("solve_seconds")
            if isinstance(solve, (int, float)):
                cell["solve_seconds"].append(float(solve))
            setup = trial.get("setup_seconds")
            if isinstance(setup, (int, float)):
                cell["setup_seconds"].append(float(setup))
    return cells


def baseline_samples(rows: List[Dict[str, Any]]) -> Dict[str, List[float]]:
    """Timing samples of one cell's baseline rows (history schema v1 or v2)."""
    out: Dict[str, List[float]] = {"solve_seconds": [], "setup_seconds": []}
    for row in rows:
        solve = (row.get("metrics") or {}).get("solve_seconds")
        if isinstance(solve, (int, float)):
            out["solve_seconds"].append(float(solve))
        setup = row.get("setup_seconds")  # absent in schema-1 rows
        if isinstance(setup, (int, float)):
            out["setup_seconds"].append(float(setup))
    return out


def check(args) -> int:
    store = _load_store()
    paths = sorted(p for pattern in args.current for p in glob.glob(pattern))
    if not paths:
        print(f"no current BENCH files match {args.current!r}; nothing to check")
        return 0
    history = store.load_history(args.history)
    if not history:
        print(f"no history at {args.history}; baseline will seed from this run")
        return 0
    commit = store.current_commit()
    cells = current_cells(paths)

    regressions = []
    width = max((len(f"{e} [{b}]") for e, b in cells), default=10) + 2
    print(f"{'cell':<{width}} {'metric':<14} {'baseline':>10} {'current':>10} {'delta':>8}")
    for (experiment, backend) in sorted(cells):
        base_rows = store.latest_baseline(
            history, experiment, backend, exclude_commit=commit
        )
        if not base_rows:
            print(f"{f'{experiment} [{backend}]':<{width}} {'-':<14} {'(no baseline)':>10}")
            continue
        base = baseline_samples(base_rows)
        for metric in ("solve_seconds", "setup_seconds"):
            cur_vals = cells[(experiment, backend)][metric]
            base_vals = base[metric]
            if not cur_vals or not base_vals:
                continue
            cur = statistics.median(cur_vals)
            ref = statistics.median(base_vals)
            delta = (cur - ref) / ref if ref > 0 else 0.0
            flag = ""
            if delta > args.threshold and ref >= args.min_seconds:
                regressions.append((experiment, backend, metric, ref, cur, delta))
                flag = "  << REGRESSION"
            elif delta > args.threshold:
                flag = "  (below noise floor, ignored)"
            print(
                f"{f'{experiment} [{backend}]':<{width}} {metric:<14} "
                f"{ref:>10.4f} {cur:>10.4f} {delta:>+7.0%}{flag}"
            )

    if regressions:
        print(
            f"\n{len(regressions)} cell metric(s) regressed more than "
            f"{args.threshold:.0%} vs the latest baseline commit:",
            file=sys.stderr,
        )
        for experiment, backend, metric, ref, cur, delta in regressions:
            print(
                f"  {experiment} [{backend}] {metric}: "
                f"{ref:.4f}s -> {cur:.4f}s ({delta:+.0%})",
                file=sys.stderr,
            )
        return 1
    print("\nno perf regressions vs the latest baseline commit")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--history", default="bench_history.jsonl",
                        help="jsonl results store holding the baseline rows")
    parser.add_argument("--current", nargs="*", default=["BENCH_ci*.json"],
                        metavar="GLOB",
                        help="glob(s) of the current run's BENCH json artifacts")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="max allowed median slowdown (0.30 = +30%%)")
    parser.add_argument("--min-seconds", type=float, default=0.01,
                        help="ignore cells whose baseline median is below "
                        "this noise floor (1-CPU runner jitter)")
    return check(parser.parse_args())


if __name__ == "__main__":
    raise SystemExit(main())
