"""E4 + E16 — Theorem 2.5 (deterministic weak splitting).

Paper claims:
* (E4) round complexity O(r/δ · log²n + log³n (log log n)^1.1): at fixed n
  and δ the rounds grow roughly linearly in r; at fixed r/δ they grow
  polylogarithmically in n.
* (E16) the algorithm switches from the Lemma 2.2 path to the reduction
  pipeline at δ = 48 log n, and both sides of the boundary stay valid.
"""

import math

import pytest

from repro.bipartite import random_left_regular
from repro.core import (
    deterministic_weak_splitting,
    is_weak_splitting,
    theorem_25_trim_threshold,
)
from repro.local import RoundLedger

from _harness import attach_rows


def test_e4_rounds_grow_with_rank(benchmark):
    rows = []
    d = 24
    for n_right in (1600, 800, 400, 200):
        inst = random_left_regular(400, n_right, d, seed=n_right)
        led = RoundLedger()
        coloring = deterministic_weak_splitting(inst, ledger=led)
        assert is_weak_splitting(inst, coloring)
        rows.append((inst.rank, inst.rank / d, led.total, led.total / max(1, inst.rank)))
    # Shape: rounds increase monotonically with the rank.
    totals = [r[2] for r in rows]
    assert totals == sorted(totals)

    inst = random_left_regular(400, 400, d, seed=0)
    benchmark(lambda: deterministic_weak_splitting(inst))
    attach_rows(
        benchmark,
        "E4 (Theorem 2.5): rounds vs rank at fixed delta=24",
        ["r", "r/delta", "rounds", "rounds/r"],
        rows,
    )


def test_e4_rounds_polylog_in_n(benchmark):
    rows = []
    d = 24
    for n_side in (100, 200, 400, 800):
        inst = random_left_regular(n_side, n_side, d, seed=n_side)
        led = RoundLedger()
        coloring = deterministic_weak_splitting(inst, ledger=led)
        assert is_weak_splitting(inst, coloring)
        polylog = inst.rank / d * math.log2(inst.n) ** 2
        rows.append((inst.n, inst.rank, led.total, led.total / polylog))
    # Shape: rounds / (r/δ · log² n) stays within a constant band while n
    # grows 8x (rank tracks n here since both sides scale together).
    ratios = [r[3] for r in rows]
    assert max(ratios) / min(ratios) < 6

    benchmark(
        lambda: deterministic_weak_splitting(
            random_left_regular(200, 200, d, seed=1)
        )
    )
    attach_rows(
        benchmark,
        "E4 (Theorem 2.5): rounds vs n at fixed delta=24",
        ["n", "r", "rounds", "rounds/(r/delta*log^2 n)"],
        rows,
    )


def test_e16_regime_boundary(benchmark):
    """Cross the δ = 48 log n boundary via n_override and watch the
    algorithm switch from pure trimming to reduction + trimming."""
    inst = random_left_regular(60, 700, 240, seed=2)
    rows = []
    for n_override in (2**20, 2**10, 2**6, 2**4):
        led = RoundLedger()
        coloring = deterministic_weak_splitting(inst, ledger=led, n_override=n_override)
        assert is_weak_splitting(inst, coloring)
        threshold = theorem_25_trim_threshold(n_override)
        used_reduction = any(l.startswith("reduction-I") for l in led.breakdown())
        rows.append((n_override, round(threshold, 1), inst.delta > threshold, used_reduction, led.total))
        assert used_reduction == (inst.delta > threshold)

    benchmark(
        lambda: deterministic_weak_splitting(inst, n_override=2**4)
    )
    attach_rows(
        benchmark,
        "E16 (Theorem 2.5): the 48 log n regime switch",
        ["n (ambient)", "48 log n", "delta above?", "reduction used?", "rounds"],
        rows,
    )
