"""E9 — Theorem 2.10 / Figure 1 (the lower-bound reduction).

Paper claims: the reduction produces a rank <= 2 instance with
``n_B = |V| + |E|`` and ``∆_B <= ∆_G``; any weak splitting of it converts
to a sinkless orientation of G.  The round formulas Ω(log_∆ log n)
(randomized) and Ω(log_∆ n) (deterministic) are tabulated for context.
"""

import pytest

from repro.bipartite import random_regular_graph
from repro.core import (
    deterministic_lower_bound_rounds,
    orientation_from_weak_splitting,
    randomized_lower_bound_rounds,
    solve_weak_splitting,
    weak_splitting_instance_from_graph,
)
from repro.orientation import is_sinkless

from _harness import attach_rows


def test_e9_reduction_parameters_and_soundness(benchmark):
    rows = []
    for n, d in ((60, 6), (120, 8), (240, 10)):
        adj = random_regular_graph(n, d, seed=n)
        inst, edge_list = weak_splitting_instance_from_graph(adj)
        m = sum(len(x) for x in adj) // 2
        assert inst.rank <= 2
        assert inst.n == n + m
        assert inst.Delta <= d
        coloring = solve_weak_splitting(inst, method="heuristic", seed=1)
        orientation = orientation_from_weak_splitting(edge_list, coloring)
        ok = is_sinkless(adj, orientation)
        assert ok
        rows.append((n, d, inst.n, inst.rank, inst.delta, ok))

    adj = random_regular_graph(120, 8, seed=120)
    inst, edge_list = weak_splitting_instance_from_graph(adj)

    def chain():
        coloring = solve_weak_splitting(inst, method="heuristic", seed=2)
        return orientation_from_weak_splitting(edge_list, coloring)

    benchmark(chain)
    attach_rows(
        benchmark,
        "E9 (Thm 2.10 / Figure 1): reduction parameters + soundness",
        ["n_G", "Delta_G", "n_B", "rank_B", "delta_B", "sinkless?"],
        rows,
    )


def test_e9_lower_bound_round_formulas(benchmark):
    rows = []
    for n in (2**10, 2**16, 2**24):
        for Delta in (4, 16):
            rows.append(
                (
                    n,
                    Delta,
                    randomized_lower_bound_rounds(Delta, n),
                    deterministic_lower_bound_rounds(Delta, n),
                )
            )
    # Shape: deterministic bound dominates randomized everywhere.
    assert all(row[3] > row[2] for row in rows)

    benchmark(lambda: deterministic_lower_bound_rounds(16, 2**24))
    attach_rows(
        benchmark,
        "E9: lower-bound round formulas (constants 1)",
        ["n", "Delta", "rand lb (log_D log n)", "det lb (log_D n)"],
        rows,
    )
