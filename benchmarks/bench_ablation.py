"""E15 — ablation: Eulerian vs random-orientation degree-splitting substrate.

DESIGN.md §2.3/§5 calls out the substrate substitution as the key design
decision.  This experiment demonstrates *why* the strong substrate matters:
the random 0-round orienter's discrepancy grows like √(d log n), which
violates the ε·d + 2 guarantee the Section 2 reductions consume, and
degrades the degree–rank reduction trajectories.
"""

import pytest

from repro.bipartite import random_left_regular
from repro.core import degree_rank_reduction_one
from repro.orientation import Multigraph, directed_degree_splitting

from _harness import attach_rows


def _dense_multigraph(n, d, seed):
    import random

    rng = random.Random(seed)
    edges = []
    for v in range(n):
        for _ in range(d // 2):
            edges.append((v, rng.randrange(n)))
    return Multigraph(n, edges)


def test_e15_substrate_discrepancy(benchmark):
    rows = []
    for d in (32, 128, 512):
        g = _dense_multigraph(300, d, seed=d)
        eu = directed_degree_splitting(g, eps=0.01, n=300)
        rnd = directed_degree_splitting(g, eps=0.01, n=300, engine="random", seed=d)
        rows.append(
            (
                d,
                eu.orientation.max_discrepancy(),
                rnd.orientation.max_discrepancy(),
                len(rnd.violations()),
            )
        )
        assert eu.orientation.max_discrepancy() <= 1
    # Shape: random discrepancy grows with degree; eulerian stays <= 1.
    rand_disc = [r[2] for r in rows]
    assert rand_disc[-1] > rand_disc[0]
    assert rows[-1][3] > 0  # random engine violates the eps*d+2 guarantee

    g = _dense_multigraph(300, 128, seed=0)
    benchmark(lambda: directed_degree_splitting(g, eps=0.01, n=300))
    attach_rows(
        benchmark,
        "E15 (ablation): substrate discrepancy, eulerian vs random",
        ["degree", "eulerian max disc", "random max disc", "random violations"],
        rows,
    )


def test_e15_downstream_reduction_quality(benchmark):
    """Feed both substrates into Reduction I and compare how well the
    minimum degree survives (Lemma 2.4's bound assumes the guarantee)."""
    inst = random_left_regular(150, 150, 48, seed=1)
    _, _, eu_trace = degree_rank_reduction_one(inst, eps=0.2, iterations=3, engine="eulerian")
    _, _, rnd_trace = degree_rank_reduction_one(inst, eps=0.2, iterations=3, engine="random", seed=2)
    rows = [
        (k, eu_trace.deltas[k], rnd_trace.deltas[k])
        for k in range(4)
    ]
    # Shape: the eulerian substrate preserves at least as much minimum
    # degree at the end of the reduction.
    assert eu_trace.deltas[-1] >= rnd_trace.deltas[-1]

    benchmark(
        lambda: degree_rank_reduction_one(inst, eps=0.2, iterations=3, engine="random", seed=3)
    )
    attach_rows(
        benchmark,
        "E15 (ablation): Reduction I delta trajectory by substrate",
        ["iteration", "delta (eulerian)", "delta (random)"],
        rows,
    )
