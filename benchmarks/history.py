#!/usr/bin/env python3
"""Queryable bench-history analytics: a sqlite index over the jsonl store.

``bench_history.jsonl`` (see ``store.py``) is an append-only audit log —
perfect for durability, slow and clumsy for questions.  This module builds
a sqlite index over it, normalizing schema v1–v4 rows into one flat table
keyed by ``(commit, experiment, backend, seed)``, and answers the
trajectory questions CI and humans actually ask::

    python benchmarks/history.py index                      # build the db
    python benchmarks/history.py trend --experiment luby --backend dense
    python benchmarks/history.py compare <commitA> <commitB>
    python benchmarks/history.py regressions                # newest vs prior

Row normalization (the schema-migration ladder):

* v1 rows lack ``setup_seconds`` — indexed as 0.0;
* v2 rows lack ``attempts`` — indexed as 1;
* v3 rows lack the ``pack_seconds``/``rng_seconds`` split — ``pack``
  defaults to the row's ``setup_seconds``, ``rng`` to 0.0;
* every row gets ``solve_seconds`` lifted out of its metrics dict into a
  real column so the hot queries never parse JSON.

``regressions`` compares the newest commit's per-cell medians against the
most recent *other* commit (the same baseline rule as
``store.latest_baseline``), plus per-(experiment, backend) *trajectory*
alerts: the least-squares slope of per-commit medians over the last k
commits, which catches a cell that creeps 5% per commit without ever
tripping the single-step threshold.  With ``--annotate`` the findings are
emitted in GitHub's annotation format (``::warning ...`` / ``::error ...``)
so they surface directly on the PR.  ``check_regression.py`` (the CI gate)
reads the same index through this module instead of re-scanning raw jsonl.
"""

from __future__ import annotations

import argparse
import importlib.util
import json
import sqlite3
import statistics
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "build_index",
    "open_index",
    "cells",
    "cell_samples",
    "latest_commit",
    "latest_baseline_commit",
    "commit_medians",
    "trajectory",
    "slope",
    "slope_alerts",
    "annotate",
    "find_regressions",
]

#: Timing metrics indexed as real columns (everything else stays in the
#: ``metrics`` JSON blob).
TIMING_METRICS = ("solve_seconds", "setup_seconds", "pack_seconds", "rng_seconds")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS trials (
    commit_hash     TEXT NOT NULL,
    experiment      TEXT NOT NULL,
    backend         TEXT NOT NULL,
    seed            INTEGER,
    ok              INTEGER NOT NULL,
    error           TEXT,
    elapsed         REAL,
    solve_seconds   REAL,
    setup_seconds   REAL,
    pack_seconds    REAL,
    rng_seconds     REAL,
    attempts        INTEGER,
    row_schema      INTEGER,
    written_at      REAL,
    params          TEXT,
    metrics         TEXT
);
CREATE INDEX IF NOT EXISTS idx_trials_cell
    ON trials (experiment, backend, commit_hash);
CREATE INDEX IF NOT EXISTS idx_trials_commit ON trials (commit_hash);
"""


def _load_store():
    """The sibling ``store.py`` module (benchmarks/ is not a package)."""
    path = Path(__file__).resolve().parent / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _backend_of(experiment: str, params: Optional[Dict[str, Any]]) -> str:
    """Backend axis of one row (mirrors ``store._backend_of``)."""
    if "@" in experiment:
        return experiment.rsplit("@", 1)[1]
    params = params or {}
    return str(params.get("backend") or params.get("method") or "")


def normalize_row(row: Dict[str, Any]) -> Optional[Dict[str, Any]]:
    """One history row (any schema v1–v4) as a flat index record.

    Returns None for rows too malformed to index (no experiment).  The
    migration ladder: missing ``setup_seconds`` -> 0.0 (v1), missing
    ``attempts`` -> 1 (v2), missing ``pack_seconds`` -> the row's
    ``setup_seconds`` and missing ``rng_seconds`` -> 0.0 (v3), missing
    ``backend`` -> derived from the experiment name / params (defensive).
    """
    experiment = row.get("experiment")
    if not isinstance(experiment, str) or not experiment:
        return None
    params = row.get("params") or {}
    metrics = row.get("metrics") or {}
    setup = row.get("setup_seconds")
    setup = float(setup) if isinstance(setup, (int, float)) else 0.0
    pack = row.get("pack_seconds")
    rng = row.get("rng_seconds")
    solve = metrics.get("solve_seconds")
    backend = row.get("backend")
    if not isinstance(backend, str):
        backend = _backend_of(experiment, params)
    return {
        "commit_hash": str(row.get("commit", "unknown")),
        "experiment": experiment,
        "backend": backend,
        "seed": row.get("seed"),
        "ok": 1 if row.get("ok") else 0,
        "error": row.get("error"),
        "elapsed": float(row.get("elapsed", 0.0) or 0.0),
        "solve_seconds": float(solve) if isinstance(solve, (int, float)) else None,
        "setup_seconds": setup,
        "pack_seconds": float(pack) if isinstance(pack, (int, float)) else setup,
        "rng_seconds": float(rng) if isinstance(rng, (int, float)) else 0.0,
        "attempts": int(row.get("attempts", 1) or 1),
        "row_schema": int(row.get("schema", 1) or 1),
        "written_at": float(row.get("written_at", 0.0) or 0.0),
        "params": json.dumps(params, sort_keys=True),
        "metrics": json.dumps(metrics, sort_keys=True),
    }


def build_index(history_path, db_path=None) -> sqlite3.Connection:
    """Build (or rebuild) the sqlite index from the jsonl store.

    ``db_path=None`` builds in memory — the mode the CI gate uses, since
    the index is cheap to rebuild and the jsonl stays the source of truth.
    An on-disk index is rebuilt from scratch on every call (the store is
    append-only, so incremental indexing buys nothing worth the
    torn-state risk).
    """
    store = _load_store()
    rows = store.load_history(history_path)
    conn = sqlite3.connect(db_path if db_path is not None else ":memory:")
    conn.executescript("DROP TABLE IF EXISTS trials;")
    conn.executescript(_SCHEMA)
    records = [r for r in (normalize_row(row) for row in rows) if r is not None]
    if records:
        keys = list(records[0].keys())
        conn.executemany(
            f"INSERT INTO trials ({', '.join(keys)}) "
            f"VALUES ({', '.join(':' + k for k in keys)})",
            records,
        )
    conn.commit()
    return conn


def open_index(db_path) -> sqlite3.Connection:
    """Open an existing on-disk index built by :func:`build_index`."""
    return sqlite3.connect(db_path)


def cells(conn: sqlite3.Connection) -> List[Tuple[str, str]]:
    """All distinct ``(experiment, backend)`` cells in the index."""
    return [
        (e, b)
        for e, b in conn.execute(
            "SELECT DISTINCT experiment, backend FROM trials ORDER BY 1, 2"
        )
    ]


def cell_samples(
    conn: sqlite3.Connection, experiment: str, backend: str, commit: str
) -> Dict[str, List[float]]:
    """Ok-row timing samples of one cell at one commit, per metric."""
    out: Dict[str, List[float]] = {m: [] for m in TIMING_METRICS}
    cols = ", ".join(TIMING_METRICS)
    for values in conn.execute(
        f"SELECT {cols} FROM trials "
        "WHERE experiment = ? AND backend = ? AND commit_hash = ? AND ok = 1",
        (experiment, backend, commit),
    ):
        for metric, value in zip(TIMING_METRICS, values):
            if value is not None:
                out[metric].append(float(value))
    return out


def latest_commit(conn: sqlite3.Connection) -> Optional[str]:
    """The most recently written commit in the index (None when empty)."""
    row = conn.execute(
        "SELECT commit_hash FROM trials GROUP BY commit_hash "
        "ORDER BY MAX(written_at) DESC LIMIT 1"
    ).fetchone()
    return row[0] if row else None


def latest_baseline_commit(
    conn: sqlite3.Connection,
    experiment: str,
    backend: str,
    exclude_commit: Optional[str] = None,
) -> Optional[str]:
    """The newest other commit with ok rows for one cell (baseline rule).

    Same selection as ``store.latest_baseline``: group the cell's ok rows
    by commit, drop ``exclude_commit``, pick the commit written last.
    """
    row = conn.execute(
        "SELECT commit_hash FROM trials "
        "WHERE experiment = ? AND backend = ? AND ok = 1 "
        "AND (? IS NULL OR commit_hash != ?) "
        "GROUP BY commit_hash ORDER BY MAX(written_at) DESC LIMIT 1",
        (experiment, backend, exclude_commit, exclude_commit),
    ).fetchone()
    return row[0] if row else None


def commit_medians(
    conn: sqlite3.Connection, experiment: str, backend: str, metric: str
) -> List[Tuple[str, float, float]]:
    """Per-commit ``(commit, written_at, median)`` for one cell metric,
    oldest first — the cell's recorded trajectory."""
    if metric not in TIMING_METRICS:
        raise ValueError(f"metric must be one of {TIMING_METRICS}, got {metric!r}")
    by_commit: Dict[str, Tuple[float, List[float]]] = {}
    for commit, written_at, value in conn.execute(
        f"SELECT commit_hash, written_at, {metric} FROM trials "
        "WHERE experiment = ? AND backend = ? AND ok = 1",
        (experiment, backend),
    ):
        when, values = by_commit.setdefault(commit, (0.0, []))
        by_commit[commit] = (max(when, written_at or 0.0), values)
        if value is not None:
            values.append(float(value))
    points = [
        (commit, when, statistics.median(values))
        for commit, (when, values) in by_commit.items()
        if values
    ]
    points.sort(key=lambda p: p[1])
    return points


def trajectory(
    conn: sqlite3.Connection,
    experiment: str,
    backend: str,
    metric: str = "solve_seconds",
    last: Optional[int] = None,
) -> List[Tuple[str, float, float]]:
    """The last ``last`` points of :func:`commit_medians` (all when None)."""
    points = commit_medians(conn, experiment, backend, metric)
    return points[-last:] if last else points


def slope(values: Sequence[float]) -> float:
    """Least-squares slope of ``values`` against their index.

    The trajectory detector's core: with per-commit medians as input, the
    slope is "seconds gained per commit" — divide by the mean to get the
    relative creep rate.
    """
    n = len(values)
    if n < 2:
        return 0.0
    xs = range(n)
    mean_x = (n - 1) / 2.0
    mean_y = sum(values) / n
    denom = sum((x - mean_x) ** 2 for x in xs)
    if denom == 0:
        return 0.0
    return sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, values)) / denom


def slope_alerts(
    conn: sqlite3.Connection,
    cell_keys: Sequence[Tuple[str, str]],
    metric: str = "solve_seconds",
    k: int = 5,
    threshold: float = 0.05,
    min_seconds: float = 0.01,
) -> List[Dict[str, Any]]:
    """Trajectory alerts: cells creeping upward over the last ``k`` commits.

    For each cell, fits :func:`slope` to the per-commit medians of
    ``metric`` over its last ``k`` commits; an alert fires when the
    relative slope (slope / mean median) exceeds ``threshold`` per commit
    and the mean median is above the ``min_seconds`` noise floor.  Needs at
    least 3 commits of history — two points cannot distinguish creep from a
    single step, which the threshold gate already covers.
    """
    alerts = []
    for experiment, backend in cell_keys:
        points = trajectory(conn, experiment, backend, metric, last=k)
        if len(points) < 3:
            continue
        medians = [p[2] for p in points]
        mean = sum(medians) / len(medians)
        if mean < min_seconds:
            continue
        rel = slope(medians) / mean if mean > 0 else 0.0
        if rel > threshold:
            alerts.append({
                "experiment": experiment,
                "backend": backend,
                "metric": metric,
                "commits": [p[0] for p in points],
                "medians": medians,
                "relative_slope": rel,
            })
    return alerts


def annotate(level: str, title: str, message: str) -> None:
    """Emit one GitHub-annotation-format line (``::warning``/``::error``).

    Newlines are escaped per the workflow-command spec so multi-line
    messages stay one annotation.
    """
    message = message.replace("%", "%25").replace("\r", "%0D").replace("\n", "%0A")
    title = title.replace("%", "%25").replace(":", "").replace(",", "")
    print(f"::{level} title={title}::{message}")


def find_regressions(
    conn: sqlite3.Connection,
    current_commit: str,
    current_cells: Dict[Tuple[str, str], Dict[str, List[float]]],
    threshold: float = 0.30,
    min_seconds: float = 0.01,
    metrics: Sequence[str] = ("solve_seconds", "setup_seconds"),
) -> Tuple[List[Tuple], List[str]]:
    """Step regressions of the current samples vs each cell's baseline.

    ``current_cells`` maps ``(experiment, backend)`` to per-metric sample
    lists (from the current run's artifacts, or :func:`cell_samples` of the
    newest indexed commit).  Returns ``(regressions, table_lines)`` where
    each regression is ``(experiment, backend, metric, baseline_median,
    current_median, delta)`` and ``table_lines`` is the printable
    cell-by-cell report.
    """
    regressions: List[Tuple] = []
    lines: List[str] = []
    width = max((len(f"{e} [{b}]") for e, b in current_cells), default=10) + 2
    lines.append(
        f"{'cell':<{width}} {'metric':<14} {'baseline':>10} {'current':>10} {'delta':>8}"
    )
    for (experiment, backend) in sorted(current_cells):
        base_commit = latest_baseline_commit(
            conn, experiment, backend, exclude_commit=current_commit
        )
        if base_commit is None:
            lines.append(
                f"{f'{experiment} [{backend}]':<{width}} {'-':<14} {'(no baseline)':>10}"
            )
            continue
        base = cell_samples(conn, experiment, backend, base_commit)
        for metric in metrics:
            cur_vals = current_cells[(experiment, backend)].get(metric, [])
            base_vals = base.get(metric, [])
            if not cur_vals or not base_vals:
                continue
            cur = statistics.median(cur_vals)
            ref = statistics.median(base_vals)
            delta = (cur - ref) / ref if ref > 0 else 0.0
            flag = ""
            if delta > threshold and ref >= min_seconds:
                regressions.append((experiment, backend, metric, ref, cur, delta))
                flag = "  << REGRESSION"
            elif delta > threshold:
                flag = "  (below noise floor, ignored)"
            lines.append(
                f"{f'{experiment} [{backend}]':<{width}} {metric:<14} "
                f"{ref:>10.4f} {cur:>10.4f} {delta:>+7.0%}{flag}"
            )
    return regressions, lines


# -- CLI --------------------------------------------------------------------


def _missing_store_note(history) -> None:
    """Friendly hint when the jsonl store has never been bootstrapped."""
    print(
        f"note: no results store at {history} yet — run "
        "'python benchmarks/run_experiments.py' (its --history default "
        "bootstraps the store) and re-index",
        file=sys.stderr,
    )


def _cmd_index(args) -> int:
    if not Path(args.history).exists():
        _missing_store_note(args.history)
    conn = build_index(args.history, args.db)
    count = conn.execute("SELECT COUNT(*) FROM trials").fetchone()[0]
    commits = conn.execute(
        "SELECT COUNT(DISTINCT commit_hash) FROM trials"
    ).fetchone()[0]
    print(f"indexed {count} trials across {commits} commits into {args.db}")
    return 0


def _connect(args) -> sqlite3.Connection:
    """The index for a query command: reuse ``--db`` if built, else build
    in memory from the jsonl store."""
    if args.db and Path(args.db).exists():
        return open_index(args.db)
    if not Path(args.history).exists():
        _missing_store_note(args.history)
    return build_index(args.history)


def _cmd_trend(args) -> int:
    conn = _connect(args)
    matched = [
        (e, b)
        for e, b in cells(conn)
        if args.experiment in e and (not args.backend or b == args.backend)
    ]
    if not matched:
        print(f"no cells match experiment~{args.experiment!r} backend={args.backend!r}")
        return 1
    for experiment, backend in matched:
        points = trajectory(conn, experiment, backend, args.metric, last=args.last)
        if not points:
            continue
        print(f"{experiment} [{backend}] — {args.metric} median per commit:")
        peak = max(p[2] for p in points)
        for commit, _, median in points:
            bar = "#" * max(1, int(40 * median / peak)) if peak > 0 else ""
            print(f"  {commit:>12}  {median:>10.4f}s  {bar}")
        medians = [p[2] for p in points]
        mean = sum(medians) / len(medians)
        rel = slope(medians) / mean if mean > 0 else 0.0
        print(f"  trend: {rel:+.1%} per commit over {len(points)} commits\n")
    return 0


def _cmd_compare(args) -> int:
    conn = _connect(args)
    keys = [
        (e, b)
        for e, b in cells(conn)
        if cell_samples(conn, e, b, args.commit_a)["solve_seconds"]
        or cell_samples(conn, e, b, args.commit_a)["setup_seconds"]
    ]
    if not keys:
        print(f"no trials recorded for commit {args.commit_a}")
        return 1
    width = max(len(f"{e} [{b}]") for e, b in keys) + 2
    print(
        f"{'cell':<{width}} {'metric':<14} {args.commit_a:>12} {args.commit_b:>12} {'delta':>8}"
    )
    shown = 0
    for experiment, backend in keys:
        a = cell_samples(conn, experiment, backend, args.commit_a)
        b = cell_samples(conn, experiment, backend, args.commit_b)
        for metric in ("solve_seconds", "setup_seconds"):
            if not a[metric] or not b[metric]:
                continue
            ma = statistics.median(a[metric])
            mb = statistics.median(b[metric])
            delta = (mb - ma) / ma if ma > 0 else 0.0
            print(
                f"{f'{experiment} [{backend}]':<{width}} {metric:<14} "
                f"{ma:>12.4f} {mb:>12.4f} {delta:>+7.0%}"
            )
            shown += 1
    if not shown:
        print(f"commits {args.commit_a} and {args.commit_b} share no measured cells")
        return 1
    return 0


def _cmd_regressions(args) -> int:
    conn = _connect(args)
    current = latest_commit(conn)
    if current is None:
        print(f"no history at {args.history}; nothing to check")
        return 0
    keys = [
        (e, b)
        for e, b in cells(conn)
        if any(cell_samples(conn, e, b, current)[m] for m in TIMING_METRICS)
    ]
    current_cells = {
        key: cell_samples(conn, key[0], key[1], current) for key in keys
    }
    regressions, lines = find_regressions(
        conn, current, current_cells,
        threshold=args.threshold, min_seconds=args.min_seconds,
    )
    print(f"current commit: {current}")
    for line in lines:
        print(line)
    alerts = slope_alerts(
        conn, keys, k=args.slope_k,
        threshold=args.slope_threshold, min_seconds=args.min_seconds,
    )
    for alert in alerts:
        msg = (
            f"{alert['experiment']} [{alert['backend']}] {alert['metric']} "
            f"median creeping {alert['relative_slope']:+.1%}/commit over the "
            f"last {len(alert['commits'])} commits: "
            + " -> ".join(f"{m:.4f}s" for m in alert["medians"])
        )
        if args.annotate:
            annotate("warning", "perf trajectory", msg)
        else:
            print(f"TRAJECTORY WARNING: {msg}")
    if regressions:
        print(
            f"\n{len(regressions)} cell metric(s) regressed more than "
            f"{args.threshold:.0%} vs the latest baseline commit:",
            file=sys.stderr,
        )
        for experiment, backend, metric, ref, cur, delta in regressions:
            detail = (
                f"{experiment} [{backend}] {metric}: "
                f"{ref:.4f}s -> {cur:.4f}s ({delta:+.0%})"
            )
            print(f"  {detail}", file=sys.stderr)
            if args.annotate:
                annotate("error", "perf regression", detail)
        return 1
    print("\nno perf regressions vs the latest baseline commit")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    parser.add_argument("--history", default="bench_history.jsonl",
                        help="jsonl results store to index")
    parser.add_argument("--db", default=None,
                        help="sqlite index path (in-memory when omitted)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_index = sub.add_parser("index", help="build the sqlite index from the jsonl store")
    p_index.set_defaults(fn=_cmd_index)

    p_trend = sub.add_parser("trend", help="per-commit medians for matching cells")
    p_trend.add_argument("--experiment", required=True,
                         help="substring match on experiment names")
    p_trend.add_argument("--backend", default=None, help="exact backend filter")
    p_trend.add_argument("--metric", default="solve_seconds", choices=TIMING_METRICS)
    p_trend.add_argument("--last", type=int, default=None,
                         help="only the most recent K commits")
    p_trend.set_defaults(fn=_cmd_trend)

    p_cmp = sub.add_parser("compare", help="per-cell median deltas between two commits")
    p_cmp.add_argument("commit_a")
    p_cmp.add_argument("commit_b")
    p_cmp.set_defaults(fn=_cmd_compare)

    p_reg = sub.add_parser(
        "regressions", help="newest commit vs its baseline + trajectory alerts"
    )
    p_reg.add_argument("--threshold", type=float, default=0.30,
                       help="max allowed median slowdown (0.30 = +30%%)")
    p_reg.add_argument("--min-seconds", type=float, default=0.01,
                       help="noise floor for baseline medians")
    p_reg.add_argument("--slope-k", type=int, default=5,
                       help="trajectory window in commits")
    p_reg.add_argument("--slope-threshold", type=float, default=0.05,
                       help="relative creep per commit that triggers a warning")
    p_reg.add_argument("--annotate", action="store_true",
                       help="emit GitHub ::warning/::error annotations")
    p_reg.set_defaults(fn=_cmd_regressions)

    args = parser.parse_args(argv)
    if args.db is None and args.command == "index":
        args.db = "bench_history.sqlite"
    return args.fn(args)


if __name__ == "__main__":
    raise SystemExit(main())
