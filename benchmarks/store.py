"""Append-only results store for experiment sweeps.

``BENCH_*.json`` files are one-artifact-per-run; this module keeps the
*trajectory*: every trial of every ``run_experiments.py`` invocation is
appended as one JSON line to ``bench_history.jsonl``, keyed by
``(git commit, experiment, backend, seed)``, so perf and resilience
numbers are queryable across PRs instead of buried in per-run artifacts::

    import store
    rows = store.load_history("bench_history.jsonl")
    luby = [r for r in rows if r["experiment"].startswith("mis/") and r["ok"]]

The format is deliberately minimal (the ROADMAP's "results store" item,
jsonl cut): flat rows, schema-versioned, safe to append from concurrent CI
steps (one ``write`` per line).  CI uploads the file alongside the BENCH
artifacts.
"""

from __future__ import annotations

import json
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = [
    "current_commit",
    "bootstrap_history",
    "history_rows",
    "append_history",
    "load_history",
    "latest_baseline",
]

#: Schema version of one history row.  v2 added ``setup_seconds`` (the
#: amortized one-off scenario setup each trial paid); v3 added
#: ``attempts`` (executions the fault-tolerant runner charged, > 1 when a
#: trial was retried); v4 splits the setup tax into ``pack_seconds``
#: (graph build + CSR packing) and ``rng_seconds`` (per-run RNG
#: construction — the O(n) node_rng tax).  Older rows load fine — readers
#: treat the keys as 0.0 / 1 when absent (``pack_seconds`` defaults to the
#: row's ``setup_seconds``).
HISTORY_SCHEMA = 4


def current_commit(cwd: Optional[str] = None) -> str:
    """Short git commit hash of the working tree, ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else "unknown"


def bootstrap_history(path) -> bool:
    """Ensure the jsonl store at ``path`` exists; True when newly created.

    Fresh clones ship no ``bench_history.jsonl`` — the first
    ``run_experiments.py --history`` run bootstraps it here (parent
    directories included) so later appends, index builds and CI
    regression checks all find a real file instead of special-casing
    absence.  An existing store is left untouched.
    """
    path = Path(path)
    if path.exists():
        return False
    path.parent.mkdir(parents=True, exist_ok=True)
    path.touch()
    return True


def _backend_of(trial) -> str:
    """The execution-backend axis of one trial.

    Sweep cells encode it as an ``@backend`` name suffix
    (``mis/sparse@dense``, ``scenario/luby/crash@engine``); cells without
    the suffix fall back to their params (``backend=`` or the splitting
    workload's ``method=``).
    """
    if "@" in trial.experiment:
        return trial.experiment.rsplit("@", 1)[1]
    params = trial.params or {}
    return str(params.get("backend") or params.get("method") or "")


def history_rows(sweep, commit: Optional[str] = None) -> List[Dict[str, Any]]:
    """One flat dict per trial of a :class:`~repro.exp.SweepResult`."""
    commit = commit or current_commit()
    written_at = time.time()
    return [
        {
            "schema": HISTORY_SCHEMA,
            "commit": commit,
            "experiment": t.experiment,
            "backend": _backend_of(t),
            "seed": t.seed,
            "ok": t.ok,
            "error": t.error,
            "elapsed": t.elapsed,
            "setup_seconds": t.setup_seconds,
            "pack_seconds": getattr(t, "pack_seconds", t.setup_seconds),
            "rng_seconds": getattr(t, "rng_seconds", 0.0),
            "attempts": getattr(t, "attempts", 1),
            "written_at": written_at,
            "params": t.params,
            "metrics": t.metrics,
        }
        for t in sweep.trials
    ]


def append_history(sweep, path, commit: Optional[str] = None) -> int:
    """Append every trial of ``sweep`` to the jsonl store at ``path``.

    Returns the number of rows written.  The file is created on first use;
    rows are never rewritten, so the store is an audit log — dedup on
    ``(commit, experiment, backend, seed)`` at query time if a sweep is
    re-run on one commit.
    """
    rows = history_rows(sweep, commit=commit)
    path = Path(path)
    # A crash-interrupted append can leave a truncated trailing line with
    # no newline; sealing it off before writing keeps the new rows parseable
    # (the torn fragment itself is skipped, with a warning, at load time).
    needs_newline = False
    if path.exists() and path.stat().st_size:
        with path.open("rb") as fh:
            fh.seek(-1, 2)
            needs_newline = fh.read(1) != b"\n"
    with path.open("a") as fh:
        if needs_newline:
            fh.write("\n")
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def load_history(path) -> List[Dict[str, Any]]:
    """All rows of a jsonl store (empty list for a missing file).

    Undecodable lines — a torn tail from a crash-interrupted append — are
    skipped with a warning instead of sinking the whole load: the store is
    an audit log, and one corrupt line must not make the history unusable.
    """
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    with path.open() as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                rows.append(json.loads(line))
            except json.JSONDecodeError:
                print(
                    f"store: skipping corrupt line {lineno} of {path}",
                    file=sys.stderr,
                )
    return rows


def latest_baseline(
    rows: List[Dict[str, Any]],
    experiment: str,
    backend: str,
    exclude_commit: Optional[str] = None,
) -> List[Dict[str, Any]]:
    """The most recent commit's ok rows for one ``(experiment, backend)``.

    Groups the cell's successful rows by commit, picks the commit whose
    rows were written last (``written_at``), and returns all of that
    commit's rows — the regression checker's baseline population.
    ``exclude_commit`` drops one commit from consideration (the current
    run's own rows, when the history already contains them).  Returns
    ``[]`` when the cell has no usable history.
    """
    by_commit: Dict[str, List[Dict[str, Any]]] = {}
    for row in rows:
        if not row.get("ok"):
            continue
        if row.get("experiment") != experiment or row.get("backend") != backend:
            continue
        commit = str(row.get("commit", "unknown"))
        if exclude_commit is not None and commit == exclude_commit:
            continue
        by_commit.setdefault(commit, []).append(row)
    if not by_commit:
        return []
    newest = max(
        by_commit, key=lambda c: max(r.get("written_at", 0.0) for r in by_commit[c])
    )
    return by_commit[newest]
