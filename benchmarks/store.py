"""Append-only results store for experiment sweeps.

``BENCH_*.json`` files are one-artifact-per-run; this module keeps the
*trajectory*: every trial of every ``run_experiments.py`` invocation is
appended as one JSON line to ``bench_history.jsonl``, keyed by
``(git commit, experiment, backend, seed)``, so perf and resilience
numbers are queryable across PRs instead of buried in per-run artifacts::

    import store
    rows = store.load_history("bench_history.jsonl")
    luby = [r for r in rows if r["experiment"].startswith("mis/") and r["ok"]]

The format is deliberately minimal (the ROADMAP's "results store" item,
jsonl cut): flat rows, schema-versioned, safe to append from concurrent CI
steps (one ``write`` per line).  CI uploads the file alongside the BENCH
artifacts.
"""

from __future__ import annotations

import json
import subprocess
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

__all__ = ["current_commit", "history_rows", "append_history", "load_history"]

#: Schema version of one history row.
HISTORY_SCHEMA = 1


def current_commit(cwd: Optional[str] = None) -> str:
    """Short git commit hash of the working tree, ``"unknown"`` outside git."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, cwd=cwd, timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    commit = proc.stdout.strip()
    return commit if proc.returncode == 0 and commit else "unknown"


def _backend_of(trial) -> str:
    """The execution-backend axis of one trial.

    Sweep cells encode it as an ``@backend`` name suffix
    (``mis/sparse@dense``, ``scenario/luby/crash@engine``); cells without
    the suffix fall back to their params (``backend=`` or the splitting
    workload's ``method=``).
    """
    if "@" in trial.experiment:
        return trial.experiment.rsplit("@", 1)[1]
    params = trial.params or {}
    return str(params.get("backend") or params.get("method") or "")


def history_rows(sweep, commit: Optional[str] = None) -> List[Dict[str, Any]]:
    """One flat dict per trial of a :class:`~repro.exp.SweepResult`."""
    commit = commit or current_commit()
    written_at = time.time()
    return [
        {
            "schema": HISTORY_SCHEMA,
            "commit": commit,
            "experiment": t.experiment,
            "backend": _backend_of(t),
            "seed": t.seed,
            "ok": t.ok,
            "error": t.error,
            "elapsed": t.elapsed,
            "written_at": written_at,
            "params": t.params,
            "metrics": t.metrics,
        }
        for t in sweep.trials
    ]


def append_history(sweep, path, commit: Optional[str] = None) -> int:
    """Append every trial of ``sweep`` to the jsonl store at ``path``.

    Returns the number of rows written.  The file is created on first use;
    rows are never rewritten, so the store is an audit log — dedup on
    ``(commit, experiment, backend, seed)`` at query time if a sweep is
    re-run on one commit.
    """
    rows = history_rows(sweep, commit=commit)
    path = Path(path)
    with path.open("a") as fh:
        for row in rows:
            fh.write(json.dumps(row, sort_keys=True) + "\n")
    return len(rows)


def load_history(path) -> List[Dict[str, Any]]:
    """All rows of a jsonl store (empty list for a missing file)."""
    path = Path(path)
    if not path.exists():
        return []
    rows = []
    with path.open() as fh:
        for line in fh:
            line = line.strip()
            if line:
                rows.append(json.loads(line))
    return rows
