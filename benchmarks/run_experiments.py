#!/usr/bin/env python3
"""Multi-seed experiment sweeps with machine-readable results.

Default mode fans the scenario sweep out over a process pool via
:mod:`repro.exp` and writes

* ``BENCH_<date>.json`` — schema-versioned per-experiment timings, metrics
  and per-trial rows, the artifact CI uploads so the perf trajectory is
  comparable across PRs;
* a human-readable summary table on stdout (and optionally a markdown
  report via ``--report``).

Usage::

    python benchmarks/run_experiments.py                  # full sweep
    python benchmarks/run_experiments.py --quick          # CI smoke sizes
    python benchmarks/run_experiments.py --seeds 8 --workers 4
    python benchmarks/run_experiments.py --out BENCH_ci.json
    python benchmarks/run_experiments.py --scenarios all  # + resilience cells
    python benchmarks/run_experiments.py --scenarios luby/crash,sinkless/crash
    python benchmarks/run_experiments.py --scenarios all --fault-mode mask
    python benchmarks/run_experiments.py --legacy-tables  # old E1-E16 scrape

Every trial is also appended to the ``bench_history.jsonl`` results store
(``--history`` overrides the path, ``--history ''`` disables) keyed by
(git commit, experiment, backend, seed), so the perf/resilience trajectory
stays queryable across PRs.

``--legacy-tables`` reproduces the historical behaviour: run the full
pytest-benchmark suite and collect the ``== Ei ==`` tables into one
markdown file (EXPERIMENTS.md's measured side).
"""

from __future__ import annotations

import argparse
import datetime
import re
import subprocess
import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.exp import ExperimentSpec, run_sweep  # noqa: E402
from repro.exp.workloads import (  # noqa: E402
    engine_throughput_workload,
    luby_mis_batch_workload,
    luby_mis_workload,
    scenario_workload,
    sinkless_batch_workload,
    sinkless_workload,
    splitting_batch_workload,
    splitting_workload,
)


def build_specs(quick: bool, num_seeds: int, backends=("engine", "dense"),
                trial_batch: int = 32):
    """The sweep suite: every workload across topologies x backends.

    ``backends`` selects the execution-backend axis for the algorithm
    workloads (``reference`` / ``engine`` / ``dense`` /
    ``dense-batched``); the ``engine/throughput`` cell always measures the
    first three side by side.  ``dense-batched`` cells chunk their seeds
    into groups of ``trial_batch`` and solve each chunk in one batched
    kernel call (see :class:`repro.exp.runner.ExperimentSpec.batch_fn`).
    Scenario graphs are fixed per cell (trial seeds drive the coins), so
    every backend and every seed of a cell reuses one packed engine.
    """
    seeds = tuple(range(num_seeds))
    scale = 1 if quick else 4
    mis_n = 2_000 * scale

    specs = [
        ExperimentSpec(
            f"mis/{topology}@{backend}",
            luby_mis_workload,
            {"topology": topology, "n": mis_n, "degree": 12}
            if backend == "dense-batched"
            else {"topology": topology, "n": mis_n, "degree": 12, "backend": backend},
            seeds=seeds,
            batch_fn=luby_mis_batch_workload if backend == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for topology in ("sparse", "regular", "torus", "powerlaw")
        for backend in backends
    ]
    specs += [
        ExperimentSpec(
            f"sinkless/{topology}@{backend}",
            sinkless_workload,
            {"topology": topology, "n": 1_000 * scale, "degree": 4}
            if backend == "dense-batched"
            else {"topology": topology, "n": 1_000 * scale, "degree": 4,
                  "backend": backend},
            seeds=seeds,
            batch_fn=sinkless_batch_workload if backend == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for topology in ("regular", "torus")
        for backend in backends
        if backend != "reference"  # sinkless has no reference-mode driver
    ]
    methods = ["local", "dense", "random"]
    if "dense-batched" in backends:
        methods.append("dense-batched")
    specs += [
        ExperimentSpec(
            f"splitting/{method}",
            splitting_workload,
            {"topology": "sparse", "n": 500 * scale, "degree": 48, "method": method},
            seeds=seeds,
            batch_fn=splitting_batch_workload if method == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for method in methods
    ]
    specs.append(
        ExperimentSpec(
            "engine/throughput",
            engine_throughput_workload,
            {"topology": "sparse", "n": 10_000 if quick else 20_000, "degree": 20},
            seeds=seeds[: max(2, num_seeds // 2)],
        )
    )
    return specs


def build_scenario_specs(quick: bool, num_seeds: int, names: str, backends,
                         fault_mode: str = "replay"):
    """Scenario cells for the ``--scenarios`` axis (resilience metrics).

    ``names`` is ``"all"`` or a comma-separated list of registry names from
    :mod:`repro.scenarios`; one cell per (scenario, supported backend in
    ``backends``).  Each trial seed drives both the algorithm coins and the
    deterministic fault schedule; ``fault_mode`` picks the fault-coin
    kernel (``"replay"`` — historical bit-identity schedule, ``"mask"`` —
    vectorized counter-based masks, the perf mode for dense cells).
    """
    from repro.scenarios import FAULT_MODES, get_scenario, scenario_names

    if fault_mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {fault_mode!r}; expected {FAULT_MODES}")
    selected = scenario_names() if names == "all" else [
        s.strip() for s in names.split(",") if s.strip()
    ]
    seeds = tuple(range(num_seeds))
    n = 400 if quick else 1_500
    specs = []
    for name in selected:
        sc = get_scenario(name)  # fails fast on typos, before the sweep
        for backend in backends:
            if backend not in sc.backends:
                continue
            specs.append(
                ExperimentSpec(
                    f"scenario/{name}@{backend}",
                    scenario_workload,
                    {"scenario": name, "n": n, "backend": backend,
                     "fault_mode": fault_mode},
                    seeds=seeds,
                )
            )
    return specs


def _print_summary(sweep) -> None:
    summary = sweep.summary()
    if not summary:
        print("\nno trials ran")
        return
    name_width = max(len(n) for n in summary) + 2
    print(f"\n{'experiment':<{name_width}} {'ok':>3} {'fail':>4}  key metrics (mean over seeds)")
    for name in sorted(summary):
        entry = summary[name]
        metrics = entry["metrics"]
        parts = []
        for key in ("rounds", "speedup", "dense_speedup", "mis_size", "violations",
                    "survivors", "rounds_to_recover", "solve_seconds"):
            if key in metrics:
                value = metrics[key]["mean"]
                parts.append(f"{key}={value:.3g}")
        if "elapsed" in metrics and metrics["elapsed"]:
            parts.append(f"elapsed={metrics['elapsed']['mean']:.3f}s")
        print(f"{name:<{name_width}} {entry['ok']:>3} {entry['failed']:>4}  {' '.join(parts)}")
    print(f"\ntotal wall time {sweep.elapsed:.1f}s on {sweep.workers or 'inline'} workers")


def _write_report(sweep, path: Path) -> None:
    summary = sweep.summary()
    lines = [
        "# Experiment sweep report",
        "",
        "Produced by `python benchmarks/run_experiments.py`.",
        "",
        "| experiment | seeds ok | failed | mean metrics |",
        "|---|---|---|---|",
    ]
    for name in sorted(summary):
        entry = summary[name]
        cells = ", ".join(
            f"{key}={stats['mean']:.4g}"
            for key, stats in sorted(entry["metrics"].items())
            if stats and key != "elapsed"
        )
        lines.append(f"| {name} | {entry['ok']} | {entry['failed']} | {cells} |")
    path.write_text("\n".join(lines) + "\n")


def _load_store():
    """The sibling ``store.py`` module (benchmarks/ is not a package)."""
    import importlib.util

    path = Path(__file__).resolve().parent / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def run_sweeps(args) -> int:
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    specs = build_specs(args.quick, args.seeds, backends=backends,
                        trial_batch=args.trial_batch)
    if args.scenarios is not None:
        specs += build_scenario_specs(
            args.quick, args.seeds, args.scenarios, backends, args.fault_mode
        )
    out = Path(
        args.out
        if args.out
        else f"BENCH_{datetime.date.today().isoformat()}.json"
    )

    def progress(trial):
        status = "ok" if trial.ok else f"FAILED ({trial.error})"
        print(f"  [{trial.experiment} seed={trial.seed}] {status} {trial.elapsed:.2f}s")

    print(f"running {sum(len(s.seeds) for s in specs)} trials "
          f"({len(specs)} experiments x seeds)...")
    sweep = run_sweep(specs, workers=args.workers, json_path=str(out), progress=progress)
    _print_summary(sweep)
    print(f"wrote {out}")
    if args.history:
        rows = _load_store().append_history(sweep, args.history)
        print(f"appended {rows} rows to {args.history}")
    if args.report:
        _write_report(sweep, Path(args.report))
        print(f"wrote {args.report}")
    failed = sum(1 for t in sweep.trials if not t.ok)
    if failed:
        print(f"{failed} trial(s) failed", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Legacy mode: regenerate the E1-E16 tables by scraping pytest-benchmark.
# ---------------------------------------------------------------------------


def run_legacy_tables(out_path: Path) -> int:
    bench_dir = Path(__file__).resolve().parent
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_dir),
            "--benchmark-only",
            "-s",
            "-p",
            "no:warnings",
        ],
        capture_output=True,
        text=True,
        cwd=bench_dir.parent,
    )
    sys.stdout.write(proc.stdout[-2000:])
    tables = _extract_tables(proc.stdout)
    if not tables:
        print("no experiment tables found — did the benchmarks fail?", file=sys.stderr)
        sys.stderr.write(proc.stdout[-4000:])
        return 1

    with out_path.open("w") as fh:
        fh.write("# Experiment tables (regenerated)\n")
        fh.write("\nProduced by `python benchmarks/run_experiments.py --legacy-tables`.\n")
        for title, body in sorted(tables, key=lambda t: _sort_key(t[0])):
            fh.write(f"\n## {title}\n\n```\n{body}\n```\n")
    print(f"\nwrote {len(tables)} experiment tables to {out_path}")
    return 0 if proc.returncode == 0 else proc.returncode


def _extract_tables(stdout: str):
    """Pull every ``== title ==`` table block out of the pytest output."""
    tables = []
    lines = stdout.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^== (.*) ==$", lines[i])
        if not m:
            i += 1
            continue
        title = m.group(1)
        body: list = []
        i += 1
        while i < len(lines) and lines[i].strip() and not lines[i].startswith("=="):
            body.append(lines[i].rstrip())
            i += 1
        tables.append((title, "\n".join(body)))
    return tables


def _sort_key(title: str):
    m = re.match(r"^E(\d+)", title)
    return (int(m.group(1)) if m else 99, title)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    def positive_int(value: str) -> int:
        number = int(value)
        if number < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return number

    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seeds", type=positive_int, default=5,
                        help="seeds per experiment (>= 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (0 = inline, default = cpu count)")
    parser.add_argument("--backends", default="engine,dense",
                        help="comma-separated execution backends for the "
                        "algorithm workloads "
                        "(reference,engine,dense,dense-batched)")
    parser.add_argument("--trial-batch", type=positive_int, default=32,
                        metavar="K",
                        help="seeds per kernel call for dense-batched cells "
                        "(default 32)")
    parser.add_argument("--scenarios", nargs="?", const="all", default=None,
                        metavar="NAMES",
                        help="also sweep fault/adversary scenarios: 'all' or "
                        "comma-separated registry names from repro.scenarios "
                        "(resilience metrics land in the BENCH json)")
    parser.add_argument("--fault-mode", choices=("replay", "mask"),
                        default="replay",
                        help="fault-coin kernel for --scenarios cells: "
                        "'replay' (historical bit-identity schedule) or "
                        "'mask' (vectorized counter-based masks, the perf "
                        "mode for large dense sweeps)")
    parser.add_argument("--history", default="bench_history.jsonl",
                        metavar="JSONL",
                        help="append every trial to this results store "
                        "keyed by (commit, experiment, backend, seed); "
                        "pass '' to disable")
    parser.add_argument("--out", default=None, help="JSON output path "
                        "(default BENCH_<date>.json)")
    parser.add_argument("--report", default=None, help="also write a markdown summary")
    parser.add_argument("--legacy-tables", nargs="?", const="experiment_tables.md",
                        default=None, metavar="OUT_MD",
                        help="regenerate the E1-E16 pytest tables instead")
    args = parser.parse_args()
    if args.legacy_tables is not None:
        return run_legacy_tables(Path(args.legacy_tables))
    return run_sweeps(args)


if __name__ == "__main__":
    raise SystemExit(main())
