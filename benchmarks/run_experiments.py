#!/usr/bin/env python3
"""Standalone experiment runner: regenerate every E1–E16 table.

Runs the full benchmark suite (pytest-benchmark) with table emission
enabled and collects the experiment tables into a single report, so

    python benchmarks/run_experiments.py [report.md]

reproduces the measured side of EXPERIMENTS.md in one command.  The same
tables are produced by ``pytest benchmarks/ --benchmark-only -s``; this
wrapper only adds collection into a file.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path


def main() -> int:
    out_path = Path(sys.argv[1]) if len(sys.argv) > 1 else Path("experiment_tables.md")
    bench_dir = Path(__file__).resolve().parent
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_dir),
            "--benchmark-only",
            "-s",
            "-p",
            "no:warnings",
        ],
        capture_output=True,
        text=True,
        cwd=bench_dir.parent,
    )
    sys.stdout.write(proc.stdout[-2000:])
    tables = _extract_tables(proc.stdout)
    if not tables:
        print("no experiment tables found — did the benchmarks fail?", file=sys.stderr)
        sys.stderr.write(proc.stdout[-4000:])
        return 1

    with out_path.open("w") as fh:
        fh.write("# Experiment tables (regenerated)\n")
        fh.write("\nProduced by `python benchmarks/run_experiments.py`.\n")
        for title, body in sorted(tables, key=lambda t: _sort_key(t[0])):
            fh.write(f"\n## {title}\n\n```\n{body}\n```\n")
    print(f"\nwrote {len(tables)} experiment tables to {out_path}")
    return 0 if proc.returncode == 0 else proc.returncode


def _extract_tables(stdout: str):
    """Pull every ``== title ==`` table block out of the pytest output."""
    tables = []
    lines = stdout.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^== (.*) ==$", lines[i])
        if not m:
            i += 1
            continue
        title = m.group(1)
        body: list = []
        i += 1
        while i < len(lines) and lines[i].strip() and not lines[i].startswith("=="):
            body.append(lines[i].rstrip())
            i += 1
        tables.append((title, "\n".join(body)))
    return tables


def _sort_key(title: str):
    m = re.match(r"^E(\d+)", title)
    return (int(m.group(1)) if m else 99, title)


if __name__ == "__main__":
    raise SystemExit(main())
