#!/usr/bin/env python3
"""Multi-seed experiment sweeps with machine-readable results.

Default mode fans the scenario sweep out over a process pool via
:mod:`repro.exp` and writes

* ``BENCH_<date>.json`` — schema-versioned per-experiment timings, metrics
  and per-trial rows, the artifact CI uploads so the perf trajectory is
  comparable across PRs;
* a human-readable summary table on stdout (and optionally a markdown
  report via ``--report``).

Usage::

    python benchmarks/run_experiments.py                  # full sweep
    python benchmarks/run_experiments.py --quick          # CI smoke sizes
    python benchmarks/run_experiments.py --seeds 8 --workers 4
    python benchmarks/run_experiments.py --out BENCH_ci.json
    python benchmarks/run_experiments.py --scenarios all  # + resilience cells
    python benchmarks/run_experiments.py --scenarios luby/crash,sinkless/crash
    python benchmarks/run_experiments.py --scenarios all --fault-mode mask
    python benchmarks/run_experiments.py --scenarios all --recover  # + repair tails
    python benchmarks/run_experiments.py --scenarios all --trace  # round traces
    python benchmarks/run_experiments.py --legacy-tables  # old E1-E16 scrape

Sweeps are fault tolerant (see :mod:`repro.exp.resilient`): every
finished trial is appended to a torn-write-safe checkpoint
(``--checkpoint``, default ``<out>.trials.jsonl``; pass '' to disable),
``--resume`` restarts a killed sweep skipping already-completed
(experiment, seed) trials, ``--timeout`` puts a wall-clock deadline on
every pooled task (hung workers are killed and recorded as
``error="Timeout"`` data), and ``--retries N`` re-runs transient failures
up to N attempts with exponential backoff.  SIGINT/SIGTERM drain
gracefully: completed trials are kept, a failure manifest is written, and
the next ``--resume`` run picks up where the sweep died.  ``--chaos``
runs the self-test for all of that: a small sweep whose cells crash,
hang, exit and flake on purpose, interrupted mid-run and resumed, with
per-trial attribution and exactly-once accounting asserted.

Every trial is also appended to the ``bench_history.jsonl`` results store
(``--history`` overrides the path, ``--history ''`` disables) keyed by
(git commit, experiment, backend, seed), so the perf/resilience trajectory
stays queryable across PRs.

``--legacy-tables`` reproduces the historical behaviour: run the full
pytest-benchmark suite and collect the ``== Ei ==`` tables into one
markdown file (EXPERIMENTS.md's measured side).
"""

from __future__ import annotations

import argparse
import datetime
import re
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.exp import ExperimentSpec, RetryPolicy, run_sweep  # noqa: E402
from repro.exp.workloads import (  # noqa: E402
    chaos_attempts,
    chaos_exit,
    chaos_flaky,
    chaos_hang,
    engine_throughput_workload,
    luby_mis_batch_workload,
    luby_mis_workload,
    scenario_workload,
    sinkless_batch_workload,
    sinkless_workload,
    splitting_batch_workload,
    splitting_workload,
)


def build_specs(quick: bool, num_seeds: int, backends=("engine", "dense"),
                trial_batch: int = 32):
    """The sweep suite: every workload across topologies x backends.

    ``backends`` selects the execution-backend axis for the algorithm
    workloads (``reference`` / ``engine`` / ``dense`` / ``dense-batched``
    / ``dense-sharded``); the ``engine/throughput`` cell always measures
    the first three side by side.  ``dense-batched`` cells chunk their
    seeds into groups of ``trial_batch`` and solve each chunk in one
    batched kernel call (see
    :class:`repro.exp.runner.ExperimentSpec.batch_fn`); ``dense-sharded``
    cells run each trial across a per-worker cached shard pool
    (:func:`repro.exp.workloads.sharded_executor`), so one cell's seeds
    share hot shard workers and report partition/halo seconds.
    Scenario graphs are fixed per cell (trial seeds drive the coins), so
    every backend and every seed of a cell reuses one packed engine.
    """
    seeds = tuple(range(num_seeds))
    scale = 1 if quick else 4
    mis_n = 2_000 * scale

    specs = [
        ExperimentSpec(
            f"mis/{topology}@{backend}",
            luby_mis_workload,
            {"topology": topology, "n": mis_n, "degree": 12}
            if backend == "dense-batched"
            else {"topology": topology, "n": mis_n, "degree": 12, "backend": backend},
            seeds=seeds,
            batch_fn=luby_mis_batch_workload if backend == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for topology in ("sparse", "regular", "torus", "powerlaw")
        for backend in backends
    ]
    specs += [
        ExperimentSpec(
            f"sinkless/{topology}@{backend}",
            sinkless_workload,
            {"topology": topology, "n": 1_000 * scale, "degree": 4}
            if backend == "dense-batched"
            else {"topology": topology, "n": 1_000 * scale, "degree": 4,
                  "backend": backend},
            seeds=seeds,
            batch_fn=sinkless_batch_workload if backend == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for topology in ("regular", "torus")
        for backend in backends
        if backend != "reference"  # sinkless has no reference-mode driver
    ]
    methods = ["local", "dense", "random"]
    if "dense-batched" in backends:
        methods.append("dense-batched")
    if "dense-sharded" in backends:
        methods.append("dense-sharded")
    specs += [
        ExperimentSpec(
            f"splitting/{method}",
            splitting_workload,
            {"topology": "sparse", "n": 500 * scale, "degree": 48, "method": method},
            seeds=seeds,
            batch_fn=splitting_batch_workload if method == "dense-batched" else None,
            trial_batch=trial_batch,
        )
        for method in methods
    ]
    specs.append(
        ExperimentSpec(
            "engine/throughput",
            engine_throughput_workload,
            {"topology": "sparse", "n": 10_000 if quick else 20_000, "degree": 20},
            seeds=seeds[: max(2, num_seeds // 2)],
        )
    )
    return specs


def build_scenario_specs(quick: bool, num_seeds: int, names: str, backends,
                         fault_mode: str = "replay", trace_out=None,
                         recover: bool = False):
    """Scenario cells for the ``--scenarios`` axis (resilience metrics).

    ``names`` is ``"all"`` or a comma-separated list of registry names from
    :mod:`repro.scenarios`; one cell per (scenario, supported backend in
    ``backends``).  Each trial seed drives both the algorithm coins and the
    deterministic fault schedule; ``fault_mode`` picks the fault-coin
    kernel (``"replay"`` — historical bit-identity schedule, ``"mask"`` —
    vectorized counter-based masks, the perf mode for dense cells).
    ``trace_out`` threads a round-trace jsonl path into every cell: each
    trial then records per-round tracer spans (see :mod:`repro.obs`) and
    appends them to that file.  ``recover=True`` adds a ``+recover``
    sibling for every cell running the same trials with the
    self-stabilizing repair tail, so the BENCH json carries the
    plain-vs-recovering comparison (``recovered``, ``repair_rounds``,
    ``violations_before_recovery``) per scenario.
    """
    from repro.scenarios import FAULT_MODES, get_scenario, scenario_names

    if fault_mode not in FAULT_MODES:
        raise ValueError(f"unknown fault mode {fault_mode!r}; expected {FAULT_MODES}")
    selected = scenario_names() if names == "all" else [
        s.strip() for s in names.split(",") if s.strip()
    ]
    seeds = tuple(range(num_seeds))
    n = 400 if quick else 1_500
    specs = []
    for name in selected:
        sc = get_scenario(name)  # fails fast on typos, before the sweep
        for backend in backends:
            if backend not in sc.backends:
                continue
            params = {"scenario": name, "n": n, "backend": backend,
                      "fault_mode": fault_mode}
            if trace_out:
                params["trace_out"] = trace_out
            specs.append(
                ExperimentSpec(
                    f"scenario/{name}@{backend}",
                    scenario_workload,
                    params,
                    seeds=seeds,
                )
            )
            if recover:
                specs.append(
                    ExperimentSpec(
                        f"scenario/{name}@{backend}+recover",
                        scenario_workload,
                        dict(params, recover=True),
                        seeds=seeds,
                    )
                )
    return specs


def _print_summary(sweep) -> None:
    summary = sweep.summary()
    if not summary:
        print("\nno trials ran")
        return
    name_width = max(len(n) for n in summary) + 2
    print(f"\n{'experiment':<{name_width}} {'ok':>3} {'fail':>4}  key metrics (mean over seeds)")
    for name in sorted(summary):
        entry = summary[name]
        metrics = entry["metrics"]
        parts = []
        for key in ("rounds", "speedup", "dense_speedup", "mis_size", "violations",
                    "survivors", "rounds_to_recover", "recovered",
                    "repair_rounds", "solve_seconds"):
            if key in metrics:
                value = metrics[key]["mean"]
                parts.append(f"{key}={value:.3g}")
        if "elapsed" in metrics and metrics["elapsed"]:
            parts.append(f"elapsed={metrics['elapsed']['mean']:.3f}s")
        print(f"{name:<{name_width}} {entry['ok']:>3} {entry['failed']:>4}  {' '.join(parts)}")
    print(f"\ntotal wall time {sweep.elapsed:.1f}s on {sweep.workers or 'inline'} workers")


def _write_report(sweep, path: Path) -> None:
    summary = sweep.summary()
    lines = [
        "# Experiment sweep report",
        "",
        "Produced by `python benchmarks/run_experiments.py`.",
        "",
        "| experiment | seeds ok | failed | mean metrics |",
        "|---|---|---|---|",
    ]
    for name in sorted(summary):
        entry = summary[name]
        cells = ", ".join(
            f"{key}={stats['mean']:.4g}"
            for key, stats in sorted(entry["metrics"].items())
            if stats and key != "elapsed"
        )
        lines.append(f"| {name} | {entry['ok']} | {entry['failed']} | {cells} |")
    path.write_text("\n".join(lines) + "\n")


def _load_store():
    """The sibling ``store.py`` module (benchmarks/ is not a package)."""
    import importlib.util

    path = Path(__file__).resolve().parent / "store.py"
    spec = importlib.util.spec_from_file_location("bench_store", path)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _harden_specs(specs, timeout, retries):
    """Apply the CLI-level timeout/retry policy to every sweep cell."""
    if timeout is None and retries <= 1:
        return specs
    policy = (
        RetryPolicy(max_attempts=retries, base_delay=0.5, max_delay=10.0)
        if retries > 1
        else None
    )
    return [replace(s, timeout=timeout, retry=policy) for s in specs]


def run_sweeps(args) -> int:
    backends = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    out = Path(
        args.out
        if args.out
        else f"BENCH_{datetime.date.today().isoformat()}.json"
    )
    trace_out = None
    if args.trace is not None:
        trace_out = args.trace or f"{out}.trace.jsonl"
    specs = build_specs(args.quick, args.seeds, backends=backends,
                        trial_batch=args.trial_batch)
    if args.scenarios is not None:
        specs += build_scenario_specs(
            args.quick, args.seeds, args.scenarios, backends, args.fault_mode,
            trace_out=trace_out, recover=args.recover,
        )
    elif trace_out:
        print("--trace only instruments --scenarios cells; none selected",
              file=sys.stderr)
    specs = _harden_specs(specs, args.timeout, args.retries)
    checkpoint = args.checkpoint if args.checkpoint is not None else f"{out}.trials.jsonl"
    checkpoint = checkpoint or None  # '' disables
    resume = None
    if args.resume is not None:
        resume = args.resume or checkpoint
        if not resume:
            print("--resume needs a path when --checkpoint is disabled", file=sys.stderr)
            return 2

    def progress(trial):
        status = "ok" if trial.ok else f"FAILED ({trial.error})"
        retried = f" attempts={trial.attempts}" if trial.attempts > 1 else ""
        print(f"  [{trial.experiment} seed={trial.seed}] {status}"
              f" {trial.elapsed:.2f}s{retried}")

    print(f"running {sum(len(s.seeds) for s in specs)} trials "
          f"({len(specs)} experiments x seeds)...")
    sweep = run_sweep(
        specs, workers=args.workers, json_path=str(out), progress=progress,
        checkpoint=checkpoint, resume=resume,
    )
    _print_summary(sweep)
    print(f"wrote {out}")
    if trace_out and Path(trace_out).exists():
        print(f"round traces appended to {trace_out}")
    if args.history:
        store = _load_store()
        if store.bootstrap_history(args.history):
            print(f"bootstrapped new results store at {args.history}")
        rows = store.append_history(sweep, args.history)
        print(f"appended {rows} rows to {args.history}")
    if args.report:
        _write_report(sweep, Path(args.report))
        print(f"wrote {args.report}")
    if sweep.drained:
        print(f"sweep drained on {sweep.drained}; completed trials are "
              f"checkpointed{' in ' + checkpoint if checkpoint else ''} — "
              f"re-run with --resume to finish", file=sys.stderr)
        return 130
    failed = sum(1 for t in sweep.trials if not t.ok)
    if failed:
        print(f"{failed} trial(s) failed", file=sys.stderr)
        return 1
    return 0


# ---------------------------------------------------------------------------
# Chaos mode: prove the fault-tolerant executor against real worker deaths.
# ---------------------------------------------------------------------------


def build_chaos_specs(state_dir: str, retry: RetryPolicy, hang_seconds: float,
                      timeout: float):
    """The chaos suite: healthy, flaky, worker-killing and hanging cells."""
    sd = str(state_dir)
    return [
        ExperimentSpec("chaos/ok", chaos_flaky,
                       {"succeed_after": 1, "state_dir": sd, "label": "ok"},
                       seeds=range(4), retry=retry),
        ExperimentSpec("chaos/flaky", chaos_flaky,
                       {"succeed_after": 2, "state_dir": sd, "label": "flaky"},
                       seeds=(0, 1), retry=retry),
        ExperimentSpec("chaos/exit", chaos_exit,
                       {"state_dir": sd, "label": "exit"},
                       seeds=(0,), retry=retry),
        ExperimentSpec("chaos/hang", chaos_hang,
                       {"hang_seconds": hang_seconds, "state_dir": sd, "label": "hang"},
                       seeds=(0,), timeout=timeout),
    ]


def run_chaos(args) -> int:
    """Chaos smoke: kill real pool workers mid-sweep, drain, resume, audit.

    Phase 1 starts the sweep on a real process pool and SIGINTs itself
    after three completed trials (the graceful-drain path: partial results
    plus a failure manifest).  Phase 2 resumes from the checkpoint and
    must finish everything.  Then every claim the resilient executor
    makes is audited: exact per-(experiment, seed) failure attribution,
    flaky cells healed by retry, and file-backed execution counters
    proving completed trials were never re-run.
    """
    import signal
    import tempfile

    state_dir = tempfile.mkdtemp(prefix="chaos_sweep_")
    checkpoint = str(Path(state_dir) / "trials.jsonl")
    retry = RetryPolicy(max_attempts=3, base_delay=0.05, max_delay=0.25)
    specs = build_chaos_specs(state_dir, retry, hang_seconds=30.0, timeout=2.0)
    expected = {(s.name, seed) for s in specs for seed in s.seeds}

    completed = [0]

    def interrupt_after_three(trial):
        completed[0] += 1
        if completed[0] == 3:
            print("  [chaos] raising SIGINT mid-sweep")
            signal.raise_signal(signal.SIGINT)

    print("chaos phase 1: sweep with worker kills, interrupted mid-run...")
    first = run_sweep(specs, workers=2, checkpoint=checkpoint,
                      progress=interrupt_after_three, drain_grace=1.0)
    print(f"  drained={first.drained} completed={len(first.trials)}")
    manifest = Path(checkpoint + ".manifest.json")
    problems = []
    if first.drained != "SIGINT":
        problems.append(f"expected SIGINT drain, got {first.drained!r}")
    if not manifest.exists():
        problems.append("drain did not write a failure manifest")
    if len(first.trials) >= len(expected):
        problems.append("drain did not actually interrupt the sweep")

    print("chaos phase 2: resume from the checkpoint...")
    sweep = run_sweep(specs, workers=2, checkpoint=checkpoint, resume=checkpoint)
    by_key = {(t.experiment, t.seed): t for t in sweep.trials}
    if set(by_key) != expected:
        problems.append(f"resume did not cover the sweep: missing "
                        f"{sorted(expected - set(by_key))}")

    for seed in range(4):
        trial = by_key.get(("chaos/ok", seed))
        if trial is None or not trial.ok:
            problems.append(f"chaos/ok seed={seed} did not succeed")
        elif chaos_attempts(state_dir, "ok", seed) != 1:
            problems.append(f"chaos/ok seed={seed} ran "
                            f"{chaos_attempts(state_dir, 'ok', seed)} times, wanted "
                            "exactly once (resume must skip completed trials)")
    for seed in (0, 1):
        trial = by_key.get(("chaos/flaky", seed))
        if trial is None or not trial.ok:
            problems.append(f"chaos/flaky seed={seed} was not healed by retry")
        elif chaos_attempts(state_dir, "flaky", seed) != 2:
            problems.append(f"chaos/flaky seed={seed} executed "
                            f"{chaos_attempts(state_dir, 'flaky', seed)} times, wanted 2")
    exit_trial = by_key.get(("chaos/exit", 0))
    if exit_trial is None or exit_trial.ok or "BrokenProcessPool" not in (exit_trial.error or ""):
        problems.append(f"chaos/exit not attributed as a worker death: {exit_trial}")
    hang_trial = by_key.get(("chaos/hang", 0))
    if hang_trial is None or hang_trial.ok or not (hang_trial.error or "").startswith("Timeout"):
        problems.append(f"chaos/hang not attributed as a timeout: {hang_trial}")

    if problems:
        print("\nchaos smoke FAILED:", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print("\nchaos smoke ok: worker kills healed, hang timed out, flaky "
          "retried, resume re-ran only the missing trials")
    return 0


# ---------------------------------------------------------------------------
# Legacy mode: regenerate the E1-E16 tables by scraping pytest-benchmark.
# ---------------------------------------------------------------------------


def run_legacy_tables(out_path: Path) -> int:
    bench_dir = Path(__file__).resolve().parent
    proc = subprocess.run(
        [
            sys.executable,
            "-m",
            "pytest",
            str(bench_dir),
            "--benchmark-only",
            "-s",
            "-p",
            "no:warnings",
        ],
        capture_output=True,
        text=True,
        cwd=bench_dir.parent,
    )
    sys.stdout.write(proc.stdout[-2000:])
    tables = _extract_tables(proc.stdout)
    if not tables:
        print("no experiment tables found — did the benchmarks fail?", file=sys.stderr)
        sys.stderr.write(proc.stdout[-4000:])
        return 1

    with out_path.open("w") as fh:
        fh.write("# Experiment tables (regenerated)\n")
        fh.write("\nProduced by `python benchmarks/run_experiments.py --legacy-tables`.\n")
        for title, body in sorted(tables, key=lambda t: _sort_key(t[0])):
            fh.write(f"\n## {title}\n\n```\n{body}\n```\n")
    print(f"\nwrote {len(tables)} experiment tables to {out_path}")
    return 0 if proc.returncode == 0 else proc.returncode


def _extract_tables(stdout: str):
    """Pull every ``== title ==`` table block out of the pytest output."""
    tables = []
    lines = stdout.splitlines()
    i = 0
    while i < len(lines):
        m = re.match(r"^== (.*) ==$", lines[i])
        if not m:
            i += 1
            continue
        title = m.group(1)
        body: list = []
        i += 1
        while i < len(lines) and lines[i].strip() and not lines[i].startswith("=="):
            body.append(lines[i].rstrip())
            i += 1
        tables.append((title, "\n".join(body)))
    return tables


def _sort_key(title: str):
    m = re.match(r"^E(\d+)", title)
    return (int(m.group(1)) if m else 99, title)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n\n")[0])
    def positive_int(value: str) -> int:
        number = int(value)
        if number < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return number

    parser.add_argument("--quick", action="store_true", help="CI smoke sizes")
    parser.add_argument("--seeds", type=positive_int, default=5,
                        help="seeds per experiment (>= 1)")
    parser.add_argument("--workers", type=int, default=None,
                        help="pool size (0 = inline, default = cpu count)")
    parser.add_argument("--backends", default="engine,dense",
                        help="comma-separated execution backends for the "
                        "algorithm workloads "
                        "(reference,engine,dense,dense-batched,"
                        "dense-sharded)")
    parser.add_argument("--trial-batch", type=positive_int, default=32,
                        metavar="K",
                        help="seeds per kernel call for dense-batched cells "
                        "(default 32)")
    parser.add_argument("--scenarios", nargs="?", const="all", default=None,
                        metavar="NAMES",
                        help="also sweep fault/adversary scenarios: 'all' or "
                        "comma-separated registry names from repro.scenarios "
                        "(resilience metrics land in the BENCH json)")
    parser.add_argument("--trace", nargs="?", const="", default=None,
                        metavar="JSONL",
                        help="record round-level traces for --scenarios "
                        "cells into this jsonl file (default "
                        "<out>.trace.jsonl; see repro.obs)")
    parser.add_argument("--recover", action="store_true",
                        help="add a '+recover' sibling for every --scenarios "
                        "cell: same trials with the self-stabilizing repair "
                        "tail (repro.scenarios.recovery), recording "
                        "recovered / repair_rounds / "
                        "violations_before_recovery next to the plain cell")
    parser.add_argument("--fault-mode", choices=("replay", "mask"),
                        default="replay",
                        help="fault-coin kernel for --scenarios cells: "
                        "'replay' (historical bit-identity schedule) or "
                        "'mask' (vectorized counter-based masks, the perf "
                        "mode for large dense sweeps)")
    parser.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                        help="per-task wall-clock deadline (pooled runs): a "
                        "hung worker is killed, the pool rebuilt, and the "
                        "trial recorded as error='Timeout' data")
    parser.add_argument("--retries", type=positive_int, default=1, metavar="N",
                        help="max attempts per task for transient failures "
                        "(exponential backoff + jitter; 1 = no retry)")
    parser.add_argument("--checkpoint", default=None, metavar="JSONL",
                        help="append every finished trial to this torn-write-"
                        "safe checkpoint as it completes (default "
                        "<out>.trials.jsonl; pass '' to disable)")
    parser.add_argument("--resume", nargs="?", const="", default=None,
                        metavar="JSONL",
                        help="skip (experiment, seed) trials already recorded "
                        "in this checkpoint (default: the --checkpoint path); "
                        "how a killed sweep restarts where it died")
    parser.add_argument("--chaos", action="store_true",
                        help="run the chaos smoke suite instead: worker "
                        "kills, hangs and flakes against the fault-tolerant "
                        "executor, with a SIGINT drain + resume round-trip")
    parser.add_argument("--history", default="bench_history.jsonl",
                        metavar="JSONL",
                        help="append every trial to this results store "
                        "keyed by (commit, experiment, backend, seed); "
                        "pass '' to disable")
    parser.add_argument("--out", default=None, help="JSON output path "
                        "(default BENCH_<date>.json)")
    parser.add_argument("--report", default=None, help="also write a markdown summary")
    parser.add_argument("--legacy-tables", nargs="?", const="experiment_tables.md",
                        default=None, metavar="OUT_MD",
                        help="regenerate the E1-E16 pytest tables instead")
    args = parser.parse_args()
    if args.legacy_tables is not None:
        return run_legacy_tables(Path(args.legacy_tables))
    if args.chaos:
        return run_chaos(args)
    return run_sweeps(args)


if __name__ == "__main__":
    raise SystemExit(main())
