"""E10 + E11 — Theorems 3.2 and 3.3 (multicolor splitting variants).

Paper claims:
* (E10) the random ⌈2 log n⌉-coloring leaves every high-degree constraint
  with all palette colors w.h.p., and derandomizes; the reduction back to
  weak splitting costs O(C) extra rounds and stays valid.
* (E11) the (C, λ) random process satisfies the Equation (2) tail; the
  iterated boosting reaches per-color fraction <= λ^i with palette <= C^i.
"""

import math

import pytest

from repro.bipartite import random_left_regular
from repro.core import (
    boost_multicolor_splitting,
    is_multicolor_splitting,
    is_weak_splitting,
    multicolor_splitting,
    weak_multicolor_required_colors,
    weak_multicolor_splitting,
    weak_splitting_from_multicolor,
)
from repro.local import RoundLedger

from _harness import attach_rows


def test_e10_weak_multicolor_and_reduction(benchmark):
    rows = []
    for d in (140, 170, 200):
        inst = random_left_regular(70, 220, d, seed=d)
        palette = weak_multicolor_required_colors(inst.n)
        coloring = weak_multicolor_splitting(inst)
        min_seen = min(
            len({coloring[v] for v in inst.left_neighbors(u)})
            for u in range(inst.n_left)
        )
        led = RoundLedger()
        weak = weak_splitting_from_multicolor(inst, coloring, ledger=led)
        valid = is_weak_splitting(inst, weak)
        assert valid and min_seen >= palette
        rows.append((d, palette, min_seen, valid, led.total))

    inst = random_left_regular(70, 220, 170, seed=1)
    benchmark(lambda: weak_multicolor_splitting(inst))
    attach_rows(
        benchmark,
        "E10 (Theorem 3.2): weak multicolor splitting + reduction to weak splitting",
        ["delta", "palette (2 log n)", "min colors seen", "weak valid?", "extra rounds"],
        rows,
    )


def test_e10_randomized_failure_rate_matches_union_bound(benchmark):
    """The 0-round process: empirical failure rate should be small once
    degrees clear the (2 log n + 1) ln n bound — and visibly worse below."""
    rows = []
    for d, regime in ((40, "below"), (160, "above")):
        inst = random_left_regular(80, 200, d, seed=d)
        palette = weak_multicolor_required_colors(inst.n)
        failures = 0
        trials = 10
        for t in range(trials):
            coloring = weak_multicolor_splitting(inst, randomized=True, seed=t)
            failures += sum(
                1
                for u in range(inst.n_left)
                if len({coloring[v] for v in inst.left_neighbors(u)}) < palette
            )
        rate = failures / (trials * inst.n_left)
        rows.append((d, regime, rate))
    assert rows[0][2] > rows[1][2]  # below-regime fails more

    inst = random_left_regular(80, 200, 160, seed=2)
    benchmark(lambda: weak_multicolor_splitting(inst, randomized=True, seed=0))
    attach_rows(
        benchmark,
        "E10: 0-round multicolor process failure rate vs degree",
        ["delta", "regime", "constraint failure rate"],
        rows,
    )


def test_e11_multicolor_splitting_certified(benchmark):
    rows = []
    for lam in (0.7, 0.5, 0.35):
        inst = random_left_regular(60, 200, 160, seed=int(lam * 100))
        coloring = multicolor_splitting(inst, num_colors=12, lam=lam)
        ok = is_multicolor_splitting(inst, coloring, num_colors=12, lam=lam)
        assert ok
        used = len(set(coloring))
        c_prime = 3 if lam >= 2 / 3 else math.ceil(3 / lam)
        rows.append((lam, c_prime, used, ok))
        assert used <= c_prime

    inst = random_left_regular(60, 200, 160, seed=3)
    benchmark(lambda: multicolor_splitting(inst, num_colors=12, lam=0.5))
    attach_rows(
        benchmark,
        "E11 (Theorem 3.3): (C, lambda)-multicolor splitting, colors used = C'",
        ["lambda", "C' = ceil(3/lambda)", "colors used", "valid?"],
        rows,
    )


def test_e11_boosting_iteration(benchmark):
    inst = random_left_regular(50, 400, 300, seed=4)
    lam, C = 0.5, 6
    flat, palette, iters = boost_multicolor_splitting(
        inst, num_colors=C, lam=lam, alpha=1.0
    )
    worst_fraction = 0.0
    for u in range(inst.n_left):
        counts = {}
        for v in inst.left_neighbors(u):
            counts[flat[v]] = counts.get(flat[v], 0) + 1
        worst_fraction = max(worst_fraction, max(counts.values()) / inst.left_degree(u))
    rows = [
        (lam, C, iters, palette, C**iters, worst_fraction, lam ** 1)
    ]
    # Shape: palette bounded by C^iters; per-color fraction beaten well
    # below the trivial 1.0 (each engaged iteration multiplies by ~lambda).
    assert palette <= C**iters
    assert worst_fraction < 2 * lam

    benchmark(
        lambda: boost_multicolor_splitting(inst, num_colors=C, lam=lam, alpha=1.0, max_iterations=1)
    )
    attach_rows(
        benchmark,
        "E11 (Theorem 3.3): boosting a (C, lambda) oracle",
        ["lambda", "C", "iters", "palette", "C^iters", "worst color fraction", "lambda^1"],
        rows,
    )
