"""E6 — Theorem 2.7 (δ >= 6r regime).

Paper claims: for δ >= 6r, weak splitting is solvable in poly log n rounds
deterministically and poly log log n randomized, by driving the rank down
to 1 with Reduction II while the minimum degree stays >= 2.
"""

import pytest

from repro.bipartite import regular_bipartite
from repro.core import is_weak_splitting, low_rank_weak_splitting
from repro.core.reduction import degree_rank_reduction_two
from repro.local import RoundLedger
from repro.utils.mathx import ceil_log2

from _harness import attach_rows


def test_e6_low_rank_pipeline(benchmark):
    rows = []
    for ratio in (6, 8, 12):
        r = 2
        d = ratio * r
        inst = regular_bipartite(80, 80 * d // r, d)
        assert inst.rank == r and inst.delta == d
        led_det, led_rand = RoundLedger(), RoundLedger()
        col_det = low_rank_weak_splitting(inst, ledger=led_det)
        col_rand = low_rank_weak_splitting(inst, ledger=led_rand, randomized=True, seed=1)
        assert is_weak_splitting(inst, col_det)
        assert is_weak_splitting(inst, col_rand)
        rows.append((d, r, ratio, led_det.total, led_rand.total))
    # Shape: the randomized substrate variant is cheaper (log log n tail).
    assert all(row[4] < row[3] for row in rows)

    inst = regular_bipartite(80, 480, 12)
    benchmark(lambda: low_rank_weak_splitting(inst))
    attach_rows(
        benchmark,
        "E6 (Theorem 2.7): delta >= 6r, deterministic vs randomized rounds",
        ["delta", "r", "delta/r", "det rounds", "rand rounds"],
        rows,
    )


def test_e6_min_degree_survives_to_rank_one(benchmark):
    """The theorem's inner invariant: after ceil(log r) halvings the
    minimum constraint degree is still >= 2."""
    rows = []
    for r in (2, 4, 8):
        d = 6 * r
        inst = regular_bipartite(60, 60 * d // r, d)
        k = ceil_log2(r)
        reduced, _, trace = degree_rank_reduction_two(
            inst, eps=1.0 / (10 * inst.Delta), iterations=k
        )
        rows.append((d, r, k, trace.deltas, reduced.rank))
        assert reduced.rank == 1
        assert reduced.delta >= 2

    inst = regular_bipartite(60, 360, 12)
    benchmark(
        lambda: degree_rank_reduction_two(inst, eps=1.0 / 120, iterations=1)
    )
    attach_rows(
        benchmark,
        "E6 (Theorem 2.7): delta trajectory under Reduction II",
        ["delta", "r", "iters", "delta trajectory", "final rank"],
        rows,
    )
