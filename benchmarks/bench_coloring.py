"""E12 — Lemma 4.1 ((1 + o(1))∆ coloring via uniform splitting).

Paper claim: recursive splitting + disjoint-palette (d+1)-colorings use
(1 + o(1))∆ colors — the measured palette/(∆+1) ratio should approach 1
from above as ∆ grows (whereas naive disjoint palettes without balance
would pay a constant factor).
"""

import pytest

from repro.apps import coloring_via_splitting
from repro.bipartite import random_regular_graph
from repro.coloring import is_proper_coloring
from repro.local import RoundLedger

from _harness import attach_rows


def test_e12_palette_ratio_approaches_one(benchmark):
    rows = []
    ratios = []
    for n, d in ((300, 128), (400, 160), (500, 240)):
        adj = random_regular_graph(n, d, seed=n)
        led = RoundLedger()
        res = coloring_via_splitting(adj, ledger=led, seed=n)
        assert is_proper_coloring(adj, res.colors)
        ratios.append(res.palette_ratio)
        rows.append((n, d, res.levels, res.num_colors, res.palette_ratio, led.total))
    # Shape: palette stays within (1 + o(1))∆ — concretely under 1.6x here,
    # and the splitting machinery engages (levels >= 1) on every input.
    assert all(r[2] >= 1 for r in rows)
    assert all(x < 1.6 for x in ratios)

    adj = random_regular_graph(400, 160, seed=1)
    benchmark(lambda: coloring_via_splitting(adj, seed=1))
    attach_rows(
        benchmark,
        "E12 (Lemma 4.1): coloring via splitting, palette/(Delta+1)",
        ["n", "Delta", "levels", "palette", "ratio", "rounds"],
        rows,
    )


def test_e12_splitting_beats_naive_partition(benchmark):
    """Ablation within E12: random unbalanced halving would multiply the
    palette by ~2^levels/(2^levels) only if halves stay balanced — the
    splitter's guarantee.  Compare against greedy on the whole graph."""
    from repro.coloring import d_plus_one_coloring

    adj = random_regular_graph(400, 160, seed=2)
    res = coloring_via_splitting(adj, seed=3)
    _, greedy_palette = d_plus_one_coloring(adj)
    rows = [(res.num_colors, greedy_palette, res.Delta + 1)]
    # Both stay near ∆+1; the pipeline must not be catastrophically worse
    # than greedy (the paper's point is it achieves this *locally*).
    assert res.num_colors <= 2 * (res.Delta + 1)

    benchmark(lambda: coloring_via_splitting(adj, seed=3))
    attach_rows(
        benchmark,
        "E12: pipeline palette vs greedy vs Delta+1",
        ["pipeline palette", "greedy palette", "Delta+1"],
        rows,
    )
