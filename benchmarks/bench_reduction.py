"""E3 + E5 — Lemmas 2.4 and 2.6 (degree–rank reduction trajectories).

Paper claims:
* (E3, Lemma 2.4) after k iterations of Reduction I,
  ``δ_k > ((1−ε)/2)^k δ − 2`` and ``r_k < ((1+ε)/2)^k r + 3``.
* (E5, Lemma 2.6) Reduction II reaches rank exactly 1 after ``⌈log r⌉``
  iterations, and never destroys a variable's last edge.
"""

import pytest

from repro.bipartite import random_left_regular, regular_bipartite
from repro.core import (
    degree_rank_reduction_one,
    degree_rank_reduction_two,
    lemma_24_delta_lower_bound,
    lemma_24_rank_upper_bound,
)
from repro.utils.mathx import ceil_log2

from _harness import attach_rows


def test_e3_reduction_one_trajectories(benchmark):
    inst = random_left_regular(120, 120, 64, seed=1)
    eps = 0.2
    k = 4
    _, _, trace = degree_rank_reduction_one(inst, eps=eps, iterations=k)
    rows = []
    for i in range(k + 1):
        lo = lemma_24_delta_lower_bound(trace.deltas[0], eps, i)
        hi = lemma_24_rank_upper_bound(trace.ranks[0], eps, i)
        rows.append((i, trace.deltas[i], lo, trace.ranks[i], hi))
        assert trace.deltas[i] > lo - 1e-9
        assert trace.ranks[i] < hi + 1e-9

    benchmark(lambda: degree_rank_reduction_one(inst, eps=eps, iterations=k))
    attach_rows(
        benchmark,
        "E3 (Lemma 2.4): Reduction I trajectories vs bounds (eps=0.2)",
        ["k", "delta_k", "bound >", "r_k", "bound <"],
        rows,
    )


def test_e5_reduction_two_rank_one(benchmark):
    rows = []
    for r in (4, 8, 16, 32):
        n_left, d = 64, 2 * r
        inst = regular_bipartite(n_left, n_left * d // r, d)  # rank exactly r
        assert inst.rank == r
        k = ceil_log2(r)
        reduced, _, trace = degree_rank_reduction_two(inst, eps=0.01, iterations=k)
        rows.append((r, k, trace.ranks, reduced.rank, reduced.stats().min_rank))
        assert reduced.rank == 1
        assert reduced.stats().min_rank >= 1  # no variable lost its last edge

    inst = regular_bipartite(64, 128, 16)
    benchmark(
        lambda: degree_rank_reduction_two(inst, eps=0.01, iterations=ceil_log2(8))
    )
    attach_rows(
        benchmark,
        "E5 (Lemma 2.6): Reduction II reaches rank 1 in ceil(log r) iterations",
        ["r", "iters", "rank trajectory", "final rank", "final min rank"],
        rows,
    )
