"""E8 — Theorem 1.2 (randomized weak splitting).

Paper claims: with δ >= c log(r log n), shattering leaves residual
components of size O(r⁴ log⁶ n) = poly(r, log n) (in particular a vanishing
fraction of the graph), each with δ_H >= δ/4, and the composed algorithm is
a valid weak splitting w.h.p.  Rounds: O(1) shattering + max component cost.
"""

import math

import pytest

from repro.bipartite import random_left_regular, split_high_degree_left
from repro.core import is_weak_splitting, randomized_weak_splitting, shatter
from repro.local import RoundLedger

from _harness import attach_rows


def test_e8_residual_components_are_tiny(benchmark):
    rows = []
    for n_side in (1000, 2000, 4000):
        inst = random_left_regular(n_side, n_side, 24, seed=n_side + 24)
        out = shatter(inst, seed=n_side + 1)
        sizes = out.residual_component_sizes()
        biggest = max(sizes, default=0)
        rows.append(
            (
                inst.n,
                len(out.unsatisfied),
                biggest,
                biggest / inst.n,
            )
        )
    # Shape: the largest residual component is a small fraction of n —
    # poly(r, log n), not Θ(n).  (At laptop scale the fraction still drifts
    # with n; the qualitative claim is sub-giant components.)
    assert all(row[3] < 0.15 for row in rows)

    inst = random_left_regular(1000, 1000, 24, seed=7)
    benchmark(lambda: shatter(inst, seed=8))
    attach_rows(
        benchmark,
        "E8 (Theorem 1.2): residual component sizes after shattering (delta=24)",
        ["n", "#unsatisfied", "max component", "fraction of n"],
        rows,
    )


def test_e8_residual_degree_invariant(benchmark):
    inst = random_left_regular(1200, 1200, 12, seed=9)
    virtual, _ = split_high_degree_left(inst)
    out = shatter(virtual, seed=10)
    res = out.residual
    worst = min(
        (
            res.left_degree(i) / virtual.left_degree(u)
            for i, u in enumerate(out.residual_left_ids)
        ),
        default=1.0,
    )
    assert worst >= 0.25  # δ_H >= δ/4

    benchmark(lambda: shatter(virtual, seed=11))
    attach_rows(
        benchmark,
        "E8 (Theorem 1.2): delta_H / delta over residual constraints",
        ["min ratio", "bound"],
        [(worst, 0.25)],
    )


def test_e8_full_pipeline_validity_and_rounds(benchmark):
    rows = []
    for n_side in (400, 800, 1600):
        inst = random_left_regular(n_side, n_side, 12, seed=n_side + 3)
        led = RoundLedger()
        coloring = randomized_weak_splitting(inst, seed=n_side, ledger=led)
        assert is_weak_splitting(inst, coloring)
        polylog = math.log2(inst.n) ** 2
        rows.append((inst.n, led.total, led.total / polylog))
    # Shape: rounds grow at most polylogarithmically in n — the normalized
    # column must not blow up while n grows 4x.
    assert rows[-1][2] < rows[0][2] * 4

    inst = random_left_regular(800, 800, 12, seed=12)
    benchmark(lambda: randomized_weak_splitting(inst, seed=13))
    attach_rows(
        benchmark,
        "E8 (Theorem 1.2): randomized pipeline rounds vs n (delta=12)",
        ["n", "rounds", "rounds/log^2 n"],
        rows,
    )
