"""Thin setup.py shim: all metadata lives in pyproject.toml.

Present so the package installs in environments whose setuptools/pip lack
PEP 660 editable-wheel support (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
