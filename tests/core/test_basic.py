"""Tests for Lemma 2.1 (basic derandomized weak splitting)."""

import math

import pytest

from repro.bipartite import random_left_regular, random_near_regular
from repro.core import basic_weak_splitting, is_weak_splitting, weak_splitting_min_degree
from repro.core.basic import processing_order
from repro.derand import DerandomizationError
from repro.local import RoundLedger


class TestBasic:
    def test_valid_on_regular_instance(self, splittable_instance):
        coloring = basic_weak_splitting(splittable_instance)
        assert is_weak_splitting(splittable_instance, coloring)

    def test_valid_on_near_regular(self):
        inst = random_near_regular(200, 200, 20, 30, seed=3)
        assert is_weak_splitting(inst, basic_weak_splitting(inst))

    def test_boundary_degree_exactly_2logn(self):
        # n = 128 + 128 = 256 -> 2 log n = 16
        inst = random_left_regular(128, 128, 16, seed=5)
        assert inst.delta >= weak_splitting_min_degree(inst.n)
        assert is_weak_splitting(inst, basic_weak_splitting(inst))

    def test_strict_rejects_low_degree(self):
        inst = random_left_regular(100, 100, 5, seed=6)
        with pytest.raises(DerandomizationError):
            basic_weak_splitting(inst)

    def test_non_strict_usually_succeeds_anyway(self):
        inst = random_left_regular(30, 60, 8, seed=7)
        coloring = basic_weak_splitting(inst, strict=False)
        assert is_weak_splitting(inst, coloring)

    def test_rounds_charged_scale_with_delta_r(self):
        """Lemma 2.1: runtime O(∆·r) — the dominant charge is the B²-coloring."""
        small = random_left_regular(60, 240, 16, seed=8)   # low rank
        big = random_left_regular(240, 60, 16, seed=8)     # high rank
        led_small, led_big = RoundLedger(), RoundLedger()
        basic_weak_splitting(small, ledger=led_small, strict=False)
        basic_weak_splitting(big, ledger=led_big, strict=False)
        assert led_big.total > led_small.total

    def test_custom_order_respected(self):
        inst = random_left_regular(50, 80, 14, seed=9)
        order = list(range(79, -1, -1))
        coloring = basic_weak_splitting(inst, order=order, strict=False)
        assert is_weak_splitting(inst, coloring)


class TestProcessingOrder:
    def test_same_class_nodes_share_no_constraint(self):
        inst = random_left_regular(40, 60, 6, seed=10)
        order, num_colors = processing_order(inst)
        assert sorted(order) == list(range(60))

    def test_charges_coloring_rounds(self):
        inst = random_left_regular(20, 30, 5, seed=11)
        led = RoundLedger()
        processing_order(inst, ledger=led)
        assert "B^2-coloring" in led.breakdown()
