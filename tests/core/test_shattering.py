"""Tests for the shattering algorithm (Lemma 2.9 machinery)."""

import math

import pytest

from repro.bipartite import BLUE, RED, random_left_regular
from repro.core import shatter, unsatisfied_probability_estimate
from repro.local import RoundLedger


class TestShatter:
    def test_partial_coloring_values(self):
        inst = random_left_regular(50, 50, 10, seed=1)
        out = shatter(inst, seed=2)
        assert all(c in (RED, BLUE, None) for c in out.partial)

    def test_quarter_uncolored_invariant(self):
        """Every constraint keeps >= 1/4 of its neighbors uncolored."""
        inst = random_left_regular(80, 80, 16, seed=3)
        out = shatter(inst, seed=4)
        for u in range(inst.n_left):
            neighbors = inst.left_neighbors(u)
            uncolored = sum(1 for v in neighbors if out.partial[v] is None)
            assert uncolored >= len(neighbors) / 4

    def test_unsatisfied_really_lack_a_color(self):
        inst = random_left_regular(60, 60, 8, seed=5)
        out = shatter(inst, seed=6)
        unsat = set(out.unsatisfied)
        for u in range(inst.n_left):
            seen = {out.partial[v] for v in inst.left_neighbors(u)} - {None}
            assert (u in unsat) == (not {RED, BLUE} <= seen)

    def test_residual_structure(self):
        inst = random_left_regular(60, 60, 8, seed=7)
        out = shatter(inst, seed=8)
        res = out.residual
        assert res.n_left == len(out.unsatisfied)
        assert res.n_right == len(out.uncolored)
        # residual edges connect only unsatisfied x uncolored originals
        for u, v in res.edges:
            assert out.residual_left_ids[u] in out.unsatisfied
            assert out.residual_right_ids[v] in out.uncolored

    def test_residual_left_degree_at_least_quarter(self):
        inst = random_left_regular(100, 100, 20, seed=9)
        out = shatter(inst, seed=10)
        for i, u in enumerate(out.residual_left_ids):
            assert out.residual.left_degree(i) >= inst.left_degree(u) / 4

    def test_reproducible(self):
        inst = random_left_regular(30, 30, 6, seed=11)
        a = shatter(inst, seed=12)
        b = shatter(inst, seed=12)
        assert a.partial == b.partial

    def test_ledger_charged_constant_simulated(self):
        inst = random_left_regular(20, 20, 5, seed=13)
        led = RoundLedger()
        shatter(inst, seed=14, ledger=led)
        assert led.simulated_total() == 2

    def test_high_degree_mostly_satisfied(self):
        """With δ = 30 almost every constraint should be satisfied."""
        inst = random_left_regular(200, 400, 30, seed=15)
        out = shatter(inst, seed=16)
        assert len(out.unsatisfied) <= 4


class TestUnsatisfiedProbability:
    def test_estimate_decays_with_degree(self):
        """The Lemma 2.9 exponential decay, coarse Monte-Carlo check."""
        lo = random_left_regular(150, 300, 6, seed=17)
        hi = random_left_regular(150, 300, 30, seed=18)
        p_lo, _ = unsatisfied_probability_estimate(lo, trials=20, seed=19)
        p_hi, _ = unsatisfied_probability_estimate(hi, trials=20, seed=20)
        assert p_hi < p_lo

    def test_counts_length(self):
        inst = random_left_regular(20, 20, 5, seed=21)
        _, counts = unsatisfied_probability_estimate(inst, trials=7, seed=22)
        assert len(counts) == 7
