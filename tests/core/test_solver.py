"""Tests for the solve_weak_splitting façade."""

import pytest

from repro.bipartite import BipartiteInstance, random_left_regular, regular_bipartite
from repro.core import NoKnownAlgorithmError, is_weak_splitting, solve_weak_splitting
from repro.local import RoundLedger


class TestAutoDispatch:
    def test_low_rank_route(self, low_rank_instance):
        led = RoundLedger()
        coloring = solve_weak_splitting(low_rank_instance, ledger=led)
        assert is_weak_splitting(low_rank_instance, coloring)
        assert any(l.startswith("reduction-II") for l in led.breakdown())

    def test_deterministic_route(self, splittable_instance):
        led = RoundLedger()
        coloring = solve_weak_splitting(splittable_instance, ledger=led)
        assert is_weak_splitting(splittable_instance, coloring)
        assert "B^2-coloring" in led.breakdown()

    def test_randomized_route(self):
        inst = random_left_regular(600, 600, 12, seed=1)
        led = RoundLedger()
        coloring = solve_weak_splitting(inst, seed=2, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert "shattering" in led.breakdown()

    def test_bruteforce_route_for_tiny(self):
        inst = BipartiteInstance(2, 4, [(0, 0), (0, 1), (1, 2), (1, 3)])
        coloring = solve_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_uncovered_regime_raises(self):
        inst = random_left_regular(400, 30, 3, seed=3)  # rank huge, delta 3
        with pytest.raises(NoKnownAlgorithmError):
            solve_weak_splitting(inst, allow_bruteforce=False)

    def test_degree_one_rejected_upfront(self):
        inst = BipartiteInstance(1, 2, [(0, 0)])
        with pytest.raises(ValueError):
            solve_weak_splitting(inst)


class TestForcedMethods:
    def test_forced_deterministic(self, splittable_instance):
        coloring = solve_weak_splitting(splittable_instance, method="deterministic")
        assert is_weak_splitting(splittable_instance, coloring)

    def test_forced_low_rank_rejects_wrong_instance(self, splittable_instance):
        if splittable_instance.delta < 6 * splittable_instance.rank:
            with pytest.raises(ValueError):
                solve_weak_splitting(splittable_instance, method="low-rank")

    def test_forced_randomized(self, splittable_instance):
        coloring = solve_weak_splitting(splittable_instance, method="randomized", seed=4)
        assert is_weak_splitting(splittable_instance, coloring)

    def test_forced_bruteforce_cap(self):
        inst = random_left_regular(10, 30, 5, seed=5)
        with pytest.raises(ValueError):
            solve_weak_splitting(inst, method="bruteforce")

    def test_unknown_method(self, splittable_instance):
        with pytest.raises(ValueError):
            solve_weak_splitting(splittable_instance, method="magic")

    def test_unsolvable_tiny_instance(self):
        # one variable shared by two constraints: cannot be both colors
        inst = BipartiteInstance(1, 2, [(0, 0), (0, 1)])
        coloring = solve_weak_splitting(inst, method="bruteforce")
        assert is_weak_splitting(inst, coloring)
