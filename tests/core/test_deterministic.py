"""Tests for Theorem 2.5 (main deterministic weak splitting)."""

import math

import pytest

from repro.bipartite import random_left_regular, random_near_regular
from repro.core import (
    deterministic_weak_splitting,
    is_weak_splitting,
    theorem_25_trim_threshold,
)
from repro.derand import DerandomizationError
from repro.local import RoundLedger


class TestDeterministic:
    def test_trim_regime(self, splittable_instance):
        """δ <= 48 log n goes through Lemma 2.2."""
        led = RoundLedger()
        coloring = deterministic_weak_splitting(splittable_instance, ledger=led)
        assert is_weak_splitting(splittable_instance, coloring)
        assert "reduction-I/iter-0" not in led.breakdown()

    def test_reduction_regime(self):
        """δ > 48 log n triggers the degree–rank reduction pipeline."""
        # n = 64 + 512 = 576 -> 48 log n ≈ 440... too big; use tiny n_left
        # n = 16 + 40 = 56 -> 48 log n ≈ 278: still too big for degree 40.
        # Instead exercise via n_override: pretend the ambient network is small.
        inst = random_left_regular(60, 500, 300, seed=1)
        led = RoundLedger()
        coloring = deterministic_weak_splitting(inst, ledger=led, n_override=32)
        assert is_weak_splitting(inst, coloring)
        assert any(label.startswith("reduction-I") for label in led.breakdown())

    def test_reduction_regime_genuine_n(self):
        """A genuinely dense instance: n = 40, δ must exceed 48·log2(40) ≈ 255."""
        inst = random_left_regular(20, 20, 20, seed=2)
        # δ = 20 < 2 log 40 is false: 2 log2(40) = 10.6 -> deterministic OK,
        # but stays in the trim regime; the genuine reduction regime needs
        # δ > 48 log n which forces n_right >= δ > 48 log n — feasible at
        # n ≈ 2000, δ ≈ 600: build it.
        inst = random_left_regular(600, 1400, 600, seed=3)
        assert inst.delta > theorem_25_trim_threshold(inst.n)
        led = RoundLedger()
        coloring = deterministic_weak_splitting(inst, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert any(label.startswith("reduction-I") for label in led.breakdown())

    def test_strict_precondition(self):
        inst = random_left_regular(100, 100, 6, seed=4)
        with pytest.raises(DerandomizationError):
            deterministic_weak_splitting(inst)

    def test_near_regular(self):
        inst = random_near_regular(250, 250, 22, 40, seed=5)
        assert is_weak_splitting(inst, deterministic_weak_splitting(inst))

    def test_empty_right_side(self):
        from repro.bipartite import BipartiteInstance

        inst = BipartiteInstance(0, 3, [])
        assert deterministic_weak_splitting(inst) == [0, 0, 0]

    def test_rounds_grow_with_rank(self):
        """Theorem 2.5 cost is O(r/δ · log²n + ...): rank should matter."""
        lo_rank = random_left_regular(100, 800, 24, seed=6)
        hi_rank = random_left_regular(800, 100, 24, seed=6)
        led_lo, led_hi = RoundLedger(), RoundLedger()
        deterministic_weak_splitting(lo_rank, ledger=led_lo)
        deterministic_weak_splitting(hi_rank, ledger=led_hi)
        assert led_hi.total > led_lo.total
