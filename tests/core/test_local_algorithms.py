"""Tests for the in-simulator LOCAL implementations of the random phases."""

import pytest

from repro.bipartite import BLUE, RED, random_left_regular
from repro.core import (
    run_shattering_local,
    run_zero_round_coloring,
    shatter,
)


class TestZeroRoundColoring:
    def test_outputs_complete_coloring(self):
        inst = random_left_regular(20, 25, 6, seed=1)
        coloring, satisfied, rounds = run_zero_round_coloring(inst, seed=2)
        assert all(c in (RED, BLUE) for c in coloring)
        assert len(satisfied) == inst.n_left

    def test_satisfaction_flags_match_verifier(self):
        inst = random_left_regular(30, 30, 5, seed=3)
        coloring, satisfied, _ = run_zero_round_coloring(inst, seed=4)
        for u in range(inst.n_left):
            seen = {coloring[v] for v in inst.left_neighbors(u)}
            assert satisfied[u] == (RED in seen and BLUE in seen)

    def test_constant_rounds(self):
        inst = random_left_regular(40, 40, 8, seed=5)
        _, _, rounds = run_zero_round_coloring(inst, seed=6)
        assert rounds <= 2

    def test_high_degree_all_satisfied(self):
        inst = random_left_regular(50, 100, 30, seed=7)
        _, satisfied, _ = run_zero_round_coloring(inst, seed=8)
        assert all(satisfied)

    def test_reproducible(self):
        inst = random_left_regular(15, 15, 4, seed=9)
        a = run_zero_round_coloring(inst, seed=10)
        b = run_zero_round_coloring(inst, seed=10)
        assert a[0] == b[0]


class TestShatteringLocal:
    def test_constant_rounds(self):
        inst = random_left_regular(30, 30, 8, seed=11)
        _, _, rounds = run_shattering_local(inst, seed=12)
        assert rounds == 3

    def test_partial_coloring_values(self):
        inst = random_left_regular(30, 30, 8, seed=13)
        coloring, _, _ = run_shattering_local(inst, seed=14)
        assert all(c in (RED, BLUE, None) for c in coloring)

    def test_satisfaction_flags_consistent(self):
        inst = random_left_regular(40, 40, 10, seed=15)
        coloring, satisfied, _ = run_shattering_local(inst, seed=16)
        for u in range(inst.n_left):
            seen = {coloring[v] for v in inst.left_neighbors(u)} - {None}
            assert satisfied[u] == (RED in seen and BLUE in seen)

    def test_quarter_uncolored_invariant_holds_in_simulator(self):
        inst = random_left_regular(60, 60, 16, seed=17)
        coloring, _, _ = run_shattering_local(inst, seed=18)
        for u in range(inst.n_left):
            neighbors = inst.left_neighbors(u)
            uncolored = sum(1 for v in neighbors if coloring[v] is None)
            assert uncolored >= len(neighbors) / 4

    def test_statistically_matches_central_implementation(self):
        """The simulator and the central shortcut implement the same random
        process: their unsatisfied-rate estimates should agree closely."""
        inst = random_left_regular(80, 80, 10, seed=19)
        local_unsat = 0
        central_unsat = 0
        trials = 15
        for t in range(trials):
            _, satisfied, _ = run_shattering_local(inst, seed=t)
            local_unsat += satisfied.count(False)
            central_unsat += len(shatter(inst, seed=1000 + t).unsatisfied)
        local_rate = local_unsat / (trials * inst.n_left)
        central_rate = central_unsat / (trials * inst.n_left)
        assert abs(local_rate - central_rate) < 0.1
