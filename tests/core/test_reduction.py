"""Tests for Degree–Rank Reductions I and II (Lemmas 2.4 and 2.6)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.bipartite import random_left_regular, regular_bipartite
from repro.core import (
    degree_rank_reduction_one,
    degree_rank_reduction_two,
    lemma_24_delta_lower_bound,
    lemma_24_rank_upper_bound,
)
from repro.local import RoundLedger
from repro.utils.mathx import ceil_log2


class TestReductionOne:
    def test_trace_lengths(self):
        inst = random_left_regular(60, 60, 32, seed=1)
        _, _, trace = degree_rank_reduction_one(inst, eps=0.2, iterations=3)
        assert trace.iterations == 3
        assert len(trace.deltas) == 4

    def test_lemma_24_delta_bound_holds(self):
        """δ_k > ((1−ε)/2)^k δ − 2 after every iteration."""
        inst = random_left_regular(80, 80, 48, seed=2)
        eps = 0.25
        _, _, trace = degree_rank_reduction_one(inst, eps=eps, iterations=4)
        for k, delta_k in enumerate(trace.deltas):
            assert delta_k > lemma_24_delta_lower_bound(inst.delta, eps, k) - 1e-9

    def test_lemma_24_rank_bound_holds(self):
        """r_k < ((1+ε)/2)^k r + 3 after every iteration."""
        inst = random_left_regular(80, 80, 48, seed=3)
        eps = 0.25
        _, _, trace = degree_rank_reduction_one(inst, eps=eps, iterations=4)
        for k, rank_k in enumerate(trace.ranks):
            assert rank_k < lemma_24_rank_upper_bound(trace.ranks[0], eps, k) + 1e-9

    def test_edges_subset_of_original(self):
        inst = random_left_regular(30, 30, 16, seed=4)
        reduced, emap, _ = degree_rank_reduction_one(inst, eps=0.3, iterations=2)
        for new_id, old_id in enumerate(emap):
            assert reduced.edges[new_id] == inst.edges[old_id]

    def test_roughly_halves_per_iteration(self):
        inst = regular_bipartite(100, 100, 40)
        _, _, trace = degree_rank_reduction_one(inst, eps=0.1, iterations=1)
        assert trace.deltas[1] >= inst.delta // 2 - 2
        assert trace.Deltas[1] <= math.ceil(inst.Delta / 2) + 1

    def test_ledger_charged_per_iteration(self):
        inst = random_left_regular(30, 30, 16, seed=5)
        led = RoundLedger()
        degree_rank_reduction_one(inst, eps=0.2, iterations=3, ledger=led)
        assert len(led) == 3

    def test_zero_iterations_identity(self):
        inst = random_left_regular(10, 10, 4, seed=6)
        reduced, emap, trace = degree_rank_reduction_one(inst, eps=0.2, iterations=0)
        assert reduced.edges == inst.edges and trace.iterations == 0

    def test_rejects_bad_eps(self):
        inst = random_left_regular(5, 5, 2, seed=7)
        with pytest.raises(ValueError):
            degree_rank_reduction_one(inst, eps=0, iterations=1)


class TestReductionTwo:
    def test_variables_keep_ceil_half(self):
        """Every variable keeps exactly ⌈d/2⌉ edges per iteration."""
        inst = random_left_regular(40, 40, 20, seed=8)
        reduced, _, trace = degree_rank_reduction_two(inst, eps=0.01, iterations=1)
        for v in range(inst.n_right):
            assert reduced.right_degree(v) == math.ceil(inst.right_degree(v) / 2)

    def test_lemma_26_rank_one_after_ceil_log_r(self):
        inst = regular_bipartite(30, 60, 24)  # rank = 12
        k = ceil_log2(inst.rank)
        reduced, _, _ = degree_rank_reduction_two(inst, eps=0.01, iterations=k)
        assert reduced.rank == 1

    def test_rank_never_below_one(self):
        inst = regular_bipartite(30, 60, 24)
        reduced, _, _ = degree_rank_reduction_two(inst, eps=0.01, iterations=10)
        assert reduced.stats().min_rank >= 1
        assert reduced.rank == 1

    def test_constraints_lose_at_most_half_plus_one(self):
        inst = random_left_regular(40, 40, 20, seed=9)
        reduced, _, _ = degree_rank_reduction_two(inst, eps=0.001, iterations=1)
        for u in range(inst.n_left):
            d = inst.left_degree(u)
            # head-loses rule with discrepancy <= 1: keep >= (d-1)/2 - 1
            assert reduced.left_degree(u) >= (d - 1) // 2 - 1

    def test_edge_map_correct(self):
        inst = random_left_regular(20, 20, 10, seed=10)
        reduced, emap, _ = degree_rank_reduction_two(inst, eps=0.05, iterations=2)
        for new_id, old_id in enumerate(emap):
            assert reduced.edges[new_id] == inst.edges[old_id]

    @given(st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_rank_halving_exact(self, r):
        """r_{k+1} = ceil(r_k / 2) for the max-degree variable."""
        inst = regular_bipartite(r, 1, 1)  # one variable of degree r... wait
        # Build: single right node with degree r
        from repro.bipartite import BipartiteInstance

        inst = BipartiteInstance(r, 1, [(u, 0) for u in range(r)])
        reduced, _, _ = degree_rank_reduction_two(inst, eps=0.01, iterations=1)
        assert reduced.right_degree(0) == math.ceil(r / 2)
