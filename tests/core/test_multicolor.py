"""Tests for Section 3 (multicolor splitting variants and completeness)."""

import math

import pytest

from repro.bipartite import BipartiteInstance, random_left_regular
from repro.core import (
    boost_multicolor_splitting,
    is_multicolor_splitting,
    is_weak_splitting,
    multicolor_splitting,
    multicolor_violations,
    select_rainbow_neighbors,
    weak_multicolor_required_colors,
    weak_multicolor_splitting,
    weak_splitting_from_multicolor,
)
from repro.derand import DerandomizationError
from repro.local import RoundLedger


def dense_instance(n_left=80, n_right=200, d=120, seed=1):
    """Degrees large enough for the multicolor estimators to certify."""
    return random_left_regular(n_left, n_right, d, seed=seed)


class TestWeakMulticolor:
    def test_derandomized_sees_all_palette_colors(self):
        inst = dense_instance()
        palette = weak_multicolor_required_colors(inst.n)
        coloring = weak_multicolor_splitting(inst)
        for u in range(inst.n_left):
            seen = {coloring[v] for v in inst.left_neighbors(u)}
            assert len(seen) == palette

    def test_uses_at_most_palette_colors(self):
        inst = dense_instance(seed=2)
        palette = weak_multicolor_required_colors(inst.n)
        coloring = weak_multicolor_splitting(inst)
        assert max(coloring) < palette

    def test_randomized_variant_usually_works(self):
        inst = dense_instance(seed=3)
        coloring = weak_multicolor_splitting(inst, randomized=True, seed=4)
        palette = weak_multicolor_required_colors(inst.n)
        # no certificate, but with d = 120 >> palette ~ 17 it should be fine
        missing = sum(
            1
            for u in range(inst.n_left)
            if len({coloring[v] for v in inst.left_neighbors(u)}) < palette
        )
        assert missing <= inst.n_left // 10

    def test_strict_rejects_thin_instances(self):
        inst = random_left_regular(200, 100, 6, seed=5)
        with pytest.raises(DerandomizationError):
            weak_multicolor_splitting(inst)

    def test_rounds_charged(self):
        inst = dense_instance(seed=6)
        led = RoundLedger()
        weak_multicolor_splitting(inst, ledger=led)
        assert "slocal-conversion" in led.breakdown()


class TestMulticolorSplitting:
    def test_valid_output(self):
        inst = dense_instance(seed=7)
        coloring = multicolor_splitting(inst, num_colors=8, lam=0.5)
        assert is_multicolor_splitting(inst, coloring, num_colors=8, lam=0.5)

    def test_uses_c_prime_colors(self):
        """λ >= 2/3 uses exactly 3 colors per the proof."""
        inst = dense_instance(seed=8)
        coloring = multicolor_splitting(inst, num_colors=10, lam=0.7)
        assert max(coloring) <= 2

    def test_small_lambda_more_colors(self):
        inst = dense_instance(d=150, seed=9)
        coloring = multicolor_splitting(inst, num_colors=12, lam=0.3)
        assert max(coloring) <= math.ceil(3 / 0.3)
        assert is_multicolor_splitting(inst, coloring, num_colors=12, lam=0.3)

    def test_lambda_below_2_over_c_rejected(self):
        inst = dense_instance(seed=10)
        with pytest.raises(ValueError):
            multicolor_splitting(inst, num_colors=4, lam=0.1)

    def test_randomized_variant(self):
        inst = dense_instance(d=150, seed=11)
        coloring = multicolor_splitting(inst, num_colors=8, lam=0.5, randomized=True, seed=12)
        bad = multicolor_violations(inst, coloring, num_colors=8, lam=0.5)
        assert len(bad) <= inst.n_left // 10


class TestRainbowSelection:
    def test_selects_distinct_colors(self):
        inst = BipartiteInstance(1, 5, [(0, v) for v in range(5)])
        sub, _ = select_rainbow_neighbors(inst, [0, 1, 2, 0, 1], count=3)
        assert sub.left_degree(0) == 3
        # kept neighbors have pairwise distinct colors by construction

    def test_raises_when_not_enough_colors(self):
        inst = BipartiteInstance(1, 4, [(0, v) for v in range(4)])
        with pytest.raises(ValueError):
            select_rainbow_neighbors(inst, [0, 0, 0, 1], count=3)


class TestHardnessDirections:
    def test_weak_splitting_from_multicolor(self):
        """Theorem 3.2's reduction, end to end."""
        inst = dense_instance(n_left=60, n_right=150, d=130, seed=13)
        multicolor = weak_multicolor_splitting(inst)
        led = RoundLedger()
        coloring = weak_splitting_from_multicolor(inst, multicolor, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert "weak-splitting-via-multicolor-classes" in led.breakdown()

    def test_boost_reaches_small_fraction(self):
        """Theorem 3.3's iterated reduction shrinks per-color classes."""
        inst = dense_instance(n_left=50, n_right=300, d=200, seed=14)
        flat, palette, iters = boost_multicolor_splitting(
            inst, num_colors=6, lam=0.5, alpha=1.0
        )
        assert iters >= 1
        assert palette <= 6 ** iters
        # per-color class sizes should have dropped markedly below degree
        worst = 0
        for u in range(inst.n_left):
            counts = {}
            for v in inst.left_neighbors(u):
                counts[flat[v]] = counts.get(flat[v], 0) + 1
            worst = max(worst, max(counts.values()))
        assert worst < 200 * 0.5  # at least one halving engaged

    def test_boost_palette_bounded(self):
        inst = dense_instance(n_left=40, n_right=200, d=150, seed=15)
        _, palette, iters = boost_multicolor_splitting(
            inst, num_colors=5, lam=0.5, alpha=1.0, max_iterations=2
        )
        assert palette <= 5**2
