"""Tests for the problem verifiers."""

import pytest

from repro.bipartite import BLUE, RED, BipartiteInstance
from repro.core import (
    UniformSplittingSpec,
    is_multicolor_splitting,
    is_uniform_splitting,
    is_weak_multicolor_splitting,
    is_weak_splitting,
    multicolor_violations,
    uniform_splitting_violations,
    weak_multicolor_violations,
    weak_splitting_violations,
)
from tests.conftest import cycle_graph


def two_constraints():
    # u0 - v0,v1 ; u1 - v1,v2
    return BipartiteInstance(2, 3, [(0, 0), (0, 1), (1, 1), (1, 2)])


class TestWeakSplitting:
    def test_valid(self):
        assert is_weak_splitting(two_constraints(), [RED, BLUE, RED])

    def test_monochromatic_constraint_flagged(self):
        assert weak_splitting_violations(two_constraints(), [RED, RED, BLUE]) == [0]

    def test_uncolored_neighbor_does_not_satisfy(self):
        assert weak_splitting_violations(two_constraints(), [None, BLUE, RED]) == [0]

    def test_min_degree_exempts_small_constraints(self):
        inst = BipartiteInstance(2, 3, [(0, 0), (0, 1), (1, 2)])
        # u1 has degree 1: monochromatic by force, exempt with min_degree=2
        assert is_weak_splitting(inst, [RED, BLUE, RED], min_degree=2)
        assert not is_weak_splitting(inst, [RED, BLUE, RED], min_degree=1)

    def test_isolated_constraint_handling(self):
        inst = BipartiteInstance(1, 1, [])
        assert is_weak_splitting(inst, [RED])  # degree 0 < default min 1

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            is_weak_splitting(two_constraints(), [RED, BLUE])


class TestWeakMulticolor:
    def test_small_degree_exempt(self):
        inst = two_constraints()
        # n = 5 -> bound degree huge; everything exempt
        assert is_weak_multicolor_splitting(inst, [0, 0, 0])

    def test_explicit_thresholds(self):
        inst = BipartiteInstance(1, 4, [(0, v) for v in range(4)])
        ok = weak_multicolor_violations(
            inst, [0, 1, 2, 0], bound_degree=3, required_colors=3
        )
        assert ok == []
        bad = weak_multicolor_violations(
            inst, [0, 1, 0, 1], bound_degree=3, required_colors=3
        )
        assert bad == [0]

    def test_uncolored_ignored_for_distinctness(self):
        inst = BipartiteInstance(1, 3, [(0, v) for v in range(3)])
        bad = weak_multicolor_violations(
            inst, [0, None, 1], bound_degree=2, required_colors=3
        )
        assert bad == [0]


class TestMulticolor:
    def test_valid(self):
        inst = BipartiteInstance(1, 4, [(0, v) for v in range(4)])
        assert is_multicolor_splitting(inst, [0, 1, 2, 3], num_colors=4, lam=0.25)

    def test_overload_flagged(self):
        inst = BipartiteInstance(1, 4, [(0, v) for v in range(4)])
        # cap = ceil(0.25 * 4) = 1; color 0 used twice
        assert multicolor_violations(inst, [0, 0, 1, 2], num_colors=3, lam=0.25) == [0]

    def test_out_of_palette_rejected(self):
        inst = BipartiteInstance(1, 2, [(0, 0), (0, 1)])
        with pytest.raises(ValueError):
            multicolor_violations(inst, [0, 5], num_colors=3, lam=0.5)

    def test_uncolored_rejected(self):
        inst = BipartiteInstance(1, 2, [(0, 0), (0, 1)])
        with pytest.raises(ValueError):
            multicolor_violations(inst, [0, None], num_colors=3, lam=0.5)

    def test_min_degree_exemption(self):
        inst = BipartiteInstance(2, 4, [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0)])
        coloring = [0, 0, 0, 0]
        assert multicolor_violations(inst, coloring, 2, 0.5, min_degree=5) == []


class TestUniform:
    def test_balanced_cycle(self):
        adj = cycle_graph(4)
        spec = UniformSplittingSpec(eps=0.4, min_constrained_degree=2)
        # [R, R, B, B] gives every C4 node one red and one blue neighbor.
        assert is_uniform_splitting(adj, [RED, RED, BLUE, BLUE], spec)

    def test_unbalanced_flagged(self):
        adj = cycle_graph(4)
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=2)
        bad = uniform_splitting_violations(adj, [RED, RED, RED, RED], spec)
        assert bad == [0, 1, 2, 3]

    def test_low_degree_unconstrained(self):
        adj = [[1], [0]]
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=5)
        assert is_uniform_splitting(adj, [RED, RED], spec)

    def test_partition_length_checked(self):
        with pytest.raises(ValueError):
            uniform_splitting_violations(
                cycle_graph(3), [RED], UniformSplittingSpec(eps=0.1, min_constrained_degree=1)
            )
