"""Tests for the Section 2.5 lower-bound reduction (Figure 1)."""

import pytest

from repro.bipartite.generators import random_regular_graph
from repro.core import (
    deterministic_lower_bound_rounds,
    is_weak_splitting,
    orientation_from_weak_splitting,
    randomized_lower_bound_rounds,
    solve_weak_splitting,
    weak_splitting_instance_from_graph,
)
from repro.local import shuffled_ids
from repro.orientation import is_sinkless


@pytest.fixture(scope="module")
def source_graph():
    return random_regular_graph(60, 6, seed=1)


class TestConstruction:
    def test_rank_at_most_two(self, source_graph):
        inst, _ = weak_splitting_instance_from_graph(source_graph)
        assert inst.rank <= 2

    def test_left_degree_at_least_half(self, source_graph):
        inst, _ = weak_splitting_instance_from_graph(source_graph)
        for u in range(inst.n_left):
            assert inst.left_degree(u) >= 3  # ceil(6/2)

    def test_node_count_matches_paper(self, source_graph):
        """n_B = |V| + |E|."""
        inst, edge_list = weak_splitting_instance_from_graph(source_graph)
        m = sum(len(x) for x in source_graph) // 2
        assert inst.n == 60 + m
        assert len(edge_list) == m

    def test_degree_preserved(self, source_graph):
        """∆_B <= ∆_G — the reduction is parameter preserving."""
        inst, _ = weak_splitting_instance_from_graph(source_graph)
        assert inst.Delta <= 6

    def test_custom_ids(self, source_graph):
        ids = shuffled_ids(60, seed=2)
        inst, _ = weak_splitting_instance_from_graph(source_graph, ids=ids)
        assert inst.rank <= 2

    def test_duplicate_ids_rejected(self, source_graph):
        with pytest.raises(ValueError):
            weak_splitting_instance_from_graph(source_graph, ids=[0] * 60)


class TestReductionSoundness:
    def test_weak_splitting_yields_sinkless(self, source_graph):
        """The heart of Theorem 2.10."""
        inst, edge_list = weak_splitting_instance_from_graph(source_graph)
        coloring = solve_weak_splitting(inst, method="heuristic", seed=42)
        assert is_weak_splitting(inst, coloring)
        orientation = orientation_from_weak_splitting(edge_list, coloring)
        assert is_sinkless(source_graph, orientation)

    def test_with_shuffled_ids(self, source_graph):
        ids = shuffled_ids(60, seed=3)
        inst, edge_list = weak_splitting_instance_from_graph(source_graph, ids=ids)
        coloring = solve_weak_splitting(inst, method="heuristic", seed=42)
        orientation = orientation_from_weak_splitting(edge_list, coloring, ids=ids)
        assert is_sinkless(source_graph, orientation)

    def test_many_seeds(self):
        for seed in range(3):
            adj = random_regular_graph(40, 5, seed=seed + 10)
            inst, edge_list = weak_splitting_instance_from_graph(adj)
            coloring = solve_weak_splitting(inst, method="heuristic", seed=42)
            orientation = orientation_from_weak_splitting(edge_list, coloring)
            assert is_sinkless(adj, orientation)

    def test_incomplete_coloring_rejected(self, source_graph):
        inst, edge_list = weak_splitting_instance_from_graph(source_graph)
        with pytest.raises(ValueError):
            orientation_from_weak_splitting(edge_list, [None] * len(edge_list))


class TestLowerBoundFormulas:
    def test_randomized_loglog(self):
        assert randomized_lower_bound_rounds(2, 2**16) == pytest.approx(4.0)

    def test_deterministic_log(self):
        assert deterministic_lower_bound_rounds(2, 1024) == pytest.approx(10.0)

    def test_deterministic_exceeds_randomized(self):
        assert deterministic_lower_bound_rounds(4, 10**6) > randomized_lower_bound_rounds(
            4, 10**6
        )
