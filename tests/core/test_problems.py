"""Tests for the paper's parameter thresholds."""

import math

import pytest

from repro.core import (
    UniformSplittingSpec,
    multicolor_threshold,
    randomized_min_degree,
    theorem_25_iterations,
    theorem_25_trim_threshold,
    weak_multicolor_bound_degree,
    weak_multicolor_required_colors,
    weak_splitting_min_degree,
)


class TestThresholds:
    def test_weak_splitting_min_degree(self):
        assert weak_splitting_min_degree(1024) == 20.0

    def test_trim_threshold_is_24x(self):
        assert theorem_25_trim_threshold(1024) == 24 * weak_splitting_min_degree(1024)

    def test_iterations_formula(self):
        # delta = 96 log n -> k = floor(log(8)) = 3
        n = 1024
        delta = int(96 * math.log2(n))
        assert theorem_25_iterations(delta, n) == 3

    def test_iterations_requires_margin(self):
        with pytest.raises(ValueError):
            theorem_25_iterations(10, 1024)  # 10 < 12 log n

    def test_weak_multicolor_bound_degree(self):
        n = 256
        expected = 2 * (8 + 1) * math.log(256)
        assert weak_multicolor_bound_degree(n) == pytest.approx(expected)

    def test_required_colors_is_ceil_2log(self):
        assert weak_multicolor_required_colors(256) == 16
        assert weak_multicolor_required_colors(300) == math.ceil(2 * math.log2(300))

    def test_multicolor_threshold_ceils(self):
        assert multicolor_threshold(10, 0.25) == 3
        assert multicolor_threshold(8, 0.25) == 2

    def test_randomized_min_degree_grows_with_r(self):
        assert randomized_min_degree(100, 1000) > randomized_min_degree(2, 1000)

    def test_rejects_tiny_n(self):
        with pytest.raises(ValueError):
            weak_splitting_min_degree(1)


class TestUniformSpec:
    def test_bounds(self):
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=10)
        assert spec.lo(100) == pytest.approx(40)
        assert spec.hi(100) == pytest.approx(60)

    def test_constrains(self):
        spec = UniformSplittingSpec(eps=0.1, min_constrained_degree=10)
        assert spec.constrains(10) and not spec.constrains(9)

    def test_rejects_bad_eps(self):
        with pytest.raises(ValueError):
            UniformSplittingSpec(eps=0.6, min_constrained_degree=5)
        with pytest.raises(ValueError):
            UniformSplittingSpec(eps=0.0, min_constrained_degree=5)
