"""Tests for Section 5 (high-girth weak splitting)."""

import pytest

from repro.bipartite import bipartite_girth, high_girth_instance, tree_instance
from repro.core import high_girth_weak_splitting, is_weak_splitting, shatter_until_low_rank
from repro.local import RoundLedger


@pytest.fixture(scope="module")
def forest_instance():
    """A girth-∞ (acyclic) instance with δ = 20, rank 2 — the scalable
    Section 5 family (see bipartite.girth.tree_instance)."""
    return tree_instance(roots=30, d=20, r=2)


class TestShatterUntilLowRank:
    def test_residual_meets_theorem_27_regime(self, forest_instance):
        out = shatter_until_low_rank(forest_instance, seed=2)
        res = out.residual
        if res.n_left:
            delta_h = min(res.left_degree(u) for u in range(res.n_left))
            assert (res.rank <= 1 and delta_h >= 2) or delta_h >= 6 * res.rank

    def test_delta_h_at_least_quarter(self, forest_instance):
        out = shatter_until_low_rank(forest_instance, seed=3)
        res = out.residual
        for i, u in enumerate(out.residual_left_ids):
            assert res.left_degree(i) >= forest_instance.left_degree(u) / 4

    def test_gives_up_eventually(self):
        """A rank-heavy, thin instance without girth structure should fail."""
        from repro.bipartite import random_left_regular

        inst = random_left_regular(60, 6, 3, seed=3)  # rank ~30, delta 3
        with pytest.raises(RuntimeError):
            shatter_until_low_rank(inst, seed=4, max_attempts=3)


class TestHighGirthSplitting:
    def test_deterministic_pipeline(self, forest_instance):
        led = RoundLedger()
        coloring = high_girth_weak_splitting(forest_instance, seed=5, ledger=led)
        assert is_weak_splitting(forest_instance, coloring)
        assert "B^4-coloring" in led.breakdown()

    def test_randomized_pipeline(self, forest_instance):
        led = RoundLedger()
        coloring = high_girth_weak_splitting(
            forest_instance, seed=6, ledger=led, deterministic=False
        )
        assert is_weak_splitting(forest_instance, coloring)
        assert "residual-components" in led.breakdown()

    def test_genuine_cyclic_girth_10_instance_solvable(self):
        """The incidence family has real length-10 cycles; its δ is far below
        the Section 5 regime at laptop scale (see EXPERIMENTS.md E14), so we
        verify the construction and solve it with the heuristic path."""
        from repro.core import shatter, solve_weak_splitting

        inst = high_girth_instance(150, 4, seed=7, min_delta=2)
        g = bipartite_girth(inst)
        assert g is None or g >= 10
        coloring = solve_weak_splitting(inst, method="heuristic", seed=8)
        assert is_weak_splitting(inst, coloring)
        # Lemma 5.1's unconditional half: shattering keeps δ_H >= δ/4.
        out = shatter(inst, seed=9)
        for i, u in enumerate(out.residual_left_ids):
            assert out.residual.left_degree(i) >= inst.left_degree(u) / 4

    def test_verify_girth_flag(self):
        inst = tree_instance(roots=4, d=8, r=2)
        coloring = high_girth_weak_splitting(inst, seed=9, verify_girth=True)
        assert is_weak_splitting(inst, coloring)

    def test_girth_precondition_enforced(self):
        from repro.bipartite import regular_bipartite

        inst = regular_bipartite(20, 20, 4)  # girth 4
        with pytest.raises(ValueError):
            high_girth_weak_splitting(inst, seed=10, verify_girth=True)

    def test_forest_girth_counts_as_high(self, forest_instance):
        assert bipartite_girth(forest_instance) is None
