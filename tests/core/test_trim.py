"""Tests for Lemma 2.2 (trimming)."""

import math

import pytest

from repro.bipartite import random_left_regular, random_skewed
from repro.core import is_weak_splitting, trimmed_weak_splitting
from repro.derand import DerandomizationError
from repro.local import RoundLedger


class TestTrimmedWeakSplitting:
    def test_valid_on_untrimmed_instance(self):
        """The coloring must satisfy the *original* (untrimmed) constraints."""
        inst = random_left_regular(200, 200, 40, seed=1)
        coloring = trimmed_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_valid_on_skewed_degrees(self):
        inst = random_skewed(150, 300, 20, 120, seed=2)
        coloring = trimmed_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_cheaper_than_untrimmed_basic(self):
        """Trimming turns the O(∆·r) cost into O(δ'·r) = O(r log n)."""
        from repro.core import basic_weak_splitting

        inst = random_left_regular(150, 300, 60, seed=3)
        led_trim, led_basic = RoundLedger(), RoundLedger()
        trimmed_weak_splitting(inst, ledger=led_trim)
        basic_weak_splitting(inst, ledger=led_basic)
        assert led_trim.total < led_basic.total

    def test_strict_precondition(self):
        inst = random_left_regular(100, 100, 4, seed=4)
        with pytest.raises(DerandomizationError):
            trimmed_weak_splitting(inst)

    def test_n_override_changes_target(self):
        """With a smaller ambient n the trim target (and cost) shrinks."""
        inst = random_left_regular(300, 300, 40, seed=5)
        led_small, led_big = RoundLedger(), RoundLedger()
        trimmed_weak_splitting(inst, ledger=led_small, n_override=64)
        trimmed_weak_splitting(inst, ledger=led_big, n_override=2**20)
        assert led_small.total < led_big.total

    def test_exact_threshold_degree_untouched(self):
        n = 512  # 2 log n = 18 at n = 262144? n here is |U|+|V| = 512 -> 18
        inst = random_left_regular(256, 256, 18, seed=6)
        coloring = trimmed_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)
