"""Tests for Theorem 1.2 (randomized weak splitting)."""

import pytest

from repro.bipartite import (
    BipartiteInstance,
    random_left_regular,
    random_near_regular,
    random_skewed,
)
from repro.core import is_weak_splitting, randomized_weak_splitting, solve_component
from repro.local import RoundLedger


class TestRandomized:
    def test_shattering_regime(self):
        """δ between c·log(r log n) and 2 log n: the full pipeline."""
        inst = random_left_regular(800, 800, 12, seed=1)
        led = RoundLedger()
        coloring = randomized_weak_splitting(inst, seed=2, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert "shattering" in led.breakdown()

    def test_zero_round_regime(self):
        """δ > 2 log n: single-round coin flip suffices."""
        inst = random_left_regular(200, 200, 30, seed=3)
        led = RoundLedger()
        coloring = randomized_weak_splitting(inst, seed=4, ledger=led)
        assert is_weak_splitting(inst, coloring)
        assert "zero-round-coloring+check" in led.breakdown()

    def test_high_degree_constraints_virtualized(self):
        """Skewed instances go through the Section 2.4 normalization."""
        inst = random_skewed(400, 400, 12, 200, seed=5)
        coloring = randomized_weak_splitting(inst, seed=6)
        assert is_weak_splitting(inst, coloring)

    def test_near_regular(self):
        inst = random_near_regular(600, 600, 11, 14, seed=7)
        coloring = randomized_weak_splitting(inst, seed=8)
        assert is_weak_splitting(inst, coloring)

    def test_reproducible(self):
        inst = random_left_regular(300, 300, 11, seed=9)
        a = randomized_weak_splitting(inst, seed=10)
        b = randomized_weak_splitting(inst, seed=10)
        assert a == b

    def test_rejects_degree_one_constraint(self):
        inst = BipartiteInstance(1, 1, [(0, 0)])
        with pytest.raises(ValueError):
            randomized_weak_splitting(inst, seed=1)

    def test_parallel_component_accounting(self):
        inst = random_left_regular(1000, 1000, 11, seed=11)
        led = RoundLedger()
        randomized_weak_splitting(inst, seed=12, ledger=led)
        assert "residual-components" in led.breakdown()


class TestSolveComponent:
    def test_empty_component(self):
        assert solve_component(BipartiteInstance(0, 0, [])) == []

    def test_right_only_component(self):
        coloring = solve_component(BipartiteInstance(0, 3, []))
        assert len(coloring) == 3

    def test_tiny_bruteforce_fallback(self):
        # delta = 2 but n too small for any certificate: bruteforce kicks in
        inst = BipartiteInstance(2, 3, [(0, 0), (0, 1), (1, 1), (1, 2)])
        coloring = solve_component(inst)
        assert is_weak_splitting(inst, coloring)

    def test_unsolvable_component_raises(self):
        inst = BipartiteInstance(1, 1, [(0, 0)])
        with pytest.raises(RuntimeError):
            solve_component(inst)

    def test_deterministic_path_for_good_components(self):
        inst = random_left_regular(40, 40, 16, seed=13)
        led = RoundLedger()
        coloring = solve_component(inst, ledger=led)
        assert is_weak_splitting(inst, coloring)
