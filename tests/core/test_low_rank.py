"""Tests for Theorem 2.7 (δ >= 6r regime)."""

import pytest

from repro.bipartite import BipartiteInstance, regular_bipartite
from repro.core import is_weak_splitting, low_rank_weak_splitting, rank_one_weak_splitting
from repro.local import RoundLedger


class TestRankOneSolver:
    def test_private_neighborhoods(self):
        # two constraints, disjoint variables
        inst = BipartiteInstance(2, 5, [(0, 0), (0, 1), (0, 2), (1, 3), (1, 4)])
        coloring = rank_one_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_unconstrained_variables_colored(self):
        inst = BipartiteInstance(1, 3, [(0, 0), (0, 1)])
        coloring = rank_one_weak_splitting(inst)
        assert coloring[2] is not None

    def test_rejects_rank_two(self):
        inst = BipartiteInstance(2, 1, [(0, 0), (1, 0)])
        with pytest.raises(ValueError):
            rank_one_weak_splitting(inst)

    def test_rejects_degree_one_constraint(self):
        inst = BipartiteInstance(1, 1, [(0, 0)])
        with pytest.raises(ValueError):
            rank_one_weak_splitting(inst)


class TestLowRank:
    def test_low_degree_reduction_branch(self, low_rank_instance):
        """δ = 12 < 2 log n: must go through Reduction II."""
        led = RoundLedger()
        coloring = low_rank_weak_splitting(low_rank_instance, ledger=led)
        assert is_weak_splitting(low_rank_instance, coloring)
        assert any(label.startswith("reduction-II") for label in led.breakdown())

    def test_high_degree_deterministic_branch(self):
        # δ = 24 >= 2 log n (n = 100 + 100 -> 15.3) and rank small enough?
        # regular_bipartite(100, 600, 24): rank = 4, δ = 24 >= 24. OK.
        inst = regular_bipartite(100, 600, 24)
        assert inst.delta >= 6 * inst.rank
        coloring = low_rank_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_randomized_branch(self, low_rank_instance):
        led = RoundLedger()
        coloring = low_rank_weak_splitting(
            low_rank_instance, ledger=led, randomized=True, seed=3
        )
        assert is_weak_splitting(low_rank_instance, coloring)

    def test_randomized_cheaper_substrate(self, low_rank_instance):
        led_d, led_r = RoundLedger(), RoundLedger()
        low_rank_weak_splitting(low_rank_instance, ledger=led_d)
        low_rank_weak_splitting(low_rank_instance, ledger=led_r, randomized=True, seed=1)
        assert led_r.total < led_d.total

    def test_precondition_enforced(self):
        inst = regular_bipartite(20, 20, 10)  # rank 10, delta 10 < 60
        with pytest.raises(ValueError):
            low_rank_weak_splitting(inst)

    def test_boundary_delta_exactly_6r(self):
        inst = regular_bipartite(30, 180, 12)  # rank 2, delta 12 = 6*2
        coloring = low_rank_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)

    def test_rank_three(self):
        inst = regular_bipartite(60, 360, 18)  # rank 3, delta 18 = 6*3
        assert inst.rank == 3
        coloring = low_rank_weak_splitting(inst)
        assert is_weak_splitting(inst, coloring)
