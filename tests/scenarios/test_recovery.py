"""Property tests for the self-stabilizing recovery layer.

Four layers of guarantees:

* **bit-identity** — the ``*_recovering`` variants return identical
  ``(output, rounds, RepairResult)`` tuples on the hooked engine and the
  masked dense kernels, in both fault modes, because the repair drivers
  run one shared vectorized implementation over end-state arrays both
  backends produce bit-identically;
* **bounded truncation** — a ``max_rounds`` cap that lands mid-repair
  stops the tail early on *both* backends at the same round with the same
  partial state (``recovered=False``), and ``cap=0`` disables the tail
  entirely;
* **zero violations** — for every registered crash/drop/Byzantine
  scenario with a settling schedule, ``run_scenario(recover=True)``
  reaches zero contract violations within a bounded repair tail, with
  identical metrics across the scenario's backends;
* **accounting** — repair rounds fold into ``rounds`` (and therefore
  ``rounds_to_recover``), the pre-repair damage is preserved in
  ``violations_before_recovery``, and ``return_state`` exposes the end
  state the certification oracle consumes.
"""

import random

import pytest

from repro.core.problems import UniformSplittingSpec
from repro.scenarios import (
    CorrelatedCrash,
    CorruptMessages,
    CrashNodes,
    IIDMessageDrop,
    RepairResult,
    all_scenarios,
    get_scenario,
    luby_mis_recovering,
    run_scenario,
    sinkless_recovering,
    splitting_recovering,
)

RECOVERING_SCENARIOS = [
    "luby/crash",
    "luby/crash-correlated",
    "luby/crash-shard",
    "luby/byzantine",
    "luby/edge-deletion",
    "sinkless/crash",
    "sinkless/byzantine",
    "splitting/multi-edge",
    "splitting/byzantine",
]


def random_graph(seed, n=24, edges=70):
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    for _ in range(edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            adj[u].append(v)
            adj[v].append(u)
    return adj


def circulant(n=24, k=3):
    """Deterministic 2k-regular graph (no rejection sampling)."""
    return [
        sorted({(i + d) % n for d in range(1, k + 1)}
               | {(i - d) % n for d in range(1, k + 1)})
        for i in range(n)
    ]


LUBY_STACK = (CrashNodes(0.2, at_round=2), CorruptMessages(p=0.15, until_round=5))
SINKLESS_STACK = (
    CrashNodes(0.15, at_round=2),
    CorruptMessages(p=0.1, from_round=2, until_round=6),
)
SPLITTING_STACK = (CorruptMessages(p=0.1, until_round=1),)
SPLITTING_SPEC = UniformSplittingSpec(eps=0.25, min_constrained_degree=3)


def deterministic(metrics):
    """The metric channels that must be bit-identical across backends."""
    return {k: v for k, v in metrics.items() if not k.endswith("_seconds")}


class TestRecoveringVariantsBitIdentity:
    """engine vs dense: identical (output, rounds, RepairResult)."""

    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_luby(self, fault_mode):
        for trial in range(4):
            adj = random_graph(100 + trial)
            eng = luby_mis_recovering(
                adj, LUBY_STACK, seed=trial, fault_mode=fault_mode,
                method="engine",
            )
            den = luby_mis_recovering(
                adj, LUBY_STACK, seed=trial, fault_mode=fault_mode,
                method="dense", coins="replay",
            )
            assert eng == den
            mis, rounds, rep = eng
            assert isinstance(rep, RepairResult)
            assert rep.last_round == rounds
            assert rep.recovered

    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_sinkless(self, fault_mode):
        adj = circulant(n=24, k=3)
        for seed in (0, 1, 2):
            eng = sinkless_recovering(
                adj, SINKLESS_STACK, min_degree=3, seed=seed,
                fault_mode=fault_mode, method="engine",
            )
            den = sinkless_recovering(
                adj, SINKLESS_STACK, min_degree=3, seed=seed,
                fault_mode=fault_mode, method="dense", coins="replay",
            )
            assert eng == den
            assert eng[2].recovered

    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_splitting(self, fault_mode):
        adj = circulant(n=30, k=4)
        for seed in (0, 1):
            eng = splitting_recovering(
                adj, SPLITTING_SPEC, SPLITTING_STACK, seed=seed,
                fault_mode=fault_mode, method="engine",
            )
            den = splitting_recovering(
                adj, SPLITTING_SPEC, SPLITTING_STACK, seed=seed,
                fault_mode=fault_mode, method="dense", coins="replay",
            )
            assert eng == den
            assert eng[2].recovered


class TestBoundedTruncation:
    def _full_and_base(self, adj, seed):
        full = luby_mis_recovering(
            adj, LUBY_STACK, seed=seed, method="dense", coins="replay"
        )
        return full, full[1] - full[2].repair_rounds

    def test_max_rounds_caps_mid_repair_identically(self):
        # Pick a trial whose full repair tail is long enough to truncate.
        for seed in range(20):
            adj = random_graph(200 + seed)
            full, base = self._full_and_base(adj, seed)
            if full[2].repair_rounds > 2:
                break
        else:  # pragma: no cover - the stack above always damages the MIS
            pytest.fail("no trial with a multi-round repair tail")
        capped = base + 2
        eng = luby_mis_recovering(
            adj, LUBY_STACK, seed=seed, method="engine", max_rounds=capped
        )
        den = luby_mis_recovering(
            adj, LUBY_STACK, seed=seed, method="dense", coins="replay",
            max_rounds=capped,
        )
        assert eng == den
        assert not eng[2].recovered
        assert eng[2].last_round <= capped
        assert eng[2].repair_rounds < full[2].repair_rounds

    def test_cap_zero_disables_the_repair_tail(self):
        adj = random_graph(321)
        full, base = self._full_and_base(adj, 3)
        none = luby_mis_recovering(
            adj, LUBY_STACK, seed=3, method="dense", coins="replay", cap=0
        )
        assert none[2].repair_rounds == 0
        assert none[1] == base
        assert not none[2].recovered


class TestRunScenarioRecover:
    @pytest.mark.parametrize("name", RECOVERING_SCENARIOS)
    def test_recovers_to_zero_violations_identically(self, name):
        sc = get_scenario(name)
        per_backend = []
        for backend in sc.backends:
            m = run_scenario(sc, n=60, seed=5, backend=backend, coins="replay",
                             recover=True)
            per_backend.append((backend, m))
            assert m["violations"] == 0, (name, backend)
            assert m["recovered"] == 1, (name, backend)
            assert m["completed"] == 1, (name, backend)
            # Fault-free stacks (quiet horizon 0) omit the channel.
            assert m.get("rounds_to_recover", 0) >= 0
        first = deterministic(per_backend[0][1])
        for backend, m in per_backend[1:]:
            assert deterministic(m) == first, (name, backend)

    def test_repair_rounds_fold_into_round_accounting(self):
        base = run_scenario("luby/byzantine", n=60, seed=5, backend="engine",
                            recover=False)
        rec = run_scenario("luby/byzantine", n=60, seed=5, backend="engine",
                           recover=True)
        assert rec["rounds"] == base["rounds"] + rec["repair_rounds"]
        assert rec["violations_before_recovery"] == base["violations"]
        assert rec["violations"] <= base["violations"]

    def test_return_state_exposes_certifiable_end_state(self):
        _, state = run_scenario("sinkless/byzantine", n=48, seed=2,
                                backend="engine", recover=True,
                                return_state=True)
        assert state["pipeline"] == "sinkless"
        assert set(state) >= {"adjacency", "orientation", "alive",
                              "min_degree", "settles"}
        assert state["settles"] is True
        _, state = run_scenario("luby/churn", n=48, seed=2, backend="engine",
                                recover=True, return_state=True)
        assert state["settles"] is False

    def test_reference_backend_upgrades_to_engine_for_recovery(self):
        eng = run_scenario("luby/crash", n=60, seed=7, backend="engine",
                           recover=True)
        ref = run_scenario("luby/crash", n=60, seed=7, backend="reference",
                           recover=True)
        assert deterministic(ref) == deterministic(eng)

    def test_every_registered_scenario_supports_recovery(self):
        for sc in all_scenarios():
            m = run_scenario(sc, n=48, seed=1, backend=sc.backends[0],
                             coins="replay", recover=True)
            assert m["recovered"] == 1, sc.name
            assert "repair_rounds" in m


class TestPipelineRecoverFlag:
    def test_luby_mis_recover_matches_recovering_variant(self):
        from repro.local import CSREngine, Network
        from repro.mis.luby import luby_mis
        from repro.scenarios import PerturbationHooks, bind_all
        from repro.scenarios.masks import DenseFaults

        adj = random_graph(77)
        net = Network(adj)
        engine = CSREngine(net)
        bound = bind_all(LUBY_STACK, net, fault_seed=4)
        want = luby_mis_recovering(adj, LUBY_STACK, seed=4, method="dense",
                                   engine=engine)
        mis, rounds = luby_mis(adj, seed=4, method="dense", coins="replay",
                               engine=engine,
                               faults=DenseFaults(engine, bound), recover=True)
        assert (mis, rounds) == (want[0], want[1])
        mis, rounds = luby_mis(adj, seed=4, method="engine", engine=engine,
                               hooks=PerturbationHooks(bound), recover=True)
        assert (mis, rounds) == (want[0], want[1])

    def test_sinkless_recover_flag(self):
        from repro.local import CSREngine, Network
        from repro.orientation.sinkless import run_trial_and_fix
        from repro.scenarios import bind_all
        from repro.scenarios.masks import DenseFaults

        adj = circulant(n=24, k=3)
        engine = CSREngine(Network(adj))
        bound = bind_all(SINKLESS_STACK, engine.network, fault_seed=1)
        orientation, rounds = run_trial_and_fix(
            adj, min_degree=3, seed=1, method="dense", coins="replay",
            engine=engine, faults=DenseFaults(engine, bound), recover=True,
        )
        want = sinkless_recovering(adj, SINKLESS_STACK, min_degree=3, seed=1,
                                   method="dense", engine=engine)
        assert (orientation, rounds) == (want[0], want[1])
        assert want[2].recovered

    def test_splitting_recover_flag(self):
        from repro.apps.splitting import uniform_splitting
        from repro.local import CSREngine, Network
        from repro.scenarios import bind_all
        from repro.scenarios.masks import DenseFaults

        adj = circulant(n=30, k=4)
        engine = CSREngine(Network(adj))
        bound = bind_all(SPLITTING_STACK, engine.network, fault_seed=6)
        colors = uniform_splitting(
            adj, SPLITTING_SPEC, method="local", seed=6, coins="replay",
            engine=engine, faults=DenseFaults(engine, bound), recover=True,
        )
        assert len(colors) == 30

    def test_recover_rejects_unsupported_methods(self):
        with pytest.raises(Exception, match="recover"):
            from repro.mis.luby import luby_mis

            luby_mis(random_graph(1), method="dense-sharded", recover=True)
