"""Unit tests for the perturbation vocabulary and the contract helpers."""

import pytest

from repro.bipartite.instance import BLUE, RED
from repro.core.problems import UniformSplittingSpec
from repro.local import Network
from repro.scenarios import (
    AdversarialIDs,
    CrashNodes,
    DropEdges,
    EdgeChurn,
    IIDMessageDrop,
    MultiEdgeLift,
    MuteHubs,
    PortScramble,
    bind_all,
    edge_keys,
    fault_u01,
    mis_violations,
    quiet_after,
    rewrite_all,
    splitting_violations,
    surviving_sinks,
)
from tests.conftest import cycle_graph


def star_graph(n):
    """Node 0 joined to 1..n-1."""
    return [list(range(1, n))] + [[0] for _ in range(n - 1)]


class TestFaultCoins:
    def test_pure_and_seed_sensitive(self):
        a = fault_u01(1, "drop", 7, 3, 0)
        assert a == fault_u01(1, "drop", 7, 3, 0)
        assert a != fault_u01(2, "drop", 7, 3, 0)
        assert a != fault_u01(1, "drop", 7, 4, 0)
        assert a != fault_u01(1, "churn", 7, 3, 0)
        assert 0.0 <= a < 1.0

    def test_independent_of_node_coin_namespace(self):
        # A fault coin never equals the node's first private coin for the
        # same (seed, uid) — disjoint salt namespaces.
        from repro.utils.rng import node_rng

        assert fault_u01(3, "drop", 5) != node_rng(3, 5).random()


class TestCrashNodes:
    def test_deterministic_and_sized(self):
        net = Network(cycle_graph(10))
        bound = CrashNodes(fraction=0.3, at_round=2).bind(net, fault_seed=4)
        assert bound.crashes(2) == bound.crashes(2)
        assert len(bound.crashes(2)) == 3
        assert bound.crashes(1) == () and bound.crashes(3) == ()
        assert bound.quiet_after == 2

    def test_hub_selection_targets_degree(self):
        net = Network(star_graph(8))
        bound = CrashNodes(fraction=0.1, at_round=1, select="hubs").bind(net, 0)
        assert bound.crashes(1) == (0,)  # the hub

    def test_at_least_one_victim(self):
        net = Network(cycle_graph(5))
        bound = CrashNodes(fraction=0.01, at_round=1).bind(net, 0)
        assert len(bound.crashes(1)) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            CrashNodes(fraction=1.5)
        with pytest.raises(ValueError):
            CrashNodes(at_round=0)
        with pytest.raises(ValueError):
            CrashNodes(select="typo")

    def test_replay_selection_matches_historical_per_node_coins(self):
        # The vectorized bind must reproduce the original selection rule
        # bit-for-bit in replay mode: stable-sort the nodes by their scalar
        # fault_u01("crash") coin and take the first `count`.
        net = Network(cycle_graph(40))
        bound = CrashNodes(fraction=0.25, at_round=1).bind(
            net, fault_seed=9, fault_mode="replay"
        )
        order = sorted(range(net.n),
                       key=lambda i: fault_u01(9, "crash", net.ids[i]))
        assert bound.crashes(1) == tuple(sorted(order[:10]))

    def test_mask_selection_is_deterministic_and_sized(self):
        net = Network(cycle_graph(40))
        first = CrashNodes(fraction=0.25, at_round=1).bind(
            net, fault_seed=9, fault_mode="mask"
        )
        again = CrashNodes(fraction=0.25, at_round=1).bind(
            net, fault_seed=9, fault_mode="mask"
        )
        other_seed = CrashNodes(fraction=0.25, at_round=1).bind(
            net, fault_seed=10, fault_mode="mask"
        )
        assert first.crashes(1) == again.crashes(1)
        assert len(first.crashes(1)) == 10
        assert first.crashes(1) != other_seed.crashes(1)

    def test_zero_fraction_skips_selection(self):
        net = Network(cycle_graph(6))
        for mode in ("replay", "mask"):
            bound = CrashNodes(fraction=0.0, at_round=1).bind(
                net, fault_seed=0, fault_mode=mode
            )
            assert bound.crashes(1) == ()

    def test_hub_selection_is_mode_independent(self):
        net = Network(star_graph(8))
        replay = CrashNodes(fraction=0.1, select="hubs").bind(
            net, 0, fault_mode="replay"
        )
        mask = CrashNodes(fraction=0.1, select="hubs").bind(
            net, 0, fault_mode="mask"
        )
        assert replay.victims == mask.victims == (0,)


class TestMessageDrops:
    def test_iid_rate_roughly_honored(self):
        net = Network(cycle_graph(200))
        bound = IIDMessageDrop(p=0.3).bind(net, fault_seed=8)
        drops = sum(
            not bound.delivers(r, s, p)
            for r in range(1, 6)
            for s in range(200)
            for p in range(2)
        )
        assert 0.2 < drops / 2000 < 0.4
        assert bound.quiet_after is None

    def test_window(self):
        net = Network(cycle_graph(6))
        bound = IIDMessageDrop(p=1.0, from_round=2, until_round=3).bind(net, 0)
        assert bound.delivers(1, 0, 0)
        assert not bound.delivers(2, 0, 0) and not bound.delivers(3, 0, 0)
        assert bound.delivers(4, 0, 0)
        assert bound.quiet_after == 3

    def test_mute_hubs_silences_top_degree(self):
        net = Network(star_graph(6))
        bound = MuteHubs(count=1, until_round=2).bind(net, 0)
        assert not bound.delivers(1, 0, 3)
        assert bound.delivers(3, 0, 0)  # healed
        assert bound.delivers(1, 2, 0)  # leaves unaffected


class TestDynamicEdges:
    def test_edge_keys_symmetric_across_multiedges(self):
        adj = [[1, 1, 2], [0, 0], [0]]
        net = Network(adj)
        keys = edge_keys(net)
        # The two parallel (0,1) edges get distinct keys, matched in order
        # of appearance on both sides.
        assert keys[0][0] == keys[1][0]
        assert keys[0][1] == keys[1][1]
        assert keys[0][0] != keys[0][1]
        assert keys[0][2] == keys[2][0]

    def test_churn_symmetric_per_edge(self):
        net = Network(cycle_graph(12))
        bound = EdgeChurn(p_down=0.5).bind(net, fault_seed=3)
        # Whatever the decision, both directions of an edge agree.
        for i in range(12):
            for p, j in enumerate(net.adjacency[i]):
                q = net.adjacency[j].index(i)
                assert bound.delivers(4, i, p) == bound.delivers(4, j, q)

    def test_drop_edges_final_graph(self):
        net = Network(cycle_graph(12))
        bound = DropEdges(fraction=0.5, at_round=3).bind(net, fault_seed=1)
        dropped = [
            (s, p)
            for s in range(12)
            for p in range(2)
            if not bound.edge_alive_final(s, p)
        ]
        assert dropped  # 50% of 12 edges: essentially surely non-empty
        for s, p in dropped:
            assert bound.delivers(2, s, p)
            assert not bound.delivers(3, s, p)
            assert not bound.delivers(10, s, p)


class TestRewrites:
    def test_adversarial_ids_rank_by_degree(self):
        adj = star_graph(5)
        _, ids = rewrite_all((AdversarialIDs(),), adj)
        assert ids[0] == 4  # the hub gets the largest uid
        assert sorted(ids) == list(range(5))

    def test_port_scramble_preserves_multiset(self):
        adj = cycle_graph(9)
        scrambled, ids = rewrite_all((PortScramble(salt=3),), adj)
        assert ids == list(range(9))
        assert [sorted(a) for a in scrambled] == [sorted(a) for a in adj]
        Network(scrambled)  # still a valid symmetric adjacency

    def test_multi_edge_lift_multiplies_degrees(self):
        adj = cycle_graph(5)
        lifted, _ = rewrite_all((MultiEdgeLift(times=3),), adj)
        assert all(len(lifted[i]) == 3 * len(adj[i]) for i in range(5))
        Network(lifted)

    def test_rewrites_compose_in_order(self):
        adj = star_graph(4)
        lifted, ids = rewrite_all((MultiEdgeLift(2), AdversarialIDs()), adj)
        assert len(lifted[0]) == 6 and ids[0] == 3


class TestQuietAfter:
    def test_max_over_stack_and_none_dominates(self):
        net = Network(cycle_graph(8))
        crash = CrashNodes(fraction=0.1, at_round=5)
        mute = MuteHubs(count=1, until_round=2)
        assert quiet_after(bind_all((crash, mute), net, 0)) == 5
        forever = IIDMessageDrop(p=0.1)
        assert quiet_after(bind_all((crash, forever), net, 0)) is None
        assert quiet_after(bind_all((MultiEdgeLift(2),), net, 0)) == 0


class TestContracts:
    def test_mis_violations_counts_both_kinds(self):
        adj = cycle_graph(5)
        # Adjacent MIS pair 0-1, and node 3 (neighbors 2, 4) undominated.
        independence, domination = mis_violations(adj, {0, 1})
        assert independence == 1
        assert domination == 1
        assert mis_violations(cycle_graph(4), {0, 2}) == (0, 0)

    def test_mis_violations_respects_survivors(self):
        adj = cycle_graph(4)
        alive = [True, False, True, True]
        # 1 is dead: the 0-1 edge is gone; 2 is alive non-MIS but dominated
        # by 0? 2's neighbors are 1 (dead) and 3. With MIS {0}: 2 and 3
        # both alive, 3 undominated (neighbors 2, 0 — 0 in MIS) -> fine;
        # 2's only alive neighbor 3 is not in MIS -> undominated.
        independence, domination = mis_violations(adj, {0}, alive=alive)
        assert independence == 0
        assert domination == 1

    def test_surviving_sinks(self):
        adj = cycle_graph(3)
        orientation = {(0, 1): True, (1, 2): True, (2, 0): True}
        assert surviving_sinks(adj, orientation, [True] * 3, 2) == []
        # Kill node 1: node 0's outgoing edge leads to the dead node, and
        # its alive degree (1) is below min_degree=2 -> not accountable.
        assert surviving_sinks(adj, orientation, [True, False, True], 2) == []
        # With min_degree=1 node 0 becomes accountable and is stranded.
        assert surviving_sinks(adj, orientation, [True, False, True], 1) == [0]

    def test_splitting_violations_on_surviving_degrees(self):
        adj = star_graph(5)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=2)
        partition = [RED, RED, RED, RED, BLUE]
        # Hub sees 3 red of 4: within [1, 3].
        assert splitting_violations(adj, partition, spec) == []
        # Killing the only blue leaf leaves 3/3 red > hi(3)=2.25.
        alive = [True, True, True, True, False]
        assert splitting_violations(adj, partition, spec, alive=alive) == [0]
