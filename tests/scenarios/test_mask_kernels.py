"""Property tests for the vectorized fault-mask kernels.

Three layers of guarantees:

* **coin kernels** — ``fault_u01_array(mode="replay")`` reproduces the
  scalar :func:`fault_u01` values exactly, and ``mode="mask"`` matches the
  scalar :func:`fault_u01_mix` chain bit-for-bit (scalar and vectorized
  executors may interleave decisions in any order);
* **mask surface** — for every registered scenario and both fault modes,
  the :class:`DenseFaults` masks equal a per-slot scalar sweep of the pure
  ``delivers`` / ``crashes`` decisions (in replay mode that pins the
  historical schedule the hook-equivalence tests compare against), and
  ``delivered_in`` is the partner-gather of ``delivered_out``;
* **lifecycle** — rounds past the quiet horizon reuse one steady-state
  mask (persistent deletions stay down, healed stacks return ``None``),
  never-settling stacks keep a bounded cache, and in mask fault mode the
  hooked engine and the replay-coin dense kernel still agree bit-for-bit
  because scalar and vectorized decisions share one mixing chain.
"""

import random

import numpy as np
import pytest

from repro.local import CSREngine, Network
from repro.local.dense import luby_mis_dense
from repro.mis.luby import LubyMIS
from repro.scenarios import (
    CrashNodes,
    DropEdges,
    IIDMessageDrop,
    MuteHubs,
    PerturbationHooks,
    all_scenarios,
    bind_all,
    fault_u01,
    fault_u01_array,
    fault_u01_mix,
    rewrite_all,
    run_scenario,
)
from repro.scenarios.masks import DenseFaults, SlotLayout


def small_graph(seed, n=24, edges=70):
    rng = random.Random(seed)
    adj = [[] for _ in range(n)]
    for _ in range(edges):
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            adj[u].append(v)
            adj[v].append(u)
    return adj


class TestCoinKernels:
    def test_replay_mode_reproduces_scalar_fault_u01(self):
        ids = list(range(40)) + ["7:9:0", "2:11:1"]  # int and string entities
        got = fault_u01_array(13, "drop", ids, 5, mode="replay")
        expect = [fault_u01(13, "drop", e, 5) for e in ids]
        assert got.tolist() == expect

    def test_mask_mode_matches_scalar_mix_chain(self):
        ent = np.arange(500, dtype=np.int64) * 7919
        ports = np.arange(500, dtype=np.int64) % 11
        got = fault_u01_array(99, "churn", ent, ports, 3, mode="mask")
        expect = [
            fault_u01_mix(99, "churn", int(e), int(p), 3)
            for e, p in zip(ent, ports)
        ]
        assert got.tolist() == expect

    def test_mask_coins_are_keyed_uniforms(self):
        ent = np.arange(20_000, dtype=np.int64)
        u = fault_u01_array(1, "drop", ent, 1, mode="mask")
        assert float(u.min()) >= 0.0 and float(u.max()) < 1.0
        assert abs(float(u.mean()) - 0.5) < 0.02  # 3.5 sigma at n=20k
        # Distinct along every key axis, identical on repetition.
        v = fault_u01_array(1, "drop", ent, 2, mode="mask")
        w = fault_u01_array(2, "drop", ent, 1, mode="mask")
        x = fault_u01_array(1, "late", ent, 1, mode="mask")
        assert (u != v).mean() > 0.99
        assert (u != w).mean() > 0.99
        assert (u != x).mean() > 0.99
        assert np.array_equal(u, fault_u01_array(1, "drop", ent, 1, mode="mask"))

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            fault_u01_array(1, "drop", np.arange(3), mode="philox")
        with pytest.raises(ValueError, match="fault_mode"):
            bind_all((IIDMessageDrop(),), Network([[1], [0]]), 0, fault_mode="x")


def scalar_delivered(bound, layout, round_no):
    return np.array(
        [
            all(b.delivers(round_no, int(s), int(p)) for b in bound)
            for s, p in zip(layout.out_sender, layout.out_port)
        ],
        dtype=bool,
    )


def scalar_crashed(bound, n, round_no):
    mask = np.zeros(n, dtype=bool)
    for b in bound:
        mask[list(b.crashes(round_no))] = True
    return mask


class TestMasksMatchScalarDecisions:
    """DenseFaults masks == the per-slot scalar sweep, per scenario x mode."""

    @pytest.mark.parametrize("sc", all_scenarios(), ids=lambda s: s.name)
    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_registered_scenario_masks(self, sc, fault_mode):
        adjacency, ids = rewrite_all(sc.perturbations, small_graph(hash(sc.name) % 997))
        net = Network(adjacency, ids=ids)
        engine = CSREngine(net)
        layout = SlotLayout(engine)
        bound = bind_all(sc.perturbations, net, fault_seed=42, fault_mode=fault_mode)
        faults = DenseFaults(engine, bound, layout=layout)
        for round_no in (1, 2, 3, 4, 5, 9, 40):
            out = faults.delivered_out(round_no)
            got = out if out is not None else np.ones(layout.out_sender.shape[0], bool)
            assert np.array_equal(got, scalar_delivered(bound, layout, round_no)), (
                sc.name, fault_mode, round_no,
            )
            din = faults.delivered_in(round_no)
            if out is None:
                assert din is None
            else:
                assert np.array_equal(din, out[layout.partner])
            crash = faults.crashed_at(round_no)
            got_crash = crash if crash is not None else np.zeros(net.n, bool)
            assert np.array_equal(got_crash, scalar_crashed(bound, net.n, round_no))

    def test_scalar_fallback_for_unvectorized_perturbations(self):
        from repro.scenarios.base import BoundPerturbation, Perturbation

        class OddSlotDrop(Perturbation):
            def bind(self, network, fault_seed, fault_mode="replay"):
                b = BoundPerturbation()
                b.drops_messages = True
                b.quiet_after = None
                b.delivers = lambda r, s, p: (s + p + r) % 2 == 0
                return b

        adj = small_graph(3)
        net = Network(adj)
        engine = CSREngine(net)
        layout = SlotLayout(engine)
        bound = bind_all((OddSlotDrop(),), net, fault_seed=0)
        faults = DenseFaults(engine, bound, layout=layout)
        for r in (1, 2):
            assert np.array_equal(
                faults.delivered_out(r), scalar_delivered(bound, layout, r)
            )


class TestQuietHorizon:
    def test_steady_state_masks_are_reused_not_rebuilt(self):
        adj = small_graph(5)
        net = Network(adj)
        engine = CSREngine(net)
        for fault_mode in ("replay", "mask"):
            bound = bind_all(
                (CrashNodes(0.2, at_round=2), DropEdges(0.3, at_round=3)),
                net, fault_seed=7, fault_mode=fault_mode,
            )
            faults = DenseFaults(engine, bound)
            assert faults.quiet == 3
            layout = faults.layout
            # Deletions persist: the steady mask equals the scalar schedule
            # at any later round, and the stack never "expires".
            steady = faults.delivered_out(1000)
            assert np.array_equal(steady, scalar_delivered(bound, layout, 1000))
            assert steady is faults.delivered_out(2000)  # one build, reused
            assert not faults.expired(100)
            faults.delivered_in(500)
            faults.crashed_at(500)
            size = len(faults._cache)
            for r in range(10, 400, 13):
                faults.delivered_out(r)
                faults.delivered_in(r)
                faults.crashed_at(r)
            assert len(faults._cache) == size

    def test_healed_stack_expires(self):
        adj = small_graph(6)
        net = Network(adj)
        engine = CSREngine(net)
        bound = bind_all(
            (MuteHubs(2, until_round=4), CrashNodes(0.2, at_round=2)), net, 3
        )
        faults = DenseFaults(engine, bound)
        assert not faults.expired(4)
        assert faults.expired(5)
        assert faults.delivered_out(7) is None
        assert faults.delivered_in(7) is None
        assert faults.crashed_at(7) is None

    def test_never_settling_stack_has_bounded_cache(self):
        adj = small_graph(7)
        net = Network(adj)
        engine = CSREngine(net)
        bound = bind_all((IIDMessageDrop(0.2),), net, 3)
        faults = DenseFaults(engine, bound)
        assert faults.quiet is None
        for r in range(1, 5 * DenseFaults.CACHE_MAX):
            # "in" first: its build re-enters the cache for the "out" mask,
            # the order that can overshoot a naive evict-before-build cap.
            faults.delivered_in(r)
            faults.delivered_out(r)
            assert len(faults._cache) <= DenseFaults.CACHE_MAX

    def test_luby_recovery_tail_stops_consulting_masks(self):
        adj = small_graph(8)
        engine = CSREngine(Network(adj))
        bound = bind_all((MuteHubs(2, until_round=2),), engine.network, 1)

        class Counting(DenseFaults):
            calls = 0

            def delivered_out(self, round_no):
                Counting.calls += 1
                return super().delivered_out(round_no)

        faults = Counting(engine, bound)
        result = luby_mis_dense(engine, seed=1, coins="replay", faults=faults)
        assert result.completed
        # Only rounds 1..quiet+1 may query masks; the tail pays nothing.
        assert Counting.calls <= 2 * (faults.quiet + 1)


def scalar_corrupted(bound, layout, round_no):
    return np.array(
        [
            any(
                getattr(b, "corrupts_messages", False)
                and b.corrupts(round_no, int(s), int(p))
                for b in bound
            )
            for s, p in zip(layout.out_sender, layout.out_port)
        ],
        dtype=bool,
    )


class TestCorruptionMasks:
    """Byzantine corruption masks == the per-slot scalar sweep."""

    @pytest.mark.parametrize("fault_mode", ["replay", "mask"])
    def test_corruption_masks_match_scalar_decisions(self, fault_mode):
        from repro.scenarios import CorruptMessages

        net = Network(small_graph(21))
        engine = CSREngine(net)
        layout = SlotLayout(engine)
        bound = bind_all(
            (CorruptMessages(p=0.3, from_round=2, until_round=5),
             CrashNodes(0.2, at_round=3)),
            net, fault_seed=5, fault_mode=fault_mode,
        )
        faults = DenseFaults(engine, bound, layout=layout)
        assert faults.corrupting
        for round_no in (1, 2, 3, 5, 6, 40):
            cout = faults.corrupted_out(round_no)
            got = cout if cout is not None else np.zeros(layout.partner.shape, bool)
            assert np.array_equal(got, scalar_corrupted(bound, layout, round_no)), (
                fault_mode, round_no,
            )
            cin = faults.corrupted_in(round_no)
            if cout is None:
                assert cin is None
            else:
                # The receiving view is the partner gather of the outgoing
                # one: a slot is corrupted-in iff its sender corrupted-out.
                assert np.array_equal(cin, cout[layout.partner])

    def test_corrupting_stack_settles_and_expires(self):
        from repro.scenarios import CorruptMessages

        net = Network(small_graph(22))
        engine = CSREngine(net)
        bound = bind_all((CorruptMessages(p=0.5, until_round=4),), net, 1)
        faults = DenseFaults(engine, bound)
        assert faults.quiet == 4
        assert faults.corrupted_out(4) is not None
        # Steady state past the horizon: nothing is corrupted, one lookup.
        assert faults.corrupted_out(5) is None
        assert faults.corrupted_in(5) is None
        assert faults.expired(5)

    def test_never_settling_corrupter_keeps_bounded_cache(self):
        from repro.scenarios import CorruptMessages

        net = Network(small_graph(23))
        engine = CSREngine(net)
        bound = bind_all((CorruptMessages(p=0.2),), net, 2)
        faults = DenseFaults(engine, bound)
        assert faults.quiet is None
        for r in range(1, 5 * DenseFaults.CACHE_MAX):
            faults.corrupted_in(r)  # nested "cout" build, like "in"/"out"
            faults.corrupted_out(r)
            assert len(faults._cache) <= DenseFaults.CACHE_MAX


class TestMaskModeBackendAgreement:
    """One fault mode => one schedule, bit-identical across executors."""

    def test_hooked_engine_matches_dense_replay_coins_in_mask_mode(self):
        rng = random.Random(11)
        for trial in range(8):
            adj = small_graph(rng.randrange(10_000), n=rng.randrange(4, 28))
            net = Network(adj)
            engine = CSREngine(net)
            seed = rng.randrange(10_000)
            perts = (
                CrashNodes(0.2, at_round=rng.randrange(1, 4)),
                IIDMessageDrop(0.3),
            )
            bound = bind_all(perts, net, fault_seed=seed, fault_mode="mask")
            eng = engine.run(LubyMIS(), max_rounds=40, seed=seed,
                             hooks=PerturbationHooks(bound))
            dense = luby_mis_dense(engine, seed=seed, coins="replay",
                                   max_rounds=40, faults=DenseFaults(engine, bound))
            assert dense.rounds == eng.rounds
            assert [bool(x) for x in dense.in_mis] == [
                bool(v.state.get("in_mis")) for v in eng.views
            ]
            assert [bool(x) for x in dense.crashed] == [
                bool(v.state.get("crashed")) for v in eng.views
            ]

    def test_run_scenario_mask_mode_engine_matches_dense(self):
        for name in ("luby/crash", "luby/drop-iid", "luby/edge-deletion"):
            eng = run_scenario(name, n=150, seed=4, backend="engine",
                               fault_mode="mask")
            dense = run_scenario(name, n=150, seed=4, backend="dense",
                                 coins="replay", fault_mode="mask")
            for key in ("rounds", "completed", "violations", "survivors", "mis_size"):
                if key in eng:
                    assert dense[key] == eng[key], (name, key)

    def test_mask_and_replay_modes_differ_but_same_distribution_family(self):
        # Same scenario, same seed: the two modes draw different drop
        # schedules (counter-based vs sha512 streams) yet both are valid
        # runs with full metric channels.
        a = run_scenario("luby/drop-iid", n=200, seed=9, fault_mode="replay")
        b = run_scenario("luby/drop-iid", n=200, seed=9, fault_mode="mask")
        assert a["n"] == b["n"] and a["m"] == b["m"]
        assert a["completed"] == 1 and b["completed"] == 1


class TestScenarioCellCache:
    def test_cells_are_reused_across_trial_seeds(self):
        from repro.scenarios import run as run_mod

        run_mod._CELL_CACHE.clear()
        a = run_scenario("luby/crash", n=180, seed=0, backend="dense")
        assert len(run_mod._CELL_CACHE) == 1
        cell = next(iter(run_mod._CELL_CACHE.values()))
        engine = cell["engine"]
        layout = cell["layout"]
        b = run_scenario("luby/crash", n=180, seed=1, backend="dense")
        assert next(iter(run_mod._CELL_CACHE.values()))["engine"] is engine
        assert next(iter(run_mod._CELL_CACHE.values()))["layout"] is layout
        assert a["n"] == b["n"] and a["m"] == b["m"]
        # Different trial seeds still draw different schedules/coins.
        run_mod._CELL_CACHE.clear()

    def test_cache_is_bounded_and_adjacency_runs_bypass_it(self):
        from repro.scenarios import Scenario
        from repro.scenarios import run as run_mod

        run_mod._CELL_CACHE.clear()
        for n in (60, 80, 100, 120, 140, 160):
            run_scenario("luby/crash", n=n, seed=0, backend="engine")
        assert len(run_mod._CELL_CACHE) <= run_mod._CELL_CACHE_MAX
        before = dict(run_mod._CELL_CACHE)
        sc = Scenario(name="adhoc/bypass", pipeline="luby",
                      perturbations=(CrashNodes(0.3, at_round=1),))
        run_scenario(sc, adjacency=[[1], [0], []], seed=0)
        assert dict(run_mod._CELL_CACHE) == before
        run_mod._CELL_CACHE.clear()
