"""End-to-end scenario execution: registry, runner, metrics, exp wiring."""

import pytest

from repro.exp import ExperimentSpec, run_sweep
from repro.exp.workloads import scenario_workload
from repro.scenarios import (
    CrashNodes,
    Scenario,
    all_scenarios,
    get_scenario,
    register_scenario,
    run_scenario,
    scenario_names,
)

#: Metric channels every scenario trial must report.
REQUIRED_METRICS = {
    "rounds", "completed", "violations", "survivors", "crashed_nodes",
    "n", "m", "solve_seconds", "setup_seconds",
}


class TestRegistry:
    def test_at_least_six_scenarios_registered(self):
        names = scenario_names()
        assert len(names) >= 6
        # The ISSUE's minimum vocabulary is all represented.
        assert "luby/crash" in names
        assert "luby/drop-iid" in names  # i.i.d. drops
        assert "luby/mute-hubs" in names  # adversarial drops
        assert any(n.startswith("luby/churn") or "edge" in n for n in names)  # dynamic
        assert "luby/adversarial-naming" in names  # relabel + ports
        assert "splitting/multi-edge" in names  # weighted/multi-edge

    def test_unknown_name_lists_known(self):
        with pytest.raises(ValueError, match="registered:"):
            get_scenario("luby/typo")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_scenario(get_scenario("luby/crash"))

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(ValueError, match="pipeline"):
            Scenario(name="x", pipeline="nope", perturbations=())


class TestRunScenario:
    @pytest.mark.parametrize("name", scenario_names())
    def test_every_scenario_end_to_end_on_engine(self, name):
        metrics = run_scenario(name, n=200, seed=3, backend="engine")
        assert REQUIRED_METRICS <= set(metrics)
        assert metrics["survivors"] + metrics["crashed_nodes"] == metrics["n"]
        assert metrics["violations"] >= 0
        if get_scenario(name).strict:
            assert metrics["violations"] == 0 and metrics["completed"] == 1

    @pytest.mark.parametrize(
        "name", [s.name for s in all_scenarios() if "dense" in s.backends]
    )
    def test_dense_replay_matches_engine(self, name):
        engine_metrics = run_scenario(name, n=150, seed=5, backend="engine")
        dense_metrics = run_scenario(name, n=150, seed=5, backend="dense",
                                     coins="replay")
        for key in ("rounds", "completed", "violations", "survivors", "mis_size"):
            if key in engine_metrics:
                assert dense_metrics[key] == engine_metrics[key], (name, key)

    def test_reference_matches_engine(self):
        for name in ("luby/crash", "luby/drop-iid", "splitting/drop-iid"):
            ref = run_scenario(name, n=120, seed=2, backend="reference")
            eng = run_scenario(name, n=120, seed=2, backend="engine")
            for key in ("rounds", "completed", "violations", "survivors", "mis_size"):
                if key in eng:
                    assert ref[key] == eng[key], (name, key)

    def test_unsupported_backend_rejected(self):
        with pytest.raises(ValueError, match="supports backends"):
            run_scenario("sinkless/crash", n=100, backend="reference")

    def test_sinkless_round_one_faults_rejected(self):
        # The dense kernel's fault window opens at round 2; a round-1 fault
        # must be a loud error, not silent backend divergence.
        from repro.scenarios import IIDMessageDrop

        early_crash = Scenario(
            name="adhoc/sinkless-early-crash", pipeline="sinkless",
            perturbations=(CrashNodes(fraction=0.2, at_round=1),),
            topology="regular", backends=("engine", "dense"),
        )
        early_drop = Scenario(
            name="adhoc/sinkless-early-drop", pipeline="sinkless",
            perturbations=(IIDMessageDrop(p=0.5),),
            topology="regular", backends=("engine", "dense"),
        )
        for sc in (early_crash, early_drop):
            for backend in ("engine", "dense"):
                with pytest.raises(ValueError, match="round 1 clean"):
                    run_scenario(sc, n=60, seed=1, backend=backend)

    def test_crash_scenarios_report_recovery(self):
        metrics = run_scenario("luby/crash", n=200, seed=0)
        assert metrics["crashed_nodes"] > 0
        assert metrics["rounds_to_recover"] >= 0
        # i.i.d. drops never settle: no recovery point to measure from.
        assert "rounds_to_recover" not in run_scenario("luby/drop-iid", n=100, seed=0)

    def test_fault_schedule_is_seed_deterministic(self):
        a = run_scenario("luby/drop-iid", n=150, seed=11)
        b = run_scenario("luby/drop-iid", n=150, seed=11)
        assert a == {**b, "solve_seconds": a["solve_seconds"],
                     "setup_seconds": a["setup_seconds"],
                     "pack_seconds": a["pack_seconds"],
                     "rng_seconds": a["rng_seconds"]}

    def test_custom_adjacency_and_scenario_object(self):
        sc = Scenario(
            name="adhoc/crash",  # unregistered: passed directly
            pipeline="luby",
            perturbations=(CrashNodes(fraction=0.2, at_round=1),),
        )
        adj = [[1], [0], []]
        metrics = run_scenario(sc, adjacency=adj, seed=0)
        assert metrics["n"] == 3
        assert metrics["crashed_nodes"] == 1


class TestDriverPassThrough:
    """The public drivers expose the same fault surfaces the runner uses."""

    def _graph(self):
        from repro.bipartite.generators import random_sparse_graph

        return random_sparse_graph(120, 6.0, seed=2)

    def test_luby_mis_hooks_and_faults_agree(self):
        from repro.local import CSREngine, Network
        from repro.mis.luby import luby_mis
        from repro.scenarios import PerturbationHooks, bind_all
        from repro.scenarios.masks import DenseFaults

        adj = self._graph()
        net = Network(adj)
        engine = CSREngine(net)
        perts = (CrashNodes(fraction=0.1, at_round=3),)
        bound = bind_all(perts, net, fault_seed=9)
        via_hooks, r1 = luby_mis(adj, seed=9, engine=engine,
                                 hooks=PerturbationHooks(bound))
        via_faults, r2 = luby_mis(adj, seed=9, engine=engine, method="dense",
                                  coins="replay", faults=DenseFaults(engine, bound))
        assert via_hooks == via_faults and r1 == r2

    def test_trial_and_fix_hooks_reach_the_engine(self):
        from repro.local import RoundHooks
        from repro.orientation.sinkless import is_sinkless, run_trial_and_fix

        # The driver's default probe demands a *globally* sink-free
        # configuration, which arbitrary loss can freeze out of reach (the
        # scenario runner substitutes a survivor-aware probe for that); the
        # driver-level contract is just that hooks are consulted per
        # message, so record the traffic without perturbing it.
        class Recorder(RoundHooks):
            def __init__(self):
                self.messages = 0
                self.rounds = set()

            def deliver(self, round_no, sender, port):
                self.messages += 1
                self.rounds.add(round_no)
                return True

        adj = self._graph()
        hooks = Recorder()
        orientation, rounds = run_trial_and_fix(adj, min_degree=2, seed=5, hooks=hooks)
        assert is_sinkless(adj, orientation, min_degree=2)
        assert hooks.rounds == set(range(1, rounds + 1))
        assert hooks.messages >= sum(len(a) for a in adj)  # >= round 1 traffic

    def test_uniform_splitting_with_crash_hooks(self):
        from repro.apps.splitting import uniform_splitting
        from repro.bipartite.generators import random_sparse_graph
        from repro.bipartite.instance import BLUE, RED
        from repro.core.problems import UniformSplittingSpec
        from repro.local import Network
        from repro.scenarios import PerturbationHooks, bind_all

        # Degrees must sit in the w.h.p. regime or the Las-Vegas loop fails
        # even on a clean network.
        adj = random_sparse_graph(200, 40.0, seed=4)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=20)
        bound = bind_all((CrashNodes(fraction=0.1, at_round=1),), Network(adj), 3)
        partition = uniform_splitting(
            adj, spec, method="local", seed=3, hooks=PerturbationHooks(bound)
        )
        # Crashed nodes fall back to their init-time color: full coverage.
        assert len(partition) == len(adj)
        assert all(c in (RED, BLUE) for c in partition)


class TestExpIntegration:
    def test_scenario_workload_in_sweep(self):
        spec = ExperimentSpec(
            "scenario/luby/crash@engine",
            scenario_workload,
            {"scenario": "luby/crash", "n": 150, "backend": "engine"},
            seeds=(0, 1),
        )
        sweep = run_sweep([spec], workers=0)
        assert all(t.ok for t in sweep.trials)
        summary = sweep.summary()["scenario/luby/crash@engine"]
        assert summary["ok"] == 2
        # Resilience metrics aggregate like any other channel.
        assert "violations" in summary["metrics"]
        assert "survivors" in summary["metrics"]
        assert summary["metrics"]["rounds_to_recover"]["n"] == 2

    def test_cli_scenario_spec_builder(self):
        import importlib.util
        from pathlib import Path

        path = Path(__file__).resolve().parents[2] / "benchmarks" / "run_experiments.py"
        spec = importlib.util.spec_from_file_location("run_experiments", path)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        cells = mod.build_scenario_specs(True, 2, "all", ("engine", "dense"))
        names = {c.name for c in cells}
        # Every registered scenario appears on at least one backend, and
        # backend support is honored (no reference-only surprises).
        for sc_name in scenario_names():
            assert any(n.startswith(f"scenario/{sc_name}@") for n in names)
        assert all("@reference" not in n for n in names)
        explicit = mod.build_scenario_specs(False, 3, "luby/crash", ("engine",))
        assert [c.name for c in explicit] == ["scenario/luby/crash@engine"]
        assert explicit[0].seeds == (0, 1, 2)
        assert explicit[0].params["fault_mode"] == "replay"  # default knob
        masked = mod.build_scenario_specs(True, 1, "luby/crash", ("dense",),
                                          fault_mode="mask")
        assert masked[0].params["fault_mode"] == "mask"
        with pytest.raises(ValueError):
            mod.build_scenario_specs(True, 1, "luby/typo", ("engine",))
        with pytest.raises(ValueError, match="fault mode"):
            mod.build_scenario_specs(True, 1, "luby/crash", ("engine",),
                                     fault_mode="philox")
