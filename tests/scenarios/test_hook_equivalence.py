"""Property tests: deterministic-fault runs are bit-identical across backends.

The scenario subsystem's core guarantee: because every fault decision is a
pure function of ``(fault_seed, round, coordinates)``, a perturbed run is
*bit-identical* between the reference simulator and the batched engine for
any algorithm, and — with replayed coins — between the engine and the
dense kernels for the shipped pipelines.  Random graphs x random fault
stacks x random seeds probe that exhaustively.
"""

import random

from repro.apps.splitting import ZeroRoundSplitting
from repro.bipartite.generators import random_sparse_graph
from repro.core.problems import UniformSplittingSpec
from repro.local import CSREngine, Network, run_local
from repro.local.dense import (
    luby_mis_dense,
    sinkless_trial_dense,
    uniform_splitting_dense,
)
from repro.mis.luby import LubyMIS
from repro.orientation.sinkless import TrialAndFixSinkless, sinks
from repro.scenarios import (
    CrashNodes,
    DropEdges,
    EdgeChurn,
    IIDMessageDrop,
    LateEdges,
    MuteHubs,
    PerturbationHooks,
    bind_all,
    orientation_from_views,
)
from repro.scenarios.masks import DenseFaults


def random_multigraph(rng, n):
    """Random sparse symmetric adjacency, occasionally with multi-edges."""
    adj = [[] for _ in range(n)]
    for _ in range(rng.randrange(0, 2 * n)):
        u, v = rng.randrange(n), rng.randrange(n)
        if u == v:
            continue
        adj[u].append(v)
        adj[v].append(u)
    return adj


def random_stack(rng):
    """A random non-empty subset of runtime perturbations."""
    pool = [
        CrashNodes(fraction=rng.choice([0.1, 0.3]), at_round=rng.randrange(1, 5)),
        IIDMessageDrop(p=rng.choice([0.1, 0.4]), until_round=rng.choice([None, 3])),
        MuteHubs(count=rng.randrange(1, 4), until_round=rng.randrange(1, 5)),
        EdgeChurn(p_down=rng.choice([0.2, 0.5])),
        LateEdges(fraction=0.4, at_round=rng.randrange(2, 5)),
        # Steady state != all-deliver: exercises the quiet-horizon
        # steady-mask reuse in DenseFaults.
        DropEdges(fraction=0.3, at_round=rng.randrange(1, 5)),
    ]
    k = rng.randrange(1, 4)
    return tuple(rng.sample(pool, k))


def assert_bit_identical(ref, fast):
    assert ref.rounds == fast.rounds
    assert ref.completed == fast.completed
    assert ref.outputs() == fast.outputs()
    assert [v.state for v in ref.views] == [v.state for v in fast.views]


class TestReferenceVsEngineUnderFaults:
    def test_luby_random_fault_stacks(self):
        rng = random.Random(1234)
        for trial in range(25):
            adj = random_multigraph(rng, rng.randrange(2, 25))
            net = Network(adj)
            perts = random_stack(rng)
            seed = rng.randrange(10_000)
            bound = bind_all(perts, net, fault_seed=seed)
            ref = run_local(net, LubyMIS(), max_rounds=60, seed=seed,
                            hooks=PerturbationHooks(bound))
            fast = CSREngine(net).run(LubyMIS(), max_rounds=60, seed=seed,
                                      hooks=PerturbationHooks(bound))
            assert_bit_identical(ref, fast)

    def test_sinkless_random_fault_stacks(self):
        # TrialAndFixSinkless exercises the non-broadcast send path and the
        # defensive round-1 receive (missing proposals under faults).
        rng = random.Random(99)
        for trial in range(15):
            adj = random_multigraph(rng, rng.randrange(2, 18))
            net = Network(adj)
            perts = random_stack(rng)
            seed = rng.randrange(10_000)
            bound = bind_all(perts, net, fault_seed=seed)
            algo = TrialAndFixSinkless(min_degree=2)
            ref = run_local(net, algo, max_rounds=12, seed=seed,
                            hooks=PerturbationHooks(bound))
            fast = CSREngine(net).run(algo, max_rounds=12, seed=seed,
                                      hooks=PerturbationHooks(bound))
            assert_bit_identical(ref, fast)

    def test_splitting_random_fault_stacks(self):
        rng = random.Random(7)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=3)
        for trial in range(15):
            adj = random_multigraph(rng, rng.randrange(2, 20))
            net = Network(adj)
            perts = random_stack(rng)
            seed = rng.randrange(10_000)
            bound = bind_all(perts, net, fault_seed=seed)
            algo = ZeroRoundSplitting(spec)
            ref = run_local(net, algo, max_rounds=1, seed=seed,
                            hooks=PerturbationHooks(bound))
            fast = CSREngine(net).run(algo, max_rounds=1, seed=seed,
                                      hooks=PerturbationHooks(bound))
            assert_bit_identical(ref, fast)


class TestDenseReplayUnderFaults:
    """Dense kernels fed replayed coins + fault masks == hooked engine."""

    def test_luby_crash_and_drop(self):
        import numpy as np

        rng = random.Random(31)
        for trial in range(12):
            adj = random_multigraph(rng, rng.randrange(2, 30))
            net = Network(adj)
            engine = CSREngine(net)
            perts = random_stack(rng)
            seed = rng.randrange(10_000)
            bound = bind_all(perts, net, fault_seed=seed)
            eng = engine.run(LubyMIS(), max_rounds=40, seed=seed,
                             hooks=PerturbationHooks(bound))
            faults = DenseFaults(engine, bound)
            # delivered_in is defined as the partner-gather of
            # delivered_out: both sides of a slot name the same message.
            for round_no in (1, 2, 3, eng.rounds or 1):
                out = faults.delivered_out(round_no)
                din = faults.delivered_in(round_no)
                if out is None:
                    assert din is None
                else:
                    assert np.array_equal(din, out[faults.layout.partner])
            dense = luby_mis_dense(engine, seed=seed, coins="replay",
                                   max_rounds=40, faults=faults)
            assert dense.rounds == eng.rounds
            assert dense.completed == eng.completed
            assert [bool(x) for x in dense.in_mis] == [
                bool(v.state.get("in_mis")) for v in eng.views
            ]
            assert [bool(x) for x in dense.crashed] == [
                bool(v.state.get("crashed")) for v in eng.views
            ]

    def test_sinkless_crash(self):
        # Crash-only schedules from round >= 2 (the dense kernel's fault
        # support window); compare slot states against the engine's views.
        rng = random.Random(57)
        trials = 0
        while trials < 10:
            n = rng.randrange(4, 20)
            adj = random_sparse_graph(n, 3.0, seed=rng.randrange(999))
            if not any(adj):
                continue
            trials += 1
            net = Network(adj)
            engine = CSREngine(net)
            seed = rng.randrange(10_000)
            perts = (CrashNodes(fraction=0.2, at_round=rng.randrange(2, 5)),)
            bound = bind_all(perts, net, fault_seed=seed)
            max_rounds = 12
            algo = TrialAndFixSinkless(min_degree=2)

            # The same survivor-aware stopping rule the dense kernel checks
            # internally (and the scenario runner uses), so both executors
            # stop at the same round.
            def probe(round_no, views):
                if round_no < 2:
                    return False
                orientation = orientation_from_views(adj, views)
                alive = [not v.state.get("crashed") for v in views]
                return not any(alive[v] for v in sinks(adj, orientation, 2))

            eng = engine.run(algo, max_rounds=max_rounds, seed=seed,
                             hooks=PerturbationHooks(bound), probe=probe)
            dense = sinkless_trial_dense(
                engine, min_degree=2, seed=seed, coins="replay",
                max_rounds=max_rounds, faults=DenseFaults(engine, bound),
                strict=False,
            )
            assert dense.rounds == eng.rounds
            offsets = engine.offsets
            slot_out = [False] * offsets[-1]
            for i, view in enumerate(eng.views):
                for p, is_out in view.state.get("out", {}).items():
                    slot_out[offsets[i] + p] = is_out
            assert [bool(x) for x in dense.out] == slot_out
            assert [bool(x) for x in dense.crashed] == [
                bool(v.state.get("crashed")) for v in eng.views
            ]

    def test_splitting_crash_and_drop(self):
        rng = random.Random(83)
        spec = UniformSplittingSpec(eps=0.25, min_constrained_degree=3)
        for trial in range(12):
            adj = random_multigraph(rng, rng.randrange(2, 25))
            net = Network(adj)
            engine = CSREngine(net)
            seed = rng.randrange(10_000)
            perts = random_stack(rng)
            bound = bind_all(perts, net, fault_seed=seed)
            eng = engine.run(ZeroRoundSplitting(spec), max_rounds=1, seed=seed,
                             hooks=PerturbationHooks(bound))
            dense = uniform_splitting_dense(
                engine, spec, seed=seed, coins="replay",
                faults=DenseFaults(engine, bound),
            )
            assert [int(c) for c in dense.colors] == [
                v.state["color"] for v in eng.views
            ]
            alive_ok = all(
                v.output[1] for v in eng.views if v.output is not None
            )
            assert dense.ok == alive_ok
            assert [bool(c) for c in dense.crashed] == [
                bool(v.state.get("crashed")) for v in eng.views
            ]


def test_pure_decisions_are_order_insensitive():
    """Consulting a bound stack twice (any order) gives the same answers."""
    rng = random.Random(5)
    adj = random_multigraph(rng, 12)
    net = Network(adj)
    perts = random_stack(rng)
    bound_a = bind_all(perts, net, fault_seed=42)
    bound_b = bind_all(perts, net, fault_seed=42)
    queries = [
        (r, s, p)
        for r in range(1, 6)
        for s in range(net.n)
        for p in range(len(adj[s]))
    ]
    rng.shuffle(queries)
    for r, s, p in queries:
        assert all(b.delivers(r, s, p) for b in bound_a) == all(
            b.delivers(r, s, p) for b in bound_b
        )
    for r in range(1, 6):
        assert [tuple(b.crashes(r)) for b in bound_a] == [
            tuple(b.crashes(r)) for b in bound_b
        ]
